//! Facade crate re-exporting the full scibench workspace.
//!
//! `scibench` reproduces *Comparative Evaluation of Big-Data Systems on
//! Scientific Image Analytics Workloads* (Mehta et al., VLDB 2017): two real
//! scientific pipelines (diffusion-MRI neuroscience and LSST-style
//! astronomy), five big-data engine analogs, a discrete-event cluster
//! simulator, and a benchmark harness regenerating every table and figure of
//! the paper's evaluation.

pub use engine_array;
pub use engine_dataflow;
pub use engine_rdd;
pub use engine_rel;
pub use engine_taskgraph;
pub use formats;
pub use marray;
pub use scibench_core as core;
pub use sciops;
pub use simcluster;
