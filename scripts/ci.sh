#!/usr/bin/env bash
# Tier-1 gate: formatting, the workspace lint wall, the full test suite,
# and the static plan lint over every shipped lowering. Run before every
# push; CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace lint wall, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== scilint (source-level determinism & numeric-safety gate)"
# Zero unsuppressed findings allowed; every suppression carries a reason.
# Prints a one-line per-crate summary; details in DESIGN.md §3.9.
cargo run --release -q -p scilint --bin scilint -- --quiet

echo "== cargo test"
cargo test -q --workspace

echo "== scibench lint (static verification of lowered task graphs)"
cargo run --release -q -p scibench-bench --bin scibench -- lint

echo "== scibench perf-smoke (serial vs parallel kernels, bit-identical)"
# Tiny shapes, ~seconds: asserts every parallel kernel port matches the
# serial reference bit for bit, and that SCIBENCH_THREADS is honored.
SCIBENCH_THREADS=2 cargo run --release -q -p scibench-bench --bin scibench -- perf-smoke
cargo run --release -q -p scibench-bench --bin scibench -- perf-smoke --threads 4

echo "ci: all gates passed"
