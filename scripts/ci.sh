#!/usr/bin/env bash
# Tier-1 gate: formatting, the workspace lint wall, the full test suite,
# and the static plan lint over every shipped lowering. Run before every
# push; CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace lint wall, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q --workspace

echo "== scibench lint (static verification of lowered task graphs)"
cargo run --release -q -p scibench-bench --bin scibench -- lint

echo "ci: all gates passed"
