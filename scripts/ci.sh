#!/usr/bin/env bash
# Tier-1 gate: formatting, the workspace lint wall, the full test suite,
# and the static plan lint over every shipped lowering. Run before every
# push; CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace lint wall, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== scilint (source-level determinism & numeric-safety gate)"
# Zero unsuppressed findings allowed; every suppression carries a reason.
# Prints a one-line per-crate summary; details in DESIGN.md §3.9.
cargo run --release -q -p scilint --bin scilint -- --quiet

echo "== scilint --flow (sciflow: interprocedural effect gate)"
# Panic/nondet/copy/spawn sinks reachable from engine entry points, each
# with its witness call chain; details in DESIGN.md §3.12. Also checks the
# machine-readable report still speaks sciflow/v1.
tmp_flow="$(mktemp)"
trap 'rm -f "$tmp_flow"' EXIT
cargo run --release -q -p scilint --bin scilint -- --flow --json > "$tmp_flow"
flow_schema='"schema": "sciflow/v1"'
grep -qF "$flow_schema" "$tmp_flow" || {
  echo "ci: FAIL - scilint --flow no longer emits $flow_schema" >&2; exit 1; }

echo "== scibench lint --memo (memoization-soundness certifier)"
# Certifies every shipped lowering for result-cache soundness (scilint
# purity verdicts joined with plancheck plan fingerprints), asserts the
# deliberately-unsafe fixture is rejected with its witness chain, and
# checks the committed MEMO_report.json still speaks scimemo/v2 (v2 added
# the live memo_stats counter block); details in DESIGN.md §3.14.
tmp_memo="$(mktemp)"
trap 'rm -f "$tmp_flow" "$tmp_memo"' EXIT
cargo run --release -q -p scibench-bench --bin scibench -- lint --memo --out "$tmp_memo"
memo_schema='"schema": "scimemo/v2"'
grep -qF "$memo_schema" "$tmp_memo" || {
  echo "ci: FAIL - lint --memo no longer emits $memo_schema" >&2; exit 1; }
grep -qF "$memo_schema" MEMO_report.json || {
  echo "ci: FAIL - committed MEMO_report.json schema drifted from $memo_schema" >&2
  echo "     regenerate it: cargo run --release -p scibench-bench --bin scibench -- lint --memo --out MEMO_report.json" >&2
  exit 1; }

echo "== cargo test"
cargo test -q --workspace

echo "== scibench lint (static verification of lowered task graphs)"
cargo run --release -q -p scibench-bench --bin scibench -- lint

echo "== scibench perf-smoke (serial vs parallel kernels, bit-identical)"
# Tiny shapes, ~seconds: asserts every parallel kernel port matches the
# serial reference bit for bit, and that SCIBENCH_THREADS is honored.
SCIBENCH_THREADS=2 cargo run --release -q -p scibench-bench --bin scibench -- perf-smoke
cargo run --release -q -p scibench-bench --bin scibench -- perf-smoke --threads 4

echo "== scibench bench e2e --quick (copy accounting, eager vs shared)"
# Runs every engine pipeline under both copy modes (bit-identity enforced
# by the tool: non-zero exit on fingerprint divergence) and checks the
# committed BENCH_e2e.json still speaks the schema the tool emits.
tmp_e2e="$(mktemp)"
tmp_skew="$(mktemp)"
tmp_compress="$(mktemp)"
trap 'rm -f "$tmp_e2e" "$tmp_skew" "$tmp_compress" "$tmp_flow" "$tmp_memo"' EXIT
cargo run --release -q -p scibench-bench --bin scibench -- bench e2e --quick --out "$tmp_e2e"
schema_line='"schema": "scibench-bench-e2e/v1"'
grep -qF "$schema_line" "$tmp_e2e" || {
  echo "ci: FAIL - bench e2e no longer emits $schema_line" >&2; exit 1; }
grep -qF "$schema_line" BENCH_e2e.json || {
  echo "ci: FAIL - committed BENCH_e2e.json schema drifted from $schema_line" >&2
  echo "     regenerate it: cargo run --release -p scibench-bench --bin scibench -- bench e2e --out BENCH_e2e.json" >&2
  exit 1; }

echo "== scibench bench skew --quick (morsel vs static worker imbalance)"
# Runs the skewed astro field through both schedules at 2/4/8 workers
# (bit-identity is enforced by the tool: non-zero exit on fingerprint
# divergence; the morsel<=static model-imbalance regression is enforced
# on the full run that regenerates the committed artifact) and checks the
# committed BENCH_skew.json still speaks the schema the tool emits.
cargo run --release -q -p scibench-bench --bin scibench -- bench skew --quick --out "$tmp_skew"
skew_schema='"schema": "scibench-bench-skew/v1"'
grep -qF "$skew_schema" "$tmp_skew" || {
  echo "ci: FAIL - bench skew no longer emits $skew_schema" >&2; exit 1; }
grep -qF "$skew_schema" BENCH_skew.json || {
  echo "ci: FAIL - committed BENCH_skew.json schema drifted from $skew_schema" >&2
  echo "     regenerate it: cargo run --release -p scibench-bench --bin scibench -- bench skew --out BENCH_skew.json" >&2
  exit 1; }

echo "== scibench bench compress --quick (codec ratios + run-level kernel wins)"
# Measures per-plane compression at the engine ingest boundary, runs the
# run-level kernel fast paths against their dense twins, and replays two
# full pipelines under CompressMode Off and Auto (the tool exits non-zero
# on a fingerprint divergence, a mask/variance ratio below 2x, or a kernel
# row with neither a time nor a bytes-moved win). Also checks the committed
# BENCH_compress.json still speaks the schema the tool emits.
cargo run --release -q -p scibench-bench --bin scibench -- bench compress --quick --out "$tmp_compress"
compress_schema='"schema": "scibench-bench-compress/v1"'
grep -qF "$compress_schema" "$tmp_compress" || {
  echo "ci: FAIL - bench compress no longer emits $compress_schema" >&2; exit 1; }
grep -qF "$compress_schema" BENCH_compress.json || {
  echo "ci: FAIL - committed BENCH_compress.json schema drifted from $compress_schema" >&2
  echo "     regenerate it: cargo run --release -p scibench-bench --bin scibench -- bench compress --out BENCH_compress.json" >&2
  exit 1; }

echo "== scibench bench serve --quick (resident service, certified zero-copy cache)"
# Replays the seeded hot/cold query schedule against the resident service
# four ways — serial cache-on, concurrent cache-on, serial cache-off, and
# under a halved cache budget that forces LRU eviction — with the tool
# exiting non-zero on any fingerprint divergence, a warm hit that moved
# bytes, an unrejected Figure 15 plan, an uncertified fixture request that
# did not bypass, or a small-budget replay that never evicted or overran
# its budget. Also checks the committed BENCH_serve.json still speaks the
# schema the tool emits.
tmp_serve="$(mktemp)"
trap 'rm -f "$tmp_e2e" "$tmp_skew" "$tmp_compress" "$tmp_serve" "$tmp_flow" "$tmp_memo"' EXIT
cargo run --release -q -p scibench-bench --bin scibench -- bench serve --quick --out "$tmp_serve"
serve_schema='"schema": "scibench-bench-serve/v1"'
grep -qF "$serve_schema" "$tmp_serve" || {
  echo "ci: FAIL - bench serve no longer emits $serve_schema" >&2; exit 1; }
grep -qF "$serve_schema" BENCH_serve.json || {
  echo "ci: FAIL - committed BENCH_serve.json schema drifted from $serve_schema" >&2
  echo "     regenerate it: cargo run --release -p scibench-bench --bin scibench -- bench serve --out BENCH_serve.json" >&2
  exit 1; }

echo "== scibench bench ooc --quick (memory governor, LRU spill tier)"
# Streams a stack deliberately larger than the memory budget through the
# governor at 25%/50%/unbounded budgets and runs every engine analog
# out-of-core; the tool exits non-zero if any fingerprint diverges across
# budgets, a bounded row fails to spill+reload or overruns its budget, the
# plancheck demand estimate drifts outside the documented factor of the
# measured peak, or no engine analog spills. Also checks the committed
# BENCH_ooc.json still speaks the schema the tool emits.
tmp_ooc="$(mktemp)"
trap 'rm -f "$tmp_e2e" "$tmp_skew" "$tmp_compress" "$tmp_serve" "$tmp_ooc" "$tmp_flow" "$tmp_memo"' EXIT
cargo run --release -q -p scibench-bench --bin scibench -- bench ooc --quick --out "$tmp_ooc"
ooc_schema='"schema": "scibench-bench-ooc/v1"'
grep -qF "$ooc_schema" "$tmp_ooc" || {
  echo "ci: FAIL - bench ooc no longer emits $ooc_schema" >&2; exit 1; }
grep -qF "$ooc_schema" BENCH_ooc.json || {
  echo "ci: FAIL - committed BENCH_ooc.json schema drifted from $ooc_schema" >&2
  echo "     regenerate it: cargo run --release -p scibench-bench --bin scibench -- bench ooc --out BENCH_ooc.json" >&2
  exit 1; }

echo "ci: all gates passed"
