//! A small, dependency-free, offline stand-in for the `criterion` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `criterion` cannot be resolved. This shim implements the subset of
//! its API that the workspace benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`Throughput`], and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock harness: each benchmark is warmed up once, timed for a fixed
//! number of samples, and reported as mean time per iteration (plus
//! throughput when declared).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared data volume per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    mean_secs: f64,
}

impl Bencher {
    /// Time `routine`, storing the mean seconds per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call so lazy initialisation isn't measured.
        std_black_box(routine());
        let iters = self.samples.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        self.mean_secs = start.elapsed().as_secs_f64() / iters as f64;
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(name: &str, mean_secs: f64, throughput: Option<Throughput>) {
    let mut line = format!("bench {name:<40} {:>12}/iter", human_time(mean_secs));
    if let Some(tp) = throughput {
        if mean_secs > 0.0 {
            match tp {
                Throughput::Bytes(b) => {
                    let gbps = b as f64 / mean_secs / 1e9;
                    line.push_str(&format!("  {gbps:>8.3} GB/s"));
                }
                Throughput::Elements(n) => {
                    let meps = n as f64 / mean_secs / 1e6;
                    line.push_str(&format!("  {meps:>8.3} Melem/s"));
                }
            }
        }
    }
    println!("{line}");
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_secs: 0.0,
        };
        f(&mut b);
        report(name, b.mean_secs, None);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Override the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim has no global time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// A named group of benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare per-iteration data volume; subsequent benches report rates.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_secs: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            b.mean_secs,
            self.throughput,
        );
        self
    }

    /// End the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc(hidden)]
        #[allow(missing_docs)]
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                black_box((0..100u64).sum::<u64>())
            })
        });
        // warmup + 3 samples
        assert_eq!(ran, 4);
    }

    #[test]
    fn group_reports_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(1_000_000));
        g.bench_function("copy", |b| b.iter(|| black_box(vec![0u8; 1024])));
        g.finish();
    }
}
