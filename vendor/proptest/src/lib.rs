//! A small, dependency-free, offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `proptest` cannot be resolved. This shim implements the subset of
//! its API that the workspace's property tests use: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, `prop::option::of`, [`any`], [`Just`],
//! `prop_oneof!`, and the `proptest!`/`prop_assert!`/`prop_assert_eq!`
//! macros driven by a deterministic splitmix64 generator.
//!
//! It generates values and reports failures (with the failing case's seed)
//! but performs no shrinking — a failing case prints its inputs via the
//! assertion message instead.

/// Deterministic random source handed to strategies.
///
/// A splitmix64 stream: fast, well distributed, and — crucially for CI —
/// identical on every run and platform.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Strategy trait: a recipe for generating values of `Self::Value`.
pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// Strategies are usable behind references.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between several strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.options.len() as u64) as usize;
            self.options[ix].generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Range strategies: `lo..hi` and `lo..=hi` generate uniform values.
mod ranges {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    (lo as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + ((rng.next_u64() as u128) % (span as u128)) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    (lo as i128 + ((rng.next_u64() as u128) % (span as u128)) as i128) as $t
                }
            }
        )+};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Produce an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `prop::collection` — sized collections of generated elements.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `prop::option` — optional values.
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option<S::Value>`: `None` one time in four.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// Wrap `inner`'s values in `Option`, generating `None` sometimes.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// Controls how many cases each `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

#[doc(hidden)]
pub mod runner {
    use super::test_runner::ProptestConfig;

    /// FNV-1a of a test's name: the per-test base seed, so tests explore
    /// different parts of the input space but identically on every run.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Panic with the failing case's details.
    pub fn fail(name: &str, case: u32, config: &ProptestConfig, seed: u64, msg: &str) -> ! {
        panic!(
            "proptest `{name}` failed at case {case}/{total} (seed {seed:#x}): {msg}",
            total = config.cases
        );
    }
}

/// The glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`: module-style access to the
    /// collection/option strategy constructors.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Assert a condition inside `proptest!`, failing the case (not panicking
/// directly) so the runner can report the case number and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                ::core::stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Assert two values compare equal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Assert two values compare unequal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left
            ));
        }
    }};
}

/// Uniformly choose between several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let base = $crate::runner::seed_for(::core::stringify!($name));
                let strategies = ($($s,)+);
                for case in 0..config.cases {
                    let seed = base ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let mut rng = $crate::TestRng::new(seed);
                    let ($($p,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        $crate::runner::fail(
                            ::core::stringify!($name), case, &config, seed, &msg,
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @run ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (5u8..=6).generate(&mut rng);
            assert!((5..=6).contains(&w));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = crate::TestRng::new(9);
        let s = prop::collection::vec(0u8..8, 2..=5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuples(a in 0u64..100, (b, c) in (0u8..4, any::<bool>())) {
            prop_assert!(a < 100);
            prop_assert!(b < 4);
            prop_assert_eq!(c, c);
        }

        #[test]
        fn oneof_and_option(x in prop_oneof![Just(1u8), Just(2u8)], o in prop::option::of(0u8..3)) {
            prop_assert!(x == 1 || x == 2);
            if let Some(v) = o {
                prop_assert!(v < 3);
            }
        }
    }
}
