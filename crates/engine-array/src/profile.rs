//! Architectural constants used when lowering array queries onto the
//! cluster simulator.

/// The SciDB-analog execution profile.
///
/// * `instances_per_node` — vendor guidance: one instance per 1–2 cores;
///   4 instances on the 8-vCPU nodes.
/// * `chunk_op_overhead` — fixed cost per chunk per operator (iterator
///   setup, catalog lookups).
/// * `reconstruct_per_byte` — extra cost for cutting cells out of chunks
///   and rebuilding result chunks on misaligned selections.
/// * `tsv_stream_per_byte` — the `stream()` interface's CSV/TSV conversion
///   cost in each direction.
/// * `csv_ingest_per_byte` / `from_array_client_bw` — the two ingest
///   paths: parallel `aio_input` pays text parsing; serial `from_array`
///   funnels the binary array through the client connection.
/// * `incremental_iteration` — off in the stock release (coadd re-scans
///   per iteration, the >10× penalty of Figure 12d); on models the 6×
///   optimization of the paper's \[34].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayEngineProfile {
    /// Instances per node.
    pub instances_per_node: usize,
    /// Fixed seconds per chunk per operator.
    pub chunk_op_overhead: f64,
    /// Seconds per byte of chunk reconstruction on misaligned access.
    pub reconstruct_per_byte: f64,
    /// Seconds per byte of TSV serialization (each direction) in `stream()`.
    pub tsv_stream_per_byte: f64,
    /// Seconds per byte to parse CSV during `aio_input` ingest.
    pub csv_ingest_per_byte: f64,
    /// Client connection bandwidth for serial `from_array` ingest (B/s).
    pub from_array_client_bw: f64,
    /// Whether iterative queries reuse prior iterations' state.
    pub incremental_iteration: bool,
}

impl Default for ArrayEngineProfile {
    fn default() -> Self {
        ArrayEngineProfile {
            instances_per_node: 4,
            chunk_op_overhead: 0.004,
            reconstruct_per_byte: 1.0 / 350e6,
            tsv_stream_per_byte: 1.0 / 90e6, // text is slow
            csv_ingest_per_byte: 1.0 / 110e6,
            from_array_client_bw: 60e6,
            incremental_iteration: false,
        }
    }
}

impl ArrayEngineProfile {
    /// The profile with the incremental-iteration optimization of the
    /// paper's \[34] enabled (§5.2.4's "6× improvement").
    pub fn with_incremental_iteration(mut self) -> Self {
        self.incremental_iteration = true;
        self
    }

    /// The statically checkable invariants of this engine's lowerings,
    /// consumed by [`plancheck::check`]: every chunk operator belongs to a
    /// specific instance (static placement), and operators read the
    /// engine-managed chunk store, which is populated outside any one
    /// query's graph.
    pub fn invariants(&self) -> plancheck::InvariantProfile {
        plancheck::InvariantProfile {
            static_placement: true,
            store_backed: true,
            skew_ratio: 6.0,
            ..plancheck::InvariantProfile::new("SciDB")
        }
    }

    /// What each SciDB-analog task label executes, for the scimemo
    /// cacheability certifier (shared `astro:*`/`ingest:*`/step labels
    /// live in core's table).
    pub fn op_bindings(&self) -> &'static [plancheck::OpBinding] {
        SCIDB_OPS
    }
}

const SCIDB_OPS: &[plancheck::OpBinding] = &{
    use plancheck::{OpBinding, OpClass};
    [
        OpBinding::new("scidb:filter", OpClass::Kernel(&["segmentation"])),
        OpBinding::new("scidb:mean", OpClass::Kernel(&["segmentation"])),
        OpBinding::new("scidb:denoise-stream", OpClass::Kernel(&["nlmeans3d"])),
        OpBinding::new("scidb:coadd-chunk", OpClass::Kernel(&["coadd_sigma_clip"])),
    ]
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let p = ArrayEngineProfile::default();
        assert_eq!(p.instances_per_node, 4); // 8 vCPU / 2
        assert!(!p.incremental_iteration);
        assert!(p.with_incremental_iteration().incremental_iteration);
    }

    #[test]
    fn text_paths_slower_than_binary() {
        let p = ArrayEngineProfile::default();
        assert!(p.tsv_stream_per_byte > 1.0 / 450e6);
        assert!(p.csv_ingest_per_byte > 1.0 / 450e6);
    }
}
