//! AFL-style chunk-at-a-time operators.

use crate::db::{ArrayDbError, ScidbArray};
use marray::{ChunkGrid, Mask, NdArray};
use std::sync::atomic::Ordering;

impl ScidbArray {
    /// `between(lo, hi)` / `subarray`: extract a hyper-rectangle.
    ///
    /// Chunk-at-a-time: every chunk overlapping the selection is read in
    /// full; misaligned selections additionally cut cells out of chunks
    /// and rebuild result chunks (counted in
    /// [`crate::OpStats::chunks_reconstructed`]) — the mechanism behind
    /// SciDB's slow filter in Figure 12a ("the internal chunks are not
    /// aligned with the selection").
    pub fn between(&self, starts: &[usize], dims: &[usize]) -> Result<ScidbArray, ArrayDbError> {
        let touched = self.grid.chunks_overlapping(starts, dims);
        let mut scanned_cells = 0u64;
        let mut reconstructed = 0u64;
        for ix in &touched {
            let extent = self.grid.chunk_extent(ix);
            scanned_cells += extent.iter().product::<usize>() as u64;
            let origin = self.grid.chunk_origin(ix);
            let aligned = origin
                .iter()
                .zip(&extent)
                .zip(starts.iter().zip(dims))
                .all(|((&o, &e), (&s, &d))| o >= s && o + e <= s + d);
            if !aligned {
                reconstructed += 1;
            }
        }
        self.record_scan(touched.len() as u64, scanned_cells);
        self.db
            .stats
            .chunks_reconstructed
            .fetch_add(reconstructed, Ordering::Relaxed);

        // Execute via assemble-of-touched-chunks for correctness.
        let full = self.materialize()?;
        let sub = full.subarray(starts, dims)?;
        let chunk_dims: Vec<usize> = self
            .grid
            .chunk_dims()
            .iter()
            .zip(dims)
            .map(|(&c, &d)| c.min(d).max(1))
            .collect();
        let grid = ChunkGrid::new(dims, &chunk_dims)?;
        self.record_rechunk(sub.stored_nbytes());
        let chunks = grid.split(&sub)?;
        Ok(ScidbArray {
            db: self.db.clone(),
            grid,
            chunks,
        })
    }

    /// `filter`/`compress`: keep positions along `axis` selected by a 1-D
    /// mask. Always misaligned unless the mask selects whole chunk rows.
    pub fn compress(&self, mask: &Mask, axis: usize) -> Result<ScidbArray, ArrayDbError> {
        let cells: u64 = self.chunks.iter().map(|(_, c)| c.len() as u64).sum();
        self.record_scan(self.chunks.len() as u64, cells);
        self.db
            .stats
            .chunks_reconstructed
            .fetch_add(self.chunks.len() as u64, Ordering::Relaxed);
        let full = self.materialize()?;
        let out = full.compress_axis(mask, axis)?;
        let chunk_dims: Vec<usize> = self
            .grid
            .chunk_dims()
            .iter()
            .zip(out.dims())
            .map(|(&c, &d)| c.min(d).max(1))
            .collect();
        let grid = ChunkGrid::new(out.dims(), &chunk_dims)?;
        self.record_rechunk(out.stored_nbytes());
        let chunks = grid.split(&out)?;
        Ok(ScidbArray {
            db: self.db.clone(),
            grid,
            chunks,
        })
    }

    /// `aggregate(avg(...), dim)`: mean along one axis — the operation
    /// SciDB is fastest at in Figure 12b ("optimized for array operations
    /// and this computation exercises SciDB's specialized design").
    pub fn aggregate_mean(&self, axis: usize) -> Result<ScidbArray, ArrayDbError> {
        let cells: u64 = self.chunks.iter().map(|(_, c)| c.len() as u64).sum();
        self.record_scan(self.chunks.len() as u64, cells);
        let full = self.materialize()?;
        let out = full.mean_axis(axis);
        let chunk_dims: Vec<usize> = self
            .grid
            .chunk_dims()
            .iter()
            .enumerate()
            .filter(|&(a, _)| a != axis)
            .map(|(_, &c)| c)
            .zip(out.dims())
            .map(|(c, &d)| c.min(d).max(1))
            .collect();
        let grid = ChunkGrid::new(out.dims(), &chunk_dims)?;
        self.record_rechunk(out.stored_nbytes());
        let chunks = grid.split(&out)?;
        Ok(ScidbArray {
            db: self.db.clone(),
            grid,
            chunks,
        })
    }

    /// `aggregate(sum(...), dim)`: sum along one axis.
    pub fn aggregate_sum(&self, axis: usize) -> Result<ScidbArray, ArrayDbError> {
        let cells: u64 = self.chunks.iter().map(|(_, c)| c.len() as u64).sum();
        self.record_scan(self.chunks.len() as u64, cells);
        let full = self.materialize()?;
        let out = full.sum_axis(axis);
        let chunk_dims: Vec<usize> = self
            .grid
            .chunk_dims()
            .iter()
            .enumerate()
            .filter(|&(a, _)| a != axis)
            .map(|(_, &c)| c)
            .zip(out.dims())
            .map(|(c, &d)| c.min(d).max(1))
            .collect();
        let grid = ChunkGrid::new(out.dims(), &chunk_dims)?;
        self.record_rechunk(out.stored_nbytes());
        let chunks = grid.split(&out)?;
        Ok(ScidbArray {
            db: self.db.clone(),
            grid,
            chunks,
        })
    }

    /// `cross_join`: combine a rank-(N) array with two rank-(N-1) arrays
    /// that match its trailing dimensions — the AFL `cross_join` used to
    /// compare each visit's pixels against the per-pixel mean/σ during
    /// iterative outlier removal.
    pub fn cross_join2(
        &self,
        a: &ScidbArray,
        b: &ScidbArray,
        f: impl Fn(f64, f64, f64) -> f64,
    ) -> Result<ScidbArray, ArrayDbError> {
        let dims = self.dims();
        if a.dims() != &dims[1..] || b.dims() != &dims[1..] {
            return Err(ArrayDbError::Mismatch(format!(
                "cross_join2 expects trailing dims {:?}, got {:?} and {:?}",
                &dims[1..],
                a.dims(),
                b.dims()
            )));
        }
        let cells: u64 = self.chunks.iter().map(|(_, c)| c.len() as u64).sum();
        self.record_scan(self.chunks.len() as u64, cells);
        let full = self.materialize()?;
        let av = a.materialize()?;
        let bv = b.materialize()?;
        let inner: usize = dims[1..].iter().product();
        // Compute into a fresh buffer: the old clone-then-mutate forced a
        // full deep copy before the first write.
        let mut out_data = Vec::with_capacity(full.len());
        for (i, &v) in full.data().iter().enumerate() {
            out_data.push(f(v, av.data()[i % inner], bv.data()[i % inner]));
        }
        let out = NdArray::from_vec(full.dims(), out_data)?;
        self.record_rechunk(out.stored_nbytes());
        let chunks = self.grid.split(&out)?;
        Ok(ScidbArray {
            db: self.db.clone(),
            grid: self.grid.clone(),
            chunks,
        })
    }

    /// `apply`: element-wise function per chunk (no reconstruction).
    pub fn apply(&self, f: impl Fn(f64) -> f64) -> Result<ScidbArray, ArrayDbError> {
        let cells: u64 = self.chunks.iter().map(|(_, c)| c.len() as u64).sum();
        self.record_scan(self.chunks.len() as u64, cells);
        let chunks = self
            .chunks
            .iter()
            .map(|(ix, c)| (ix.clone(), c.map(&f)))
            .collect();
        Ok(ScidbArray {
            db: self.db.clone(),
            grid: self.grid.clone(),
            chunks,
        })
    }

    /// `join`: element-wise combination of two identically chunked arrays.
    pub fn join(
        &self,
        other: &ScidbArray,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<ScidbArray, ArrayDbError> {
        if self.grid != other.grid {
            return Err(ArrayDbError::Mismatch(format!(
                "join requires identical chunking: {:?} vs {:?}",
                self.grid.array_dims(),
                other.grid.array_dims()
            )));
        }
        let cells: u64 = self.chunks.iter().map(|(_, c)| c.len() as u64).sum();
        self.record_scan(2 * self.chunks.len() as u64, 2 * cells);
        let chunks = self
            .chunks
            .iter()
            .zip(&other.chunks)
            .map(|((ix, a), (_, b))| Ok((ix.clone(), a.zip_with(b, &f)?)))
            .collect::<Result<Vec<_>, marray::ArrayError>>()?;
        Ok(ScidbArray {
            db: self.db.clone(),
            grid: self.grid.clone(),
            chunks,
        })
    }

    /// `window(avg, radius)`: windowed mean. Supported (SciDB's `window()`
    /// exists) but only for simple aggregates; it is not a convolution.
    /// Executes over the assembled array so windows cross chunk borders
    /// correctly, charging a halo-exchange reconstruction per chunk.
    pub fn window_mean(&self, radius: usize) -> Result<ScidbArray, ArrayDbError> {
        let cells: u64 = self.chunks.iter().map(|(_, c)| c.len() as u64).sum();
        self.record_scan(self.chunks.len() as u64, cells);
        self.db
            .stats
            .chunks_reconstructed
            .fetch_add(self.chunks.len() as u64, Ordering::Relaxed);
        let full = self.materialize()?;
        let dims = full.dims().to_vec();
        let rank = dims.len();
        let mut out = NdArray::<f64>::zeros(&dims);
        // Generic rank-N box mean via per-axis clamped windows.
        let shape = full.shape().clone();
        for (off, ix) in shape.indices().enumerate() {
            let mut sum = 0.0;
            let mut count = 0usize;
            // Iterate the window around ix.
            let lo_hi: Vec<(usize, usize)> = (0..rank)
                .map(|a| marray::window_bounds(ix[a], radius, dims[a]))
                .collect();
            let wdims: Vec<usize> = lo_hi.iter().map(|(l, h)| h - l).collect();
            for rel in marray::Shape::new(&wdims).indices() {
                let abs: Vec<usize> = rel.iter().zip(&lo_hi).map(|(&r, &(l, _))| l + r).collect();
                sum += full[&abs[..]];
                count += 1;
            }
            out.data_mut()[off] = sum / count as f64;
        }
        let grid = self.grid.clone();
        self.record_rechunk(out.stored_nbytes());
        let chunks = grid.split(&out)?;
        Ok(ScidbArray {
            db: self.db.clone(),
            grid,
            chunks,
        })
    }

    /// `redimension`: re-chunk the array under a new chunk shape — the
    /// engine's signature reorganization operator and the mechanism behind
    /// the §5.3.1 chunk-size tuning. Every chunk is read, cut apart and
    /// rebuilt.
    pub fn redimension(&self, chunk_dims: &[usize]) -> Result<ScidbArray, ArrayDbError> {
        let cells: u64 = self.chunks.iter().map(|(_, c)| c.len() as u64).sum();
        self.record_scan(self.chunks.len() as u64, cells);
        let full = self.materialize()?;
        let grid = ChunkGrid::new(full.dims(), chunk_dims)?;
        self.record_rechunk(full.stored_nbytes());
        let chunks = grid.split(&full)?;
        self.db
            .stats
            .chunks_reconstructed
            .fetch_add(chunks.len() as u64, Ordering::Relaxed);
        Ok(ScidbArray {
            db: self.db.clone(),
            grid,
            chunks,
        })
    }

    /// High-dimensional convolution — **not available**, as in the
    /// evaluated engine. Steps 2N, 3N and 4A cannot be implemented
    /// natively.
    pub fn convolve(&self, _kernel: &NdArray<f64>) -> Result<ScidbArray, ArrayDbError> {
        Err(ArrayDbError::Unsupported("high-dimensional convolution"))
    }

    /// The `stream()` interface: pipe each chunk through an external UDF.
    ///
    /// Chunk data really is serialized to TSV, parsed by the "external
    /// process", transformed, serialized back and re-parsed — the exact
    /// interchange the paper measured as the Figure 12c overhead. The UDF
    /// must preserve the chunk's shape.
    pub fn stream(
        &self,
        udf: impl Fn(&NdArray<f64>) -> NdArray<f64>,
    ) -> Result<ScidbArray, ArrayDbError> {
        let cells: u64 = self.chunks.iter().map(|(_, c)| c.len() as u64).sum();
        self.record_scan(self.chunks.len() as u64, cells);
        let mut chunks = Vec::with_capacity(self.chunks.len());
        for (ix, chunk) in &self.chunks {
            // Engine → external process.
            let outbound = formats::text::to_tsv(&chunk.cast());
            let received = formats::text::from_tsv(&outbound)
                .map_err(|e| ArrayDbError::BadCsv(e.to_string()))?;
            let transformed = udf(&received.cast());
            if transformed.dims() != chunk.dims() {
                return Err(ArrayDbError::Mismatch(format!(
                    "stream() UDF changed chunk shape {:?} -> {:?}",
                    chunk.dims(),
                    transformed.dims()
                )));
            }
            // External process → engine.
            let inbound = formats::text::to_tsv(&transformed.cast());
            let back = formats::text::from_tsv(&inbound)
                .map_err(|e| ArrayDbError::BadCsv(e.to_string()))?;
            self.db
                .stats
                .stream_tsv_bytes
                .fetch_add((outbound.len() + inbound.len()) as u64, Ordering::Relaxed);
            marray::record_copy("scidb.stream-tsv", outbound.len() + inbound.len());
            chunks.push((ix.clone(), back.cast()));
        }
        Ok(ScidbArray {
            db: self.db.clone(),
            grid: self.grid.clone(),
            chunks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::ArrayDb;

    fn stored(dims: &[usize], chunk: &[usize]) -> ScidbArray {
        let db = ArrayDb::connect(4);
        let a = NdArray::from_fn(dims, |ix| {
            ix.iter()
                .enumerate()
                .map(|(k, &v)| v as f64 * 10f64.powi(k as i32))
                .sum()
        });
        db.from_array(&a, chunk).unwrap()
    }

    #[test]
    fn between_aligned_touches_one_chunk() {
        let s = stored(&[20, 20], &[10, 10]);
        let before = s.db.stats().snapshot();
        let sub = s.between(&[10, 0], &[10, 10]).unwrap();
        let after = s.db.stats().snapshot();
        assert_eq!(after.0 - before.0, 1, "one chunk scanned");
        assert_eq!(after.1 - before.1, 0, "aligned: nothing reconstructed");
        assert_eq!(sub.dims(), &[10, 10]);
    }

    #[test]
    fn between_misaligned_reconstructs() {
        let s = stored(&[20, 20], &[10, 10]);
        let before = s.db.stats().snapshot();
        let sub = s.between(&[5, 5], &[10, 10]).unwrap();
        let after = s.db.stats().snapshot();
        assert_eq!(after.0 - before.0, 4, "selection straddles four chunks");
        assert_eq!(after.1 - before.1, 4, "all four rebuilt");
        // Values still correct.
        let full = stored(&[20, 20], &[10, 10]).materialize().unwrap();
        assert_eq!(
            sub.materialize().unwrap(),
            full.subarray(&[5, 5], &[10, 10]).unwrap()
        );
    }

    #[test]
    fn compress_matches_reference() {
        let s = stored(&[4, 4, 6], &[2, 2, 3]);
        let mask = Mask::from_vec(&[6], vec![true, false, true, false, false, true]).unwrap();
        let out = s.compress(&mask, 2).unwrap();
        assert_eq!(out.dims(), &[4, 4, 3]);
        let reference = s.materialize().unwrap().compress_axis(&mask, 2).unwrap();
        assert_eq!(out.materialize().unwrap(), reference);
    }

    #[test]
    fn aggregate_mean_matches_reference() {
        let s = stored(&[4, 4, 6], &[2, 2, 3]);
        let out = s.aggregate_mean(2).unwrap();
        assert_eq!(out.dims(), &[4, 4]);
        assert_eq!(
            out.materialize().unwrap(),
            s.materialize().unwrap().mean_axis(2)
        );
    }

    #[test]
    fn apply_and_join() {
        let s = stored(&[6, 6], &[3, 3]);
        let doubled = s.apply(|v| v * 2.0).unwrap();
        let sum = s.join(&doubled, |a, b| a + b).unwrap();
        let m = sum.materialize().unwrap();
        let base = s.materialize().unwrap();
        for (x, y) in m.data().iter().zip(base.data()) {
            assert_eq!(*x, y * 3.0);
        }
    }

    #[test]
    fn join_requires_same_chunking() {
        let a = stored(&[6, 6], &[3, 3]);
        let b = stored(&[6, 6], &[2, 2]);
        assert!(matches!(
            a.join(&b, |x, y| x + y),
            Err(ArrayDbError::Mismatch(_))
        ));
    }

    #[test]
    fn window_mean_crosses_chunk_borders() {
        // A constant array must stay constant; if halos were ignored the
        // borders between chunks would dip.
        let db = ArrayDb::connect(2);
        let a = NdArray::<f64>::full(&[8, 8], 5.0);
        let s = db.from_array(&a, &[4, 4]).unwrap();
        let w = s.window_mean(1).unwrap().materialize().unwrap();
        for &v in w.data() {
            assert!((v - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn aggregate_sum_matches_reference() {
        let s = stored(&[3, 4], &[2, 2]);
        let out = s.aggregate_sum(0).unwrap();
        assert_eq!(
            out.materialize().unwrap(),
            s.materialize().unwrap().sum_axis(0)
        );
    }

    #[test]
    fn cross_join2_broadcasts_trailing_dims() {
        let db = ArrayDb::connect(2);
        // Stack of 3 "visits" of 2×2 pixels.
        let cube = NdArray::from_fn(&[3, 2, 2], |ix| (ix[0] * 100 + ix[1] * 2 + ix[2]) as f64);
        let s = db.from_array(&cube, &[1, 2, 2]).unwrap();
        let mean = s.aggregate_mean(0).unwrap();
        let zeros = db.from_array(&NdArray::zeros(&[2, 2]), &[2, 2]).unwrap();
        let centered = s.cross_join2(&mean, &zeros, |v, m, _| v - m).unwrap();
        let back = centered.materialize().unwrap();
        // Per-pixel mean of centered values is zero.
        let m = back.mean_axis(0);
        for &v in m.data() {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn cross_join2_rejects_bad_dims() {
        let db = ArrayDb::connect(1);
        let cube = NdArray::<f64>::zeros(&[3, 2, 2]);
        let s = db.from_array(&cube, &[1, 2, 2]).unwrap();
        let wrong = db.from_array(&NdArray::zeros(&[3, 2]), &[3, 2]).unwrap();
        assert!(s.cross_join2(&wrong, &wrong, |v, _, _| v).is_err());
    }

    #[test]
    fn redimension_preserves_data_and_changes_grid() {
        let s = stored(&[12, 8], &[4, 4]);
        let before = s.materialize().unwrap();
        let r = s.redimension(&[6, 2]).unwrap();
        assert_eq!(r.grid.chunk_dims(), &[6, 2]);
        assert_eq!(r.chunk_count(), 8);
        assert_eq!(r.materialize().unwrap(), before);
        // Reconstruction work was recorded.
        assert!(s.db.stats().snapshot().1 >= 8);
    }

    #[test]
    fn redimension_then_aligned_between_is_cheap() {
        // Retuning the chunk shape makes a previously misaligned selection
        // aligned — the point of the §5.3.1 exercise.
        let s = stored(&[20, 20], &[8, 8]);
        let r = s.redimension(&[10, 10]).unwrap();
        let before = r.db.stats().snapshot();
        r.between(&[10, 0], &[10, 10]).unwrap();
        let after = r.db.stats().snapshot();
        assert_eq!(after.1 - before.1, 0, "aligned after redimension");
    }

    #[test]
    fn convolution_is_unsupported() {
        let s = stored(&[4, 4], &[2, 2]);
        let err = s.convolve(&NdArray::zeros(&[3, 3])).unwrap_err();
        assert_eq!(
            err,
            ArrayDbError::Unsupported("high-dimensional convolution")
        );
    }

    #[test]
    fn stream_runs_udf_through_tsv() {
        let s = stored(&[6, 4], &[3, 2]);
        let before = s.db.stats().snapshot().3;
        let out = s.stream(|chunk| chunk.map(|v| v + 1.0)).unwrap();
        let after = s.db.stats().snapshot().3;
        assert!(after > before, "TSV bytes were counted");
        let m = out.materialize().unwrap();
        let base = s.materialize().unwrap();
        for (x, y) in m.data().iter().zip(base.data()) {
            assert!(
                (x - (y + 1.0)).abs() < 1e-3,
                "{x} vs {y}+1 (f32 TSV roundtrip)"
            );
        }
    }

    #[test]
    fn stream_rejects_shape_changing_udf() {
        let s = stored(&[4, 4], &[2, 2]);
        let err = s.stream(|_| NdArray::zeros(&[1])).unwrap_err();
        assert!(matches!(err, ArrayDbError::Mismatch(_)));
    }
}
