//! The database handle, stored arrays, and operator statistics.

use marray::{ChunkGrid, ChunkIx, NdArray};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors from array operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayDbError {
    /// The requested operation does not exist in the engine (the paper:
    /// "SciDB ... lacks critical functions including high-dimensional
    /// convolutions").
    Unsupported(&'static str),
    /// Shape/chunking mismatch between operands.
    Mismatch(String),
    /// Underlying array error.
    Array(marray::ArrayError),
    /// CSV parse failure during `aio_input`.
    BadCsv(String),
}

impl std::fmt::Display for ArrayDbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrayDbError::Unsupported(op) => {
                write!(f, "operation not supported by the engine: {op}")
            }
            ArrayDbError::Mismatch(s) => write!(f, "operand mismatch: {s}"),
            ArrayDbError::Array(e) => write!(f, "array error: {e}"),
            ArrayDbError::BadCsv(s) => write!(f, "aio_input parse error: {s}"),
        }
    }
}

impl std::error::Error for ArrayDbError {}

impl From<marray::ArrayError> for ArrayDbError {
    fn from(e: marray::ArrayError) -> Self {
        ArrayDbError::Array(e)
    }
}

/// Cumulative operator statistics — the observable cost of the
/// chunk-at-a-time execution model.
#[derive(Debug, Default)]
pub struct OpStats {
    /// Chunks read by operators.
    pub chunks_scanned: AtomicU64,
    /// Chunks that had to be cut apart and reassembled because a selection
    /// was not aligned with chunk boundaries.
    pub chunks_reconstructed: AtomicU64,
    /// Cells processed by operators.
    pub cells_processed: AtomicU64,
    /// Bytes serialized through the `stream()` TSV interface (both ways).
    pub stream_tsv_bytes: AtomicU64,
}

impl OpStats {
    /// Snapshot: (scanned, reconstructed, cells, tsv bytes).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.chunks_scanned.load(Ordering::Relaxed),
            self.chunks_reconstructed.load(Ordering::Relaxed),
            self.cells_processed.load(Ordering::Relaxed),
            self.stream_tsv_bytes.load(Ordering::Relaxed),
        )
    }
}

/// A connection to the array database.
#[derive(Debug, Clone)]
pub struct ArrayDb {
    /// Number of instances (the vendor guidance: one per 1–2 cores).
    pub instances: usize,
    pub(crate) stats: Arc<OpStats>,
}

/// A stored chunked array.
#[derive(Debug, Clone)]
pub struct ScidbArray {
    pub(crate) db: ArrayDb,
    /// The chunking layout.
    pub grid: ChunkGrid,
    /// Chunks in row-major grid order.
    pub chunks: Vec<(ChunkIx, NdArray<f64>)>,
}

impl ArrayDb {
    /// Connect to a deployment with `instances` instances.
    pub fn connect(instances: usize) -> ArrayDb {
        ArrayDb {
            instances: instances.max(1),
            stats: Arc::new(OpStats::default()),
        }
    }

    /// Operator statistics for this connection.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// SciDB-1 ingest: the client-side `from_array()` path. The whole
    /// array travels through the client serially before being chunked —
    /// the slow path in Figure 11.
    pub fn from_array(
        &self,
        array: &NdArray<f64>,
        chunk_dims: &[usize],
    ) -> Result<ScidbArray, ArrayDbError> {
        let grid = ChunkGrid::new(array.dims(), chunk_dims)?;
        // Chunking the client array is the engine's architectural ingest
        // copy (Figure 11's slow path): every cell is rewritten into chunk
        // storage. The charge is the stored footprint — a compressed
        // client array crosses the boundary in its encoded form.
        marray::record_copy("scidb.ingest-chunking", array.stored_nbytes());
        let mut chunks = grid.split(array)?;
        // A compressed ingest array stays compressed chunk-by-chunk: each
        // split chunk re-encodes (or stays dense when its slice no longer
        // shrinks), so downstream operators see the same representations
        // the cost-model heuristic chose at the boundary.
        if array.repr() != marray::ChunkRepr::Dense {
            for (_, chunk) in &mut chunks {
                *chunk = chunk.compressed();
            }
        }
        // Under an active memory budget the stored chunks enter the
        // governor's spill tier, so an ingested array larger than the
        // budget degrades to spill I/O instead of exhausting memory.
        // Compressed chunks are governed (and spilled) in encoded form.
        if marray::mem_budget().is_some() {
            for (_, chunk) in &mut chunks {
                *chunk = chunk.govern();
            }
        }
        Ok(ScidbArray {
            db: self.clone(),
            grid,
            chunks,
        })
    }

    /// SciDB-2 ingest: the parallel `aio_input()` CSV loader. Consumes the
    /// `coord...,value` CSV text (the format the paper converts NIfTI/FITS
    /// files into) — an order of magnitude faster at cluster scale, at the
    /// price of the text conversion.
    pub fn aio_input(
        &self,
        csv: &str,
        dims: &[usize],
        chunk_dims: &[usize],
    ) -> Result<ScidbArray, ArrayDbError> {
        let array =
            formats::text::from_csv(csv, dims).map_err(|e| ArrayDbError::BadCsv(e.to_string()))?;
        self.from_array(&array.cast(), chunk_dims)
    }

    /// Instance owning a chunk (round-robin in grid order).
    pub fn instance_of(&self, chunk_ordinal: usize) -> usize {
        chunk_ordinal % self.instances
    }
}

impl ScidbArray {
    /// The array's dims.
    pub fn dims(&self) -> &[usize] {
        self.grid.array_dims()
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Assemble the full dense array (leaves the engine — used to return
    /// results to the client and to validate against the reference).
    ///
    /// This is a sanctioned architectural copy: SciDB's chunk-at-a-time
    /// storage cannot hand out the dense array without rewriting every
    /// chunk, so the rewrite is recorded under `"scidb.materialize"`.
    pub fn materialize(&self) -> Result<NdArray<f64>, ArrayDbError> {
        let nbytes: usize = self.chunks.iter().map(|(_, c)| c.stored_nbytes()).sum();
        marray::record_copy("scidb.materialize", nbytes);
        Ok(self.grid.assemble(&self.chunks)?)
    }

    /// Record one chunked rewrite of `bytes` bytes (result re-chunking
    /// after a misaligned or shape-changing operator).
    pub(crate) fn record_rechunk(&self, bytes: usize) {
        marray::record_copy("scidb.rechunk", bytes);
    }

    pub(crate) fn record_scan(&self, chunks: u64, cells: u64) {
        self.db
            .stats
            .chunks_scanned
            .fetch_add(chunks, Ordering::Relaxed);
        self.db
            .stats
            .cells_processed
            .fetch_add(cells, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_array_roundtrip() {
        let db = ArrayDb::connect(4);
        let a = NdArray::from_fn(&[10, 8], |ix| (ix[0] * 8 + ix[1]) as f64);
        let stored = db.from_array(&a, &[4, 4]).unwrap();
        assert_eq!(stored.chunk_count(), 6);
        assert_eq!(stored.materialize().unwrap(), a);
    }

    #[test]
    fn aio_input_matches_from_array() {
        let db = ArrayDb::connect(2);
        let a = NdArray::from_fn(&[6, 6], |ix| ix[0] as f64 - ix[1] as f64 * 0.5);
        let csv = formats::text::to_csv(&a.cast());
        let via_csv = db.aio_input(&csv, &[6, 6], &[3, 3]).unwrap();
        let direct = db.from_array(&a, &[3, 3]).unwrap();
        let x = via_csv.materialize().unwrap();
        let y = direct.materialize().unwrap();
        for (p, q) in x.data().iter().zip(y.data()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn aio_input_rejects_garbage() {
        let db = ArrayDb::connect(1);
        assert!(matches!(
            db.aio_input("not,a,number\n", &[2, 2], &[2, 2]),
            Err(ArrayDbError::BadCsv(_))
        ));
    }

    #[test]
    fn instances_round_robin() {
        let db = ArrayDb::connect(3);
        assert_eq!(db.instance_of(0), 0);
        assert_eq!(db.instance_of(4), 1);
    }
}
