#![warn(missing_docs)]

//! # engine-array — a chunked multidimensional array DBMS (SciDB analog)
//!
//! Reproduces the architectural properties of SciDB the paper's analysis
//! rests on:
//!
//! * **Arrays divided into chunks distributed across instances** —
//!   [`ScidbArray`] stores a [`marray::ChunkGrid`]-partitioned array;
//!   chunks round-robin across instances (one instance per 1–2 cores, per
//!   the vendor guidance the paper cites). Chunk shape is the §5.3.1
//!   tuning knob (1000×1000 optimal for the LSST images; 500² was 3×
//!   slower, 1500² +22%, 2000² +55%).
//! * **Chunk-at-a-time operators** — every AFL-style operator
//!   ([`ScidbArray::between`], [`ScidbArray::compress`],
//!   [`ScidbArray::aggregate_mean`], [`ScidbArray::window_mean`],
//!   [`ScidbArray::apply`], [`ScidbArray::join`]) iterates chunks;
//!   selections not aligned with chunk boundaries must read and rebuild
//!   every overlapping chunk (the Figure 12a filter penalty), which the
//!   engine's [`OpStats`] expose.
//! * **No high-dimensional convolution** — [`ScidbArray::convolve`]
//!   returns [`ArrayDbError::Unsupported`]: Steps 2N/3N/4A cannot be
//!   written natively, exactly as the paper found.
//! * **The `stream()` interface** — [`ScidbArray::stream`] pipes each
//!   chunk through an external UDF via real TSV serialization both ways
//!   (the Figure 12c overhead).
//! * **Two ingest paths** — serial client-side [`ArrayDb::from_array`]
//!   (SciDB-1 in Figure 11) and parallel CSV [`ArrayDb::aio_input`]
//!   (SciDB-2, an order of magnitude faster but needing format
//!   conversion).
//! * **No incremental iteration** — the stock engine re-scans per
//!   iteration; [`ArrayEngineProfile::incremental_iteration`] models the
//!   6× optimization of the paper's \[34].

//! ```
//! use engine_array::ArrayDb;
//! use marray::NdArray;
//!
//! let db = ArrayDb::connect(4);
//! let data = NdArray::from_fn(&[8, 8], |ix| (ix[0] * 8 + ix[1]) as f64);
//! let stored = db.from_array(&data, &[4, 4]).unwrap();
//! let mean = stored.aggregate_mean(0).unwrap();
//! assert_eq!(mean.materialize().unwrap(), data.mean_axis(0));
//! assert!(stored.convolve(&NdArray::zeros(&[3, 3])).is_err()); // not supported
//! ```

mod db;
mod ops;
mod profile;

pub use db::{ArrayDb, ArrayDbError, OpStats, ScidbArray};
pub use profile::ArrayEngineProfile;
