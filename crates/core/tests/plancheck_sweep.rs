//! Static-verification sweep: every shipped lowering, across the paper's
//! full data-size sweeps at 16 and 64 nodes, must produce a
//! `plancheck`-clean task graph — zero error-severity findings — with one
//! documented exception: Myria's pipelined astronomy configuration at 24
//! visits on 16 nodes (Figure 15) MUST trip the memory-budget pass, and
//! its disk-backed fallbacks must not. This pins the paper's OOM story to
//! the static checker, not just to the simulator.

use engine_rel::ExecutionMode;
use plancheck::{check, Code, Report};
use scibench_core::experiments::{tuned_partitions, Setup};
use scibench_core::lower::{astro, ingest, neuro, Engine};
use scibench_core::workload::{AstroWorkload, NeuroWorkload};

const NODE_SWEEP: [usize; 2] = [16, 64];

fn is_memory(code: Code) -> bool {
    matches!(code, Code::M001 | Code::M002 | Code::M003 | Code::M004)
}

fn assert_clean(report: &Report, name: &str) {
    let errors: Vec<String> = report
        .errors()
        .map(|d| format!("{} {}", d.code, d.message))
        .collect();
    assert!(
        errors.is_empty(),
        "{name} should lint clean, got:\n{}",
        errors.join("\n")
    );
}

#[test]
fn neuro_sweep_is_clean_for_every_engine() {
    let setup = Setup::default();
    for &nodes in &NODE_SWEEP {
        for w in NeuroWorkload::sweep() {
            for engine in [
                Engine::Dask,
                Engine::Myria,
                Engine::Spark,
                Engine::TensorFlow,
                Engine::SciDb,
            ] {
                let cluster = setup.cluster_for(engine, nodes);
                let g = match engine {
                    Engine::Spark => neuro::spark(
                        &w,
                        &setup.cm,
                        &setup.profiles,
                        &cluster,
                        Some(tuned_partitions(&cluster)),
                        true,
                    ),
                    Engine::Myria => neuro::myria(&w, &setup.cm, &setup.profiles, &cluster),
                    Engine::Dask => neuro::dask(&w, &setup.cm, &setup.profiles, &cluster),
                    Engine::TensorFlow => {
                        neuro::tensorflow(&w, &setup.cm, &setup.profiles, &cluster)
                    }
                    Engine::SciDb => {
                        neuro::scidb_steps(&w, &setup.cm, &setup.profiles, &cluster, true)
                    }
                };
                let report = check(&g, &cluster, &setup.profiles.invariants(engine));
                assert_clean(
                    &report,
                    &format!(
                        "neuro {} subjects={} nodes={nodes}",
                        engine.name(),
                        w.subjects
                    ),
                );
            }
        }
    }
}

#[test]
fn astro_sweep_reproduces_figure_15_and_nothing_else() {
    let setup = Setup::default();
    for &nodes in &NODE_SWEEP {
        for w in AstroWorkload::sweep() {
            let cluster = setup.cluster_for(Engine::Spark, nodes);
            let g = astro::spark(&w, &setup.cm, &setup.profiles, &cluster);
            let report = check(&g, &cluster, &setup.profiles.invariants(Engine::Spark));
            assert_clean(
                &report,
                &format!("astro Spark visits={} nodes={nodes}", w.visits),
            );

            let cluster = setup.cluster_for(Engine::Myria, nodes);
            for mode in [
                ExecutionMode::Pipelined,
                ExecutionMode::Materialized,
                ExecutionMode::MultiQuery { pieces: 4 },
            ] {
                let (g, strict) = astro::myria(&w, &setup.cm, &setup.profiles, &cluster, mode);
                let report = check(&g, &cluster, &setup.profiles.invariants(Engine::Myria));
                let name = format!("astro Myria {mode:?} visits={} nodes={nodes}", w.visits);
                // Only the full-scale pipelined plan on 16 nodes may (and
                // must) overrun: two ~31 GB coadd stacks land on one node.
                if mode == ExecutionMode::Pipelined && nodes == 16 && w.visits == 24 {
                    assert!(strict, "pipelined execution has no spill fallback");
                    assert!(
                        report.has(Code::M001),
                        "{name} must statically reproduce the Figure 15 OOM"
                    );
                    assert!(
                        report.errors().all(|d| is_memory(d.code)),
                        "{name} may only carry memory errors"
                    );
                } else {
                    assert_clean(&report, &name);
                }
            }

            let cluster = setup.cluster_for(Engine::SciDb, nodes);
            let g = astro::scidb_coadd(&w, &setup.cm, &setup.profiles, &cluster, 1000);
            let report = check(&g, &cluster, &setup.profiles.invariants(Engine::SciDb));
            assert_clean(
                &report,
                &format!("astro SciDB visits={} nodes={nodes}", w.visits),
            );
        }
    }
}

#[test]
fn ingest_sweep_is_clean_for_all_six_systems() {
    let setup = Setup::default();
    let w = NeuroWorkload { subjects: 25 };
    for &nodes in &NODE_SWEEP {
        let lowerings: [(&str, Engine); 6] = [
            ("Dask", Engine::Dask),
            ("Myria", Engine::Myria),
            ("Spark", Engine::Spark),
            ("TensorFlow", Engine::TensorFlow),
            ("SciDB from_array", Engine::SciDb),
            ("SciDB aio_input", Engine::SciDb),
        ];
        for (label, engine) in lowerings {
            let cluster = setup.cluster_for(engine, nodes);
            let g = match label {
                "Dask" => ingest::dask(&w, &setup.cm, &setup.profiles, &cluster),
                "Myria" => ingest::myria(&w, &setup.cm, &setup.profiles, &cluster),
                "Spark" => ingest::spark(&w, &setup.cm, &setup.profiles, &cluster),
                "TensorFlow" => ingest::tensorflow(&w, &setup.cm, &setup.profiles, &cluster),
                "SciDB from_array" => {
                    ingest::scidb_from_array(&w, &setup.cm, &setup.profiles, &cluster)
                }
                _ => ingest::scidb_aio(&w, &setup.cm, &setup.profiles, &cluster),
            };
            let report = check(&g, &cluster, &setup.profiles.invariants(engine));
            assert_clean(&report, &format!("ingest {label} nodes={nodes}"));
        }
    }
}
