//! Eager neuroscience implementations, one per engine.

use engine_dataflow::{BinaryOp, GraphBuilder, Session};
use engine_rdd::SparkContext;
use engine_rel::{MyriaConnection, Query, Schema, Value, ValueType};
use engine_taskgraph::{DaskClient, Delayed};
use marray::{Mask, NdArray};
use sciops::neuro::{fit_dtm_volume, median_otsu, nlmeans3d, GradientTable, NlmParams};
use sciops::synth::dmri::DmriPhantom;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One subject's input: id, 4-D data and gradient table.
#[derive(Clone)]
pub struct Subject {
    /// Subject id.
    pub id: u32,
    /// The 4-D (x, y, z, volume) data.
    pub data: Arc<NdArray<f64>>,
    /// The acquisition's gradient table.
    pub gtab: Arc<GradientTable>,
}

impl Subject {
    /// Build from a generated phantom.
    pub fn from_phantom(id: u32, phantom: &DmriPhantom) -> Subject {
        Subject {
            id,
            data: Arc::new(phantom.data.cast()),
            gtab: Arc::new(phantom.gtab.clone()),
        }
    }

    /// Extract volume `v` as a 3-D array.
    // scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
    pub fn volume(&self, v: usize) -> NdArray<f64> {
        self.data.slice_axis(3, v).expect("volume index in range")
    }
}

/// Choose a chunk representation for a volume crossing an engine ingest
/// boundary. dMRI volumes carry noise in every voxel, so the cost-model
/// heuristic ([`crate::costmodel::choose_repr`]) usually keeps them dense
/// after a cheap run-length probe — the boundary *chooses*, it does not
/// blindly encode. Zero-padded or masked-out volumes do pack. Under an
/// active memory budget ([`marray::mem_budget`]) the volume additionally
/// enters the governor's spill tier
/// ([`crate::costmodel::govern_for_boundary`]), so a working set larger
/// than the budget degrades to spill I/O instead of exhausting memory.
fn pack_volume(vol: NdArray<f64>) -> NdArray<f64> {
    let v = crate::costmodel::pack_for_boundary(&vol, crate::costmodel::PlaneKind::Other)
        .unwrap_or(vol);
    crate::costmodel::govern_for_boundary(&v).unwrap_or(v)
}

/// The NLM parameters every implementation shares (matching the reference).
pub fn nlm_params() -> NlmParams {
    NlmParams {
        search_radius: 1,
        patch_radius: 1,
        sigma: 20.0,
        h_factor: 1.0,
    }
}

/// Assemble per-volume results back into a (x, y, z, volume) array.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
// scilint: allow(F003, engine ingest boundary: blobs enter the engine's own tuple store, a materializing copy by contract)
fn stack_volumes(dims3: &[usize], volumes: &mut [(usize, NdArray<f64>)]) -> NdArray<f64> {
    volumes.sort_by_key(|(v, _)| *v);
    let parts: Vec<NdArray<f64>> = volumes
        .iter()
        .map(|(_, vol)| {
            let mut d = dims3.to_vec();
            d.push(1);
            vol.clone().reshape(&d).expect("same element count")
        })
        .collect();
    let refs: Vec<&NdArray<f64>> = parts.iter().collect();
    NdArray::concat(&refs, 3).expect("volumes share spatial dims")
}

// ---------------------------------------------------------------------------
// Spark (the paper's Figure 6 structure)
// ---------------------------------------------------------------------------

/// Run the full pipeline on the Spark analog. Returns FA per subject.
///
/// Mirrors Figure 6: `imgRDD.map(denoise).flatMap(repart).groupBy(...)
/// .map(regroup).map(fitmodel)`, with the mask as a broadcast variable.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
// scilint: allow(F003, engine ingest boundary: blobs enter the engine's own tuple store, a materializing copy by contract)
pub fn spark(subjects: &[Subject], partitions: usize) -> BTreeMap<u32, NdArray<f64>> {
    let sc = SparkContext::new(128);

    // imgRDD: ((subjId, imgId), volume)
    type ImgRecord = ((u32, u32), Arc<NdArray<f64>>);
    let records: Vec<ImgRecord> = subjects
        .iter()
        .flat_map(|s| {
            (0..s.gtab.len()).map(move |v| ((s.id, v as u32), Arc::new(pack_volume(s.volume(v)))))
        })
        .collect();
    let img_rdd = sc.parallelize(records, partitions).cache();

    // Step 1N: filter b0 volumes, mean per subject, median_otsu masks;
    // broadcast the masks.
    let b0_sets: BTreeMap<u32, Vec<u32>> = subjects
        .iter()
        .map(|s| {
            (
                s.id,
                s.gtab.b0_indices().iter().map(|&v| v as u32).collect(),
            )
        })
        .collect();
    let b0_sets = Arc::new(b0_sets);
    let b0s = Arc::clone(&b0_sets);
    let mean_rdd = img_rdd
        .filter(move |((s, v), _)| b0s[s].contains(v))
        .map(|((s, _), vol)| (s, vol))
        .group_by_key(16)
        .map(|(s, vols)| {
            let mut acc = NdArray::<f64>::zeros(vols[0].dims());
            for v in &vols {
                acc = acc.zip_with(v.as_ref(), |a, b| a + b).expect("same dims");
            }
            let n = vols.len() as f64;
            acc.map_inplace(|x| x / n);
            (s, Arc::new(acc))
        });
    let masks: BTreeMap<u32, Mask> = mean_rdd
        .map(|(s, mean)| (s, median_otsu(&mean, 1)))
        .collect_as_map();
    let mask_bc = sc.broadcast(masks);

    // Steps 2N + 3N, exactly the Figure 6 chain.
    let params = nlm_params();
    let m1 = mask_bc.clone();
    let dims3: Vec<usize> = subjects[0].data.dims()[..3].to_vec();
    let n_blocks = 4usize;
    let voxels: usize = dims3.iter().product();
    let block_len = voxels.div_ceil(n_blocks);

    let models = img_rdd
        .map(move |((s, v), vol)| {
            (
                (s, v),
                Arc::new(nlmeans3d(&vol, Some(&m1.value()[&s]), &params)),
            )
        })
        // repart: split each denoised volume into voxel blocks. The blocks
        // are zero-copy views into the shared denoised buffer — the
        // shuffle moves refcounted handles, not voxels.
        .flat_map(move |((s, v), vol)| {
            (0..n_blocks)
                .map(|b| {
                    let lo = b * block_len;
                    let hi = ((b + 1) * block_len).min(vol.len());
                    ((s, b as u32), (v, vol.slice_view(lo, hi - lo)))
                })
                .collect()
        })
        .group_by_key(64);

    let gtabs: BTreeMap<u32, Arc<GradientTable>> = subjects
        .iter()
        .map(|s| (s.id, Arc::clone(&s.gtab)))
        .collect();
    let gtabs = Arc::new(gtabs);
    let m2 = mask_bc.clone();
    let d3 = dims3.clone();
    let fa_blocks = models.map(move |((s, b), mut pieces)| {
        // regroup: order by volume id, then fit each voxel of the block.
        pieces.sort_by_key(|(v, _)| *v);
        let gtab = &gtabs[&s];
        let mask = &m2.value()[&s];
        let lo = b as usize * block_len;
        let n = pieces[0].1.len();
        let slices: Vec<&[f64]> = pieces.iter().map(|(_, p)| p.as_slice()).collect();
        let mut fa = vec![0.0f64; n];
        let mut signals = vec![0.0f64; gtab.len()];
        for i in 0..n {
            if !mask.get_flat(lo + i) {
                continue;
            }
            for (v, piece) in slices.iter().enumerate() {
                signals[v] = piece[i];
            }
            if let Some(fit) = sciops::neuro::dtm::fit_dtm_voxel(&signals, gtab) {
                fa[i] = fit.fa();
            }
        }
        let _ = &d3;
        ((s, b), fa)
    });

    // Collect and assemble FA maps per subject.
    let mut out: BTreeMap<u32, NdArray<f64>> = BTreeMap::new();
    let mut by_subject: BTreeMap<u32, Vec<(u32, Vec<f64>)>> = BTreeMap::new();
    for ((s, b), fa) in fa_blocks.collect() {
        by_subject.entry(s).or_default().push((b, fa));
    }
    for (s, mut blocks) in by_subject {
        blocks.sort_by_key(|(b, _)| *b);
        let data: Vec<f64> = blocks.into_iter().flat_map(|(_, fa)| fa).collect();
        out.insert(
            s,
            NdArray::from_vec(&dims3, data).expect("blocks partition voxels"),
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Myria (the paper's Figure 7 structure)
// ---------------------------------------------------------------------------

/// Run the full pipeline on the Myria analog. Returns FA per subject.
///
/// Mirrors Figure 7: ingest an `Images(subjId, imgId, img)` relation,
/// compute and broadcast `Mask`, then join + PYUDF(Denoise) + a FitDTM UDA.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
// scilint: allow(F003, engine ingest boundary: blobs enter the engine's own tuple store, a materializing copy by contract)
pub fn myria(
    subjects: &[Subject],
    nodes: usize,
    workers_per_node: usize,
) -> BTreeMap<u32, NdArray<f64>> {
    let conn = MyriaConnection::connect(nodes, workers_per_node);

    // Ingest.
    let schema = Schema::new(&[
        ("subjId", ValueType::Int),
        ("imgId", ValueType::Int),
        ("img", ValueType::Blob),
    ]);
    let tuples: Vec<Vec<Value>> = subjects
        .iter()
        .flat_map(|s| {
            (0..s.gtab.len()).map(move |v| {
                vec![
                    Value::Int(s.id as i64),
                    Value::Int(v as i64),
                    Value::blob(pack_volume(s.volume(v))),
                ]
            })
        })
        .collect();
    conn.ingest("Images", schema, tuples, 0);

    // Register UDFs/UDAs over blobs.
    conn.create_aggregate("MeanVol", |tuples| {
        let first = tuples[0].last().expect("img col").as_blob();
        let mut acc = NdArray::<f64>::zeros(first.dims());
        for t in tuples {
            let img = t.last().expect("img col").as_blob();
            acc = acc.zip_with(img, |a, b| a + b).expect("same dims");
        }
        let n = tuples.len() as f64;
        acc.map_inplace(|x| x / n);
        Value::blob(acc)
    });
    conn.create_function("MedianOtsu", |args| {
        let mean = args[0].as_blob();
        Value::blob(median_otsu(mean, 1).to_array().cast())
    });
    let params = nlm_params();
    conn.create_function("Denoise", move |args| {
        let img = args[0].as_blob();
        let mask = Mask::from_array(args[1].as_blob().as_ref());
        Value::blob(nlmeans3d(img, Some(&mask), &params))
    });

    // Query 1: mask per subject (scan with b0 pushdown → mean → mask).
    let n_b0 = subjects[0].gtab.b0_indices().len() as i64;
    let first_b0: Vec<i64> = subjects[0]
        .gtab
        .b0_indices()
        .iter()
        .map(|&v| v as i64)
        .collect();
    let _ = n_b0;
    let mask_rel = Query::scan_select("Images", "imgId", move |v| first_b0.contains(&v.as_int()))
        .group_by(&["subjId"], "MeanVol", "mean", ValueType::Blob)
        .apply(
            "MedianOtsu",
            &["mean"],
            &["subjId"],
            "mask",
            ValueType::Blob,
        )
        .execute(&conn)
        .expect("mask query");
    conn.ingest_broadcast("Mask", mask_rel.schema.clone(), mask_rel.all_tuples());

    // FitDTM UDA: groups hold a subject's denoised volumes.
    let gtabs: BTreeMap<i64, Arc<GradientTable>> = subjects
        .iter()
        .map(|s| (s.id as i64, Arc::clone(&s.gtab)))
        .collect();
    conn.create_aggregate("FitDTM", move |tuples| {
        let subj = tuples[0][0].as_int();
        let gtab = &gtabs[&subj];
        let mut volumes: Vec<(usize, NdArray<f64>)> = tuples
            .iter()
            .map(|t| (t[1].as_int() as usize, t[2].as_blob().as_ref().clone()))
            .collect();
        let mask = Mask::from_array(tuples[0][3].as_blob().as_ref());
        let dims3 = volumes[0].1.dims().to_vec();
        let stacked = stack_volumes(&dims3, &mut volumes);
        Value::blob(fit_dtm_volume(&stacked, &mask, gtab))
    });

    // A pass-through UDF used to put columns in the UDA's expected order.
    conn.create_function("Identity", |args| args[0].clone());

    // Query 2: join, denoise, fit (Figure 7's flow + the Step 3N UDA).
    let result = Query::scan("Images")
        .broadcast_join("Mask", "subjId", "subjId")
        .apply(
            "Denoise",
            &["img", "mask"],
            &["subjId", "imgId", "mask"],
            "img",
            ValueType::Blob,
        )
        // Reorder for the UDA: (subjId, imgId, img, mask).
        .apply(
            "Identity",
            &["img"],
            &["subjId", "imgId", "img", "mask"],
            "ignored",
            ValueType::Blob,
        )
        .group_by(&["subjId"], "FitDTM", "fa", ValueType::Blob)
        .execute(&conn)
        .expect("denoise+fit query");

    result
        .all_tuples()
        .into_iter()
        .map(|t| {
            (
                t[0].as_int() as u32,
                t.last().expect("fa col").as_blob().as_ref().clone(),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Dask (the paper's Figure 8 structure)
// ---------------------------------------------------------------------------

/// Run the full pipeline on the Dask analog. Returns FA per subject.
///
/// Mirrors Figure 8: per-subject `delayed` chains with explicit barriers.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
// scilint: allow(F003, engine ingest boundary: blobs enter the engine's own tuple store, a materializing copy by contract)
pub fn dask(subjects: &[Subject], workers: usize) -> BTreeMap<u32, NdArray<f64>> {
    let client = DaskClient::new(workers);
    let params = nlm_params();
    let mut out = BTreeMap::new();

    // Build the whole graph first (delayed), then one barrier per subject.
    let mut targets: Vec<(u32, Delayed<NdArray<f64>>)> = Vec::new();
    for s in subjects {
        // Boundary probe at graph-load time: the loaded subject carries
        // whatever representation the cost model chose.
        let subj = Subject {
            id: s.id,
            data: Arc::new(pack_volume(s.data.as_ref().clone())),
            gtab: Arc::clone(&s.gtab),
        };
        let loaded = client.delayed(move || subj);
        let mean = client.delayed_map(loaded, |s: &Subject| {
            let b0s = s.gtab.b0s_mask();
            let filtered = s.data.compress_axis(&b0s, 3).expect("b0 mask fits");
            (s.clone(), filtered.mean_axis(3))
        });
        let masked = client.delayed_map(mean, |(s, mean): &(Subject, NdArray<f64>)| {
            (s.clone(), median_otsu(mean, 1))
        });
        // Denoise per volume, in parallel.
        let n_vols = s.gtab.len();
        let denoised: Vec<Delayed<(usize, NdArray<f64>)>> = (0..n_vols)
            .map(|v| {
                client.delayed_map(masked, move |(s, mask): &(Subject, Mask)| {
                    (v, nlmeans3d(&s.volume(v), Some(mask), &params))
                })
            })
            .collect();
        let all = client.delayed_many(&denoised, |vols: &[&(usize, NdArray<f64>)]| {
            vols.iter()
                .map(|(v, a)| (*v, a.clone()))
                .collect::<Vec<_>>()
        });
        let subj2 = s.clone();
        let fa = client.delayed_zip(masked, all, move |(_, mask), vols| {
            let mut vols: Vec<(usize, NdArray<f64>)> = vols.clone();
            let dims3 = subj2.data.dims()[..3].to_vec();
            let stacked = stack_volumes(&dims3, &mut vols);
            fit_dtm_volume(&stacked, mask, &subj2.gtab)
        });
        targets.push((s.id, fa));
    }
    for (id, fa) in targets {
        out.insert(id, client.result(fa)); // barrier per subject
    }
    out
}

// ---------------------------------------------------------------------------
// TensorFlow (the paper's Figure 9 structure)
// ---------------------------------------------------------------------------

/// Output of the TensorFlow analog: only Steps 1N and (simplified) 2N are
/// expressible; model fitting is NA.
pub struct TfNeuroOutput {
    /// Mean b0 volume per subject.
    pub mean_b0: BTreeMap<u32, NdArray<f64>>,
    /// Simplified (threshold) mask per subject.
    pub mask: BTreeMap<u32, Mask>,
    /// Convolution-denoised volume 0 per subject (whole volume — no mask
    /// support).
    pub denoised0: BTreeMap<u32, NdArray<f64>>,
}

/// Run the expressible steps on the TensorFlow analog.
///
/// One graph per step, global barrier between steps, data staged through
/// the master (Figure 9's loop). Filtering happens on volume-major
/// tensors via gather along axis 0.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
// scilint: allow(F003, engine ingest boundary: blobs enter the engine's own tuple store, a materializing copy by contract)
pub fn tensorflow(subjects: &[Subject]) -> TfNeuroOutput {
    let mut session = Session::new();
    let mut mean_b0 = BTreeMap::new();
    let mut mask_out = BTreeMap::new();
    let mut denoised0 = BTreeMap::new();

    for s in subjects {
        let dims3: Vec<usize> = s.data.dims()[..3].to_vec();
        let n_vols = s.gtab.len();

        // Graph 1: the paper's filter workaround in-graph — transpose the
        // (x,y,z,v) tensor so the volume axis leads, gather the b0 rows
        // (axis 0 is the only gatherable axis), mean over them. Three full
        // data-movement passes where other engines do a metadata filter.
        let mut g1 = GraphBuilder::new();
        let full_dims: Vec<usize> = s.data.dims().to_vec();
        let p = g1.placeholder(&full_dims);
        let vm = g1.transpose(p, &[3, 0, 1, 2]);
        let b0 = g1.gather(vm, &s.gtab.b0_indices());
        let mean = g1.reduce_mean(b0, 0);
        let out = session
            .run(
                &g1,
                &[(p, pack_volume(s.data.as_ref().clone()))]
                    .into_iter()
                    .collect(),
                &[mean],
            )
            .expect("graph 1 runs");
        let mean_vol = out[0].clone();
        assert_eq!(mean_vol.dims(), &dims3[..]);
        let voxels: usize = dims3.iter().product();
        let _ = (n_vols, voxels);

        // Graph 2: simplified mask = mean > global-mean threshold.
        let mut g2 = GraphBuilder::new();
        let pm = g2.placeholder(&[voxels]);
        let thresh = mean_vol.mean();
        let m = g2.scalar_op(BinaryOp::Greater, pm, thresh);
        let out2 = session
            .run(
                &g2,
                &[(pm, mean_vol.clone().flatten())].into_iter().collect(),
                &[m],
            )
            .expect("graph 2 runs");
        let mask = Mask::from_array(&out2[0].clone().reshape(&dims3).expect("voxels match"));

        // Graph 3: denoise volume 0 by 3-D box convolution — whole tensor,
        // no masking possible.
        let mut g3 = GraphBuilder::new();
        let pv = g3.placeholder(&dims3);
        let kernel = NdArray::<f64>::full(&[3, 3, 3], 1.0 / 27.0);
        let conv = g3.conv3d(pv, kernel);
        let out3 = session
            .run(&g3, &[(pv, s.volume(0))].into_iter().collect(), &[conv])
            .expect("graph 3 runs");

        mean_b0.insert(s.id, mean_vol);
        mask_out.insert(s.id, mask);
        denoised0.insert(s.id, out3[0].clone());
    }
    assert_eq!(
        session.run_count(),
        subjects.len() * 3,
        "one run per step per subject"
    );
    TfNeuroOutput {
        mean_b0,
        mask: mask_out,
        denoised0,
    }
}

// ---------------------------------------------------------------------------
// SciDB (the paper's Figure 5 structure)
// ---------------------------------------------------------------------------

/// Output of the SciDB analog: Step 1N natively, Step 2N via `stream()`;
/// Step 3N is NA.
pub struct ScidbNeuroOutput {
    /// Mean b0 volume per subject (Figure 5's `mean(index=3)`).
    pub mean_b0: BTreeMap<u32, NdArray<f64>>,
    /// Denoised data per subject via `stream()`.
    pub denoised: BTreeMap<u32, NdArray<f64>>,
}

/// Run the expressible steps on the SciDB analog.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
// scilint: allow(F003, engine ingest boundary: blobs enter the engine's own tuple store, a materializing copy by contract)
pub fn scidb(subjects: &[Subject]) -> ScidbNeuroOutput {
    let db = engine_array::ArrayDb::connect(4);
    let params = nlm_params();
    let mut mean_b0 = BTreeMap::new();
    let mut denoised = BTreeMap::new();

    for s in subjects {
        let dims = s.data.dims().to_vec();
        // Chunk one volume per chunk along the volume axis. The boundary
        // probe picks the ingest representation; `from_array` keeps it
        // chunk-by-chunk.
        let chunk_dims = vec![dims[0], dims[1], dims[2], 1];
        let ingest = pack_volume(s.data.as_ref().clone());
        let stored = db.from_array(&ingest, &chunk_dims).expect("ingest");

        // Figure 5: compress(b0s_mask, axis=3) then mean(index=3).
        let filtered = stored.compress(&s.gtab.b0s_mask(), 3).expect("compress");
        let mean = filtered.aggregate_mean(3).expect("aggregate");
        let mean_vol = mean.materialize().expect("materialize");

        // Step 2N through stream(): the mask rides along in the external
        // process (chunk = one volume, shape preserved).
        let mask = median_otsu(&mean_vol, 1);
        let den = stored
            .stream(move |chunk| {
                let dims3: Vec<usize> = chunk.dims()[..3].to_vec();
                let vol = chunk.clone().reshape(&dims3).expect("volume chunk");
                let out = nlmeans3d(&vol, Some(&mask), &params);
                out.reshape(chunk.dims()).expect("same count")
            })
            .expect("stream denoise");

        mean_b0.insert(s.id, mean_vol);
        denoised.insert(s.id, den.materialize().expect("materialize"));
    }
    ScidbNeuroOutput { mean_b0, denoised }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciops::synth::dmri::DmriSpec;

    fn subjects(n: usize) -> Vec<Subject> {
        let spec = DmriSpec::test_scale();
        (0..n)
            .map(|i| Subject::from_phantom(i as u32, &DmriPhantom::generate(100 + i as u64, &spec)))
            .collect()
    }

    fn reference_fa(s: &Subject) -> NdArray<f64> {
        sciops::neuro::reference_pipeline(&s.data, &s.gtab, &nlm_params()).fa
    }

    fn assert_close(a: &NdArray<f64>, b: &NdArray<f64>, tol: f64, what: &str) {
        assert_eq!(a.dims(), b.dims(), "{what}: dims");
        let mut worst = 0.0f64;
        for (x, y) in a.data().iter().zip(b.data()) {
            worst = worst.max((x - y).abs());
        }
        assert!(worst <= tol, "{what}: max abs diff {worst}");
    }

    #[test]
    fn spark_matches_reference() {
        let subs = subjects(2);
        let out = spark(&subs, 8);
        for s in &subs {
            assert_close(&out[&s.id], &reference_fa(s), 1e-9, "spark FA");
        }
    }

    #[test]
    fn myria_matches_reference() {
        let subs = subjects(2);
        let out = myria(&subs, 2, 2);
        for s in &subs {
            assert_close(&out[&s.id], &reference_fa(s), 1e-9, "myria FA");
        }
    }

    #[test]
    fn dask_matches_reference() {
        let subs = subjects(2);
        let out = dask(&subs, 4);
        for s in &subs {
            assert_close(&out[&s.id], &reference_fa(s), 1e-9, "dask FA");
        }
    }

    #[test]
    fn scidb_mean_matches_reference_and_denoise_close() {
        let subs = subjects(1);
        let out = scidb(&subs);
        let s = &subs[0];
        let (mean_ref, mask) = sciops::neuro::pipeline::segmentation(&s.data, &s.gtab);
        assert_close(&out.mean_b0[&s.id], &mean_ref, 1e-9, "scidb mean");
        // stream() passes data through f32 TSV: small tolerance.
        let den_ref = sciops::neuro::pipeline::denoise_all(&s.data, &mask, &nlm_params());
        let scale = den_ref.max().abs().max(1.0);
        assert_close(
            &out.denoised[&s.id],
            &den_ref,
            1e-3 * scale,
            "scidb denoise",
        );
    }

    #[test]
    fn tensorflow_steps_run_and_approximate() {
        let subs = subjects(1);
        let out = tensorflow(&subs);
        let s = &subs[0];
        let (mean_ref, mask_ref) = sciops::neuro::pipeline::segmentation(&s.data, &s.gtab);
        assert_close(&out.mean_b0[&s.id], &mean_ref, 1e-9, "tf mean");
        // The simplified mask is approximate: it should still select a
        // brain-like fraction and mostly agree with the reference mask.
        let tf_mask = &out.mask[&s.id];
        let frac = tf_mask.fill_fraction();
        assert!(frac > 0.15 && frac < 0.85, "tf mask fraction {frac}");
        let agree = tf_mask
            .bits()
            .iter()
            .zip(mask_ref.bits())
            .filter(|(a, b)| a == b)
            .count() as f64
            / tf_mask.len() as f64;
        assert!(agree > 0.8, "tf mask agreement {agree}");
        // Conv denoising smooths: variance within the brain decreases.
        let vol0 = s.volume(0);
        assert!(out.denoised0[&s.id].std() < vol0.std());
    }

    #[test]
    fn engines_agree_with_each_other() {
        // Cross-engine check: Spark, Myria and Dask produce bitwise-close
        // FA on the same subject.
        let subs = subjects(1);
        let a = spark(&subs, 4);
        let b = myria(&subs, 2, 2);
        let c = dask(&subs, 4);
        assert_close(&a[&0], &b[&0], 1e-9, "spark vs myria");
        assert_close(&a[&0], &c[&0], 1e-9, "spark vs dask");
    }
}
