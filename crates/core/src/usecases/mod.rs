//! The two use cases implemented against each engine's *eager* API.
//!
//! These are runnable, test-scale implementations mirroring the code
//! styles of the paper's Figures 5–9 (SciDB AFL, Spark RDD lambdas, MyriaL
//! with Python UDFs, Dask delayed graphs, TensorFlow static graphs). Every
//! engine that can express a step is validated against the single-machine
//! `sciops` reference implementation — the same discipline the paper used
//! by running identical reference Python code everywhere.

pub mod astro;
pub mod ingest;
pub mod neuro;
