//! Eager astronomy implementations.
//!
//! As in the paper: Spark and Myria run the full pipeline (reusing the
//! reference kernels as UDFs); SciDB expresses co-addition in native
//! array operations (the 180-LoC AQL program's structure); Dask's
//! implementation froze on the cluster and is therefore not provided
//! (see [`DASK_ASTRO_STATUS`]); TensorFlow cannot express the use case.

use crate::costmodel::{pack_for_boundary, PlaneKind};
use engine_rdd::SparkContext;
use engine_rel::{MyriaConnection, Query, Schema, Value, ValueType};
use marray::NdArray;
use sciops::astro::geometry::{Exposure, PatchId, SkyBox};
use sciops::astro::pipeline::merge_visit_pieces;
use sciops::astro::{
    calibrate_exposure, coadd_sigma_clip, detect_sources, CalibParams, CoaddParams, DetectParams,
    Source,
};
use sciops::synth::sky::SkySurvey;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Why there are no Dask results for astronomy (the paper, §4.4):
/// "the implementation freezes once deployed on a cluster and we found it
/// surprisingly difficult to track down the cause of the problem. Hence,
/// we do not report performance numbers for the second use case."
pub const DASK_ASTRO_STATUS: &str = "not runnable (implementation froze on the cluster)";

/// Results: coadd flux and catalog per patch.
pub struct AstroResult {
    /// Coadded flux per patch.
    pub coadd_flux: BTreeMap<PatchId, NdArray<f64>>,
    /// Detected sources per patch.
    pub catalogs: BTreeMap<PatchId, Vec<Source>>,
}

/// Choose chunk representations for an exposure's planes at an engine
/// ingest boundary: the cost-model heuristic
/// ([`crate::costmodel::choose_repr`]) packs the mask and any
/// sufficiently runny variance plane, while noisy flux stays dense. The
/// clone is a refcount bump when the heuristic declines, an encoded
/// (smaller) buffer when it packs — downstream kernels' run-level fast
/// paths consume the encoded forms directly. Under an active memory
/// budget ([`marray::mem_budget`]) each plane additionally enters the
/// governor's spill tier ([`crate::costmodel::govern_for_boundary`]), so
/// an ingested working set larger than the budget degrades to spill I/O
/// instead of exhausting memory.
fn pack_exposure(e: &Exposure) -> Exposure {
    let plane = |arr: &NdArray<f64>, kind: PlaneKind| {
        let packed = pack_for_boundary(arr, kind).unwrap_or_else(|| arr.clone());
        crate::costmodel::govern_for_boundary(&packed).unwrap_or(packed)
    };
    let mask = pack_for_boundary(&e.mask, PlaneKind::Mask).unwrap_or_else(|| e.mask.clone());
    Exposure {
        visit: e.visit,
        sensor: e.sensor,
        bbox: e.bbox,
        flux: plane(&e.flux, PlaneKind::Flux),
        variance: plane(&e.variance, PlaneKind::Variance),
        mask: crate::costmodel::govern_for_boundary(&mask).unwrap_or(mask),
    }
}

/// Re-type an exposure's u8 mask plane into the engine's f64 blob column.
///
/// This is the only genuinely required copy on the way into the relational
/// engine (§5.3's format-conversion boundary): the f64 flux and variance
/// planes travel as shared chunk handles, but the u8 mask has no f64
/// representation to share, so its conversion is recorded under the
/// sanctioned `myria.pack-blob` tag.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
fn mask_to_blob(mask: &NdArray<u8>) -> Value {
    marray::record_copy("myria.pack-blob", mask.len() * 8);
    let blob = NdArray::from_vec(mask.dims(), mask.data().iter().map(|&m| m as f64).collect())
        .expect("mask plane");
    // The freshly re-typed mask is the runniest plane in the pipeline:
    // pack it so the blob column crosses worker boundaries at its
    // encoded size.
    let blob = pack_for_boundary(&blob, PlaneKind::Mask).unwrap_or(blob);
    Value::blob(blob)
}

/// Inverse of [`mask_to_blob`] — the matching required copy on the way out.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
fn blob_to_mask(blob: &NdArray<f64>) -> NdArray<u8> {
    marray::record_copy("myria.unpack-blob", blob.len());
    NdArray::from_vec(blob.dims(), blob.data().iter().map(|&v| v as u8).collect())
        .expect("mask plane")
}

/// Ship a freshly computed exposure out of a UDF: the owned f64 planes
/// move into their blob columns untouched; only the mask pays the
/// re-typing copy.
fn exposure_to_blobs(e: Exposure) -> (Value, Value, Value) {
    let mask = mask_to_blob(&e.mask);
    (Value::blob(e.flux), Value::blob(e.variance), mask)
}

/// Rebuild an [`Exposure`] from its three blob columns. On the shared data
/// plane the flux/variance clones are refcount bumps; under the eager
/// baseline they are the per-plane deep copies Myria's blob
/// deserialization used to pay on every UDF call.
// scilint: allow(F003, engine ingest boundary: blobs enter the engine's own tuple store, a materializing copy by contract)
fn exposure_from_blobs(
    flux: &Value,
    variance: &Value,
    mask: &Value,
    visit: u32,
    sensor: u32,
    bbox: SkyBox,
) -> Exposure {
    Exposure {
        visit,
        sensor,
        bbox,
        flux: flux.as_blob().as_ref().clone(),
        variance: variance.as_blob().as_ref().clone(),
        mask: blob_to_mask(mask.as_blob()),
    }
}

/// Shared parameters (matching the reference pipeline).
pub fn astro_params() -> (CalibParams, CoaddParams, DetectParams) {
    (
        CalibParams::default(),
        CoaddParams::default(),
        DetectParams::default(),
    )
}

// ---------------------------------------------------------------------------
// Spark
// ---------------------------------------------------------------------------

/// Run the full astronomy pipeline on the Spark analog.
// scilint: allow(F003, engine ingest boundary: blobs enter the engine's own tuple store, a materializing copy by contract)
pub fn spark(survey: &SkySurvey, partitions: usize) -> AstroResult {
    let sc = SparkContext::new(128);
    let grid = Arc::new(survey.patch_grid());
    let (calib, coadd_p, detect_p) = astro_params();

    let records: Vec<(u32, Arc<Exposure>)> = survey
        .visits
        .iter()
        .flatten()
        .map(|e| (e.visit, Arc::new(pack_exposure(e))))
        .collect();
    let raw = sc.parallelize(records, partitions);

    // Step 1A — map(calibrate); Step 2A — flatMap to patch pieces keyed by
    // patch; Step 3A+4A — groupBy(patch), merge per visit, coadd, detect.
    let g1 = Arc::clone(&grid);
    let pieces = raw
        .map(move |(v, e)| (v, Arc::new(calibrate_exposure(&e, &calib))))
        .flat_map(move |(v, e)| {
            g1.map_to_patches(&e)
                .into_iter()
                .map(|(patch, piece)| (patch, (v, Arc::new(piece))))
                .collect()
        });
    let g2 = Arc::clone(&grid);
    let per_patch = pieces.group_by_key(64).map(move |(patch, pieces)| {
        let patch_box = g2.patch_box(patch);
        let mut by_visit: BTreeMap<u32, Vec<Exposure>> = BTreeMap::new();
        for (v, piece) in pieces {
            by_visit.entry(v).or_default().push(piece.as_ref().clone());
        }
        let visit_exposures: Vec<Exposure> = by_visit
            .into_values()
            .map(|ps| merge_visit_pieces(&patch_box, &ps))
            .collect();
        let coadd = coadd_sigma_clip(&visit_exposures, &coadd_p);
        let sources = detect_sources(&coadd, &detect_p);
        (patch, (coadd.flux, sources))
    });

    let mut coadd_flux = BTreeMap::new();
    let mut catalogs = BTreeMap::new();
    for (patch, (flux, sources)) in per_patch.collect() {
        coadd_flux.insert(patch, flux);
        catalogs.insert(patch, sources);
    }
    AstroResult {
        coadd_flux,
        catalogs,
    }
}

// ---------------------------------------------------------------------------
// Myria
// ---------------------------------------------------------------------------

/// Run the full astronomy pipeline on the Myria analog.
///
/// Exposures travel through the relational plan as **three blob columns**
/// (flux, variance, mask) instead of one packed `[3, rows, cols]` blob:
/// the f64 planes are shared chunk handles end to end, so the only copies
/// left on the shared data plane are the u8-mask re-typings at each UDF
/// boundary (kept under the sanctioned `myria.pack-blob` /
/// `myria.unpack-blob` tags). Under the eager baseline every plane handle
/// still deep-copies — the delta is what `scibench bench e2e` reports as
/// this engine's `copy_drop`.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
// scilint: allow(F003, engine ingest boundary: blobs enter the engine's own tuple store, a materializing copy by contract)
pub fn myria(survey: &SkySurvey, nodes: usize, workers_per_node: usize) -> AstroResult {
    let conn = MyriaConnection::connect(nodes, workers_per_node);
    let grid = Arc::new(survey.patch_grid());
    let (calib, coadd_p, detect_p) = astro_params();

    // Ingest Exposures(visit, sensor, x0, y0, w, h, flux, var, mask).
    let schema = Schema::new(&[
        ("visit", ValueType::Int),
        ("sensor", ValueType::Int),
        ("x0", ValueType::Int),
        ("y0", ValueType::Int),
        ("w", ValueType::Int),
        ("h", ValueType::Int),
        ("flux", ValueType::Blob),
        ("var", ValueType::Blob),
        ("mask", ValueType::Blob),
    ]);
    let tuples: Vec<Vec<Value>> = survey
        .visits
        .iter()
        .flatten()
        .map(|e| {
            vec![
                Value::Int(e.visit as i64),
                Value::Int(e.sensor as i64),
                Value::Int(e.bbox.x0),
                Value::Int(e.bbox.y0),
                Value::Int(e.bbox.width as i64),
                Value::Int(e.bbox.height as i64),
                Value::blob(
                    pack_for_boundary(&e.flux, PlaneKind::Flux).unwrap_or_else(|| e.flux.clone()),
                ),
                Value::blob(
                    pack_for_boundary(&e.variance, PlaneKind::Variance)
                        .unwrap_or_else(|| e.variance.clone()),
                ),
                mask_to_blob(&e.mask),
            ]
        })
        .collect();
    conn.ingest("Exposures", schema, tuples, 1);

    // UDFs: Calibrate and PatchPieces as table functions (each emits the
    // full multi-blob row), the two aggregates as multi-output UDAs.
    conn.create_table_function("Calibrate", move |args| {
        let visit = args[0].as_int();
        let sensor = args[1].as_int();
        let bbox = SkyBox {
            x0: args[2].as_int(),
            y0: args[3].as_int(),
            width: args[4].as_int() as u64,
            height: args[5].as_int() as u64,
        };
        let e = exposure_from_blobs(
            &args[6],
            &args[7],
            &args[8],
            visit as u32,
            sensor as u32,
            bbox,
        );
        let (flux, var, mask) = exposure_to_blobs(calibrate_exposure(&e, &calib));
        vec![vec![
            Value::Int(visit),
            Value::Int(sensor),
            Value::Int(bbox.x0),
            Value::Int(bbox.y0),
            Value::Int(bbox.width as i64),
            Value::Int(bbox.height as i64),
            flux,
            var,
            mask,
        ]]
    });
    let g1 = Arc::clone(&grid);
    conn.create_table_function("PatchPieces", move |args| {
        let visit = args[0].as_int();
        let bbox = SkyBox {
            x0: args[2].as_int(),
            y0: args[3].as_int(),
            width: args[4].as_int() as u64,
            height: args[5].as_int() as u64,
        };
        let e = exposure_from_blobs(
            &args[6],
            &args[7],
            &args[8],
            visit as u32,
            args[1].as_int() as u32,
            bbox,
        );
        g1.map_to_patches(&e)
            .into_iter()
            .map(|((pr, pc), piece)| {
                let piece_box = piece.bbox;
                let (flux, var, mask) = exposure_to_blobs(piece);
                vec![
                    Value::Int(pr as i64),
                    Value::Int(pc as i64),
                    Value::Int(visit),
                    Value::Int(piece_box.x0),
                    Value::Int(piece_box.y0),
                    Value::Int(piece_box.width as i64),
                    Value::Int(piece_box.height as i64),
                    flux,
                    var,
                    mask,
                ]
            })
            .collect()
    });
    let g2 = Arc::clone(&grid);
    conn.create_multi_aggregate("MergeVisit", move |tuples| {
        let patch = (tuples[0][0].as_int() as u32, tuples[0][1].as_int() as u32);
        let patch_box = g2.patch_box(patch);
        let pieces: Vec<Exposure> = tuples
            .iter()
            .map(|t| {
                let bbox = SkyBox {
                    x0: t[3].as_int(),
                    y0: t[4].as_int(),
                    width: t[5].as_int() as u64,
                    height: t[6].as_int() as u64,
                };
                exposure_from_blobs(&t[7], &t[8], &t[9], t[2].as_int() as u32, 0, bbox)
            })
            .collect();
        let (flux, var, mask) = exposure_to_blobs(merge_visit_pieces(&patch_box, &pieces));
        vec![flux, var, mask]
    });
    let g3 = Arc::clone(&grid);
    conn.create_multi_aggregate("CoaddDetect", move |tuples| {
        let patch = (tuples[0][0].as_int() as u32, tuples[0][1].as_int() as u32);
        let patch_box = g3.patch_box(patch);
        let exposures: Vec<Exposure> = tuples
            .iter()
            .map(|t| exposure_from_blobs(&t[3], &t[4], &t[5], t[2].as_int() as u32, 0, patch_box))
            .collect();
        let coadd = coadd_sigma_clip(&exposures, &coadd_p);
        let sources = detect_sources(&coadd, &detect_p);
        // Catalog rows are fresh scalars, 5 per source behind a leading
        // count; the coadd flux moves into its blob column untouched.
        let mut cat = vec![sources.len() as f64];
        for s in &sources {
            cat.extend_from_slice(&[s.centroid.0, s.centroid.1, s.flux, s.peak, s.npix as f64]);
        }
        let total = cat.len();
        vec![
            Value::blob(coadd.flux),
            Value::blob(NdArray::from_vec(&[total], cat).expect("catalog rows")),
        ]
    });

    const EXPOSURE_COLS: [&str; 9] = [
        "visit", "sensor", "x0", "y0", "w", "h", "flux", "var", "mask",
    ];
    let result = Query::scan("Exposures")
        .flat_apply(
            "Calibrate",
            &EXPOSURE_COLS,
            &[
                ("visit", ValueType::Int),
                ("sensor", ValueType::Int),
                ("x0", ValueType::Int),
                ("y0", ValueType::Int),
                ("w", ValueType::Int),
                ("h", ValueType::Int),
                ("flux", ValueType::Blob),
                ("var", ValueType::Blob),
                ("mask", ValueType::Blob),
            ],
        )
        .flat_apply(
            "PatchPieces",
            &EXPOSURE_COLS,
            &[
                ("patchRow", ValueType::Int),
                ("patchCol", ValueType::Int),
                ("visit", ValueType::Int),
                ("x0", ValueType::Int),
                ("y0", ValueType::Int),
                ("w", ValueType::Int),
                ("h", ValueType::Int),
                ("flux", ValueType::Blob),
                ("var", ValueType::Blob),
                ("mask", ValueType::Blob),
            ],
        )
        .group_by_multi(
            &["patchRow", "patchCol", "visit"],
            "MergeVisit",
            &[
                ("mflux", ValueType::Blob),
                ("mvar", ValueType::Blob),
                ("mmask", ValueType::Blob),
            ],
        )
        .group_by_multi(
            &["patchRow", "patchCol"],
            "CoaddDetect",
            &[("coaddFlux", ValueType::Blob), ("catalog", ValueType::Blob)],
        )
        .execute(&conn)
        .expect("astronomy query");

    let mut coadd_flux = BTreeMap::new();
    let mut catalogs = BTreeMap::new();
    for t in result.all_tuples() {
        let patch: PatchId = (t[0].as_int() as u32, t[1].as_int() as u32);
        // The flux plane leaves the engine as a shared handle — no
        // client-side unpack copy remains (the eager baseline still
        // deep-copies this clone, which is part of the measured delta).
        let flux = t[2].as_blob().as_ref().clone();
        let cat = t[3].as_blob();
        let data = cat.data();
        let n = data[0] as usize;
        let mut sources = Vec::with_capacity(n);
        for chunk in data[1..1 + 5 * n].chunks_exact(5) {
            sources.push(Source {
                centroid: (chunk[0], chunk[1]),
                flux: chunk[2],
                peak: chunk[3],
                npix: chunk[4] as usize,
            });
        }
        coadd_flux.insert(patch, flux);
        catalogs.insert(patch, sources);
    }
    AstroResult {
        coadd_flux,
        catalogs,
    }
}

// ---------------------------------------------------------------------------
// SciDB co-addition (Step 3A in native array ops — the "180 LoC of AQL")
// ---------------------------------------------------------------------------

/// Count of native array operations our AQL-style coadd chains together
/// (the Table 1 complexity analog of the 180-LoC AQL program).
pub const SCIDB_COADD_OPS: usize = 9;

/// Iteratively sigma-clipped mean over the visit axis of a
/// `(visit, rows, cols)` cube using only native array operations
/// (aggregate / apply / join / cross_join), mirroring the paper's pure-AQL
/// implementation with two cleaning iterations.
pub fn scidb_coadd_cube(
    db: &engine_array::ArrayDb,
    cube: &NdArray<f64>,
    chunk: usize,
) -> Result<NdArray<f64>, engine_array::ArrayDbError> {
    let dims = cube.dims();
    let chunk_dims = vec![1, chunk.min(dims[1]), chunk.min(dims[2])];
    let stack = db.from_array(cube, &chunk_dims)?;
    // weights: 1 = sample currently kept.
    let mut weights = stack.apply(|_| 1.0)?;

    for _ in 0..2 {
        let kept = stack.join(&weights, |v, w| v * w)?;
        let sum_w = weights.aggregate_sum(0)?;
        let sum_v = kept.aggregate_sum(0)?;
        let mean = sum_v.join(&sum_w, |s, n| if n > 0.0 { s / n } else { 0.0 })?;
        let sum_sq = stack
            .apply(|v| v * v)?
            .join(&weights, |v, w| v * w)?
            .aggregate_sum(0)?;
        let meansq = sum_sq.join(&sum_w, |s, n| if n > 0.0 { s / n } else { 0.0 })?;
        let std = meansq.join(&mean.apply(|m| m * m)?, |a, b| (a - b).max(0.0).sqrt())?;
        // Re-test every sample against the current mean/σ (3σ rule).
        let pass = stack.cross_join2(&mean, &std, |v, m, s| {
            if s == 0.0 || (v - m).abs() <= 3.0 * s {
                1.0
            } else {
                0.0
            }
        })?;
        weights = weights.join(&pass, |a, b| a * b)?;
    }

    // Final clipped mean.
    let kept = stack.join(&weights, |v, w| v * w)?;
    let sum_w = weights.aggregate_sum(0)?;
    let sum_v = kept.aggregate_sum(0)?;
    sum_v
        .join(&sum_w, |s, n| if n > 0.0 { s / n } else { 0.0 })?
        .materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciops::astro::pipeline::reference_pipeline;
    use sciops::synth::sky::SkySpec;

    fn survey() -> SkySurvey {
        SkySurvey::generate(21, &SkySpec::test_scale())
    }

    fn reference(s: &SkySurvey) -> sciops::astro::pipeline::AstroOutput {
        let grid = s.patch_grid();
        let (c, co, d) = astro_params();
        reference_pipeline(&s.visits, &grid, &c, &co, &d)
    }

    fn assert_flux_close(a: &NdArray<f64>, b: &NdArray<f64>, what: &str) {
        assert_eq!(a.dims(), b.dims(), "{what} dims");
        let scale = b.max().abs().max(1.0);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= 1e-9 * scale, "{what}: {x} vs {y}");
        }
    }

    #[test]
    fn spark_matches_reference() {
        let s = survey();
        let reference = reference(&s);
        let out = spark(&s, 8);
        assert_eq!(out.coadd_flux.len(), reference.coadds.len());
        for (patch, flux) in &out.coadd_flux {
            assert_flux_close(flux, &reference.coadds[patch].flux, "spark coadd");
            assert_eq!(out.catalogs[patch].len(), reference.catalogs[patch].len());
        }
    }

    #[test]
    fn myria_matches_reference() {
        let s = survey();
        let reference = reference(&s);
        let out = myria(&s, 2, 2);
        assert_eq!(out.coadd_flux.len(), reference.coadds.len());
        for (patch, flux) in &out.coadd_flux {
            assert_flux_close(flux, &reference.coadds[patch].flux, "myria coadd");
            let got = &out.catalogs[patch];
            let want = &reference.catalogs[patch];
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert!((g.centroid.0 - w.centroid.0).abs() < 1e-9);
                assert!((g.flux - w.flux).abs() < 1e-6 * w.flux.abs().max(1.0));
            }
        }
    }

    #[test]
    fn spark_and_myria_agree() {
        let s = survey();
        let a = spark(&s, 4);
        let b = myria(&s, 2, 2);
        assert_eq!(a.coadd_flux.len(), b.coadd_flux.len());
        for (patch, flux) in &a.coadd_flux {
            assert_flux_close(flux, &b.coadd_flux[patch], "spark vs myria");
        }
    }

    #[test]
    fn scidb_cube_coadd_matches_sigma_clipped_mean() {
        // A cube with one wild outlier per pixel column; uniform variance
        // so the clipped plain mean is the reference answer.
        let db = engine_array::ArrayDb::connect(2);
        let visits = 12;
        let cube = NdArray::from_fn(&[visits, 6, 6], |ix| {
            if ix[0] == 3 {
                10_000.0
            } else {
                50.0 + (ix[1] * 6 + ix[2]) as f64 + 0.01 * ix[0] as f64
            }
        });
        let out = scidb_coadd_cube(&db, &cube, 4).expect("coadd runs");
        for r in 0..6 {
            for c in 0..6 {
                let samples: Vec<f64> = (0..visits).map(|v| cube[&[v, r, c][..]]).collect();
                let expect = sciops::stats::sigma_clipped_mean(&samples, 3.0, 2);
                let got = out[&[r, c][..]];
                assert!((got - expect).abs() < 1e-9, "({r},{c}): {got} vs {expect}");
            }
        }
    }

    #[test]
    fn blob_plane_roundtrip() {
        let s = survey();
        let e = &s.visits[0][0];
        let (flux, var, mask) = exposure_to_blobs(e.clone());
        let back = exposure_from_blobs(&flux, &var, &mask, e.visit, e.sensor, e.bbox);
        assert_eq!(&back.flux, &e.flux);
        assert_eq!(&back.variance, &e.variance);
        assert_eq!(&back.mask, &e.mask);
    }

    #[test]
    fn myria_blob_path_shares_planes() {
        use marray::{with_copy_mode, CopyCounter, CopyMode};
        let s = survey();
        let before = CopyCounter::snapshot();
        with_copy_mode(CopyMode::Eager, || {
            myria(&s, 2, 2);
        });
        let eager = CopyCounter::snapshot().since(&before);
        let before = CopyCounter::snapshot();
        with_copy_mode(CopyMode::Shared, || {
            myria(&s, 2, 2);
        });
        let shared = CopyCounter::snapshot().since(&before);
        // The f64 planes ride shared handles, so the shared data plane must
        // drop copies relative to the eager baseline; only the mask
        // re-typings stay, and they stay under the sanctioned tags.
        assert!(
            shared.copies < eager.copies,
            "shared {} vs eager {}",
            shared.copies,
            eager.copies
        );
        assert!(shared.by_reason.keys().all(|k| {
            k == "myria.pack-blob" || k == "myria.unpack-blob" || !k.starts_with("myria.")
        }));
    }

    #[test]
    fn dask_status_documented() {
        assert!(DASK_ASTRO_STATUS.contains("froze"));
    }

    #[test]
    fn ingest_packing_preserves_planes_and_compresses_masks() {
        let s = survey();
        let e = &s.visits[0][0];
        let packed = pack_exposure(e);
        // The all-good mask is a single Const run; flux is noise in every
        // pixel and must stay dense.
        assert_eq!(packed.mask.repr(), marray::ChunkRepr::Const);
        assert_eq!(packed.flux.repr(), marray::ChunkRepr::Dense);
        assert!(packed.stored_nbytes() <= e.nbytes());
        // Whatever representation the heuristic chose, the pixel values
        // are untouched.
        assert_eq!(packed.flux.data(), e.flux.data());
        assert_eq!(packed.variance.data(), e.variance.data());
        assert_eq!(packed.mask.data(), e.mask.data());
        // The re-typed mask blob also crosses the boundary encoded.
        let blob = mask_to_blob(&e.mask);
        assert_eq!(blob.as_blob().repr(), marray::ChunkRepr::Const);
        assert!(blob.nbytes() < e.mask.len());
    }
}
