//! Pipelined ingest: overlap format decode with the first compute step.
//!
//! The paper's Figure 11 shows ingest-dominated workloads favour engines
//! that pipeline I/O into compute (Dask, TensorFlow) over engines with a
//! hard barrier between the two. These entry points give both use cases
//! that overlap via [`parexec::pipeline::two_stage`]: a producer thread
//! decodes the next encoded buffer (FITS for astronomy, npy/NIfTI for
//! neuroimaging) while the calling thread runs the first compute step on
//! the previous one — Step 1A calibration for astronomy, the Step 1N b0
//! mean accumulation for neuroimaging. The consumer observes items in
//! exactly the sequential order, so output is byte-identical to decoding
//! everything first and then computing (proven by the tests below).

use formats::fits::{self, Card, ImageData, TypedHdu};
use formats::{nifti, npy};
use marray::NdArray;
use sciops::astro::{
    calibrate_exposure, reference_pipeline_calibrated_par, AstroOutput, CalibParams, CoaddParams,
    DetectParams, Exposure, PatchGrid, SkyBox,
};
use sciops::Parallelism;

/// In-flight decoded items between the decode stage and the compute stage.
/// One already overlaps a decode with a compute; a second absorbs jitter
/// between stage costs without holding many exposures in memory.
const PIPELINE_BOUND: usize = 2;

// ---------------------------------------------------------------------------
// Astronomy: FITS exposures → calibration (Step 1A)
// ---------------------------------------------------------------------------

/// Encode one sensor exposure as a 3-HDU FITS buffer (flux primary HDU,
/// variance and mask image extensions), the layout the paper describes for
/// LSST sensor files. Positional metadata rides in header cards.
pub fn encode_exposure_fits(e: &Exposure) -> Vec<u8> {
    let cards = vec![
        Card {
            key: "VISIT".into(),
            value: e.visit.to_string(),
        },
        Card {
            key: "SENSOR".into(),
            value: e.sensor.to_string(),
        },
        Card {
            key: "X0".into(),
            value: e.bbox.x0.to_string(),
        },
        Card {
            key: "Y0".into(),
            value: e.bbox.y0.to_string(),
        },
    ];
    let hdus = [
        TypedHdu {
            cards: cards.clone(),
            data: ImageData::F32(e.flux.cast()),
        },
        TypedHdu {
            cards: cards.clone(),
            data: ImageData::F32(e.variance.cast()),
        },
        TypedHdu {
            cards,
            data: ImageData::U8(e.mask.clone()),
        },
    ];
    fits::encode_typed(&hdus)
}

fn card_i64(hdu: &TypedHdu, key: &str) -> Result<i64, String> {
    hdu.cards
        .iter()
        .find(|c| c.key == key)
        .and_then(|c| c.value.trim().parse().ok())
        .ok_or_else(|| format!("FITS exposure missing {key} card"))
}

/// Decode a 3-HDU FITS buffer produced by [`encode_exposure_fits`].
pub fn decode_exposure_fits(buf: &[u8]) -> Result<Exposure, String> {
    let hdus = fits::decode_typed(buf).map_err(|e| format!("FITS decode: {e:?}"))?;
    if hdus.len() != 3 {
        return Err(format!(
            "expected 3 HDUs (flux/variance/mask), got {}",
            hdus.len()
        ));
    }
    let flux: NdArray<f64> = hdus[0].data.to_f32().cast();
    let variance: NdArray<f64> = hdus[1].data.to_f32().cast();
    let mask: NdArray<u8> = hdus[2].data.to_u8();
    let dims = flux.dims().to_vec();
    Ok(Exposure {
        visit: card_i64(&hdus[0], "VISIT")? as u32,
        sensor: card_i64(&hdus[0], "SENSOR")? as u32,
        bbox: SkyBox {
            x0: card_i64(&hdus[0], "X0")?,
            y0: card_i64(&hdus[0], "Y0")?,
            width: dims[1] as u64,
            height: dims[0] as u64,
        },
        flux,
        variance,
        mask,
    })
}

/// Decode ∥ calibrate: FITS decode of exposure `i+1` overlaps with Step 1A
/// calibration of exposure `i`. Outputs are in buffer order and
/// byte-identical to sequential decode-then-calibrate.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
pub fn astro_ingest_calibrate_fits(buffers: &[Vec<u8>], calib: &CalibParams) -> Vec<Exposure> {
    parexec::pipeline::two_stage(
        buffers.len(),
        PIPELINE_BOUND,
        |i| decode_exposure_fits(&buffers[i]).expect("valid exposure buffer"),
        |_, e| calibrate_exposure(&e, calib),
    )
}

/// The full astronomy reference pipeline fed from encoded FITS exposures,
/// with decode overlapped into calibration; Steps 2A–4A then run as usual.
pub fn astro_pipeline_from_fits(
    buffers: &[Vec<u8>],
    grid: &PatchGrid,
    calib: &CalibParams,
    coadd: &CoaddParams,
    detect: &DetectParams,
    par: Parallelism,
) -> AstroOutput {
    let calibrated = astro_ingest_calibrate_fits(buffers, calib);
    reference_pipeline_calibrated_par(calibrated, grid, coadd, detect, par)
}

// ---------------------------------------------------------------------------
// Neuroimaging: npy / NIfTI volumes → b0 mean accumulation (Step 1N)
// ---------------------------------------------------------------------------

/// Result of pipelined neuro ingest: the stacked 4-D (x, y, z, volume)
/// dataset plus the mean b0 volume whose accumulation ran overlapped with
/// decode (the first half of Step 1N; `median_otsu` completes segmentation).
pub struct NeuroIngest {
    /// The stacked 4-D dataset, volume order preserved.
    pub data: NdArray<f64>,
    /// Mean over the b0 (non-diffusion-weighted) volumes.
    pub mean_b0: NdArray<f64>,
}

/// Encode a subject's volumes as one lossless f64 npy buffer per volume.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
pub fn encode_volumes_npy(data: &NdArray<f64>) -> Vec<Vec<u8>> {
    (0..data.dims()[3])
        .map(|v| npy::encode_f64(&data.slice_axis(3, v).expect("volume index in range")))
        .collect()
}

/// Encode a subject's volumes as one NIfTI-1 buffer per volume (f32 on
/// disk, like real acquisitions; decoding casts back up).
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
pub fn encode_volumes_nifti(data: &NdArray<f64>, voxel_mm: f32) -> Vec<Vec<u8>> {
    (0..data.dims()[3])
        .map(|v| {
            let vol: NdArray<f32> = data.slice_axis(3, v).expect("volume index in range").cast();
            nifti::encode(&vol, voxel_mm).expect("encodable volume")
        })
        .collect()
}

// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
// scilint: allow(F003, engine ingest boundary: blobs enter the engine's own tuple store, a materializing copy by contract)
fn neuro_ingest<D>(n: usize, b0_indices: &[usize], decode: D) -> NeuroIngest
where
    D: Fn(usize) -> NdArray<f64> + Send,
{
    assert!(n > 0, "at least one volume");
    let mut volumes: Vec<NdArray<f64>> = Vec::with_capacity(n);
    let mut b0_sum: Option<NdArray<f64>> = None;
    let mut n_b0 = 0usize;
    let _: Vec<()> = parexec::pipeline::two_stage(n, PIPELINE_BOUND, decode, |i, vol| {
        // First compute step, overlapped with the next volume's decode:
        // accumulate the b0 running sum in volume order (a fixed fold
        // order, so the mean is bit-identical to the sequential path).
        if b0_indices.contains(&i) {
            n_b0 += 1;
            b0_sum = Some(match b0_sum.take() {
                None => vol.clone(),
                Some(acc) => acc.zip_with(&vol, |a, b| a + b).expect("same dims"),
            });
        }
        volumes.push(vol);
    });
    let sum = b0_sum.expect("at least one b0 volume");
    let inv = 1.0 / n_b0 as f64;
    let mut mean_b0 = sum;
    mean_b0.map_inplace(|x| x * inv);
    let dims3 = volumes[0].dims().to_vec();
    let parts: Vec<NdArray<f64>> = volumes
        .into_iter()
        .map(|vol| {
            let mut d = dims3.clone();
            d.push(1);
            vol.reshape(&d).expect("same element count")
        })
        .collect();
    let refs: Vec<&NdArray<f64>> = parts.iter().collect();
    let data = NdArray::concat(&refs, 3).expect("volumes share spatial dims");
    NeuroIngest { data, mean_b0 }
}

/// Decode ∥ accumulate from f64 npy buffers: npy decode of volume `i+1`
/// overlaps with folding volume `i` into the b0 sum.
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
pub fn neuro_ingest_npy(volumes: &[Vec<u8>], b0_indices: &[usize]) -> NeuroIngest {
    neuro_ingest(volumes.len(), b0_indices, |i| {
        npy::decode_f64(&volumes[i]).expect("valid npy volume")
    })
}

/// Decode ∥ accumulate from NIfTI-1 buffers (f32 payloads cast up to f64).
// scilint: allow(F001, volume index and shape invariants are upheld by the pipeline driver; TODO(flow): propagate Result through the use-case API)
pub fn neuro_ingest_nifti(volumes: &[Vec<u8>], b0_indices: &[usize]) -> NeuroIngest {
    neuro_ingest(volumes.len(), b0_indices, |i| {
        let (_, vol) = nifti::decode(&volumes[i]).expect("valid NIfTI volume");
        vol.cast()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciops::synth::dmri::{DmriPhantom, DmriSpec};
    use sciops::synth::sky::{SkySpec, SkySurvey};

    #[test]
    fn exposure_fits_roundtrip_preserves_metadata_and_pixels() {
        let survey = SkySurvey::generate(21, &SkySpec::test_scale());
        let e = &survey.visits[0][0];
        let buf = encode_exposure_fits(e);
        let back = decode_exposure_fits(&buf).expect("roundtrip");
        assert_eq!(back.visit, e.visit);
        assert_eq!(back.sensor, e.sensor);
        assert_eq!(back.bbox, e.bbox);
        assert_eq!(back.mask, e.mask, "mask is lossless");
        // Pixels pass through f32: exact at f32 precision.
        for (a, b) in back.flux.data().iter().zip(e.flux.data()) {
            assert_eq!(*a, *b as f32 as f64);
        }
    }

    #[test]
    fn astro_overlap_matches_sequential_decode_then_compute_byte_for_byte() {
        let survey = SkySurvey::generate(33, &SkySpec::test_scale());
        let calib = CalibParams::default();
        let buffers: Vec<Vec<u8>> = survey
            .visits
            .iter()
            .flatten()
            .map(encode_exposure_fits)
            .collect();
        // Sequential baseline: decode everything, then calibrate.
        let sequential: Vec<Exposure> = buffers
            .iter()
            .map(|b| decode_exposure_fits(b).expect("valid"))
            .map(|e| calibrate_exposure(&e, &calib))
            .collect();
        let overlapped = astro_ingest_calibrate_fits(&buffers, &calib);
        assert_eq!(overlapped.len(), sequential.len());
        for (o, s) in overlapped.iter().zip(&sequential) {
            assert_eq!(o.flux, s.flux, "flux byte-for-byte");
            assert_eq!(o.variance, s.variance);
            assert_eq!(o.mask, s.mask);
            assert_eq!(o.bbox, s.bbox);
        }
    }

    #[test]
    fn astro_pipeline_from_fits_matches_reference_on_decoded_exposures() {
        let survey = SkySurvey::generate(33, &SkySpec::test_scale());
        let grid = survey.patch_grid();
        let (calib, coadd, detect) = (
            CalibParams::default(),
            CoaddParams::default(),
            DetectParams::default(),
        );
        let buffers: Vec<Vec<u8>> = survey
            .visits
            .iter()
            .flatten()
            .map(encode_exposure_fits)
            .collect();
        // Reference: decode all exposures up front, then run the normal
        // reference pipeline over them.
        let mut visits: Vec<Vec<Exposure>> = vec![Vec::new(); survey.visits.len()];
        for b in &buffers {
            let e = decode_exposure_fits(b).expect("valid");
            visits[e.visit as usize].push(e);
        }
        let reference = sciops::astro::reference_pipeline_par(
            &visits,
            &grid,
            &calib,
            &coadd,
            &detect,
            Parallelism::Serial,
        );
        let overlapped = astro_pipeline_from_fits(
            &buffers,
            &grid,
            &calib,
            &coadd,
            &detect,
            Parallelism::Serial,
        );
        assert_eq!(overlapped.coadds.len(), reference.coadds.len());
        for (patch, c) in &overlapped.coadds {
            let r = &reference.coadds[patch];
            assert_eq!(c.flux, r.flux, "coadd flux byte-for-byte at {patch:?}");
            assert_eq!(c.variance, r.variance);
        }
        assert_eq!(overlapped.total_sources(), reference.total_sources());
    }

    #[test]
    fn neuro_overlap_matches_sequential_decode_then_compute_byte_for_byte() {
        let phantom = DmriPhantom::generate(4242, &DmriSpec::test_scale());
        let data: NdArray<f64> = phantom.data.cast();
        let b0: Vec<usize> = phantom.gtab.b0_indices();
        for (label, buffers) in [
            ("npy", encode_volumes_npy(&data)),
            ("nifti", encode_volumes_nifti(&data, 2.0)),
        ] {
            // Sequential baseline with the identical fold order.
            let decoded: Vec<NdArray<f64>> = (0..buffers.len())
                .map(|v| match label {
                    "npy" => npy::decode_f64(&buffers[v]).expect("valid"),
                    _ => nifti::decode(&buffers[v]).expect("valid").1.cast(),
                })
                .collect();
            let mut sum: Option<NdArray<f64>> = None;
            for &v in &b0 {
                sum = Some(match sum.take() {
                    None => decoded[v].clone(),
                    Some(acc) => acc.zip_with(&decoded[v], |a, b| a + b).expect("same dims"),
                });
            }
            let mut seq_mean = sum.expect("b0 volumes exist");
            let inv = 1.0 / b0.len() as f64;
            seq_mean.map_inplace(|x| x * inv);

            let ingest = match label {
                "npy" => neuro_ingest_npy(&buffers, &b0),
                _ => neuro_ingest_nifti(&buffers, &b0),
            };
            assert_eq!(ingest.mean_b0, seq_mean, "{label}: mean byte-for-byte");
            for (v, vol) in decoded.iter().enumerate() {
                let got = ingest.data.slice_axis(3, v).expect("in range");
                assert_eq!(&got, vol, "{label}: volume {v} byte-for-byte");
            }
        }
    }

    #[test]
    fn npy_ingest_is_lossless_end_to_end() {
        // f64 npy is lossless, so the stacked data and the mean must equal
        // what Step 1N computes on the original in-memory array.
        let phantom = DmriPhantom::generate(77, &DmriSpec::test_scale());
        let data: NdArray<f64> = phantom.data.cast();
        let buffers = encode_volumes_npy(&data);
        let ingest = neuro_ingest_npy(&buffers, &phantom.gtab.b0_indices());
        assert_eq!(ingest.data, data, "lossless stack");
    }
}
