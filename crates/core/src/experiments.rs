//! Experiment drivers: one function per table and figure of the paper's
//! evaluation section. Each returns a [`Table`] in the paper's shape;
//! the scalar helpers (`neuro_e2e`, `astro_e2e`, …) expose the raw numbers
//! for tests and calibration.

use crate::costmodel::CostModel;
use crate::lower::{astro, ingest, neuro, steps, Engine, EngineProfiles};
use crate::report::{gb, ratio, secs, Table, FAILED};
use crate::workload::{AstroWorkload, NeuroWorkload};
use engine_rel::ExecutionMode;
use simcluster::{simulate, ClusterSpec, SimError, TaskGraph};

/// Cost model + engine profiles for a whole experiment run.
#[derive(Debug, Clone, Default)]
pub struct Setup {
    /// Kernel/conversion constants.
    pub cm: CostModel,
    /// Engine architectural constants.
    pub profiles: EngineProfiles,
}

impl Setup {
    /// The cluster an engine runs on, with its tuned worker-slot count
    /// (Myria: 4 workers/node after Figure 13; SciDB: 4 instances/node per
    /// vendor guidance; Spark/Dask/TF: one slot per vCPU).
    pub fn cluster_for(&self, engine: Engine, nodes: usize) -> ClusterSpec {
        let base = ClusterSpec::r3_2xlarge(nodes);
        match engine {
            // Myria's Figure 13 optimum; Dask's thread count was manually
            // tuned the same way (the kernels are memory-bandwidth-bound,
            // so hyperthreads do not help).
            Engine::Myria | Engine::Dask => base.with_worker_slots(4),
            Engine::SciDb => base.with_worker_slots(self.profiles.arr.instances_per_node),
            _ => base,
        }
    }

    // scilint: allow(F001, paper-script experiment driver: an infra fault aborts the whole run as the original cluster scripts do; TODO(flow): thread Result into the bench CLI)
    fn run(&self, engine: Engine, g: &TaskGraph, cluster: &ClusterSpec) -> f64 {
        simulate(g, cluster, self.profiles.policy(engine), false)
            .expect("non-strict run cannot fail")
            .makespan
    }
}

/// Tuned Spark partition count for a cluster (≈2 tasks per slot, the
/// "sufficiently large" region of Figure 14).
pub fn tuned_partitions(cluster: &ClusterSpec) -> usize {
    2 * cluster.total_slots()
}

// ---------------------------------------------------------------------------
// Scalar helpers
// ---------------------------------------------------------------------------

/// End-to-end neuroscience runtime for one engine (Figure 10c/g).
pub fn neuro_e2e(setup: &Setup, engine: Engine, subjects: usize, nodes: usize) -> f64 {
    let w = NeuroWorkload { subjects };
    let cluster = setup.cluster_for(engine, nodes);
    let g = match engine {
        Engine::Spark => neuro::spark(
            &w,
            &setup.cm,
            &setup.profiles,
            &cluster,
            Some(tuned_partitions(&cluster)),
            true,
        ),
        Engine::Myria => neuro::myria(&w, &setup.cm, &setup.profiles, &cluster),
        Engine::Dask => neuro::dask(&w, &setup.cm, &setup.profiles, &cluster),
        Engine::TensorFlow => neuro::tensorflow(&w, &setup.cm, &setup.profiles, &cluster),
        Engine::SciDb => neuro::scidb_steps(&w, &setup.cm, &setup.profiles, &cluster, true),
    };
    setup.run(engine, &g, &cluster)
}

/// End-to-end astronomy runtime (Figure 10d/h); `Err` = out of memory.
// scilint: allow(F001, paper-script experiment driver: an infra fault aborts the whole run as the original cluster scripts do; TODO(flow): thread Result into the bench CLI)
pub fn astro_e2e(
    setup: &Setup,
    engine: Engine,
    visits: usize,
    nodes: usize,
) -> Result<f64, SimError> {
    let w = AstroWorkload { visits };
    let cluster = setup.cluster_for(engine, nodes);
    match engine {
        Engine::Spark => {
            let g = astro::spark(&w, &setup.cm, &setup.profiles, &cluster);
            Ok(setup.run(engine, &g, &cluster))
        }
        Engine::Myria => {
            // The tuned Myria e2e configuration materializes when the data
            // would not fit (the paper tuned per data size); report the
            // best completing mode.
            myria_astro_mode(setup, visits, nodes, ExecutionMode::Pipelined)
                .or_else(|_| myria_astro_mode(setup, visits, nodes, ExecutionMode::Materialized))
        }
        other => panic!(
            "{} cannot run the astronomy use case end-to-end",
            other.name()
        ),
    }
}

/// Astronomy runtime for Myria under a specific memory-management mode
/// (Figure 15).
pub fn myria_astro_mode(
    setup: &Setup,
    visits: usize,
    nodes: usize,
    mode: ExecutionMode,
) -> Result<f64, SimError> {
    let w = AstroWorkload { visits };
    let cluster = setup.cluster_for(Engine::Myria, nodes);
    let (g, strict) = astro::myria(&w, &setup.cm, &setup.profiles, &cluster, mode);
    simulate(&g, &cluster, setup.profiles.policy(Engine::Myria), strict).map(|r| r.makespan)
}

/// The six ingest configurations of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestSystem {
    /// Dask: manual per-node subject placement.
    Dask,
    /// Myria: parallel download from a key list into the local stores.
    Myria,
    /// Spark: master enumeration + parallel download into RDDs.
    Spark,
    /// TensorFlow: everything through the master.
    TensorFlow,
    /// SciDB `from_array()` (serial client path).
    SciDb1,
    /// SciDB `aio_input()` (parallel CSV path).
    SciDb2,
}

impl IngestSystem {
    /// Display name (as in Figure 11's legend).
    pub fn name(&self) -> &'static str {
        match self {
            IngestSystem::Dask => "Dask",
            IngestSystem::Myria => "Myria",
            IngestSystem::Spark => "Spark",
            IngestSystem::TensorFlow => "TensorFlow",
            IngestSystem::SciDb1 => "SciDB-1",
            IngestSystem::SciDb2 => "SciDB-2",
        }
    }

    /// All six, in the figure's order.
    pub fn all() -> [IngestSystem; 6] {
        [
            IngestSystem::Dask,
            IngestSystem::Myria,
            IngestSystem::Spark,
            IngestSystem::TensorFlow,
            IngestSystem::SciDb1,
            IngestSystem::SciDb2,
        ]
    }
}

/// Ingest time on a 16-node cluster (Figure 11).
pub fn ingest_time(setup: &Setup, system: IngestSystem, subjects: usize) -> f64 {
    let w = NeuroWorkload { subjects };
    let (engine, cluster) = match system {
        IngestSystem::Dask => (Engine::Dask, setup.cluster_for(Engine::Dask, 16)),
        IngestSystem::Myria => (Engine::Myria, setup.cluster_for(Engine::Myria, 16)),
        IngestSystem::Spark => (Engine::Spark, setup.cluster_for(Engine::Spark, 16)),
        IngestSystem::TensorFlow => (
            Engine::TensorFlow,
            setup.cluster_for(Engine::TensorFlow, 16),
        ),
        IngestSystem::SciDb1 | IngestSystem::SciDb2 => {
            (Engine::SciDb, setup.cluster_for(Engine::SciDb, 16))
        }
    };
    let g = match system {
        IngestSystem::Dask => ingest::dask(&w, &setup.cm, &setup.profiles, &cluster),
        IngestSystem::Myria => ingest::myria(&w, &setup.cm, &setup.profiles, &cluster),
        IngestSystem::Spark => ingest::spark(&w, &setup.cm, &setup.profiles, &cluster),
        IngestSystem::TensorFlow => ingest::tensorflow(&w, &setup.cm, &setup.profiles, &cluster),
        IngestSystem::SciDb1 => ingest::scidb_from_array(&w, &setup.cm, &setup.profiles, &cluster),
        IngestSystem::SciDb2 => ingest::scidb_aio(&w, &setup.cm, &setup.profiles, &cluster),
    };
    setup.run(engine, &g, &cluster)
}

/// One of the Figure 12 steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Figure 12a.
    Filter,
    /// Figure 12b.
    Mean,
    /// Figure 12c.
    Denoise,
}

/// Per-step runtime on 16 nodes (Figures 12a–c).
pub fn step_time(setup: &Setup, engine: Engine, step: Step, subjects: usize) -> f64 {
    let w = NeuroWorkload { subjects };
    let cluster = setup.cluster_for(engine, 16);
    let g = match step {
        Step::Filter => steps::filter_step(engine, &w, &setup.cm, &setup.profiles, &cluster),
        Step::Mean => steps::mean_step(engine, &w, &setup.cm, &setup.profiles, &cluster),
        Step::Denoise => steps::denoise_step(engine, &w, &setup.cm, &setup.profiles, &cluster),
    };
    setup.run(engine, &g, &cluster)
}

/// SciDB co-addition runtime (Figure 12d + the §5.3.1 chunk sweep).
pub fn scidb_coadd_time(setup: &Setup, visits: usize, chunk_px: usize, incremental: bool) -> f64 {
    let w = AstroWorkload { visits };
    let cluster = setup.cluster_for(Engine::SciDb, 16);
    let mut profiles = setup.profiles;
    if incremental {
        profiles.arr = profiles.arr.with_incremental_iteration();
    }
    let g = astro::scidb_coadd(&w, &setup.cm, &profiles, &cluster, chunk_px);
    setup.run(Engine::SciDb, &g, &cluster)
}

/// Spark/Myria co-addition step runtime (the Figure 12d comparison bars):
/// merge + coadd only, inputs resident.
pub fn udf_coadd_time(setup: &Setup, engine: Engine, visits: usize) -> f64 {
    let _ = AstroWorkload { visits };
    let cluster = setup.cluster_for(engine, 16);
    let mut g = TaskGraph::new();
    let pv = astro::patch_visit_bytes();
    let crossing = match engine {
        Engine::Spark => setup.profiles.rdd.crossing_time(pv * visits as u64),
        _ => setup.profiles.rel.crossing_time(pv * visits as u64),
    };
    for p in 0..AstroWorkload::PATCHES {
        g.add(
            simcluster::TaskSpec::compute(
                "coadd",
                setup.cm.astro_coadd_per_patch * visits as f64 / 24.0 + 2.0 * crossing,
            )
            .mem(3 * pv * visits as u64)
            .on_node(p % cluster.nodes),
        );
    }
    setup.run(engine, &g, &cluster)
}

// ---------------------------------------------------------------------------
// Table/figure builders
// ---------------------------------------------------------------------------

/// Table 1 (paper LoC + our API-call counts side by side).
pub fn table1() -> (Table, Table) {
    use crate::complexity::{our_table1, paper_table1, COLUMNS};
    let build = |rows: Vec<crate::complexity::Row>, title: &str| {
        let mut t = Table::new(
            title,
            &[
                "Use case",
                "Step",
                COLUMNS[0].name(),
                COLUMNS[1].name(),
                COLUMNS[2].name(),
                COLUMNS[3].name(),
                COLUMNS[4].name(),
            ],
        );
        for r in rows {
            t.push(vec![
                r.use_case.to_string(),
                r.step.to_string(),
                r.cells[0].to_string(),
                r.cells[1].to_string(),
                r.cells[2].to_string(),
                r.cells[3].to_string(),
                r.cells[4].to_string(),
            ]);
        }
        t
    };
    (
        build(
            paper_table1(),
            "Table 1 (paper): lines of code per implementation",
        ),
        build(
            our_table1(),
            "Table 1 (ours): engine API calls / plan operators per implementation",
        ),
    )
}

/// Figure 10a: neuroscience data sizes.
pub fn fig10a() -> Table {
    let mut t = Table::new(
        "Fig 10a: Neuroscience data sizes (GB)",
        &["Subjects", "Input", "Largest Intermediate"],
    );
    for w in NeuroWorkload::sweep() {
        t.push(vec![
            w.subjects.to_string(),
            gb(w.input_bytes()),
            gb(w.largest_intermediate_bytes()),
        ]);
    }
    t
}

/// Figure 10b: astronomy data sizes.
pub fn fig10b() -> Table {
    let mut t = Table::new(
        "Fig 10b: Astronomy data sizes (GB)",
        &["Visits", "Input", "Largest Intermediate"],
    );
    for w in AstroWorkload::sweep() {
        t.push(vec![
            w.visits.to_string(),
            gb(w.input_bytes()),
            gb(w.largest_intermediate_bytes()),
        ]);
    }
    t
}

/// Figure 10c: neuroscience end-to-end runtime vs data size (16 nodes).
pub fn fig10c(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Fig 10c: Neuroscience end-to-end runtime vs data size, 16 nodes (s)",
        &["Subjects", "Dask", "Myria", "Spark"],
    );
    for w in NeuroWorkload::sweep() {
        t.push(vec![
            w.subjects.to_string(),
            secs(neuro_e2e(setup, Engine::Dask, w.subjects, 16)),
            secs(neuro_e2e(setup, Engine::Myria, w.subjects, 16)),
            secs(neuro_e2e(setup, Engine::Spark, w.subjects, 16)),
        ]);
    }
    t
}

/// Figure 10d: astronomy end-to-end runtime vs data size (16 nodes).
pub fn fig10d(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Fig 10d: Astronomy end-to-end runtime vs data size, 16 nodes (s)",
        &["Visits", "Myria", "Spark"],
    );
    for w in AstroWorkload::sweep() {
        let m = astro_e2e(setup, Engine::Myria, w.visits, 16);
        let s = astro_e2e(setup, Engine::Spark, w.visits, 16);
        t.push(vec![
            w.visits.to_string(),
            m.map(secs).unwrap_or_else(|_| FAILED.into()),
            s.map(secs).unwrap_or_else(|_| FAILED.into()),
        ]);
    }
    t
}

/// Figure 10e: normalized neuroscience runtime per subject.
pub fn fig10e(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Fig 10e: Neuroscience normalized runtime per subject",
        &["Subjects", "Dask", "Myria", "Spark"],
    );
    let base: Vec<f64> = Engine::neuro_e2e()
        .iter()
        .map(|&e| neuro_e2e(setup, e, 1, 16))
        .collect();
    for w in NeuroWorkload::sweep() {
        let mut row = vec![w.subjects.to_string()];
        for (i, &e) in Engine::neuro_e2e().iter().enumerate() {
            let time = neuro_e2e(setup, e, w.subjects, 16);
            row.push(ratio(time / (w.subjects as f64 * base[i])));
        }
        t.push(row);
    }
    t
}

/// Figure 10f: normalized astronomy runtime per visit.
// scilint: allow(F001, paper-script experiment driver: an infra fault aborts the whole run as the original cluster scripts do; TODO(flow): thread Result into the bench CLI)
pub fn fig10f(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Fig 10f: Astronomy normalized runtime per visit",
        &["Visits", "Spark", "Myria"],
    );
    let base_spark = astro_e2e(setup, Engine::Spark, 2, 16).expect("2 visits fit");
    let base_myria = astro_e2e(setup, Engine::Myria, 2, 16).expect("2 visits fit");
    for w in AstroWorkload::sweep() {
        let n = w.visits as f64 / 2.0;
        let s = astro_e2e(setup, Engine::Spark, w.visits, 16);
        let m = astro_e2e(setup, Engine::Myria, w.visits, 16);
        t.push(vec![
            w.visits.to_string(),
            s.map(|v| ratio(v / (n * base_spark)))
                .unwrap_or_else(|_| FAILED.into()),
            m.map(|v| ratio(v / (n * base_myria)))
                .unwrap_or_else(|_| FAILED.into()),
        ]);
    }
    t
}

/// Figure 10g: neuroscience runtime vs cluster size (25 subjects).
pub fn fig10g(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Fig 10g: Neuroscience end-to-end runtime vs cluster size, 25 subjects (s)",
        &["Nodes", "Dask", "Myria", "Spark", "Ideal-speedup(Myria)"],
    );
    let base_myria = neuro_e2e(setup, Engine::Myria, 25, 16);
    for nodes in [16usize, 32, 48, 64] {
        t.push(vec![
            nodes.to_string(),
            secs(neuro_e2e(setup, Engine::Dask, 25, nodes)),
            secs(neuro_e2e(setup, Engine::Myria, 25, nodes)),
            secs(neuro_e2e(setup, Engine::Spark, 25, nodes)),
            secs(base_myria * 16.0 / nodes as f64),
        ]);
    }
    t
}

/// Figure 10h: astronomy runtime vs cluster size (24 visits).
pub fn fig10h(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Fig 10h: Astronomy end-to-end runtime vs cluster size, 24 visits (s)",
        &["Nodes", "Myria", "Spark"],
    );
    for nodes in [16usize, 32, 48, 64] {
        t.push(vec![
            nodes.to_string(),
            astro_e2e(setup, Engine::Myria, 24, nodes)
                .map(secs)
                .unwrap_or_else(|_| FAILED.into()),
            astro_e2e(setup, Engine::Spark, 24, nodes)
                .map(secs)
                .unwrap_or_else(|_| FAILED.into()),
        ]);
    }
    t
}

/// Figure 11: ingest times (16 nodes), log-scale data in the paper.
pub fn fig11(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Fig 11: Data ingest time, 16 nodes (s; paper plots log scale)",
        &[
            "Subjects",
            "Dask",
            "Myria",
            "Spark",
            "TensorFlow",
            "SciDB-1",
            "SciDB-2",
        ],
    );
    for subjects in [1usize, 2, 4, 8, 12, 25] {
        let mut row = vec![subjects.to_string()];
        for sys in IngestSystem::all() {
            row.push(secs(ingest_time(setup, sys, subjects)));
        }
        t.push(row);
    }
    t
}

/// Figures 12a–c: per-step runtimes, largest dataset, 16 nodes.
pub fn fig12(setup: &Setup, step: Step) -> Table {
    let title = match step {
        Step::Filter => "Fig 12a: Filter step, 25 subjects, 16 nodes (s; paper plots log scale)",
        Step::Mean => "Fig 12b: Mean step, 25 subjects, 16 nodes (s; paper plots log scale)",
        Step::Denoise => "Fig 12c: Denoise step, 25 subjects, 16 nodes (s; paper plots log scale)",
    };
    let mut t = Table::new(title, &["Engine", "Time"]);
    for e in [
        Engine::Dask,
        Engine::Myria,
        Engine::Spark,
        Engine::SciDb,
        Engine::TensorFlow,
    ] {
        t.push(vec![
            e.name().to_string(),
            secs(step_time(setup, e, step, 25)),
        ]);
    }
    t
}

/// Figure 12d: co-addition, 24 visits, 16 nodes.
pub fn fig12d(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Fig 12d: Co-addition step, 24 visits, 16 nodes (s; paper plots log scale)",
        &["Engine", "Time"],
    );
    t.push(vec![
        "Myria".into(),
        secs(udf_coadd_time(setup, Engine::Myria, 24)),
    ]);
    t.push(vec![
        "Spark".into(),
        secs(udf_coadd_time(setup, Engine::Spark, 24)),
    ]);
    t.push(vec![
        "SciDB (AQL)".into(),
        secs(scidb_coadd_time(setup, 24, 1000, false)),
    ]);
    t.push(vec![
        "SciDB (+incremental [34])".into(),
        secs(scidb_coadd_time(setup, 24, 1000, true)),
    ]);
    t
}

/// Figure 13: Myria workers per node, 25 subjects, 16 nodes.
pub fn fig13(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Fig 13: Myria execution time vs workers per node (25 subjects, 16 nodes)",
        &["Workers/node", "Time (s)"],
    );
    for workers in [1usize, 2, 4, 6, 8] {
        let cluster = ClusterSpec::r3_2xlarge(16).with_worker_slots(workers);
        let w = NeuroWorkload { subjects: 25 };
        let g = neuro::myria(&w, &setup.cm, &setup.profiles, &cluster);
        t.push(vec![
            workers.to_string(),
            secs(setup.run(Engine::Myria, &g, &cluster)),
        ]);
    }
    t
}

/// Intra-node scaling: re-run the Figure 13 sweep with a *measured* kernel
/// scaling curve substituted for the analytic hyper-threading model, side
/// by side with the analytic prediction. `measured` usually comes from
/// [`crate::costmodel::KernelScaling::measure`] on the host or from a
/// committed `BENCH_kernels.json` baseline.
pub fn kernel_scaling(setup: &Setup, measured: &crate::costmodel::KernelScaling) -> Table {
    let mut t = Table::new(
        "Intra-node scaling: Myria neuro (25 subjects, 16 nodes), analytic vs measured curve",
        &[
            "Workers/node",
            "Kernel speedup",
            "Analytic (s)",
            "Measured (s)",
        ],
    );
    for workers in [1usize, 2, 4, 6, 8] {
        let analytic = ClusterSpec::r3_2xlarge(16).with_worker_slots(workers);
        let with_curve = measured.apply_to(analytic.clone());
        let w = NeuroWorkload { subjects: 25 };
        let g = neuro::myria(&w, &setup.cm, &setup.profiles, &analytic);
        t.push(vec![
            workers.to_string(),
            ratio(measured.speedup_at(workers)),
            secs(setup.run(Engine::Myria, &g, &analytic)),
            secs(setup.run(Engine::Myria, &g, &with_curve)),
        ]);
    }
    t
}

/// Figure 14: Spark input partitions, 1 subject, 16 nodes.
pub fn fig14(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Fig 14: Spark execution time vs input partitions (1 subject, 16 nodes)",
        &["Partitions", "Time (s)"],
    );
    let cluster = ClusterSpec::r3_2xlarge(16);
    for p in [1usize, 2, 4, 8, 16, 32, 64, 97, 128, 192, 256] {
        let w = NeuroWorkload { subjects: 1 };
        let g = neuro::spark(&w, &setup.cm, &setup.profiles, &cluster, Some(p), true);
        t.push(vec![
            p.to_string(),
            secs(setup.run(Engine::Spark, &g, &cluster)),
        ]);
    }
    t
}

/// Figure 15: Myria memory-management strategies on the astronomy use
/// case (16 nodes). Includes the paper's 2–24-visit range plus larger
/// extension points where materialization also breaks down.
pub fn fig15(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Fig 15: Myria memory management, astronomy, 16 nodes (s)",
        &["Visits", "Pipelined", "Materialized", "Multi-query"],
    );
    for visits in [2usize, 4, 8, 12, 24, 48] {
        let pipe = myria_astro_mode(setup, visits, 16, ExecutionMode::Pipelined);
        let mat = myria_astro_mode(setup, visits, 16, ExecutionMode::Materialized);
        let pieces = visits.div_ceil(6).max(2);
        let multi = myria_astro_mode(setup, visits, 16, ExecutionMode::MultiQuery { pieces });
        t.push(vec![
            visits.to_string(),
            pipe.map(secs).unwrap_or_else(|_| FAILED.into()),
            mat.map(secs).unwrap_or_else(|_| FAILED.into()),
            multi.map(secs).unwrap_or_else(|_| FAILED.into()),
        ]);
    }
    t
}

/// §5.3.1 text: SciDB chunk-size sweep on the co-addition.
pub fn chunk_sweep(setup: &Setup) -> Table {
    let mut t = Table::new(
        "§5.3.1: SciDB coadd vs chunk size (24 visits, 16 nodes)",
        &["Chunk", "Time (s)", "vs 1000x1000"],
    );
    let base = scidb_coadd_time(setup, 24, 1000, false);
    for chunk in [500usize, 1000, 1500, 2000] {
        let time = scidb_coadd_time(setup, 24, chunk, false);
        t.push(vec![
            format!("{chunk}x{chunk}"),
            secs(time),
            format!("{:+.0}%", (time / base - 1.0) * 100.0),
        ]);
    }
    t
}

/// §5.3.1 text: TensorFlow volume-assignment sweep on the filter step.
pub fn tf_assignment(setup: &Setup) -> Table {
    let mut t = Table::new(
        "§5.3.1: TensorFlow filter vs volumes per assignment (4 subjects, 16 nodes)",
        &["Volumes/assignment", "Time (s)"],
    );
    let cluster = setup.cluster_for(Engine::TensorFlow, 16);
    let w = NeuroWorkload { subjects: 4 };
    for vpa in [1usize, 2, 4, 8] {
        let mut g = TaskGraph::new();
        steps::tf_filter_assignment(&mut g, &w, &setup.profiles, &cluster, vpa);
        t.push(vec![
            vpa.to_string(),
            secs(setup.run(Engine::TensorFlow, &g, &cluster)),
        ]);
    }
    t
}

/// §5.3.3: Spark input caching on/off across data sizes.
pub fn caching(setup: &Setup) -> Table {
    let mut t = Table::new(
        "§5.3.3: Spark neuroscience runtime with and without input caching (16 nodes)",
        &["Subjects", "Cached", "Uncached", "Improvement"],
    );
    let cluster = setup.cluster_for(Engine::Spark, 16);
    for subjects in [4usize, 8, 12, 25] {
        let w = NeuroWorkload { subjects };
        let p = Some(tuned_partitions(&cluster));
        let gc = neuro::spark(&w, &setup.cm, &setup.profiles, &cluster, p, true);
        let gu = neuro::spark(&w, &setup.cm, &setup.profiles, &cluster, p, false);
        let tc = setup.run(Engine::Spark, &gc, &cluster);
        let tu = setup.run(Engine::Spark, &gu, &cluster);
        t.push(vec![
            subjects.to_string(),
            secs(tc),
            secs(tu),
            format!("{:.1}%", (1.0 - tc / tu) * 100.0),
        ]);
    }
    t
}

/// §6 extension: the self-tuning searches, default vs tuned per engine.
pub fn autotune(setup: &Setup) -> Table {
    let mut t = Table::new(
        "§6 extension: self-tuning searches (default vs tuned)",
        &[
            "Knob",
            "Default",
            "t(default) s",
            "Tuned",
            "t(tuned) s",
            "Gain",
            "Sim evals",
        ],
    );
    for r in crate::autotune::run_all(setup) {
        t.push(vec![
            r.knob.to_string(),
            r.default_value.to_string(),
            secs(r.default_time),
            r.tuned_value.to_string(),
            secs(r.tuned_time),
            format!("{:.0}%", r.improvement() * 100.0),
            r.evaluations.to_string(),
        ]);
    }
    t
}

/// Every table and figure, in paper order — the full reproduction run.
pub fn all_tables(setup: &Setup) -> Vec<Table> {
    let (t1a, t1b) = table1();
    vec![
        t1a,
        t1b,
        fig10a(),
        fig10b(),
        fig10c(setup),
        fig10d(setup),
        fig10e(setup),
        fig10f(setup),
        fig10g(setup),
        fig10h(setup),
        fig11(setup),
        fig12(setup, Step::Filter),
        fig12(setup, Step::Mean),
        fig12(setup, Step::Denoise),
        fig12d(setup),
        fig13(setup),
        fig14(setup),
        fig15(setup),
        chunk_sweep(setup),
        tf_assignment(setup),
        caching(setup),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_scaling_table_reflects_curve() {
        let setup = Setup::default();
        // A perfectly linear measured curve can only speed runs up (or
        // leave them equal) relative to the analytic model, which charges
        // for hyper-thread interference above 4 workers/node.
        let linear = crate::costmodel::KernelScaling::from_points(vec![
            (1, 1.0),
            (2, 2.0),
            (4, 4.0),
            (8, 8.0),
        ]);
        let t = kernel_scaling(&setup, &linear);
        assert_eq!(t.header.len(), 4);
        assert_eq!(t.rows.len(), 5);
        // At 8 workers/node the analytic model penalizes hyper-threads;
        // the linear measured curve does not, so it must be faster.
        let parse = |s: &String| s.trim_end_matches('s').parse::<f64>().unwrap();
        let last = &t.rows[4];
        assert!(parse(&last[3]) < parse(&last[2]), "{last:?}");
    }

    #[test]
    fn tables_have_expected_shapes() {
        let setup = Setup::default();
        let t = fig10a();
        assert_eq!(t.rows.len(), 6);
        let t = fig11(&setup);
        assert_eq!(t.header.len(), 7);
        assert_eq!(t.rows.len(), 6);
    }

    #[test]
    fn dask_slower_at_one_subject_faster_at_25() {
        let setup = Setup::default();
        let d1 = neuro_e2e(&setup, Engine::Dask, 1, 16);
        let s1 = neuro_e2e(&setup, Engine::Spark, 1, 16);
        let m1 = neuro_e2e(&setup, Engine::Myria, 1, 16);
        assert!(
            d1 > 1.2 * s1.min(m1),
            "Dask 1-subject {d1} vs Spark {s1} / Myria {m1}"
        );
        let d25 = neuro_e2e(&setup, Engine::Dask, 25, 16);
        let s25 = neuro_e2e(&setup, Engine::Spark, 25, 16);
        let m25 = neuro_e2e(&setup, Engine::Myria, 25, 16);
        // Figure 10c at 25 subjects: Dask at best ~14% faster than the
        // other two; all three comparable (same UDFs, same partitioning).
        assert!(d25 < s25, "Dask 25-subject {d25} vs Spark {s25}");
        assert!(d25 < 1.08 * m25, "Dask 25-subject {d25} vs Myria {m25}");
        assert!(
            d25 > 0.75 * s25,
            "Dask at best ~14-16% faster, got {d25} vs {s25}"
        );
    }

    #[test]
    fn near_linear_speedup_16_to_64() {
        let setup = Setup::default();
        for e in Engine::neuro_e2e() {
            let t16 = neuro_e2e(&setup, e, 25, 16);
            let t64 = neuro_e2e(&setup, e, 25, 64);
            let speedup = t16 / t64;
            assert!(
                speedup > 2.2 && speedup < 4.2,
                "{}: speedup {speedup} from 16→64 nodes",
                e.name()
            );
        }
    }

    #[test]
    fn myria_best_at_4_workers() {
        let setup = Setup::default();
        let t = fig13(&setup);
        let times: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // workers [1,2,4,6,8]: minimum at index 2.
        let best = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 2, "times {times:?}");
    }

    #[test]
    fn spark_partitions_shape() {
        let setup = Setup::default();
        let t = fig14(&setup);
        let times: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // Dramatic improvement 1 → 16 partitions.
        assert!(times[0] / times[4] > 3.0, "1 vs 16 partitions: {times:?}");
        // Improvement continues to ~128, then flattens (within 10%).
        let t128 = times[8];
        let t256 = times[10];
        assert!(times[4] > t128, "16 vs 128: {times:?}");
        assert!(
            (t256 - t128).abs() / t128 < 0.15,
            "flat beyond 128: {times:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Ablations: remove one mechanism at a time and show what it bought.
// ---------------------------------------------------------------------------

/// Ablation study over the design choices DESIGN.md calls out: each row
/// disables one architectural mechanism and reports the affected metric
/// with and without it. This is an extension beyond the paper, quantifying
/// how much of each engine's behaviour our model attributes to each
/// mechanism.
// scilint: allow(F001, paper-script experiment driver: an infra fault aborts the whole run as the original cluster scripts do; TODO(flow): thread Result into the bench CLI)
pub fn ablations(setup: &Setup) -> Table {
    let mut t = Table::new(
        "Ablations: one mechanism removed at a time",
        &["Mechanism", "Metric", "With", "Without", "Effect"],
    );
    let row = |t: &mut Table, name: &str, metric: &str, with: f64, without: f64| {
        t.push(vec![
            name.to_string(),
            metric.to_string(),
            secs(with),
            secs(without),
            format!("{:+.0}%", (without / with - 1.0) * 100.0),
        ]);
    };

    // 1. Dask work stealing (dynamic load balancing): turn the scheduler
    //    into plain locality-FIFO and watch 25-subject balance suffer.
    {
        let w = NeuroWorkload { subjects: 25 };
        let cluster = setup.cluster_for(Engine::Dask, 16);
        let g = neuro::dask(&w, &setup.cm, &setup.profiles, &cluster);
        let with = simulate(&g, &cluster, setup.profiles.policy(Engine::Dask), false)
            .expect("runs")
            .makespan;
        let without = simulate(
            &g,
            &cluster,
            simcluster::SchedPolicy::Static {
                per_task_overhead: setup.profiles.tg.per_task_overhead,
            },
            false,
        )
        .expect("runs")
        .makespan;
        // Static placement honors only explicit pins; Dask's graph pins
        // downloads per subject, so volumes lose dynamic rebalance... the
        // comparison uses locality-FIFO with an infinite steal cost instead.
        let _ = without;
        let frozen = simulate(
            &g,
            &cluster,
            simcluster::SchedPolicy::WorkStealing {
                per_task_overhead: setup.profiles.tg.per_task_overhead,
                steal_cost: 1e6, // effectively forbids stealing
            },
            false,
        )
        .expect("runs")
        .makespan;
        row(
            &mut t,
            "Dask work stealing",
            "neuro e2e, 25 subj, 16 nodes (s)",
            with,
            frozen,
        );
    }

    // 2. Spark's Python-boundary serialization: zero the crossing costs
    //    and watch the Figure 12a filter penalty vanish.
    {
        let mut cheap = setup.clone();
        cheap.profiles.rdd.py_worker_crossing_per_byte = 0.0;
        cheap.profiles.rdd.py_worker_crossing_fixed = 0.0;
        let with = step_time(setup, Engine::Spark, Step::Filter, 25);
        let without = step_time(&cheap, Engine::Spark, Step::Filter, 25);
        row(
            &mut t,
            "Spark Python-boundary serialization",
            "filter step, 25 subj (s)",
            with,
            without,
        );
    }

    // 3. Myria selection pushdown: scan everything instead of the b0 pages.
    {
        let w = NeuroWorkload { subjects: 25 };
        let cluster = setup.cluster_for(Engine::Myria, 16);
        let with = step_time(setup, Engine::Myria, Step::Filter, 25);
        // Without pushdown the scan reads all 288 volumes per subject.
        let mut g = TaskGraph::new();
        let vol = NeuroWorkload::volume_bytes();
        for s in 0..w.subjects {
            for v in 0..NeuroWorkload::VOLUMES {
                g.add(
                    simcluster::TaskSpec::compute(
                        "filter",
                        vol as f64 / setup.profiles.rel.pg_scan_bw,
                    )
                    .disk_read(vol)
                    .on_node((s * 31 + v) % cluster.nodes),
                );
            }
        }
        let without = setup.run(Engine::Myria, &g, &cluster);
        row(
            &mut t,
            "Myria selection pushdown",
            "filter step, 25 subj (s)",
            with,
            without,
        );
    }

    // 4. TensorFlow's missing masked assignment: grant it mask support and
    //    watch the denoise step drop toward the UDF engines.
    {
        let mut masked = setup.clone();
        masked.profiles.df.mask_support = true;
        let with_limit = step_time(setup, Engine::TensorFlow, Step::Denoise, 25);
        let without_limit = step_time(&masked, Engine::TensorFlow, Step::Denoise, 25);
        row(
            &mut t,
            "TensorFlow lacking masked assignment",
            "denoise step, 25 subj (s)",
            with_limit,
            without_limit,
        );
    }

    // 5. SciDB incremental iteration (the paper's [34]): already an engine
    //    flag; shown here as the coadd ablation.
    {
        let with = scidb_coadd_time(setup, 24, 1000, true);
        let without = scidb_coadd_time(setup, 24, 1000, false);
        row(
            &mut t,
            "SciDB incremental iteration [34]",
            "coadd step, 24 visits (s)",
            with,
            without,
        );
    }

    // 6. Hyperthread contention model: give the node 8 full physical cores
    //    and the Figure 13 optimum moves from 4 workers to 8.
    {
        let w = NeuroWorkload { subjects: 25 };
        let mut eight_phys = ClusterSpec::r3_2xlarge(16).with_worker_slots(8);
        eight_phys.node.cores = 16; // 8 physical cores under the cores/2 rule
        let g = neuro::myria(&w, &setup.cm, &setup.profiles, &eight_phys);
        let without_ht = setup.run(Engine::Myria, &g, &eight_phys);
        let real = ClusterSpec::r3_2xlarge(16).with_worker_slots(8);
        let g2 = neuro::myria(&w, &setup.cm, &setup.profiles, &real);
        let with_ht = setup.run(Engine::Myria, &g2, &real);
        row(
            &mut t,
            "Hyperthread/memory-bandwidth contention",
            "Myria 8 workers/node, 25 subj (s)",
            with_ht,
            without_ht,
        );
    }

    t
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    fn value(t: &Table, mechanism: &str, col: usize) -> f64 {
        t.rows
            .iter()
            .find(|r| r[0].contains(mechanism))
            .unwrap_or_else(|| panic!("row {mechanism}"))[col]
            .parse()
            .expect("numeric cell")
    }

    #[test]
    fn ablations_have_expected_directions() {
        let setup = Setup::default();
        let t = ablations(&setup);
        assert_eq!(t.rows.len(), 6);
        // Removing work stealing hurts (imbalanced subjects).
        assert!(value(&t, "work stealing", 3) > value(&t, "work stealing", 2));
        // Removing the Python boundary helps the filter dramatically.
        assert!(value(&t, "Python-boundary", 3) < 0.5 * value(&t, "Python-boundary", 2));
        // Removing pushdown hurts the filter.
        assert!(value(&t, "pushdown", 3) > 2.0 * value(&t, "pushdown", 2));
        // Granting TF mask support helps its denoise.
        assert!(value(&t, "masked assignment", 3) < value(&t, "masked assignment", 2));
        // Removing incremental iteration hurts the coadd ~6×.
        let gain = value(&t, "incremental", 3) / value(&t, "incremental", 2);
        assert!((4.0..9.0).contains(&gain), "gain {gain}");
        // Full physical cores would make 8 workers faster than the HT reality.
        assert!(value(&t, "Hyperthread", 3) < value(&t, "Hyperthread", 2));
    }
}

/// §5.3.2 extension: per-worker data growth in the astronomy pipeline.
///
/// The paper: "the astronomy pipeline grows the data by 2.5× on average
/// during processing, but some workers experience data growth of 6× due to
/// skew". This reports the per-node intermediate (patch-piece) bytes the
/// lowered pipeline actually assigns at 24 visits.
pub fn skew_report(setup: &Setup) -> Table {
    let w = AstroWorkload { visits: 24 };
    let cluster = setup.cluster_for(Engine::Myria, 16);
    let (g, _) = astro::myria(
        &w,
        &setup.cm,
        &setup.profiles,
        &cluster,
        ExecutionMode::Pipelined,
    );

    // Intermediate bytes per node: the merge operators' buffered inputs
    // (mem is 3× the held bytes in the lowering's work_mem convention).
    let mut per_node = vec![0u64; cluster.nodes];
    for task in g.tasks() {
        if task.label == "astro:merge" {
            if let simcluster::Placement::Node(n) = task.placement {
                per_node[n] += task.mem_bytes / 3;
            }
        }
    }
    let input_per_node = w.input_bytes() as f64 / cluster.nodes as f64;
    let mut t = Table::new(
        "§5.3.2 extension: per-worker data growth, astronomy, 24 visits, 16 nodes",
        &["Node", "Intermediate (GB)", "Growth vs input share"],
    );
    for (n, &bytes) in per_node.iter().enumerate() {
        t.push(vec![
            n.to_string(),
            gb(bytes),
            format!("{:.1}x", bytes as f64 / input_per_node),
        ]);
    }
    let total: u64 = per_node.iter().sum();
    let avg = total as f64 / cluster.nodes as f64 / input_per_node;
    let max = per_node.iter().copied().max().unwrap_or(0) as f64 / input_per_node;
    t.push(vec![
        "avg".into(),
        gb(total / cluster.nodes as u64),
        format!("{avg:.1}x"),
    ]);
    t.push(vec!["max".into(), String::new(), format!("{max:.1}x")]);
    t
}

#[cfg(test)]
mod skew_tests {
    use super::*;

    #[test]
    fn skew_matches_paper_numbers() {
        let setup = Setup::default();
        let t = skew_report(&setup);
        let parse = |label: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == label).expect("summary row")[2]
                .trim_end_matches('x')
                .parse()
                .expect("numeric growth")
        };
        let avg = parse("avg");
        let max = parse("max");
        assert!((2.0..3.0).contains(&avg), "average growth {avg} ≈ 2.5×");
        assert!((5.0..7.5).contains(&max), "max worker growth {max} ≈ 6×");
    }
}

/// One shape-fidelity check: a paper claim, whether it holds, and the
/// measured numbers behind the verdict.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// The paper claim being checked.
    pub claim: &'static str,
    /// Whether the reproduction satisfies it.
    pub pass: bool,
    /// Measured evidence.
    pub detail: String,
}

/// Evaluate the paper's headline qualitative claims against the current
/// cost model (the `reproduce --check` mode). Every check also exists as a
/// test; this entry point is for CI-style reporting after someone edits
/// the model.
// scilint: allow(F001, paper-script experiment driver: an infra fault aborts the whole run as the original cluster scripts do; TODO(flow): thread Result into the bench CLI)
pub fn shape_checks(setup: &Setup) -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    let mut check = |claim: &'static str, pass: bool, detail: String| {
        out.push(ShapeCheck {
            claim,
            pass,
            detail,
        });
    };

    // §5.1 end-to-end.
    let d1 = neuro_e2e(setup, Engine::Dask, 1, 16);
    let m1 = neuro_e2e(setup, Engine::Myria, 1, 16);
    let s1 = neuro_e2e(setup, Engine::Spark, 1, 16);
    check(
        "Dask ~60% slower for a single subject",
        d1 > 1.3 * m1.min(s1),
        format!("Dask {d1:.0}s vs Myria {m1:.0}s / Spark {s1:.0}s"),
    );
    let d25 = neuro_e2e(setup, Engine::Dask, 25, 16);
    let m25 = neuro_e2e(setup, Engine::Myria, 25, 16);
    let s25 = neuro_e2e(setup, Engine::Spark, 25, 16);
    let spread = d25.max(m25).max(s25) / d25.min(m25).min(s25);
    check(
        "all three systems comparable at 25 subjects",
        spread < 1.25,
        format!("Dask {d25:.0} / Myria {m25:.0} / Spark {s25:.0} (spread {spread:.2})"),
    );
    let sp = |e| neuro_e2e(setup, e, 25, 16) / neuro_e2e(setup, e, 25, 64);
    let (spd, spm, sps) = (sp(Engine::Dask), sp(Engine::Myria), sp(Engine::Spark));
    check(
        "near-linear 16→64 speedup, Myria closest to ideal, Dask degrades most",
        spm > sps && sps > spd && spd > 2.2,
        format!("speedups: Dask {spd:.2} / Myria {spm:.2} / Spark {sps:.2} (ideal 4)"),
    );

    // Figure 11.
    let im = ingest_time(setup, IngestSystem::Myria, 25);
    let is = ingest_time(setup, IngestSystem::Spark, 25);
    let i1 = ingest_time(setup, IngestSystem::SciDb1, 25);
    let i2 = ingest_time(setup, IngestSystem::SciDb2, 25);
    let itf = ingest_time(setup, IngestSystem::TensorFlow, 25);
    check(
        "ingest: Myria < Spark < SciDB-2 path cost; aio 10×+ over from_array; TF slowest parallel",
        im < is && i2 > im && i1 / i2 > 5.0 && itf > 2.0 * is,
        format!("Myria {im:.0} Spark {is:.0} SciDB-2 {i2:.0} SciDB-1 {i1:.0} TF {itf:.0}"),
    );

    // Figure 12.
    let f_dask = step_time(setup, Engine::Dask, Step::Filter, 25);
    let f_myria = step_time(setup, Engine::Myria, Step::Filter, 25);
    let f_spark = step_time(setup, Engine::Spark, Step::Filter, 25);
    let f_tf = step_time(setup, Engine::TensorFlow, Step::Filter, 25);
    check(
        "filter: Myria/Dask fastest, Spark ~an order slower, TF orders slower",
        f_spark > 3.0 * f_dask.max(f_myria) && f_tf > 20.0 * f_spark,
        format!("Dask {f_dask:.2} Myria {f_myria:.2} Spark {f_spark:.1} TF {f_tf:.0}"),
    );
    let mean_scidb = step_time(setup, Engine::SciDb, Step::Mean, 1);
    let mean_spark = step_time(setup, Engine::Spark, Step::Mean, 1);
    check(
        "mean: SciDB fastest at small scale",
        mean_scidb < mean_spark,
        format!("SciDB {mean_scidb:.2}s vs Spark {mean_spark:.2}s at 1 subject"),
    );
    let den: Vec<f64> = [Engine::Spark, Engine::Myria, Engine::Dask, Engine::SciDb]
        .iter()
        .map(|&e| step_time(setup, e, Step::Denoise, 25))
        .collect();
    let den_spread = den.iter().cloned().fold(0.0f64, f64::max)
        / den.iter().cloned().fold(f64::INFINITY, f64::min);
    check(
        "denoise: the four UDF paths stay similar",
        den_spread < 1.6,
        format!("spread {den_spread:.2} across Spark/Myria/Dask/SciDB"),
    );
    let coadd_udf = udf_coadd_time(setup, Engine::Myria, 24);
    let coadd_aql = scidb_coadd_time(setup, 24, 1000, false);
    let coadd_inc = scidb_coadd_time(setup, 24, 1000, true);
    check(
        "coadd: stock AQL >8× slower; incremental recovers ~6×",
        coadd_aql / coadd_udf > 8.0 && (4.0..9.0).contains(&(coadd_aql / coadd_inc)),
        format!(
            "UDF {coadd_udf:.0}s, AQL {coadd_aql:.0}s ({:.1}×), incremental {coadd_inc:.0}s ({:.1}× gain)",
            coadd_aql / coadd_udf,
            coadd_aql / coadd_inc
        ),
    );

    // Tuning.
    let t13 = fig13(setup);
    let times13: Vec<f64> = t13
        .rows
        .iter()
        .map(|r| r[1].parse().expect("fig13 time column is a decimal number"))
        .collect();
    let best13 = times13
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("fig13 sweeps at least one worker count")
        .0;
    check(
        "Myria optimum at 4 workers/node",
        best13 == 2,
        format!("times for 1/2/4/6/8 workers: {times13:?}"),
    );
    let pipe = myria_astro_mode(setup, 12, 16, ExecutionMode::Pipelined);
    let pipe24 = myria_astro_mode(setup, 24, 16, ExecutionMode::Pipelined);
    let mat24 = myria_astro_mode(setup, 24, 16, ExecutionMode::Materialized);
    check(
        "memory: pipelined fine at 12 visits, OOM at 24; materialization completes",
        pipe.is_ok() && pipe24.is_err() && mat24.is_ok(),
        format!(
            "pipelined@12 {:?}, pipelined@24 {:?}, materialized@24 ok",
            pipe.is_ok(),
            pipe24.is_err()
        ),
    );
    let c500 = scidb_coadd_time(setup, 24, 500, false);
    let c1000 = scidb_coadd_time(setup, 24, 1000, false);
    let c2000 = scidb_coadd_time(setup, 24, 2000, false);
    check(
        "SciDB chunk 1000² optimal; 500² ~3× slower; 2000² ~+55%",
        c1000 < c500 && c1000 < c2000 && c500 / c1000 > 2.2,
        format!(
            "500² {:.2}×, 2000² {:.2}× of 1000²",
            c500 / c1000,
            c2000 / c1000
        ),
    );

    out
}
