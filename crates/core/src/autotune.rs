//! Self-tuning — the paper's §6 closing direction made concrete.
//!
//! "All systems needed tuning, and none of them performed best with the
//! default settings. … Self-tuning thus remains an important goal for big
//! data systems."
//!
//! Because the cost model and cluster are simulated, the tuning loops the
//! paper ran by hand (Figures 13–14, the chunk sweep) can run as search
//! procedures: evaluate a candidate configuration in the simulator, move
//! toward the best neighbour, stop at a local optimum. This module
//! implements those searches and quantifies the default-vs-tuned gap per
//! engine.

use crate::costmodel::CostModel;
use crate::experiments::Setup;
use crate::lower::{astro, neuro, Engine, EngineProfiles};
use crate::workload::{AstroWorkload, NeuroWorkload};
use simcluster::{simulate, ClusterSpec};

/// Result of one tuning search.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningResult {
    /// The knob's name.
    pub knob: &'static str,
    /// The engine's default setting.
    pub default_value: usize,
    /// Runtime at the default (s).
    pub default_time: f64,
    /// The setting the search chose.
    pub tuned_value: usize,
    /// Runtime at the tuned setting (s).
    pub tuned_time: f64,
    /// Number of simulator evaluations the search spent.
    pub evaluations: usize,
}

impl TuningResult {
    /// Fractional improvement of tuned over default.
    pub fn improvement(&self) -> f64 {
        1.0 - self.tuned_time / self.default_time
    }
}

// scilint: allow(F001, paper-script experiment driver: an infra fault aborts the whole run as the original cluster scripts do; TODO(flow): thread Result into the bench CLI)
fn spark_time(
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
    subjects: usize,
    partitions: Option<usize>,
) -> f64 {
    let w = NeuroWorkload { subjects };
    let g = neuro::spark(&w, cm, profiles, cluster, partitions, true);
    simulate(&g, cluster, profiles.policy(Engine::Spark), false)
        .expect("spark run")
        .makespan
}

/// Tune Spark's partition count for the neuroscience workload by doubling
/// until the runtime stops improving, then refining between the last two
/// candidates (the search a self-tuning layer would run instead of the
/// paper's manual Figure 14 sweep).
pub fn tune_spark_partitions(setup: &Setup, subjects: usize, nodes: usize) -> TuningResult {
    let cluster = setup.cluster_for(Engine::Spark, nodes);
    let mut evals = 0;
    let mut eval = |p: usize| {
        evals += 1;
        spark_time(&setup.cm, &setup.profiles, &cluster, subjects, Some(p))
    };

    // Spark's own default: one partition per storage block.
    let default_p = (NeuroWorkload { subjects }.input_bytes() / engine_rdd::DEFAULT_BLOCK_BYTES)
        .max(1) as usize;
    let default_time = eval(default_p);

    // Doubling phase.
    let mut best_p = 1usize;
    let mut best_t = eval(1);
    let mut p = 2usize;
    let max_p = subjects * NeuroWorkload::VOLUMES;
    while p <= max_p.max(2) {
        let t = eval(p);
        if t < best_t {
            best_t = t;
            best_p = p;
        } else if p > 4 * best_p {
            break; // two doublings past the best: stop
        }
        p *= 2;
    }
    // Refinement between best/2 and best*2.
    let lo = (best_p / 2).max(1);
    let hi = (best_p * 2).min(max_p.max(1));
    let step = ((hi - lo) / 6).max(1);
    let mut q = lo;
    while q <= hi {
        let t = eval(q);
        if t < best_t {
            best_t = t;
            best_p = q;
        }
        q += step;
    }

    TuningResult {
        knob: "Spark partitions",
        default_value: default_p,
        default_time,
        tuned_value: best_p,
        tuned_time: best_t,
        evaluations: evals,
    }
}

/// Tune Myria's workers-per-node for the neuroscience workload (the
/// paper's manual Figure 13 sweep as a search).
// scilint: allow(F001, paper-script experiment driver: an infra fault aborts the whole run as the original cluster scripts do; TODO(flow): thread Result into the bench CLI)
pub fn tune_myria_workers(setup: &Setup, subjects: usize, nodes: usize) -> TuningResult {
    let w = NeuroWorkload { subjects };
    let mut evals = 0;
    let mut eval = |workers: usize| {
        evals += 1;
        let cluster = ClusterSpec::r3_2xlarge(nodes).with_worker_slots(workers);
        let g = neuro::myria(&w, &setup.cm, &setup.profiles, &cluster);
        simulate(&g, &cluster, setup.profiles.policy(Engine::Myria), false)
            .expect("myria run")
            .makespan
    };
    // Myria's unconfigured default: one worker per vCPU.
    let default_w = 8;
    let default_time = eval(default_w);
    // Hill-climb downward/upward from the default over 1..=8.
    let mut best_w = default_w;
    let mut best_t = default_time;
    for candidate in [6usize, 4, 3, 2, 1] {
        let t = eval(candidate);
        if t < best_t {
            best_t = t;
            best_w = candidate;
        } else if candidate < best_w {
            break; // passed the optimum
        }
    }
    TuningResult {
        knob: "Myria workers/node",
        default_value: default_w,
        default_time,
        tuned_value: best_w,
        tuned_time: best_t,
        evaluations: evals,
    }
}

/// Tune SciDB's chunk edge length for the co-addition (the paper's §5.3.1
/// trial-and-error made a search).
// scilint: allow(F001, paper-script experiment driver: an infra fault aborts the whole run as the original cluster scripts do; TODO(flow): thread Result into the bench CLI)
pub fn tune_scidb_chunk(setup: &Setup, visits: usize) -> TuningResult {
    let cluster = setup.cluster_for(Engine::SciDb, 16);
    let w = AstroWorkload { visits };
    let mut evals = 0;
    let mut eval = |chunk: usize| {
        evals += 1;
        let g = astro::scidb_coadd(&w, &setup.cm, &setup.profiles, &cluster, chunk);
        simulate(&g, &cluster, setup.profiles.policy(Engine::SciDb), false)
            .expect("scidb run")
            .makespan
    };
    // A naive default: chunk the sensor's native row length.
    let default_chunk = 4000;
    let default_time = eval(default_chunk);
    let mut best_chunk = default_chunk;
    let mut best_t = default_time;
    for candidate in [2000usize, 1500, 1200, 1000, 800, 600, 500] {
        let t = eval(candidate);
        if t < best_t {
            best_t = t;
            best_chunk = candidate;
        }
    }
    TuningResult {
        knob: "SciDB chunk edge",
        default_value: default_chunk,
        default_time,
        tuned_value: best_chunk,
        tuned_time: best_t,
        evaluations: evals,
    }
}

/// All three searches, for the harness's `autotune` artifact.
pub fn run_all(setup: &Setup) -> Vec<TuningResult> {
    vec![
        tune_spark_partitions(setup, 1, 16),
        tune_myria_workers(setup, 25, 16),
        tune_scidb_chunk(setup, 24),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_search_beats_block_default() {
        let setup = Setup::default();
        let r = tune_spark_partitions(&setup, 1, 16);
        // The paper: the block default (a handful of partitions for one
        // subject) badly under-utilizes a 128-slot cluster.
        assert!(r.default_value < 64, "default {}", r.default_value);
        assert!(r.improvement() > 0.25, "improvement {}", r.improvement());
        assert!(r.tuned_value >= 32, "tuned to {}", r.tuned_value);
        assert!(r.evaluations < 30, "search budget {}", r.evaluations);
    }

    #[test]
    fn myria_search_finds_4_workers() {
        let setup = Setup::default();
        let r = tune_myria_workers(&setup, 25, 16);
        assert_eq!(r.tuned_value, 4, "the Figure 13 optimum");
        assert!(r.improvement() > 0.03, "improvement {}", r.improvement());
    }

    #[test]
    fn scidb_search_lands_near_1000() {
        let setup = Setup::default();
        let r = tune_scidb_chunk(&setup, 24);
        assert!(
            (800..=1200).contains(&r.tuned_value),
            "tuned chunk {}",
            r.tuned_value
        );
        assert!(r.improvement() > 0.3, "improvement {}", r.improvement());
    }
}
