#![warn(missing_docs)]

//! # scibench-core — the comparative image-analytics benchmark
//!
//! The paper's contribution is a benchmark: two scientific image-analytics
//! pipelines implemented on five big-data systems and evaluated for ease
//! of use, performance, scalability and required tuning. This crate is
//! that benchmark:
//!
//! * [`workload`] — the data-size model (the paper's Tables 10a/10b).
//! * [`costmodel`] — every constant of the simulation cost model, with a
//!   calibration path against the real `sciops` kernels.
//! * [`usecases`] — the two pipelines implemented against each engine's
//!   *eager* API at test scale, cross-validated against the `sciops`
//!   reference (the paper's Figures 5–9 code styles).
//! * [`lower`] — per-engine lowering of each pipeline (and each
//!   individual step) to `simcluster` task graphs at paper scale.
//! * [`experiments`] — one driver per table/figure, returning typed rows.
//! * [`complexity`] — the Table 1 implementation-complexity accounting.
//! * [`autotune`] — the §6 "self-tuning" future-work direction implemented
//!   as search procedures over the simulator.
//! * [`report`] — fixed-width table and CSV rendering.

pub mod autotune;
pub mod complexity;
pub mod costmodel;
pub mod experiments;
pub mod lower;
pub mod report;
pub mod usecases;
pub mod workload;
