//! The data-size model: the paper's Tables 10a and 10b.

/// Bytes in one gigabyte as the paper counts them (decimal).
pub const GB: f64 = 1e9;

/// The neuroscience workload: `subjects` HCP-like subjects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeuroWorkload {
    /// Number of subjects (the paper sweeps 1–25).
    pub subjects: usize,
}

impl NeuroWorkload {
    /// Volumes per subject (288 in the S900 protocol).
    pub const VOLUMES: usize = 288;
    /// b=0 calibration volumes among them.
    pub const B0_VOLUMES: usize = 18;
    /// Uncompressed bytes per subject (4.2 GB: 145×145×174×288 float32).
    pub const SUBJECT_BYTES: u64 = 4_200_000_000;
    /// Voxels per volume (145 × 145 × 174).
    pub const VOXELS_PER_VOLUME: u64 = 145 * 145 * 174;

    /// Bytes of one image volume.
    pub fn volume_bytes() -> u64 {
        Self::SUBJECT_BYTES / Self::VOLUMES as u64
    }

    /// Total input bytes (Table 10a's "Input" row).
    pub fn input_bytes(&self) -> u64 {
        self.subjects as u64 * Self::SUBJECT_BYTES
    }

    /// Largest intermediate bytes (Table 10a: 2× the input — the denoised
    /// copy coexists with the input during Step 2N/3N).
    pub fn largest_intermediate_bytes(&self) -> u64 {
        2 * self.input_bytes()
    }

    /// The paper's subject sweep for Figure 10.
    pub fn sweep() -> Vec<NeuroWorkload> {
        [1, 2, 4, 8, 12, 25]
            .into_iter()
            .map(|subjects| NeuroWorkload { subjects })
            .collect()
    }
}

/// The astronomy workload: `visits` HiTS-like visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AstroWorkload {
    /// Number of visits (the paper sweeps 2–24).
    pub visits: usize,
}

impl AstroWorkload {
    /// Sensor exposures per visit.
    pub const SENSORS: usize = 60;
    /// Bytes per sensor image (the paper's "80MB 2D image").
    pub const SENSOR_BYTES: u64 = 80_000_000;
    /// Pixels per sensor (4000 × 4072).
    pub const PIXELS_PER_SENSOR: u64 = 4000 * 4072;
    /// Average exposure→patch fan-out ("each exposure can be part of 1 to
    /// 6 patches"); 2.5 is the paper's measured average data growth.
    pub const PATCH_FANOUT: f64 = 2.5;
    /// Worst-case per-node data growth from skew ("some workers experience
    /// data growth of 6×").
    pub const SKEW_FANOUT: f64 = 6.0;
    /// Sky patches receiving data in the full 24-visit footprint.
    pub const PATCHES: usize = 28;

    /// Bytes per visit (Table 10b: 4.8 GB).
    pub fn visit_bytes() -> u64 {
        Self::SENSORS as u64 * Self::SENSOR_BYTES
    }

    /// Total input bytes (Table 10b's "Input" row).
    pub fn input_bytes(&self) -> u64 {
        self.visits as u64 * Self::visit_bytes()
    }

    /// Largest intermediate bytes (Table 10b: 2.5× the input from patch
    /// replication).
    pub fn largest_intermediate_bytes(&self) -> u64 {
        (self.input_bytes() as f64 * Self::PATCH_FANOUT) as u64
    }

    /// The paper's visit sweep for Figure 10.
    pub fn sweep() -> Vec<AstroWorkload> {
        [2, 4, 8, 12, 24]
            .into_iter()
            .map(|visits| AstroWorkload { visits })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_10a_input_row() {
        // Paper: 4.1, 8.4, 16.8, 33.6, 50.4, 105 GB for 1,2,4,8,12,25.
        let gb: Vec<f64> = NeuroWorkload::sweep()
            .iter()
            .map(|w| w.input_bytes() as f64 / GB)
            .collect();
        let expected = [4.2, 8.4, 16.8, 33.6, 50.4, 105.0];
        for (g, e) in gb.iter().zip(expected) {
            assert!((g - e).abs() < 0.15, "{g} vs {e}");
        }
    }

    #[test]
    fn table_10a_intermediate_is_double() {
        let w = NeuroWorkload { subjects: 12 };
        assert_eq!(w.largest_intermediate_bytes(), 2 * w.input_bytes());
        // 100.8 GB in the paper.
        assert!((w.largest_intermediate_bytes() as f64 / GB - 100.8).abs() < 0.5);
    }

    #[test]
    fn table_10b_rows() {
        // Paper: input 9.6, 19.2, 38.4, 57.6, 115.2; intermediates 24..288.
        let ws = AstroWorkload::sweep();
        let inputs: Vec<f64> = ws.iter().map(|w| w.input_bytes() as f64 / GB).collect();
        let expected = [9.6, 19.2, 38.4, 57.6, 115.2];
        for (g, e) in inputs.iter().zip(expected) {
            assert!((g - e).abs() < 0.1, "{g} vs {e}");
        }
        let inter: Vec<f64> = ws
            .iter()
            .map(|w| w.largest_intermediate_bytes() as f64 / GB)
            .collect();
        let expected_inter = [24.0, 48.0, 96.0, 144.0, 288.0];
        for (g, e) in inter.iter().zip(expected_inter) {
            assert!((g - e).abs() < 0.5, "{g} vs {e}");
        }
    }

    #[test]
    fn volume_bytes_close_to_nifti_payload() {
        // 145·145·174·4 bytes = 14.6 MB per volume.
        let v = NeuroWorkload::volume_bytes() as f64;
        let exact = (NeuroWorkload::VOXELS_PER_VOLUME * 4) as f64;
        assert!((v - exact).abs() / exact < 0.01, "{v} vs {exact}");
    }
}
