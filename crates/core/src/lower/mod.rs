//! Lowering: turning each engine's execution of a use case into a
//! `simcluster` task graph at paper scale.
//!
//! Each function in [`neuro`], [`astro`] and [`ingest`] encodes how one
//! engine *actually executes* the pipeline — its task granularity, where
//! barriers fall, what crosses process/format boundaries, what is pinned
//! where — using the engine crates' profiles for the constants. The
//! simulator then produces makespans whose *relationships* (who wins, by
//! what factor, where crossovers fall) reproduce the paper's figures.

pub mod astro;
pub mod ingest;
pub mod neuro;
pub mod steps;

use engine_array::ArrayEngineProfile;
use engine_dataflow::DataflowEngineProfile;
use engine_rdd::RddEngineProfile;
use engine_rel::RelEngineProfile;
use engine_taskgraph::TaskGraphEngineProfile;
use simcluster::{ClusterSpec, SchedPolicy, TaskGraph};

/// The systems under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The Spark analog (`engine-rdd`).
    Spark,
    /// The Myria analog (`engine-rel`).
    Myria,
    /// The Dask analog (`engine-taskgraph`).
    Dask,
    /// The TensorFlow analog (`engine-dataflow`).
    TensorFlow,
    /// The SciDB analog (`engine-array`).
    SciDb,
}

impl Engine {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Spark => "Spark",
            Engine::Myria => "Myria",
            Engine::Dask => "Dask",
            Engine::TensorFlow => "TensorFlow",
            Engine::SciDb => "SciDB",
        }
    }

    /// The engines able to run the full neuroscience use case end-to-end
    /// (the paper: Dask, Myria, Spark).
    pub fn neuro_e2e() -> [Engine; 3] {
        [Engine::Dask, Engine::Myria, Engine::Spark]
    }

    /// The engines able to run the full astronomy use case end-to-end
    /// (the paper: Spark and Myria; Dask froze, SciDB/TensorFlow could
    /// not express it).
    pub fn astro_e2e() -> [Engine; 2] {
        [Engine::Myria, Engine::Spark]
    }
}

/// All engine profiles plus job-level constants, bundled for the lowering
/// functions.
#[derive(Debug, Clone, Copy)]
pub struct EngineProfiles {
    /// Spark-analog constants.
    pub rdd: RddEngineProfile,
    /// Myria-analog constants.
    pub rel: RelEngineProfile,
    /// Dask-analog constants.
    pub tg: TaskGraphEngineProfile,
    /// TensorFlow-analog constants.
    pub df: DataflowEngineProfile,
    /// SciDB-analog constants.
    pub arr: ArrayEngineProfile,
    /// Job submission overhead for the JVM-based engines (s).
    pub jvm_job_submit: f64,
}

impl Default for EngineProfiles {
    fn default() -> Self {
        EngineProfiles {
            rdd: RddEngineProfile::default(),
            rel: RelEngineProfile::default(),
            tg: TaskGraphEngineProfile::default(),
            df: DataflowEngineProfile::default(),
            arr: ArrayEngineProfile::default(),
            jvm_job_submit: 12.0,
        }
    }
}

impl EngineProfiles {
    /// The scheduling policy an engine runs under.
    pub fn policy(&self, engine: Engine) -> SchedPolicy {
        match engine {
            Engine::Spark => SchedPolicy::LocalityFifo {
                per_task_overhead: self.rdd.per_task_overhead,
            },
            Engine::Myria => SchedPolicy::LocalityFifo {
                per_task_overhead: self.rel.per_task_overhead,
            },
            Engine::Dask => SchedPolicy::WorkStealing {
                per_task_overhead: self.tg.per_task_overhead,
                steal_cost: self.tg.steal_cost,
            },
            Engine::TensorFlow => SchedPolicy::Static {
                per_task_overhead: self.df.step_dispatch_fixed,
            },
            Engine::SciDb => SchedPolicy::Static {
                per_task_overhead: self.arr.chunk_op_overhead,
            },
        }
    }

    /// The static invariants [`plancheck::check`] should enforce against an
    /// engine's lowered task graphs.
    pub fn invariants(&self, engine: Engine) -> plancheck::InvariantProfile {
        match engine {
            Engine::Spark => self.rdd.invariants(),
            Engine::Myria => self.rel.invariants(),
            Engine::Dask => self.tg.invariants(),
            Engine::TensorFlow => self.df.invariants(),
            Engine::SciDb => self.arr.invariants(),
        }
    }

    /// The operator → kernel binding tables for `engine`'s lowerings, for
    /// the scimemo cacheability certifier: the engine's own table first,
    /// then [`SHARED_OP_BINDINGS`] for the labels the cross-engine
    /// lowerings (`astro:*`, `ingest:*`, bare step names) emit. First
    /// match wins; an unlisted label is deliberately unbound and the
    /// certifier treats it as unsafe.
    pub fn op_bindings(&self, engine: Engine) -> [&'static [plancheck::OpBinding]; 2] {
        let own = match engine {
            Engine::Spark => self.rdd.op_bindings(),
            Engine::Myria => self.rel.op_bindings(),
            Engine::Dask => self.tg.op_bindings(),
            Engine::TensorFlow => self.df.op_bindings(),
            Engine::SciDb => self.arr.op_bindings(),
        };
        [own, SHARED_OP_BINDINGS]
    }
}

/// Bindings for the labels every engine's lowerings share: the astronomy
/// stages, the ingest benchmark, and the per-step neuro graphs. Kernel
/// names refer to the sciops entry points the use-case drivers
/// (`crate::usecases`) call for the same stage; the scimemo certifier
/// joins each name over the workspace purity table.
pub const SHARED_OP_BINDINGS: &[plancheck::OpBinding] = &{
    use plancheck::{OpBinding, OpClass};
    // Pure data movement: no kernel runs, output = forwarded inputs.
    const MOVE: OpClass = OpClass::Kernel(&[]);
    [
        // Astronomy stages (lower/astro.rs).
        OpBinding::new("astro:stage-barrier", OpClass::Infra),
        OpBinding::new("astro:preprocess", OpClass::Kernel(&["calibrate_exposure"])),
        OpBinding::new("astro:patch-piece", OpClass::Kernel(&["create_patches"])),
        OpBinding::new("astro:merge", OpClass::Kernel(&["merge_visit_pieces"])),
        OpBinding::new("astro:coadd", OpClass::Kernel(&["coadd_sigma_clip"])),
        OpBinding::new(
            "astro:partial-coadd",
            OpClass::Kernel(&["coadd_sigma_clip"]),
        ),
        OpBinding::new(
            "astro:combine+detect",
            OpClass::Kernel(&["coadd_sigma_clip", "detect_sources"]),
        ),
        OpBinding::new("astro:detect", OpClass::Kernel(&["detect_sources"])),
        OpBinding::new("coadd", OpClass::Kernel(&["coadd_sigma_clip"])),
        // Ingest benchmark (lower/ingest.rs): versioned synthetic inputs,
        // so downloads/conversions are deterministic sources.
        OpBinding::new("ingest:enumerate", OpClass::Infra),
        OpBinding::new("ingest:staged", OpClass::Infra),
        OpBinding::new("ingest:startup", OpClass::Infra),
        OpBinding::new("ingest:convert-npy", OpClass::Source),
        OpBinding::new("ingest:convert-csv", OpClass::Source),
        OpBinding::new("ingest:download", OpClass::Source),
        OpBinding::new("ingest:download+insert", OpClass::Source),
        OpBinding::new("ingest:download+parse", OpClass::Source),
        OpBinding::new("ingest:master-download", OpClass::Source),
        OpBinding::new("ingest:from_array", OpClass::Source),
        OpBinding::new("ingest:aio_input", OpClass::Source),
        OpBinding::new("ingest:distribute", MOVE),
        // Per-step neuro graphs (lower/steps.rs).
        OpBinding::new("filter", OpClass::Kernel(&["segmentation"])),
        OpBinding::new("filter-gather", MOVE),
        OpBinding::new("mean", OpClass::Kernel(&["segmentation"])),
        OpBinding::new("mean-gather", MOVE),
        OpBinding::new("mean-startup", OpClass::Infra),
        OpBinding::new("denoise", OpClass::Kernel(&["nlmeans3d"])),
        OpBinding::new("denoise-startup", OpClass::Infra),
    ]
};

/// Debug-build guard run at the end of every lowering function: the graph
/// must be free of structural, byte-conservation, placement and
/// engine-shape *errors* before it is handed to anything else.
///
/// Memory findings (`M...`) are deliberately NOT fatal here — memory
/// overruns are legitimate outcomes this repo models (Figure 15's
/// pipelined OOM), reported by `plancheck` and decided by the simulator.
/// Compiled to a no-op in release builds.
pub(crate) fn debug_verify(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    profiles: &EngineProfiles,
    engine: Engine,
) {
    if cfg!(debug_assertions) {
        let report = plancheck::check(graph, cluster, &profiles.invariants(engine));
        let fatal: Vec<&plancheck::Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| {
                d.severity == plancheck::Severity::Error
                    && !matches!(
                        d.code,
                        plancheck::Code::M001
                            | plancheck::Code::M002
                            | plancheck::Code::M003
                            | plancheck::Code::M004
                    )
            })
            .collect();
        assert!(
            fatal.is_empty(),
            "{} lowering produced an invalid task graph:\n{}",
            engine.name(),
            report.render_table()
        );
    }
}
