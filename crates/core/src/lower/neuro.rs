//! Neuroscience use case lowering, engine by engine.
//!
//! The pipeline (per subject): ingest → filter b0 → mean → mask →
//! denoise (per volume, masked) → regroup by voxel block → DTM fit.

use crate::costmodel::CostModel;
use crate::lower::EngineProfiles;
use crate::workload::NeuroWorkload;
use simcluster::{ClusterSpec, TaskGraph, TaskSpec};

/// Voxel-block groups the fit shuffle produces per subject.
pub const FIT_BLOCKS: usize = 8;

/// How much resident memory a task holding `bytes` of image data uses
/// (input + output + working copies).
fn work_mem(bytes: u64) -> u64 {
    3 * bytes
}

/// Spark: stages with barriers at every wide dependency; Python-boundary
/// crossings on every closure; optional input caching (§5.3.3); explicit
/// partition count (Figure 14) or the block-count default.
pub fn spark(
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
    partitions: Option<usize>,
    cache_input: bool,
) -> TaskGraph {
    let prof = &profiles.rdd;
    let mut g = TaskGraph::new();
    let input = w.input_bytes();
    let vol_bytes = NeuroWorkload::volume_bytes();
    let n_vols = w.subjects * NeuroWorkload::VOLUMES;
    let p = partitions
        .unwrap_or_else(|| (input.div_ceil(engine_rdd::DEFAULT_BLOCK_BYTES)).max(1) as usize)
        .clamp(1, n_vols);
    let vols_per_part = n_vols as f64 / p as f64;
    let part_bytes = (vols_per_part * vol_bytes as f64) as u64;

    // Job submission + executor allocation + master-side S3 key
    // enumeration (all serial, all fixed-cost).
    let submit = g.add(
        TaskSpec::compute(
            "spark:submit",
            profiles.jvm_job_submit + prof.executor_startup,
        )
        .on_node(0),
    );
    let enumerate = g.add(
        TaskSpec::compute(
            "spark:enumerate",
            n_vols as f64 * prof.ingest_enumeration_per_object,
        )
        .on_node(0)
        .after(&[submit]),
    );

    // Stage 1: parallel ingest into RDD partitions.
    let ingest: Vec<_> = (0..p)
        .map(|_| {
            g.add(
                TaskSpec::compute("spark:ingest", prof.crossing_time(part_bytes))
                    .s3(part_bytes)
                    .output(part_bytes)
                    .mem(work_mem(part_bytes))
                    .after(&[enumerate]),
            )
        })
        .collect();
    let b1 = g.barrier("spark:stage-barrier", &ingest);

    // Stage 2: filter b0 + partial means per partition, then per-subject
    // mean combine + mask; the mask is then broadcast.
    let b0_frac = NeuroWorkload::B0_VOLUMES as f64 / NeuroWorkload::VOLUMES as f64;
    let filter: Vec<_> = (0..p)
        .map(|i| {
            g.add(
                TaskSpec::compute(
                    "spark:filter+partial-mean",
                    (cm.neuro_filter_per_subject + cm.neuro_mean_per_subject) * b0_frac / p as f64
                        * w.subjects as f64
                        + prof.crossing_time((part_bytes as f64 * b0_frac) as u64),
                )
                .output((part_bytes as f64 * b0_frac) as u64 / 8)
                .mem(work_mem(part_bytes))
                .after(&[b1, ingest[i]]),
            )
        })
        .collect();
    let b2 = g.barrier("spark:stage-barrier", &filter);
    let masks: Vec<_> = (0..w.subjects)
        .map(|_| {
            let mut t = TaskSpec::compute(
                "spark:mask",
                cm.neuro_mask_per_subject + prof.crossing_time(vol_bytes),
            )
            .output(vol_bytes / 4)
            .mem(work_mem(8 * vol_bytes))
            .after(&[b2]);
            t.deps.extend_from_slice(&filter);
            g.add(t)
        })
        .collect();
    // Broadcast barrier: every worker receives every mask.
    let b3 = g.barrier("spark:broadcast-mask", &masks);

    // Stage 3: denoise per partition. Without caching, the input lineage
    // is recomputed — the partitions re-read S3 and re-deserialize
    // (§5.3.3's 7–8%).
    let reread = if cache_input { 0 } else { part_bytes };
    let reparse = if cache_input {
        0.0
    } else {
        prof.crossing_time(part_bytes)
    };
    let denoise: Vec<_> = (0..p)
        .map(|i| {
            g.add(
                TaskSpec::compute(
                    "spark:denoise",
                    vols_per_part * cm.neuro_denoise_per_volume
                        + reparse
                        + 2.0 * prof.crossing_time(part_bytes),
                )
                .s3(reread)
                // Each fit consumer pulls only its (subject, block) slice
                // of this partition's shuffle output.
                .output(part_bytes / (FIT_BLOCKS * w.subjects.max(1)) as u64)
                .mem(work_mem(part_bytes))
                .after(&[b3, ingest[i]]),
            )
        })
        .collect();
    let b4 = g.barrier("spark:stage-barrier", &denoise);

    // Stage 4: shuffle to voxel blocks + fit. Each fit task pulls its
    // share of every denoise partition (output_bytes is already the
    // per-consumer share).
    let mut fits = Vec::new();
    for _s in 0..w.subjects {
        for _b in 0..FIT_BLOCKS {
            let mut t = TaskSpec::compute(
                "spark:fit",
                cm.neuro_fit_per_subject / FIT_BLOCKS as f64
                    + 2.0 * prof.crossing_time(NeuroWorkload::SUBJECT_BYTES / FIT_BLOCKS as u64),
            )
            .mem(work_mem(NeuroWorkload::SUBJECT_BYTES / FIT_BLOCKS as u64))
            .after(&[b4]);
            // Wide dependency on the whole denoised RDD.
            t.deps.extend_from_slice(&denoise);
            fits.push(g.add(t));
        }
    }
    g.barrier("spark:collect", &fits);
    super::debug_verify(&g, cluster, profiles, super::Engine::Spark);
    g
}

/// Myria: hash-partitioned workers, selection pushdown, fully pipelined
/// (data-dependencies only — no stage barriers), Python UDF crossings.
pub fn myria(
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let prof = &profiles.rel;
    let mut g = TaskGraph::new();
    let vol_bytes = NeuroWorkload::volume_bytes();
    let workers = cluster.total_slots();

    let submit = g.add(TaskSpec::compute("myria:submit", profiles.jvm_job_submit).on_node(0));

    // Query 1: download only the b0 volumes (the key list is known), mean,
    // mask, broadcast. Hash partitioning pins volume (s,v) to a worker.
    let node_of = |s: usize, v: usize| (s * 131 + v * 31) % cluster.nodes;
    let mut masks = Vec::with_capacity(w.subjects);
    for s in 0..w.subjects {
        let b0_downloads: Vec<_> = (0..NeuroWorkload::B0_VOLUMES)
            .map(|v| {
                g.add(
                    TaskSpec::compute("myria:scan-b0", 0.0)
                        .s3(vol_bytes)
                        .output(vol_bytes)
                        .mem(work_mem(vol_bytes))
                        .on_node(node_of(s, v))
                        .after(&[submit]),
                )
            })
            .collect();
        let mut mean = TaskSpec::compute(
            "myria:mean",
            cm.neuro_mean_per_subject + prof.crossing_time(vol_bytes),
        )
        .output(vol_bytes)
        .mem(work_mem(NeuroWorkload::B0_VOLUMES as u64 * vol_bytes))
        .on_node(node_of(s, 0));
        mean.deps = b0_downloads;
        let mean = g.add(mean);
        let mask = g.add(
            TaskSpec::compute(
                "myria:mask",
                cm.neuro_mask_per_subject + prof.crossing_time(vol_bytes),
            )
            .output(vol_bytes / 4)
            .mem(work_mem(8 * vol_bytes))
            .on_node(node_of(s, 0))
            .after(&[mean]),
        );
        masks.push(mask);
    }
    // Broadcast the mask relation across the cluster (one sync point —
    // the join input must be complete).
    let bcast = g.barrier("myria:broadcast-mask", &masks);

    // Query 2: scan images from S3, join with mask (local after
    // broadcast), denoise per volume, shuffle, fit. Fully pipelined:
    // each volume flows independently.
    let mut denoise_by_subject: Vec<Vec<usize>> = vec![Vec::new(); w.subjects];
    for (s, subject_dens) in denoise_by_subject.iter_mut().enumerate().take(w.subjects) {
        for v in 0..NeuroWorkload::VOLUMES {
            let node = node_of(s, v);
            let dl = g.add(
                TaskSpec::compute("myria:scan", 0.0)
                    .s3(vol_bytes)
                    .output(vol_bytes)
                    .mem(work_mem(vol_bytes))
                    .on_node(node)
                    .after(&[bcast]),
            );
            let den = g.add(
                TaskSpec::compute(
                    "myria:denoise",
                    cm.neuro_denoise_per_volume + 2.0 * prof.crossing_time(vol_bytes),
                )
                .output(vol_bytes / FIT_BLOCKS as u64)
                .mem(work_mem(vol_bytes))
                .on_node(node)
                .after(&[dl]),
            );
            subject_dens.push(den);
        }
    }
    let _ = workers;
    for (s, dens) in denoise_by_subject.iter().enumerate() {
        for b in 0..FIT_BLOCKS {
            let mut t = TaskSpec::compute(
                "myria:fit",
                cm.neuro_fit_per_subject / FIT_BLOCKS as f64
                    + 2.0 * prof.crossing_time(NeuroWorkload::SUBJECT_BYTES / FIT_BLOCKS as u64),
            )
            .mem(work_mem(NeuroWorkload::SUBJECT_BYTES / FIT_BLOCKS as u64))
            .on_node(node_of(s, b * 37 + 5));
            t.deps = dens.clone();
            g.add(t);
        }
    }
    super::debug_verify(&g, cluster, profiles, super::Engine::Myria);
    g
}

/// Dask: a per-subject chain with no cross-subject dependencies — the
/// next step starts as soon as that subject's previous step finished.
/// Large scheduler startup; subjects manually assigned round-robin; the
/// work-stealing policy spreads volume tasks (at a cost).
pub fn dask(
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let prof = &profiles.tg;
    let mut g = TaskGraph::new();
    let vol_bytes = NeuroWorkload::volume_bytes();

    let startup =
        g.add(TaskSpec::compute("dask:scheduler-startup", prof.scheduler_startup).on_node(0));

    for s in 0..w.subjects {
        let home = s % cluster.nodes;
        // Manual ingest placement: the whole subject downloads on its home
        // node, then parses NIfTI in memory.
        // Consumers (per-volume denoise tasks) pull only their volume, so
        // the download's transferable output is one volume's bytes.
        let dl = g.add(
            TaskSpec::compute("dask:download", cm.parse_nifti_per_subject)
                .s3(NeuroWorkload::SUBJECT_BYTES)
                .output(vol_bytes)
                .mem(work_mem(NeuroWorkload::SUBJECT_BYTES))
                .on_node(home)
                .after(&[startup]),
        );
        let filter = g.add(
            TaskSpec::compute("dask:filter", cm.neuro_filter_per_subject)
                .output(NeuroWorkload::SUBJECT_BYTES / 16)
                .mem(work_mem(NeuroWorkload::SUBJECT_BYTES / 16))
                .after(&[dl]),
        );
        let mean = g.add(
            TaskSpec::compute("dask:mean", cm.neuro_mean_per_subject)
                .output(vol_bytes)
                .mem(work_mem(NeuroWorkload::SUBJECT_BYTES / 16))
                .after(&[filter]),
        );
        let mask = g.add(
            TaskSpec::compute("dask:mask", cm.neuro_mask_per_subject)
                .output(vol_bytes / 4)
                .mem(work_mem(8 * vol_bytes))
                .after(&[mean]),
        );
        // Denoise per volume: ready as soon as the mask is — no barrier
        // against other subjects. Volumes prefer the home node (their
        // input lives there) but can be stolen.
        let dens: Vec<_> = (0..NeuroWorkload::VOLUMES)
            .map(|_| {
                g.add(
                    TaskSpec::compute("dask:denoise", cm.neuro_denoise_per_volume)
                        .output(vol_bytes / FIT_BLOCKS as u64)
                        .mem(work_mem(vol_bytes))
                        .after(&[dl, mask]),
                )
            })
            .collect();
        for _b in 0..FIT_BLOCKS {
            let mut t = TaskSpec::compute("dask:fit", cm.neuro_fit_per_subject / FIT_BLOCKS as f64)
                .mem(work_mem(NeuroWorkload::SUBJECT_BYTES / FIT_BLOCKS as u64));
            t.deps = dens.clone();
            g.add(t);
        }
    }
    super::debug_verify(&g, cluster, profiles, super::Engine::Dask);
    g
}

/// TensorFlow: one graph per step with a global barrier and a master
/// round-trip between steps; static volume→device placement; tensor
/// conversion everywhere; axis-3 filtering via full-tensor reshape passes;
/// unmasked denoising. Fit (Step 3N) is not implementable (NA in Table 1).
pub fn tensorflow(
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let prof = &profiles.df;
    let mut g = TaskGraph::new();
    let vol_bytes = NeuroWorkload::volume_bytes();
    let subj_bytes = NeuroWorkload::SUBJECT_BYTES;
    let convert = |bytes: u64| bytes as f64 * prof.tensor_convert_per_byte;

    // Master ingest: downloads + NIfTI parse on node 0, then pipelined
    // sends to the statically assigned workers.
    let mut sends = Vec::new();
    let mut prev_dl = None;
    for s in 0..w.subjects {
        let mut dl = TaskSpec::compute("tf:master-download", cm.parse_nifti_per_subject)
            .s3(subj_bytes)
            .output(subj_bytes)
            .mem(work_mem(subj_bytes))
            .on_node(0);
        // The master's single ingest loop serializes subject downloads.
        if let Some(p) = prev_dl {
            dl = dl.after(&[p]);
        }
        let dl = g.add(dl);
        prev_dl = Some(dl);
        for chunk in 0..cluster.nodes {
            sends.push(
                g.add(
                    TaskSpec::compute("tf:distribute", convert(subj_bytes / cluster.nodes as u64))
                        .output(subj_bytes / cluster.nodes as u64)
                        .mem(work_mem(subj_bytes / cluster.nodes as u64))
                        .on_node((s + chunk + 1) % cluster.nodes)
                        .after(&[dl]),
                ),
            );
        }
    }
    let step_in = g.barrier("tf:step-barrier", &sends);

    // Step: filter — axis-3 selection needs flatten+gather+reshape full
    // passes over every worker's shard, plus conversions both ways.
    let shard = w.input_bytes() / cluster.nodes as u64;
    let pass_cost = shard as f64 / 450e6; // one full memory pass per shard
    let filters: Vec<_> = (0..cluster.nodes)
        .map(|n| {
            g.add(
                TaskSpec::compute(
                    "tf:filter",
                    prof.filter_reshape_passes as f64 * pass_cost + 2.0 * convert(shard),
                )
                .output(shard / 16)
                .mem(work_mem(shard))
                .on_node(n)
                .after(&[step_in]),
            )
        })
        .collect();
    // Results return to the master between steps.
    let mut to_master = TaskSpec::compute("tf:gather", convert(w.input_bytes() / 16))
        .mem(work_mem(w.input_bytes() / 16))
        .on_node(0);
    to_master.deps = filters;
    let gathered = g.add(to_master);
    let b_filter = g.barrier("tf:step-barrier", &[gathered]);

    // Step: mean per subject on statically assigned workers.
    let means: Vec<_> = (0..w.subjects)
        .map(|s| {
            g.add(
                TaskSpec::compute(
                    "tf:mean",
                    cm.neuro_mean_per_subject + 2.0 * convert(subj_bytes / 16),
                )
                .output(vol_bytes)
                .mem(work_mem(subj_bytes / 16))
                .on_node(s % cluster.nodes)
                .after(&[b_filter]),
            )
        })
        .collect();
    let b_mean = g.barrier("tf:step-barrier", &means);

    // Step: simplified mask (threshold), then denoise by convolution —
    // whole volumes, no masking → 1.5× compute — one volume per machine
    // at a time (the paper's memory-forced assignment).
    let masks: Vec<_> = (0..w.subjects)
        .map(|s| {
            g.add(
                TaskSpec::compute("tf:mask-simplified", 2.0 + 2.0 * convert(vol_bytes))
                    .output(vol_bytes / 4)
                    .mem(work_mem(vol_bytes))
                    .on_node(s % cluster.nodes)
                    .after(&[b_mean]),
            )
        })
        .collect();
    let b_mask = g.barrier("tf:step-barrier", &masks);
    let mut dens = Vec::new();
    for s in 0..w.subjects {
        for v in 0..NeuroWorkload::VOLUMES {
            dens.push(
                g.add(
                    TaskSpec::compute(
                        "tf:denoise-conv",
                        cm.neuro_denoise_per_volume * prof.unmasked_inflation(2.0 / 3.0)
                            + 2.0 * convert(vol_bytes),
                    )
                    .output(vol_bytes)
                    .mem(work_mem(vol_bytes) * 2)
                    .on_node((s * NeuroWorkload::VOLUMES + v) % cluster.nodes)
                    .after(&[b_mask]),
                ),
            );
        }
    }
    // Final gather to master.
    let mut fin = TaskSpec::compute("tf:gather", convert(2 * w.input_bytes()))
        .mem(work_mem(w.input_bytes() / 8))
        .on_node(0);
    fin.deps = dens;
    g.add(fin);
    super::debug_verify(&g, cluster, profiles, super::Engine::TensorFlow);
    g
}

/// SciDB neuroscience steps (1N via native ops, 2N via `stream()`):
/// chunk-at-a-time tasks across instances; the full Step 3N is NA.
// scilint: allow(F003, engine ingest boundary: blobs enter the engine's own tuple store, a materializing copy by contract)
pub fn scidb_steps(
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
    include_denoise: bool,
) -> TaskGraph {
    let prof = &profiles.arr;
    let mut g = TaskGraph::new();
    let vol_bytes = NeuroWorkload::volume_bytes();
    // One chunk per volume slab: 288·subjects chunks spread over
    // instances (4 per node).
    let instances = cluster.nodes * prof.instances_per_node;
    let node_of_chunk = |c: usize| (c % instances) / prof.instances_per_node;

    let mut filters = Vec::new();
    for s in 0..w.subjects {
        for v in 0..NeuroWorkload::VOLUMES {
            let c = s * NeuroWorkload::VOLUMES + v;
            // The b0 selection is misaligned with the chunk layout: every
            // chunk is read and reconstructed.
            filters.push(
                g.add(
                    TaskSpec::compute(
                        "scidb:filter",
                        prof.chunk_op_overhead + vol_bytes as f64 * prof.reconstruct_per_byte,
                    )
                    .disk_read(vol_bytes)
                    .output(if v < NeuroWorkload::B0_VOLUMES {
                        vol_bytes
                    } else {
                        0
                    })
                    .mem(work_mem(vol_bytes))
                    .on_node(node_of_chunk(c)),
                ),
            );
        }
    }
    // Mean: per-subject aggregation over the selected chunks — SciDB's
    // sweet spot: native array aggregation, no crossings.
    let mut means = Vec::new();
    for s in 0..w.subjects {
        let mut t = TaskSpec::compute("scidb:mean", cm.neuro_mean_per_subject * 0.5)
            .output(vol_bytes)
            .mem(work_mem(8 * vol_bytes))
            .on_node(node_of_chunk(s));
        t.deps = filters
            [s * NeuroWorkload::VOLUMES..s * NeuroWorkload::VOLUMES + NeuroWorkload::B0_VOLUMES]
            .to_vec();
        means.push(g.add(t));
    }

    if include_denoise {
        // Step 2N through stream(): per-chunk TSV out + UDF + TSV in.
        let tsv_cost = 2.0 * vol_bytes as f64 * prof.tsv_stream_per_byte;
        for (s, &mean) in means.iter().enumerate().take(w.subjects) {
            for v in 0..NeuroWorkload::VOLUMES {
                let c = s * NeuroWorkload::VOLUMES + v;
                g.add(
                    TaskSpec::compute(
                        "scidb:denoise-stream",
                        cm.neuro_denoise_per_volume + tsv_cost + prof.chunk_op_overhead,
                    )
                    .disk_read(vol_bytes)
                    .disk_write(vol_bytes)
                    .mem(work_mem(vol_bytes))
                    .on_node(node_of_chunk(c))
                    .after(&[mean]),
                );
            }
        }
    }
    super::debug_verify(&g, cluster, profiles, super::Engine::SciDb);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::simulate;

    fn setup() -> (CostModel, EngineProfiles, ClusterSpec) {
        (
            CostModel::default(),
            EngineProfiles::default(),
            ClusterSpec::r3_2xlarge(16),
        )
    }

    #[test]
    fn spark_graph_shape() {
        let (cm, prof, cluster) = setup();
        let w = NeuroWorkload { subjects: 2 };
        let g = spark(&w, &cm, &prof, &cluster, Some(64), true);
        assert!(g.len() > 64, "tasks: {}", g.len());
        let r = simulate(
            &g,
            &cluster,
            prof.policy(super::super::Engine::Spark),
            false,
        )
        .unwrap();
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn all_engines_simulate_one_subject() {
        let (cm, prof, cluster) = setup();
        let w = NeuroWorkload { subjects: 1 };
        for (name, g, engine) in [
            (
                "spark",
                spark(&w, &cm, &prof, &cluster, Some(97), true),
                super::super::Engine::Spark,
            ),
            (
                "myria",
                myria(&w, &cm, &prof, &cluster.clone().with_worker_slots(4)),
                super::super::Engine::Myria,
            ),
            (
                "dask",
                dask(&w, &cm, &prof, &cluster),
                super::super::Engine::Dask,
            ),
            (
                "tf",
                tensorflow(&w, &cm, &prof, &cluster),
                super::super::Engine::TensorFlow,
            ),
            (
                "scidb",
                scidb_steps(&w, &cm, &prof, &cluster, true),
                super::super::Engine::SciDb,
            ),
        ] {
            let r = simulate(&g, &cluster, prof.policy(engine), false).unwrap();
            assert!(r.makespan > 1.0, "{name}: {}", r.makespan);
            assert!(r.makespan < 100_000.0, "{name}: {}", r.makespan);
        }
    }

    #[test]
    fn caching_reduces_spark_s3_traffic() {
        let (cm, prof, cluster) = setup();
        let w = NeuroWorkload { subjects: 4 };
        let cached = spark(&w, &cm, &prof, &cluster, Some(97), true);
        let uncached = spark(&w, &cm, &prof, &cluster, Some(97), false);
        let rc = simulate(
            &cached,
            &cluster,
            prof.policy(super::super::Engine::Spark),
            false,
        )
        .unwrap();
        let ru = simulate(
            &uncached,
            &cluster,
            prof.policy(super::super::Engine::Spark),
            false,
        )
        .unwrap();
        assert!(ru.bytes_from_s3 > rc.bytes_from_s3);
        assert!(ru.makespan > rc.makespan);
    }
}
