//! Data-ingest lowering for the neuroscience benchmark (Figure 11).
//!
//! Six configurations, as in the figure: Dask, Myria, Spark, TensorFlow,
//! SciDB-1 (`from_array`) and SciDB-2 (`aio_input`). The paper's setup:
//! "for Myria and Spark we first preprocess the NIfTI files into individual
//! image volumes persisted as pickled NumPy files in S3; the conversion
//! time is included in the data ingest time".

use crate::costmodel::CostModel;
use crate::lower::EngineProfiles;
use crate::workload::NeuroWorkload;
use simcluster::{ClusterSpec, TaskGraph, TaskSpec};

fn work_mem(bytes: u64) -> u64 {
    2 * bytes
}

/// Spark: master-side key enumeration, then parallel download of the
/// staged NumPy volumes into memory RDDs. The NIfTI→NumPy conversion runs
/// first, parallel per subject.
pub fn spark(
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let prof = profiles.rdd;
    let mut g = TaskGraph::new();
    let vol_bytes = NeuroWorkload::volume_bytes();
    let converts: Vec<_> = (0..w.subjects)
        .map(|_| {
            g.add(
                TaskSpec::compute("ingest:convert-npy", cm.convert_nifti_to_npy_per_subject)
                    .s3(NeuroWorkload::SUBJECT_BYTES)
                    .disk_write(NeuroWorkload::SUBJECT_BYTES)
                    .mem(work_mem(NeuroWorkload::SUBJECT_BYTES / 4)),
            )
        })
        .collect();
    let staged = g.barrier("ingest:staged", &converts);
    let n_objects = w.subjects * NeuroWorkload::VOLUMES;
    let enumerate = g.add(
        TaskSpec::compute(
            "ingest:enumerate",
            n_objects as f64 * prof.ingest_enumeration_per_object,
        )
        .on_node(0)
        .after(&[staged]),
    );
    for _ in 0..n_objects {
        g.add(
            TaskSpec::compute("ingest:download", prof.crossing_time(vol_bytes))
                .s3(vol_bytes)
                .mem(work_mem(vol_bytes))
                .after(&[enumerate]),
        );
    }
    super::debug_verify(&g, cluster, profiles, super::Engine::Spark);
    g
}

/// Myria: same staging conversion, but the downloads start straight from a
/// CSV key list (no enumeration) and land in the per-node store.
pub fn myria(
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let prof = profiles.rel;
    let mut g = TaskGraph::new();
    let vol_bytes = NeuroWorkload::volume_bytes();
    let converts: Vec<_> = (0..w.subjects)
        .map(|_| {
            g.add(
                TaskSpec::compute("ingest:convert-npy", cm.convert_nifti_to_npy_per_subject)
                    .s3(NeuroWorkload::SUBJECT_BYTES)
                    .disk_write(NeuroWorkload::SUBJECT_BYTES)
                    .mem(work_mem(NeuroWorkload::SUBJECT_BYTES / 4)),
            )
        })
        .collect();
    let staged = g.barrier("ingest:staged", &converts);
    for _ in 0..w.subjects * NeuroWorkload::VOLUMES {
        g.add(
            TaskSpec::compute(
                "ingest:download+insert",
                vol_bytes as f64 / prof.pg_insert_bw,
            )
            .s3(vol_bytes)
            .disk_write(vol_bytes)
            .mem(work_mem(vol_bytes))
            .after(&[staged]),
        );
    }
    super::debug_verify(&g, cluster, profiles, super::Engine::Myria);
    g
}

/// Dask: whole subjects downloaded to manually assigned nodes (the
/// scheduler does not know download sizes); NIfTI parsed in memory.
/// With ≤16 subjects on 16 nodes every node holds one subject, so the
/// time is flat until subjects exceed the node count.
pub fn dask(
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let prof = profiles.tg;
    let mut g = TaskGraph::new();
    // Ingest is measured on a running cluster: only graph construction
    // and dispatch (a fraction of the full job startup) precede it.
    let startup =
        g.add(TaskSpec::compute("ingest:startup", prof.scheduler_startup * 0.1).on_node(0));
    // One download stream per node: a node assigned k subjects fetches
    // them back-to-back (the paper's flat-until-16-subjects curve).
    let mut prev_on_node: Vec<Option<usize>> = vec![None; cluster.nodes];
    for s in 0..w.subjects {
        let node = s % cluster.nodes;
        let mut t = TaskSpec::compute("ingest:download+parse", cm.parse_nifti_per_subject)
            .s3(NeuroWorkload::SUBJECT_BYTES)
            .mem(work_mem(NeuroWorkload::SUBJECT_BYTES))
            .on_node(node)
            .after(&[startup]);
        if let Some(p) = prev_on_node[node] {
            t = t.after(&[p]);
        }
        prev_on_node[node] = Some(g.add(t));
    }
    super::debug_verify(&g, cluster, profiles, super::Engine::Dask);
    g
}

/// TensorFlow: every byte flows through the master, which parses and then
/// sends partitions to the workers in a pipelined fashion.
pub fn tensorflow(
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let prof = profiles.df;
    let mut g = TaskGraph::new();
    let mut prev = None;
    for s in 0..w.subjects {
        let mut dl = TaskSpec::compute(
            "ingest:master-download",
            cm.parse_nifti_per_subject
                + NeuroWorkload::SUBJECT_BYTES as f64 * prof.tensor_convert_per_byte,
        )
        .s3(NeuroWorkload::SUBJECT_BYTES)
        .output(NeuroWorkload::SUBJECT_BYTES)
        .mem(work_mem(NeuroWorkload::SUBJECT_BYTES))
        .on_node(0);
        if let Some(p) = prev {
            dl = dl.after(&[p]); // the master ingest loop is serial
        }
        let dl = g.add(dl);
        prev = Some(dl);
        for n in 0..cluster.nodes {
            g.add(
                TaskSpec::compute("ingest:distribute", 0.0)
                    .mem(work_mem(
                        NeuroWorkload::SUBJECT_BYTES / cluster.nodes as u64,
                    ))
                    .on_node((s + n + 1) % cluster.nodes)
                    .after(&[dl]),
            );
        }
    }
    super::debug_verify(&g, cluster, profiles, super::Engine::TensorFlow);
    g
}

/// SciDB-1: `from_array()` — NIfTI→NumPy conversion, then the whole
/// array funnels through the client connection serially.
pub fn scidb_from_array(
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let prof = profiles.arr;
    let mut g = TaskGraph::new();
    let mut prev = None;
    for _ in 0..w.subjects {
        let mut convert =
            TaskSpec::compute("ingest:convert-npy", cm.convert_nifti_to_npy_per_subject)
                .s3(NeuroWorkload::SUBJECT_BYTES)
                .mem(work_mem(NeuroWorkload::SUBJECT_BYTES / 4))
                .on_node(0);
        if let Some(p) = prev {
            convert = convert.after(&[p]);
        }
        let convert = g.add(convert);
        // Client-side serial transfer into the engine.
        let load = g.add(
            TaskSpec::compute(
                "ingest:from_array",
                NeuroWorkload::SUBJECT_BYTES as f64 / prof.from_array_client_bw,
            )
            .disk_write(NeuroWorkload::SUBJECT_BYTES)
            .mem(work_mem(NeuroWorkload::SUBJECT_BYTES / 8))
            .on_node(0)
            .after(&[convert]),
        );
        prev = Some(load);
    }
    super::debug_verify(&g, cluster, profiles, super::Engine::SciDb);
    g
}

/// SciDB-2: `aio_input()` — NIfTI→CSV conversion (parallel per subject),
/// then the accelerated parallel CSV load across instances.
pub fn scidb_aio(
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let prof = profiles.arr;
    let mut g = TaskGraph::new();
    let converts: Vec<_> = (0..w.subjects)
        .map(|s| {
            // The conversion runs on the cluster itself: under SciDB's
            // static placement every task needs an explicit home node.
            g.add(
                TaskSpec::compute("ingest:convert-csv", cm.convert_nifti_to_csv_per_subject)
                    .s3(NeuroWorkload::SUBJECT_BYTES)
                    .disk_write(NeuroWorkload::SUBJECT_BYTES * 3) // CSV inflation
                    .mem(work_mem(NeuroWorkload::SUBJECT_BYTES / 4))
                    .on_node(s % cluster.nodes),
            )
        })
        .collect();
    let staged = g.barrier("ingest:staged", &converts);
    // Parallel load: one loader per instance per subject slab.
    let instances = cluster.nodes * prof.instances_per_node;
    let slab = NeuroWorkload::SUBJECT_BYTES * w.subjects as u64 / instances as u64;
    for i in 0..instances {
        g.add(
            TaskSpec::compute(
                "ingest:aio_input",
                slab as f64 * 3.0 * prof.csv_ingest_per_byte / 3.0,
            )
            .disk_read(slab * 3)
            .disk_write(slab)
            .mem(work_mem(slab / 4))
            .on_node(i / prof.instances_per_node)
            .after(&[staged]),
        );
    }
    super::debug_verify(&g, cluster, profiles, super::Engine::SciDb);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::Engine;
    use simcluster::simulate;

    fn run(g: &TaskGraph, cluster: &ClusterSpec, prof: &EngineProfiles, e: Engine) -> f64 {
        simulate(g, cluster, prof.policy(e), false)
            .unwrap()
            .makespan
    }

    #[test]
    fn figure11_orderings_hold() {
        let cm = CostModel::default();
        let prof = EngineProfiles::default();
        let cluster = ClusterSpec::r3_2xlarge(16);
        let w = NeuroWorkload { subjects: 8 };

        let t_spark = run(
            &spark(&w, &cm, &prof, &cluster),
            &cluster,
            &prof,
            Engine::Spark,
        );
        let t_myria = run(
            &myria(&w, &cm, &prof, &cluster),
            &cluster,
            &prof,
            Engine::Myria,
        );
        let t_dask = run(
            &dask(&w, &cm, &prof, &cluster),
            &cluster,
            &prof,
            Engine::Dask,
        );
        let t_tf = run(
            &tensorflow(&w, &cm, &prof, &cluster),
            &cluster,
            &prof,
            Engine::TensorFlow,
        );
        let t_s1 = run(
            &scidb_from_array(&w, &cm, &prof, &cluster),
            &cluster,
            &prof,
            Engine::SciDb,
        );
        let t_s2 = run(
            &scidb_aio(&w, &cm, &prof, &cluster),
            &cluster,
            &prof,
            Engine::SciDb,
        );

        // Figure 11's relationships:
        assert!(
            t_myria < t_spark,
            "Myria {t_myria} beats Spark {t_spark} (no enumeration)"
        );
        assert!(t_s1 > 5.0 * t_s2, "from_array {t_s1} ≫ aio {t_s2}");
        assert!(
            t_s2 > t_myria,
            "aio {t_s2} pays CSV conversion over Myria {t_myria}"
        );
        assert!(
            t_tf > t_spark,
            "master-funneled TF {t_tf} slower than Spark {t_spark}"
        );
        assert!(t_dask > 0.0 && t_s1 > t_dask);
    }

    #[test]
    fn dask_ingest_flat_until_node_count() {
        let cm = CostModel::default();
        let prof = EngineProfiles::default();
        let cluster = ClusterSpec::r3_2xlarge(16);
        let t8 = run(
            &dask(&NeuroWorkload { subjects: 8 }, &cm, &prof, &cluster),
            &cluster,
            &prof,
            Engine::Dask,
        );
        let t16 = run(
            &dask(&NeuroWorkload { subjects: 16 }, &cm, &prof, &cluster),
            &cluster,
            &prof,
            Engine::Dask,
        );
        let t25 = run(
            &dask(&NeuroWorkload { subjects: 25 }, &cm, &prof, &cluster),
            &cluster,
            &prof,
            Engine::Dask,
        );
        assert!((t16 / t8 - 1.0).abs() < 0.05, "flat: {t8} vs {t16}");
        assert!(t25 > 1.3 * t16, "grows past 16 subjects: {t16} vs {t25}");
    }
}
