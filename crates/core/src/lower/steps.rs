//! Individual-step lowering for Figure 12 (filter, mean, denoise, coadd)
//! and the §5.3.1 TensorFlow assignment experiment.
//!
//! Each step runs in isolation with inputs already resident (as in §5.2,
//! which measures the operations on a loaded 16-node cluster).

use crate::costmodel::CostModel;
use crate::lower::{Engine, EngineProfiles};
use crate::workload::NeuroWorkload;
use simcluster::{ClusterSpec, TaskGraph, TaskSpec};

fn work_mem(bytes: u64) -> u64 {
    3 * bytes
}

/// Figure 12a — the b0 filter over all subjects.
pub fn filter_step(
    engine: Engine,
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let mut g = TaskGraph::new();
    let subj_bytes = NeuroWorkload::SUBJECT_BYTES;
    let vol_bytes = NeuroWorkload::volume_bytes();
    let b0_bytes = NeuroWorkload::B0_VOLUMES as u64 * vol_bytes;
    match engine {
        Engine::Myria => {
            // Selection pushdown: the local store returns only matching
            // records; the scan touches the b0 pages.
            for s in 0..w.subjects {
                for v in 0..NeuroWorkload::B0_VOLUMES {
                    g.add(
                        TaskSpec::compute("filter", vol_bytes as f64 / profiles.rel.pg_scan_bw)
                            .disk_read(vol_bytes)
                            .mem(work_mem(vol_bytes))
                            .on_node((s * 31 + v) % cluster.nodes),
                    );
                }
            }
        }
        Engine::Dask => {
            // Data already in worker memory; the filter is a metadata
            // operation per subject.
            for s in 0..w.subjects {
                g.add(
                    TaskSpec::compute("filter", cm.neuro_filter_per_subject)
                        .mem(work_mem(b0_bytes))
                        .on_node(s % cluster.nodes),
                );
            }
        }
        Engine::Spark => {
            // The filter closure runs in the Python worker: every record —
            // i.e. the whole dataset — crosses the serialization boundary.
            let p = 2 * cluster.total_slots();
            let part = subj_bytes * w.subjects as u64 / p as u64;
            for _ in 0..p {
                g.add(
                    TaskSpec::compute(
                        "filter",
                        profiles.rdd.crossing_time(part) + cm.neuro_filter_per_subject / p as f64,
                    )
                    .mem(work_mem(part)),
                );
            }
        }
        Engine::SciDb => {
            // Chunk-misaligned selection: every chunk (one per volume) is
            // read and reconstructed.
            let instances = cluster.nodes * profiles.arr.instances_per_node;
            for s in 0..w.subjects {
                for v in 0..NeuroWorkload::VOLUMES {
                    let c = s * NeuroWorkload::VOLUMES + v;
                    g.add(
                        TaskSpec::compute(
                            "filter",
                            profiles.arr.chunk_op_overhead
                                + vol_bytes as f64 * profiles.arr.reconstruct_per_byte,
                        )
                        .disk_read(vol_bytes)
                        .mem(work_mem(vol_bytes))
                        .on_node((c % instances) / profiles.arr.instances_per_node),
                    );
                }
            }
        }
        Engine::TensorFlow => {
            tf_filter_assignment(&mut g, w, profiles, cluster, 1);
        }
    }
    super::debug_verify(&g, cluster, profiles, engine);
    g
}

/// The TensorFlow filter with an explicit `volumes_per_assignment`
/// granularity — the §5.3.1 experiment that found a 2× spread between
/// assignments.
pub fn tf_filter_assignment(
    g: &mut TaskGraph,
    w: &NeuroWorkload,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
    volumes_per_assignment: usize,
) {
    let prof = profiles.df;
    let vol_bytes = NeuroWorkload::volume_bytes();
    let batch = volumes_per_assignment.max(1);
    let batch_bytes = vol_bytes * batch as u64;
    let n_batches = (w.subjects * NeuroWorkload::VOLUMES).div_ceil(batch);
    // Whole-tensor reshape passes + conversions, one assignment at a time
    // per worker; results return through the master between rounds.
    let mut round_tasks: Vec<usize> = Vec::new();
    let mut prev_round: Option<usize> = None;
    for b in 0..n_batches {
        let node = b % cluster.nodes;
        let pass = prof.filter_reshape_passes as f64 * batch_bytes as f64 / 450e6;
        let convert = 2.0 * batch_bytes as f64 * prof.tensor_convert_per_byte;
        let mut t = TaskSpec::compute("filter", pass + convert + prof.step_dispatch_fixed)
            .output(batch_bytes / 16)
            .mem(work_mem(batch_bytes))
            .on_node(node);
        if let Some(barrier) = prev_round {
            t = t.after(&[barrier]);
        }
        round_tasks.push(g.add(t));
        // A global barrier after each full round of assignments (the
        // Figure 9 `run(...)` loop steps in batches of workers).
        if round_tasks.len() == cluster.nodes {
            let master = g.add(
                TaskSpec::compute("filter-gather", 0.2)
                    .on_node(0)
                    .after(&round_tasks.clone()),
            );
            prev_round = Some(master);
            round_tasks.clear();
        }
    }
}

/// Figure 12b — the per-subject mean of the b0 volumes.
pub fn mean_step(
    engine: Engine,
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let mut g = TaskGraph::new();
    let vol_bytes = NeuroWorkload::volume_bytes();
    let b0_bytes = NeuroWorkload::B0_VOLUMES as u64 * vol_bytes;
    match engine {
        Engine::SciDb => {
            // Native array aggregation — SciDB's specialty. Parallel over
            // chunk groups within each subject.
            let instances = cluster.nodes * profiles.arr.instances_per_node;
            for s in 0..w.subjects {
                for i in 0..NeuroWorkload::B0_VOLUMES {
                    let c = s * NeuroWorkload::B0_VOLUMES + i;
                    g.add(
                        TaskSpec::compute(
                            "mean",
                            cm.neuro_mean_per_subject / NeuroWorkload::B0_VOLUMES as f64 * 0.5
                                + profiles.arr.chunk_op_overhead,
                        )
                        .mem(work_mem(vol_bytes))
                        .on_node((c % instances) / profiles.arr.instances_per_node),
                    );
                }
            }
        }
        Engine::Spark | Engine::Myria => {
            // One group per subject: at small subject counts most of the
            // cluster idles (the paper's super-linear-scaling explanation).
            let crossing = match engine {
                Engine::Spark => profiles.rdd.crossing_time(b0_bytes),
                _ => profiles.rel.crossing_time(b0_bytes),
            };
            for s in 0..w.subjects {
                g.add(
                    TaskSpec::compute("mean", cm.neuro_mean_per_subject + crossing)
                        .mem(work_mem(b0_bytes))
                        .on_node(s % cluster.nodes),
                );
            }
        }
        Engine::Dask => {
            // Parallelized across voxel blocks, but with scheduler startup
            // and stealing overhead dominating at small scale.
            let startup = g.add(
                TaskSpec::compute("mean-startup", profiles.tg.scheduler_startup * 0.15).on_node(0),
            );
            let blocks = 8;
            for _s in 0..w.subjects {
                for _ in 0..blocks {
                    g.add(
                        TaskSpec::compute("mean", cm.neuro_mean_per_subject / blocks as f64)
                            .mem(work_mem(b0_bytes / blocks as u64))
                            .after(&[startup]),
                    );
                }
            }
        }
        Engine::TensorFlow => {
            // Conversion to/from tensors dwarfs the mean itself — and the
            // conversion covers the whole subject tensor, because the
            // volume-axis selection cannot happen before tensors exist.
            for s in 0..w.subjects {
                let convert =
                    2.0 * NeuroWorkload::SUBJECT_BYTES as f64 * profiles.df.tensor_convert_per_byte;
                g.add(
                    TaskSpec::compute("mean", cm.neuro_mean_per_subject + convert)
                        .mem(work_mem(b0_bytes))
                        .on_node(s % cluster.nodes),
                );
            }
            // Results return to the master.
            let deps: Vec<usize> = (0..g.len()).collect();
            let mut t = TaskSpec::compute(
                "mean-gather",
                w.subjects as f64 * vol_bytes as f64 * profiles.df.tensor_convert_per_byte,
            )
            .on_node(0);
            t.deps = deps;
            g.add(t);
        }
    }
    super::debug_verify(&g, cluster, profiles, engine);
    g
}

/// Figure 12c — denoising all volumes.
pub fn denoise_step(
    engine: Engine,
    w: &NeuroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let mut g = TaskGraph::new();
    let vol_bytes = NeuroWorkload::volume_bytes();
    let n_vols = w.subjects * NeuroWorkload::VOLUMES;
    match engine {
        Engine::Spark => {
            for _ in 0..n_vols {
                g.add(
                    TaskSpec::compute(
                        "denoise",
                        cm.neuro_denoise_per_volume + 2.0 * profiles.rdd.crossing_time(vol_bytes),
                    )
                    .mem(work_mem(vol_bytes)),
                );
            }
        }
        Engine::Myria => {
            for i in 0..n_vols {
                g.add(
                    TaskSpec::compute(
                        "denoise",
                        cm.neuro_denoise_per_volume + 2.0 * profiles.rel.crossing_time(vol_bytes),
                    )
                    .mem(work_mem(vol_bytes))
                    .on_node(i % cluster.nodes),
                );
            }
        }
        Engine::Dask => {
            let startup = g.add(
                TaskSpec::compute("denoise-startup", profiles.tg.scheduler_startup * 0.15)
                    .on_node(0),
            );
            for _ in 0..n_vols {
                g.add(
                    TaskSpec::compute("denoise", cm.neuro_denoise_per_volume)
                        .mem(work_mem(vol_bytes))
                        .after(&[startup]),
                );
            }
        }
        Engine::SciDb => {
            // stream(): the reference UDF per chunk, plus TSV both ways.
            let tsv = 2.0 * vol_bytes as f64 * profiles.arr.tsv_stream_per_byte;
            let instances = cluster.nodes * profiles.arr.instances_per_node;
            for i in 0..n_vols {
                g.add(
                    TaskSpec::compute(
                        "denoise",
                        cm.neuro_denoise_per_volume + tsv + profiles.arr.chunk_op_overhead,
                    )
                    .mem(work_mem(vol_bytes))
                    .on_node((i % instances) / profiles.arr.instances_per_node),
                );
            }
        }
        Engine::TensorFlow => {
            // Whole-volume convolution (no mask → 1.5×) + conversions.
            // Memory forces one volume per machine at a time (chained per
            // node), but the convolution's intra-op parallelism uses the
            // node's physical cores.
            let phys = cluster.node.physical_cores() as f64;
            let mut prev_on_node: Vec<Option<usize>> = vec![None; cluster.nodes];
            for i in 0..n_vols {
                let node = i % cluster.nodes;
                let convert = 2.0 * vol_bytes as f64 * profiles.df.tensor_convert_per_byte;
                let inflation = profiles.df.unmasked_inflation(2.0 / 3.0);
                let mut t = TaskSpec::compute(
                    "denoise",
                    cm.neuro_denoise_per_volume * inflation / phys + convert,
                )
                .mem(cluster.node.mem_bytes / 3)
                .on_node(node);
                if let Some(p) = prev_on_node[node] {
                    t = t.after(&[p]);
                }
                prev_on_node[node] = Some(g.add(t));
            }
        }
    }
    super::debug_verify(&g, cluster, profiles, engine);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::simulate;

    fn run(engine: Engine, g: &TaskGraph, cluster: &ClusterSpec, p: &EngineProfiles) -> f64 {
        simulate(g, cluster, p.policy(engine), false)
            .unwrap()
            .makespan
    }

    fn setup() -> (CostModel, EngineProfiles, ClusterSpec) {
        (
            CostModel::default(),
            EngineProfiles::default(),
            ClusterSpec::r3_2xlarge(16),
        )
    }

    #[test]
    fn figure_12a_orderings() {
        let (cm, p, cluster) = setup();
        let w = NeuroWorkload { subjects: 25 };
        let t_myria = run(
            Engine::Myria,
            &filter_step(Engine::Myria, &w, &cm, &p, &cluster),
            &cluster,
            &p,
        );
        let t_dask = run(
            Engine::Dask,
            &filter_step(Engine::Dask, &w, &cm, &p, &cluster),
            &cluster,
            &p,
        );
        let t_spark = run(
            Engine::Spark,
            &filter_step(Engine::Spark, &w, &cm, &p, &cluster),
            &cluster,
            &p,
        );
        let t_scidb = run(
            Engine::SciDb,
            &filter_step(Engine::SciDb, &w, &cm, &p, &cluster),
            &cluster,
            &p,
        );
        let t_tf = run(
            Engine::TensorFlow,
            &filter_step(Engine::TensorFlow, &w, &cm, &p, &cluster),
            &cluster,
            &p,
        );
        // Paper: Myria and Dask fastest; Spark an order of magnitude
        // slower than Dask; SciDB slower than the fast pair; TF slowest by
        // orders of magnitude.
        assert!(
            t_myria < t_spark && t_dask < t_spark,
            "{t_myria} {t_dask} {t_spark}"
        );
        assert!(
            t_spark > 5.0 * t_dask.min(t_myria),
            "spark {t_spark} vs {t_dask}/{t_myria}"
        );
        assert!(t_scidb > t_myria && t_scidb > t_dask, "scidb {t_scidb}");
        assert!(t_tf > 10.0 * t_spark, "tf {t_tf} vs spark {t_spark}");
    }

    #[test]
    fn figure_12b_scidb_fastest_small_scale() {
        let (cm, p, cluster) = setup();
        let w = NeuroWorkload { subjects: 1 };
        let t_scidb = run(
            Engine::SciDb,
            &mean_step(Engine::SciDb, &w, &cm, &p, &cluster),
            &cluster,
            &p,
        );
        let t_spark = run(
            Engine::Spark,
            &mean_step(Engine::Spark, &w, &cm, &p, &cluster),
            &cluster,
            &p,
        );
        let t_dask = run(
            Engine::Dask,
            &mean_step(Engine::Dask, &w, &cm, &p, &cluster),
            &cluster,
            &p,
        );
        let t_tf = run(
            Engine::TensorFlow,
            &mean_step(Engine::TensorFlow, &w, &cm, &p, &cluster),
            &cluster,
            &p,
        );
        assert!(t_scidb < t_spark, "scidb {t_scidb} vs spark {t_spark}");
        assert!(t_scidb < t_dask, "scidb {t_scidb} vs dask {t_dask}");
        assert!(t_tf > 5.0 * t_scidb, "tf {t_tf}");
    }

    #[test]
    fn figure_12c_udf_engines_similar_tf_slower() {
        let (cm, p, cluster) = setup();
        let w = NeuroWorkload { subjects: 25 };
        let t: Vec<f64> = [Engine::Spark, Engine::Myria, Engine::Dask, Engine::SciDb]
            .iter()
            .map(|&e| run(e, &denoise_step(e, &w, &cm, &p, &cluster), &cluster, &p))
            .collect();
        let max = t.iter().cloned().fold(0.0, f64::max);
        let min = t.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.6, "UDF engines within 60%: {t:?}");
        let t_tf = run(
            Engine::TensorFlow,
            &denoise_step(Engine::TensorFlow, &w, &cm, &p, &cluster),
            &cluster,
            &p,
        );
        assert!(t_tf > 1.25 * max, "tf {t_tf} vs max {max}");
    }

    #[test]
    fn tf_assignment_spread_is_about_2x() {
        let (_cm, p, cluster) = setup();
        let w = NeuroWorkload { subjects: 4 };
        let times: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&vpa| {
                let mut g = TaskGraph::new();
                tf_filter_assignment(&mut g, &w, &p, &cluster, vpa);
                simulate(&g, &cluster, p.policy(Engine::TensorFlow), false)
                    .unwrap()
                    .makespan
            })
            .collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 1.5 && max / min < 4.0,
            "spread {}: {times:?}",
            max / min
        );
    }
}
