//! Astronomy use case lowering: Spark, Myria (three memory-management
//! modes), and the SciDB co-addition (with the chunk-size knob and the
//! optional incremental-iteration optimization).
//!
//! The pipeline: ingest FITS → Step 1A pre-process per sensor → Step 2A
//! flatmap to patches + per-(patch, visit) merge → Step 3A sigma-clipped
//! co-addition per patch → Step 4A source detection per patch.

use crate::costmodel::CostModel;
use crate::lower::EngineProfiles;
use crate::workload::AstroWorkload;
use engine_rel::ExecutionMode;
use simcluster::{ClusterSpec, TaskGraph, TaskSpec};

/// Deterministic per-sensor patch fan-out with the paper's 1–6 range and
/// 2.5 average.
pub fn fanout_of(sensor: usize) -> usize {
    const PATTERN: [usize; 8] = [2, 3, 1, 2, 6, 2, 3, 1]; // mean 2.5
    PATTERN[sensor % PATTERN.len()]
}

/// Bytes of one merged (patch, visit) exposure.
pub fn patch_visit_bytes() -> u64 {
    (AstroWorkload::visit_bytes() as f64 * AstroWorkload::PATCH_FANOUT
        / AstroWorkload::PATCHES as f64) as u64
}

fn work_mem(bytes: u64) -> u64 {
    3 * bytes
}

/// Relative data weight per patch: interior patches receive overlapping
/// pieces from many sensors while edge patches see few. This produces the
/// paper's skew: "the astronomy pipeline grows the data by 2.5× on average
/// during processing, but some workers experience data growth of 6×".
/// Weights average 1.0; the two hottest patches land on the same worker
/// under the `patch % nodes` placement, making that worker's growth ~6×.
pub fn patch_weight(patch: usize) -> f64 {
    match patch {
        0 | 16 => 2.2,
        4 => 1.6,
        9 => 1.4,
        20 => 1.3,
        _ => (28.0 - 8.7) / 23.0,
    }
}

/// Which patch a (sensor, piece) lands in: a deterministic draw from the
/// weighted patch distribution.
fn patch_of(sensor: usize, piece: usize) -> usize {
    // Lottery wheel with ~10 slots per unit of weight.
    let mut wheel: Vec<usize> = Vec::with_capacity(288);
    for p in 0..AstroWorkload::PATCHES {
        let slots = (patch_weight(p) * 10.0).round() as usize;
        wheel.extend(std::iter::repeat_n(p, slots.max(1)));
    }
    wheel[(sensor * 7 + piece * 13 + sensor / 9) % wheel.len()]
}

/// Bytes of the merged (patch, visit) exposure of one specific patch.
pub fn patch_visit_bytes_of(patch: usize) -> u64 {
    (patch_visit_bytes() as f64 * patch_weight(patch)) as u64
}

/// Shared structure: build the Step 1A/2A tasks and return, per
/// (patch, visit), the merge task ids. `barriers` inserts Spark-style
/// stage barriers between steps; `mem_factor` scales task memory
/// footprints (pipelined Myria holds more live data).
#[allow(clippy::too_many_arguments)]
fn front_half(
    g: &mut TaskGraph,
    w: &AstroWorkload,
    cm: &CostModel,
    cluster: &ClusterSpec,
    crossing: impl Fn(u64) -> f64,
    barriers: bool,
    materialize_to_disk: bool,
    head: usize,
) -> Vec<Vec<usize>> {
    let sensor_bytes = AstroWorkload::SENSOR_BYTES;
    let node_of = |v: usize, s: usize| (v * 61 + s * 17) % cluster.nodes;

    // Step 1A: ingest + pre-process, one task per sensor exposure.
    let mut pre = Vec::with_capacity(w.visits * AstroWorkload::SENSORS);
    for v in 0..w.visits {
        for s in 0..AstroWorkload::SENSORS {
            let mut t = TaskSpec::compute(
                "astro:preprocess",
                cm.astro_preprocess_per_sensor + 2.0 * crossing(sensor_bytes),
            )
            .s3(sensor_bytes)
            .output(sensor_bytes)
            .mem(work_mem(sensor_bytes))
            .after(&[head]);
            if materialize_to_disk {
                t = t.disk_write(sensor_bytes);
            }
            t.placement = simcluster::Placement::Node(node_of(v, s));
            pre.push(g.add(t));
        }
    }
    let pre_done = if barriers {
        Some(g.barrier("astro:stage-barrier", &pre))
    } else {
        None
    };

    // Step 2A: flatmap each exposure into its patch pieces, then merge per
    // (patch, visit).
    let mut pieces_by_patch_visit: Vec<Vec<Vec<usize>>> =
        vec![vec![Vec::new(); w.visits]; AstroWorkload::PATCHES];
    for v in 0..w.visits {
        for s in 0..AstroWorkload::SENSORS {
            let fan = fanout_of(s);
            let piece_bytes =
                (sensor_bytes as f64 * AstroWorkload::PATCH_FANOUT / fan as f64) as u64;
            let parent = pre[v * AstroWorkload::SENSORS + s];
            for p in 0..fan {
                let mut t = TaskSpec::compute(
                    "astro:patch-piece",
                    cm.astro_crop_per_piece + crossing(piece_bytes),
                )
                .output(piece_bytes)
                .mem(work_mem(piece_bytes))
                .after(&[parent]);
                if let Some(b) = pre_done {
                    t = t.after(&[b]);
                }
                if materialize_to_disk {
                    t = t.disk_write(piece_bytes);
                }
                let id = g.add(t);
                pieces_by_patch_visit[patch_of(s, p)][v].push(id);
            }
        }
    }
    let all_pieces: Vec<usize> = pieces_by_patch_visit
        .iter()
        .flatten()
        .flatten()
        .copied()
        .collect();
    let pieces_done = if barriers {
        Some(g.barrier("astro:stage-barrier", &all_pieces))
    } else {
        None
    };

    // Merge pieces into one exposure per (patch, visit); the shuffle is
    // the cross-node dependency edges. Hot (interior) patches carry more
    // bytes than edge patches.
    let mut merges: Vec<Vec<usize>> = vec![Vec::new(); AstroWorkload::PATCHES];
    for (p, visits) in pieces_by_patch_visit.iter().enumerate() {
        // Hot patches receive more overlapping piece bytes (input skew),
        // but the merged output is one patch-sized exposure regardless.
        let in_bytes = patch_visit_bytes_of(p);
        let out_bytes = patch_visit_bytes();
        for (v, piece_ids) in visits.iter().enumerate() {
            if piece_ids.is_empty() {
                continue;
            }
            let mut t = TaskSpec::compute(
                "astro:merge",
                cm.astro_merge_per_patch_visit + crossing(in_bytes),
            )
            .output(out_bytes)
            .mem(work_mem(in_bytes))
            .on_node(p % cluster.nodes);
            t.deps = piece_ids.clone();
            if let Some(b) = pieces_done {
                t.deps.push(b);
            }
            if materialize_to_disk {
                t = t.disk_write(out_bytes).disk_read(in_bytes);
            }
            let _ = v;
            merges[p].push(g.add(t));
        }
    }
    merges
}

/// Spark: stage barriers, crossings, spill-to-disk memory behaviour
/// (shuffle data partly via disk even when memory is plentiful).
pub fn spark(
    w: &AstroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
) -> TaskGraph {
    let prof = profiles.rdd;
    let mut g = TaskGraph::new();
    let submit = g.add(
        TaskSpec::compute(
            "spark:submit",
            profiles.jvm_job_submit + prof.executor_startup,
        )
        .on_node(0),
    );
    let objects = w.visits * AstroWorkload::SENSORS;
    let head = g.add(
        TaskSpec::compute(
            "spark:enumerate",
            objects as f64 * prof.ingest_enumeration_per_object,
        )
        .on_node(0)
        .after(&[submit]),
    );
    let crossing = move |b: u64| prof.crossing_time(b);
    // Spark's sort shuffle stages a fraction of the data through disk.
    let merges = front_half(&mut g, w, cm, cluster, crossing, true, false, head);
    let all_merges: Vec<usize> = merges.iter().flatten().copied().collect();
    let b = g.barrier("astro:stage-barrier", &all_merges);
    let coadd_scale = w.visits as f64 / 24.0;
    let mut detects = Vec::new();
    for (p, visit_merges) in merges.iter().enumerate() {
        let pv_bytes = patch_visit_bytes();
        let spill = (pv_bytes as f64 * w.visits as f64 * prof.shuffle_disk_fraction) as u64;
        let mut t = TaskSpec::compute(
            "astro:coadd",
            cm.astro_coadd_per_patch * coadd_scale
                + 2.0 * prof.crossing_time(pv_bytes * w.visits as u64),
        )
        .mem(work_mem(pv_bytes * w.visits as u64))
        .disk_write(spill / 2)
        .disk_read(spill / 2)
        .output(pv_bytes)
        .after(&[b]);
        t.deps.extend_from_slice(visit_merges);
        let coadd = g.add(t);
        detects.push(
            g.add(
                TaskSpec::compute(
                    "astro:detect",
                    cm.astro_detect_per_patch + 2.0 * prof.crossing_time(pv_bytes),
                )
                .mem(work_mem(pv_bytes))
                .after(&[coadd]),
            ),
        );
        let _ = p;
    }
    g.barrier("spark:collect", &detects);
    super::debug_verify(&g, cluster, profiles, super::Engine::Spark);
    g
}

/// Myria in one of its three memory-management modes (Figure 15).
/// Returns the graph and whether the run must fail on memory exhaustion
/// (pipelined execution has no fallback).
pub fn myria(
    w: &AstroWorkload,
    cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
    mode: ExecutionMode,
) -> (TaskGraph, bool) {
    let prof = profiles.rel;
    let mut g = TaskGraph::new();
    let submit = g.add(TaskSpec::compute("myria:submit", profiles.jvm_job_submit).on_node(0));
    let crossing = move |b: u64| prof.crossing_time(b);
    let coadd_scale = w.visits as f64 / 24.0;

    let (g, strict) = match mode {
        ExecutionMode::Pipelined => {
            // No barriers, nothing touches disk — but every (patch, visit)
            // exposure stays resident from merge until its coadd consumes
            // it: the coadd task's footprint is the whole visit stack,
            // and merges themselves hold buffered input pieces.
            let merges = front_half(&mut g, w, cm, cluster, crossing, false, false, submit);
            for (p, visit_merges) in merges.iter().enumerate() {
                let pv_bytes = patch_visit_bytes();
                let mut t = TaskSpec::compute(
                    "astro:coadd",
                    cm.astro_coadd_per_patch * coadd_scale
                        + 2.0 * prof.crossing_time(pv_bytes * w.visits as u64),
                )
                // The pipelined operator buffers all its inputs plus
                // accumulator and output copies.
                .mem(3 * pv_bytes * w.visits as u64)
                .output(pv_bytes)
                .on_node(p % cluster.nodes);
                t.deps = visit_merges.clone();
                let coadd = g.add(t);
                g.add(
                    TaskSpec::compute(
                        "astro:detect",
                        cm.astro_detect_per_patch + 2.0 * prof.crossing_time(pv_bytes),
                    )
                    .mem(work_mem(pv_bytes))
                    .after(&[coadd]),
                );
            }
            (g, true)
        }
        ExecutionMode::Materialized => {
            // Intermediates spill through local disk between operators;
            // the coadd streams one visit at a time from disk so its
            // resident footprint is small.
            let merges = front_half(&mut g, w, cm, cluster, crossing, false, true, submit);
            for (p, visit_merges) in merges.iter().enumerate() {
                let pv_bytes = patch_visit_bytes();
                let mut t = TaskSpec::compute(
                    "astro:coadd",
                    cm.astro_coadd_per_patch * coadd_scale
                        + 2.0 * prof.crossing_time(pv_bytes * w.visits as u64),
                )
                .mem(work_mem(2 * pv_bytes))
                .disk_read(pv_bytes * w.visits as u64)
                .output(pv_bytes)
                .on_node(p % cluster.nodes);
                t.deps = visit_merges.clone();
                let coadd = g.add(t);
                g.add(
                    TaskSpec::compute(
                        "astro:detect",
                        cm.astro_detect_per_patch + 2.0 * prof.crossing_time(pv_bytes),
                    )
                    .mem(work_mem(pv_bytes))
                    .after(&[coadd]),
                );
            }
            (g, true)
        }
        ExecutionMode::MultiQuery { pieces } => {
            // Visits are processed in `pieces` sequential sub-queries;
            // each materializes partial per-patch stacks to disk; a final
            // query combines them. Memory stays bounded by the subset.
            let pieces = pieces.clamp(1, w.visits);
            let mut partials: Vec<Vec<usize>> = vec![Vec::new(); AstroWorkload::PATCHES];
            let mut prev_done = submit;
            for q in 0..pieces {
                let lo = q * w.visits / pieces;
                let hi = (q + 1) * w.visits / pieces;
                let sub = AstroWorkload { visits: hi - lo };
                if sub.visits == 0 {
                    continue;
                }
                // Each sub-query pays its own dispatch and materializes.
                let qhead = g.add(
                    TaskSpec::compute("myria:subquery", profiles.jvm_job_submit * 0.5)
                        .on_node(0)
                        .after(&[prev_done]),
                );
                let merges = front_half(&mut g, &sub, cm, cluster, crossing, false, true, qhead);
                let mut ends = Vec::new();
                for (p, visit_merges) in merges.iter().enumerate() {
                    if visit_merges.is_empty() {
                        continue;
                    }
                    let pv_bytes = patch_visit_bytes();
                    let mut t = TaskSpec::compute(
                        "astro:partial-coadd",
                        cm.astro_coadd_per_patch * (sub.visits as f64 / 24.0)
                            + 2.0 * prof.crossing_time(pv_bytes * sub.visits as u64),
                    )
                    .mem(work_mem(2 * pv_bytes))
                    .disk_read(pv_bytes * sub.visits as u64)
                    .disk_write(2 * pv_bytes)
                    .output(2 * pv_bytes)
                    .on_node(p % cluster.nodes);
                    t.deps = visit_merges.clone();
                    let id = g.add(t);
                    partials[p].push(id);
                    ends.push(id);
                }
                prev_done = g.barrier("myria:subquery-done", &ends);
            }
            for (p, parts) in partials.iter().enumerate() {
                let pv_bytes = patch_visit_bytes();
                let mut t = TaskSpec::compute(
                    "astro:combine+detect",
                    cm.astro_detect_per_patch
                        + 2.0 * prof.crossing_time(pv_bytes)
                        + cm.astro_coadd_per_patch * 0.1,
                )
                .mem(work_mem(pv_bytes))
                .on_node(p % cluster.nodes)
                .after(&[prev_done]);
                t.deps.extend_from_slice(parts);
                g.add(t);
            }
            (g, true)
        }
    };
    super::debug_verify(&g, cluster, profiles, super::Engine::Myria);
    (g, strict)
}

/// SciDB co-addition (Step 3A only, as in Figure 12d): iterative AQL over
/// chunked arrays. Without incremental iteration every clipping round
/// re-scans and re-materializes full-size arrays through the interpreted
/// cell-expression evaluator; with it, only the changed state is touched
/// (the 6× optimization).
pub fn scidb_coadd(
    w: &AstroWorkload,
    _cm: &CostModel,
    profiles: &EngineProfiles,
    cluster: &ClusterSpec,
    chunk_px: usize,
) -> TaskGraph {
    let prof = profiles.arr;
    let mut g = TaskGraph::new();
    let total_cells: f64 =
        (w.visits as u64 * AstroWorkload::PIXELS_PER_SENSOR * AstroWorkload::SENSORS as u64) as f64;
    let chunk_cells = (chunk_px * chunk_px) as f64;
    let n_chunks = (total_cells / chunk_cells).ceil() as usize;
    let chunk_bytes = (chunk_cells * 4.0) as u64;

    // The interpreted AQL evaluator's per-cell-per-pass cost, and the
    // number of full-data passes the iterative query plan makes: per
    // clipping iteration, the mean, the stddev and the outlier-masking
    // join each read the base array plus the previous intermediates.
    let cell_eval = 8.75e-8;
    // Per chunk, per pass: operator dispatch, chunk-map lookup, MVCC
    // version bookkeeping of the stored intermediates. This is what makes
    // small chunks expensive (the 3×-slower 500² configuration).
    let aql_chunk_pass_overhead = 0.2;
    let passes: f64 = if prof.incremental_iteration {
        // Incremental state reuse: one pass per iteration plus the final
        // aggregation (the [34] optimization's ~6×).
        20.0 / 6.0
    } else {
        20.0
    };
    let stores: f64 = if prof.incremental_iteration { 1.0 } else { 7.0 };

    // Working-set penalty: the clipping operators hold every visit's
    // version of a chunk; once that overflows the per-instance working
    // memory, operator buffers spill and thrash (the +22% / +55% of the
    // 1500² and 2000² configurations).
    let mem_penalty = {
        let working_set = chunk_bytes as f64 * w.visits as f64;
        let budget = 96e6; // comfortable at 1000² chunks × 24 visits
        let r = working_set / budget;
        if r <= 1.0 {
            1.0
        } else {
            1.0 + 1.45 * (r - 1.0).powf(0.75)
        }
    };

    let instances = cluster.nodes * prof.instances_per_node;
    let per_chunk_compute =
        cell_eval * chunk_cells * passes * mem_penalty + passes * aql_chunk_pass_overhead;
    let per_chunk_disk_r = (chunk_bytes as f64 * passes) as u64;
    let per_chunk_disk_w = (chunk_bytes as f64 * stores) as u64;

    for c in 0..n_chunks {
        let node = (c % instances) / prof.instances_per_node;
        g.add(
            TaskSpec::compute("scidb:coadd-chunk", per_chunk_compute)
                .disk_read(per_chunk_disk_r)
                .disk_write(per_chunk_disk_w)
                .mem(3 * chunk_bytes * w.visits.min(4) as u64)
                .on_node(node),
        );
    }
    super::debug_verify(&g, cluster, profiles, super::Engine::SciDb);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::Engine;
    use simcluster::simulate;

    fn setup() -> (CostModel, EngineProfiles, ClusterSpec) {
        (
            CostModel::default(),
            EngineProfiles::default(),
            ClusterSpec::r3_2xlarge(16),
        )
    }

    #[test]
    fn fanout_average_is_2_5() {
        let total: usize = (0..AstroWorkload::SENSORS).map(fanout_of).sum();
        let avg = total as f64 / AstroWorkload::SENSORS as f64;
        assert!((avg - 2.5).abs() < 0.1, "avg fan-out {avg}");
        assert!((1..=6).contains(&fanout_of(4)));
    }

    #[test]
    fn spark_and_myria_run_end_to_end() {
        let (cm, prof, cluster) = setup();
        let w = AstroWorkload { visits: 4 };
        let gs = spark(&w, &cm, &prof, &cluster);
        let rs = simulate(&gs, &cluster, prof.policy(Engine::Spark), false).unwrap();
        assert!(rs.makespan > 10.0);
        let myria_cluster = cluster.clone().with_worker_slots(4);
        let (gm, strict) = myria(&w, &cm, &prof, &myria_cluster, ExecutionMode::Pipelined);
        let rm = simulate(&gm, &myria_cluster, prof.policy(Engine::Myria), strict).unwrap();
        assert!(rm.makespan > 10.0);
    }

    #[test]
    fn pipelined_fails_only_at_large_scale() {
        let (cm, prof, cluster) = setup();
        let myria_cluster = cluster.clone().with_worker_slots(4);
        let small = AstroWorkload { visits: 8 };
        let (g, strict) = myria(&small, &cm, &prof, &myria_cluster, ExecutionMode::Pipelined);
        assert!(simulate(&g, &myria_cluster, prof.policy(Engine::Myria), strict).is_ok());
        let big = AstroWorkload { visits: 24 };
        let (g, strict) = myria(&big, &cm, &prof, &myria_cluster, ExecutionMode::Pipelined);
        let res = simulate(&g, &myria_cluster, prof.policy(Engine::Myria), strict);
        assert!(res.is_err(), "24 visits should exhaust pipelined memory");
        // Materialized completes at the same scale.
        let (g, strict) = myria(
            &big,
            &cm,
            &prof,
            &myria_cluster,
            ExecutionMode::Materialized,
        );
        assert!(simulate(&g, &myria_cluster, prof.policy(Engine::Myria), strict).is_ok());
    }

    #[test]
    fn scidb_coadd_much_slower_than_udf_engines() {
        let (cm, prof, _) = setup();
        let cluster = ClusterSpec::r3_2xlarge(16).with_worker_slots(4);
        let w = AstroWorkload { visits: 24 };
        let g_scidb = scidb_coadd(&w, &cm, &prof, &cluster, 1000);
        let r_scidb = simulate(&g_scidb, &cluster, prof.policy(Engine::SciDb), false).unwrap();
        // The comparable Figure 12d bars: the coadd step alone on the UDF
        // engines (28 patch tasks with the reference kernel inside).
        let mut g_udf = TaskGraph::new();
        for p in 0..AstroWorkload::PATCHES {
            g_udf.add(
                TaskSpec::compute("coadd", cm.astro_coadd_per_patch).on_node(p % cluster.nodes),
            );
        }
        let r_udf = simulate(&g_udf, &cluster, prof.policy(Engine::Myria), false).unwrap();
        assert!(
            r_scidb.makespan > 8.0 * r_udf.makespan,
            "scidb {} vs udf coadd {}",
            r_scidb.makespan,
            r_udf.makespan
        );
        // Incremental iteration recovers most of it (the paper's ~6×).
        let mut prof_inc = prof;
        prof_inc.arr = prof_inc.arr.with_incremental_iteration();
        let g_inc = scidb_coadd(&w, &cm, &prof_inc, &cluster, 1000);
        let r_inc = simulate(&g_inc, &cluster, prof.policy(Engine::SciDb), false).unwrap();
        let speedup = r_scidb.makespan / r_inc.makespan;
        assert!(
            (4.0..9.0).contains(&speedup),
            "incremental speedup {speedup}"
        );
    }
}
