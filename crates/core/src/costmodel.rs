//! The simulation cost model.
//!
//! Every constant the lowering uses. Compute constants are single-core
//! seconds at the paper's full data geometry ("reference-implementation
//! seconds"); the engines' relative behaviour comes from *their* profile
//! constants (crossing costs, overheads, scheduling), not from these.
//!
//! [`CostModel::calibrated`] optionally rescales the kernel constants by
//! measuring the real Rust kernels at test scale and extrapolating by
//! voxel/pixel count, so the relative weights of the pipeline steps track
//! the real implementations on the host machine.

use crate::workload::{AstroWorkload, NeuroWorkload};
use std::time::Instant;

/// Single-core kernel and conversion costs at paper-scale geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    // ---- neuroscience kernels (seconds, per unit noted) ----
    /// Select the 18 b0 volumes of one subject (metadata + copy).
    pub neuro_filter_per_subject: f64,
    /// Mean of the b0 volumes of one subject.
    pub neuro_mean_per_subject: f64,
    /// `median_otsu` mask construction for one subject.
    pub neuro_mask_per_subject: f64,
    /// Non-local-means denoising of one masked volume.
    pub neuro_denoise_per_volume: f64,
    /// Diffusion-tensor fit for one whole subject (parallelizable across
    /// voxel blocks).
    pub neuro_fit_per_subject: f64,

    // ---- astronomy kernels ----
    /// Step 1A calibration of one sensor exposure.
    pub astro_preprocess_per_sensor: f64,
    /// Cutting one exposure↔patch piece (Step 2A).
    pub astro_crop_per_piece: f64,
    /// Merging one visit's pieces into one patch exposure.
    pub astro_merge_per_patch_visit: f64,
    /// Sigma-clipped co-addition of one patch across 24 visits.
    pub astro_coadd_per_patch: f64,
    /// Source detection on one patch coadd.
    pub astro_detect_per_patch: f64,

    // ---- format conversions (per subject / per visit) ----
    /// NIfTI → per-volume NumPy staging of one subject (the Spark/Myria
    /// pre-ingest conversion; included in their ingest time).
    pub convert_nifti_to_npy_per_subject: f64,
    /// NIfTI → CSV conversion of one subject (the SciDB `aio_input` path;
    /// "a little larger than the NIfTI-to-NumPy overhead").
    pub convert_nifti_to_csv_per_subject: f64,
    /// FITS → CSV conversion of one visit (SciDB astronomy ingest).
    pub convert_fits_to_csv_per_visit: f64,
    /// Parse one subject's NIfTI into in-memory arrays (Dask/TF ingest).
    pub parse_nifti_per_subject: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            neuro_filter_per_subject: 0.6,
            neuro_mean_per_subject: 4.0,
            neuro_mask_per_subject: 70.0,
            neuro_denoise_per_volume: 40.0,
            neuro_fit_per_subject: 600.0,

            astro_preprocess_per_sensor: 25.0,
            astro_crop_per_piece: 1.5,
            astro_merge_per_patch_visit: 2.5,
            astro_coadd_per_patch: 95.0,
            astro_detect_per_patch: 30.0,

            convert_nifti_to_npy_per_subject: 35.0,
            convert_nifti_to_csv_per_subject: 140.0,
            convert_fits_to_csv_per_visit: 70.0,
            parse_nifti_per_subject: 12.0,
        }
    }
}

impl CostModel {
    /// Denoising cost of one *unmasked* volume (the TensorFlow path:
    /// the brain is ~2/3 of the volume, so masked compute is 2/3 of full).
    pub fn neuro_denoise_per_volume_unmasked(&self) -> f64 {
        self.neuro_denoise_per_volume * 1.5
    }

    /// Single-core seconds to denoise everything for `w`.
    pub fn neuro_total_denoise(&self, w: &NeuroWorkload) -> f64 {
        w.subjects as f64 * NeuroWorkload::VOLUMES as f64 * self.neuro_denoise_per_volume
    }

    /// Single-core seconds of Step 1A for `w`.
    pub fn astro_total_preprocess(&self, w: &AstroWorkload) -> f64 {
        (w.visits * AstroWorkload::SENSORS) as f64 * self.astro_preprocess_per_sensor
    }

    /// Calibrate the neuroscience kernel constants by running the real
    /// Rust kernels on a small phantom and extrapolating by voxel count.
    ///
    /// Keeps the paper-scale constants' *meaning* (single-core seconds at
    /// full geometry) but derives their ratios from measurements.
    pub fn calibrated() -> CostModel {
        use sciops::neuro::{median_otsu, nlmeans3d, NlmParams};
        use sciops::synth::dmri::{DmriPhantom, DmriSpec};

        let spec = DmriSpec::test_scale();
        let phantom = DmriPhantom::generate(1, &spec);
        let data: marray::NdArray<f64> = phantom.data.cast();
        let (mean_b0, mask) = sciops::neuro::pipeline::segmentation(&data, &phantom.gtab);

        let small_voxels: f64 = spec.dims.iter().product::<usize>() as f64;
        let full_voxels = NeuroWorkload::VOXELS_PER_VOLUME as f64;
        let voxel_scale = full_voxels / small_voxels;

        // Measure one denoised volume and one mask build.
        let vol = data.slice_axis(3, 0).expect("volume 0");
        let nlm = NlmParams {
            search_radius: 2,
            patch_radius: 1,
            sigma: 20.0,
            h_factor: 1.0,
        };
        let t0 = Instant::now();
        let _ = nlmeans3d(&vol, Some(&mask), &nlm);
        let denoise_small = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let _ = median_otsu(&mean_b0, 1);
        let mask_small = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let _ = data.mean_axis(3);
        let mean_small =
            t2.elapsed().as_secs_f64() * (NeuroWorkload::B0_VOLUMES as f64 / spec.n_volumes as f64);

        CostModel {
            neuro_denoise_per_volume: (denoise_small * voxel_scale).max(1.0),
            neuro_mask_per_subject: (mask_small * voxel_scale).max(0.5),
            neuro_mean_per_subject: (mean_small * voxel_scale).max(0.1),
            ..CostModel::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denoise_dominates_neuro() {
        // The paper: "the bulk of the processing happens in the
        // user-defined denoising function".
        let m = CostModel::default();
        let w = NeuroWorkload { subjects: 1 };
        let denoise = m.neuro_total_denoise(&w);
        let rest = m.neuro_filter_per_subject
            + m.neuro_mean_per_subject
            + m.neuro_mask_per_subject
            + m.neuro_fit_per_subject;
        assert!(denoise > 10.0 * rest, "denoise {denoise} vs rest {rest}");
    }

    #[test]
    fn unmasked_denoise_is_1_5x() {
        let m = CostModel::default();
        assert!(
            (m.neuro_denoise_per_volume_unmasked() / m.neuro_denoise_per_volume - 1.5).abs()
                < 1e-12
        );
    }

    #[test]
    fn csv_conversion_costs_more_than_npy() {
        // Figure 11's analysis: "the NIfTI-to-CSV conversion overhead for
        // SciDB is a little larger than the NIfTI-to-NumPy overhead".
        let m = CostModel::default();
        assert!(m.convert_nifti_to_csv_per_subject > m.convert_nifti_to_npy_per_subject);
        // CSV is ~6× the bytes of the binary form; the conversion stays
        // within that byte-inflation multiple of the NumPy staging cost.
        assert!(m.convert_nifti_to_csv_per_subject < 6.0 * m.convert_nifti_to_npy_per_subject);
    }

    #[test]
    fn calibration_keeps_denoise_dominant() {
        let m = CostModel::calibrated();
        assert!(
            m.neuro_denoise_per_volume > m.neuro_mean_per_subject,
            "denoise {} vs mean {}",
            m.neuro_denoise_per_volume,
            m.neuro_mean_per_subject
        );
        assert!(m.neuro_denoise_per_volume >= 1.0);
    }
}
