//! The simulation cost model.
//!
//! Every constant the lowering uses. Compute constants are single-core
//! seconds at the paper's full data geometry ("reference-implementation
//! seconds"); the engines' relative behaviour comes from *their* profile
//! constants (crossing costs, overheads, scheduling), not from these.
//!
//! [`CostModel::calibrated`] optionally rescales the kernel constants by
//! measuring the real Rust kernels at test scale and extrapolating by
//! voxel/pixel count, so the relative weights of the pipeline steps track
//! the real implementations on the host machine.

use crate::workload::{AstroWorkload, NeuroWorkload};
use std::time::Instant;

/// Single-core kernel and conversion costs at paper-scale geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    // ---- neuroscience kernels (seconds, per unit noted) ----
    /// Select the 18 b0 volumes of one subject (metadata + copy).
    pub neuro_filter_per_subject: f64,
    /// Mean of the b0 volumes of one subject.
    pub neuro_mean_per_subject: f64,
    /// `median_otsu` mask construction for one subject.
    pub neuro_mask_per_subject: f64,
    /// Non-local-means denoising of one masked volume.
    pub neuro_denoise_per_volume: f64,
    /// Diffusion-tensor fit for one whole subject (parallelizable across
    /// voxel blocks).
    pub neuro_fit_per_subject: f64,

    // ---- astronomy kernels ----
    /// Step 1A calibration of one sensor exposure.
    pub astro_preprocess_per_sensor: f64,
    /// Cutting one exposure↔patch piece (Step 2A).
    pub astro_crop_per_piece: f64,
    /// Merging one visit's pieces into one patch exposure.
    pub astro_merge_per_patch_visit: f64,
    /// Sigma-clipped co-addition of one patch across 24 visits.
    pub astro_coadd_per_patch: f64,
    /// Source detection on one patch coadd.
    pub astro_detect_per_patch: f64,

    // ---- format conversions (per subject / per visit) ----
    /// NIfTI → per-volume NumPy staging of one subject (the Spark/Myria
    /// pre-ingest conversion; included in their ingest time).
    pub convert_nifti_to_npy_per_subject: f64,
    /// NIfTI → CSV conversion of one subject (the SciDB `aio_input` path;
    /// "a little larger than the NIfTI-to-NumPy overhead").
    pub convert_nifti_to_csv_per_subject: f64,
    /// FITS → CSV conversion of one visit (SciDB astronomy ingest).
    pub convert_fits_to_csv_per_visit: f64,
    /// Parse one subject's NIfTI into in-memory arrays (Dask/TF ingest).
    pub parse_nifti_per_subject: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            neuro_filter_per_subject: 0.6,
            neuro_mean_per_subject: 4.0,
            neuro_mask_per_subject: 70.0,
            neuro_denoise_per_volume: 40.0,
            neuro_fit_per_subject: 600.0,

            astro_preprocess_per_sensor: 25.0,
            astro_crop_per_piece: 1.5,
            astro_merge_per_patch_visit: 2.5,
            astro_coadd_per_patch: 95.0,
            astro_detect_per_patch: 30.0,

            convert_nifti_to_npy_per_subject: 35.0,
            convert_nifti_to_csv_per_subject: 140.0,
            convert_fits_to_csv_per_visit: 70.0,
            parse_nifti_per_subject: 12.0,
        }
    }
}

impl CostModel {
    /// Denoising cost of one *unmasked* volume (the TensorFlow path:
    /// the brain is ~2/3 of the volume, so masked compute is 2/3 of full).
    pub fn neuro_denoise_per_volume_unmasked(&self) -> f64 {
        self.neuro_denoise_per_volume * 1.5
    }

    /// Single-core seconds to denoise everything for `w`.
    pub fn neuro_total_denoise(&self, w: &NeuroWorkload) -> f64 {
        w.subjects as f64 * NeuroWorkload::VOLUMES as f64 * self.neuro_denoise_per_volume
    }

    /// Single-core seconds of Step 1A for `w`.
    pub fn astro_total_preprocess(&self, w: &AstroWorkload) -> f64 {
        (w.visits * AstroWorkload::SENSORS) as f64 * self.astro_preprocess_per_sensor
    }

    /// Calibrate the neuroscience kernel constants by running the real
    /// Rust kernels on a small phantom and extrapolating by voxel count.
    ///
    /// Keeps the paper-scale constants' *meaning* (single-core seconds at
    /// full geometry) but derives their ratios from measurements.
    // scilint: allow(F001, calibration probe runs on synthetic data sized by the model itself; a shape fault is a model bug)
    // scilint: allow(F002, the cost model calibrates against wall time by design; timings feed tuning only, never result payloads)
    pub fn calibrated() -> CostModel {
        use sciops::neuro::{median_otsu, nlmeans3d, NlmParams};
        use sciops::synth::dmri::{DmriPhantom, DmriSpec};

        let spec = DmriSpec::test_scale();
        let phantom = DmriPhantom::generate(1, &spec);
        let data: marray::NdArray<f64> = phantom.data.cast();
        let (mean_b0, mask) = sciops::neuro::pipeline::segmentation(&data, &phantom.gtab);

        let small_voxels: f64 = spec.dims.iter().product::<usize>() as f64;
        let full_voxels = NeuroWorkload::VOXELS_PER_VOLUME as f64;
        let voxel_scale = full_voxels / small_voxels;

        // Measure one denoised volume and one mask build.
        let vol = data.slice_axis(3, 0).expect("volume 0");
        let nlm = NlmParams {
            search_radius: 2,
            patch_radius: 1,
            sigma: 20.0,
            h_factor: 1.0,
        };
        let t0 = Instant::now();
        let _ = nlmeans3d(&vol, Some(&mask), &nlm);
        let denoise_small = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let _ = median_otsu(&mean_b0, 1);
        let mask_small = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let _ = data.mean_axis(3);
        let mean_small =
            t2.elapsed().as_secs_f64() * (NeuroWorkload::B0_VOLUMES as f64 / spec.n_volumes as f64);

        CostModel {
            neuro_denoise_per_volume: (denoise_small * voxel_scale).max(1.0),
            neuro_mask_per_subject: (mask_small * voxel_scale).max(0.5),
            neuro_mean_per_subject: (mean_small * voxel_scale).max(0.1),
            ..CostModel::default()
        }
    }
}

/// What a plane holds, as known at an engine boundary — the prior the
/// chunk-representation heuristic combines with a measured run length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneKind {
    /// Mask bits (0 = good): overwhelmingly constant, often a single run.
    Mask,
    /// Per-pixel variance: a constant read-noise floor except under
    /// sources — long runs on calibrated detectors.
    Variance,
    /// Flux / image payload: noise in every pixel, effectively
    /// incompressible; only strongly runny planes (zero-padded patch
    /// borders) are worth an encode pass.
    Flux,
    /// Anything else (labels, model outputs, staging buffers).
    Other,
}

/// Should a chunk of `kind` attempt compression before crossing the next
/// engine boundary, given the mean bit-pattern run length measured on a
/// sample of it ([`marray::codec::mean_run_len`])?
///
/// The thresholds mirror the codecs' break-even points: an RLE run of
/// f64s stores 12 bytes (4-byte count + 8-byte value) against 8 bytes per
/// dense element, so RLE shrinks once runs average >1.5 elements. Masks
/// always try — they are tiny, usually a single Const run, and skipping
/// the mask load is what the coadd's run-level fast path feeds on. Flux
/// pays a full encode scan that almost never shrinks, so it needs clear
/// run structure before the pass is worth scheduling.
pub fn choose_repr(kind: PlaneKind, mean_run_len: f64) -> bool {
    match kind {
        PlaneKind::Mask => true,
        PlaneKind::Variance | PlaneKind::Other => mean_run_len >= 1.5,
        PlaneKind::Flux => mean_run_len >= 3.0,
    }
}

/// Apply [`choose_repr`] at an engine boundary: measure the run length on
/// a bounded prefix sample and re-encode when the heuristic says the
/// crossing wins. Returns `None` (keep the caller's handle) when the
/// global [`marray::CompressMode`] is off, the array is already
/// non-dense, the heuristic declines, or no codec actually shrinks it.
pub fn pack_for_boundary<T: marray::Element>(
    arr: &marray::NdArray<T>,
    kind: PlaneKind,
) -> Option<marray::NdArray<T>> {
    if marray::compress_mode() == marray::CompressMode::Off
        || arr.len() < 2
        || arr.repr() != marray::ChunkRepr::Dense
    {
        return None;
    }
    let sample = &arr.data()[..arr.len().min(4096)];
    if !choose_repr(kind, marray::codec::mean_run_len(sample)) {
        return None;
    }
    let packed = arr.compressed();
    (packed.repr() != marray::ChunkRepr::Dense).then_some(packed)
}

/// Headroom factor of the budget-derived granularity formula: each
/// worker's share of the budget must cover its pinned input chunk, the
/// output it is building, and the governor's transient double-residency
/// during a reload, so a chunk targets `budget / (workers × SLACK)`.
pub const CHUNK_BUDGET_SLACK: u64 = 4;

/// Elements one chunk should hold under a memory budget: the largest
/// count whose bytes fit `budget / (workers × slack)`, floored at one
/// element. `None` (unbounded) keeps everything in one chunk.
///
/// Hayot-Sasson et al. (arXiv:1812.06492) measured exactly this on the
/// paper's neuroimaging pipelines: chunk granularity, not thread count,
/// governs scaling once data exceeds memory — too-large chunks thrash
/// the spill tier (SciDB's mis-sized chunks in Figure 15), too-small
/// chunks drown in per-chunk overhead.
pub fn choose_chunk_elems(
    total_elems: usize,
    elem_bytes: usize,
    workers: usize,
    budget: Option<u64>,
) -> usize {
    let Some(budget) = budget else {
        return total_elems.max(1);
    };
    let share = budget / (workers.max(1) as u64 * CHUNK_BUDGET_SLACK);
    let cap = (share / elem_bytes.max(1) as u64).max(1) as usize;
    total_elems.clamp(1, cap)
}

/// Chunk shape for a row-major array of `dims` under a memory budget:
/// splits along axis 0 (the slab axis every partitioner already uses) so
/// one chunk holds as many whole planes as fit the per-worker budget
/// share, with a floor of one plane. `None` (unbounded) keeps the array
/// in one chunk, matching the in-memory plane's historical behaviour.
pub fn choose_chunk_shape(
    dims: &[usize],
    elem_bytes: usize,
    workers: usize,
    budget: Option<u64>,
) -> Vec<usize> {
    if dims.is_empty() {
        return Vec::new();
    }
    let plane: usize = dims[1..].iter().product::<usize>().max(1);
    let target = choose_chunk_elems(
        dims.iter().product::<usize>().max(1),
        elem_bytes,
        workers,
        budget,
    );
    let rows = (target / plane).clamp(1, dims[0].max(1));
    let mut shape = dims.to_vec();
    shape[0] = rows;
    shape
}

/// Morsel sizing under a memory budget: a [`parexec::CostHint`] whose
/// `max_items` bounds one morsel's working set (`item_bytes` per item) to
/// the per-worker budget share, layered over the kernel's granularity
/// floor (`min_items`, which still wins a conflict — see
/// [`parexec::CostHint::max_items`]).
pub fn budget_cost_hint(
    min_items: usize,
    item_bytes: usize,
    workers: usize,
    budget: Option<u64>,
) -> parexec::CostHint {
    let hint = parexec::CostHint::min_items(min_items);
    match budget {
        None => hint,
        Some(b) => {
            let share = b / (workers.max(1) as u64 * CHUNK_BUDGET_SLACK);
            hint.with_max_items((share / item_bytes.max(1) as u64).max(1) as usize)
        }
    }
}

/// Apply the memory governor at an engine ingest boundary: when a
/// process-wide budget is active ([`marray::mem_budget`]), a governed
/// handle whose bytes the governor may spill under pressure; `None`
/// (keep the caller's handle, like [`pack_for_boundary`]) otherwise, so
/// the unbounded path is byte-for-byte the historical one. This is the
/// single choke point the engine analogs share, so "every engine really
/// executes a larger-than-budget dataset" is one code path, not five.
pub fn govern_for_boundary<T: marray::Element>(
    arr: &marray::NdArray<T>,
) -> Option<marray::NdArray<T>> {
    marray::mem_budget().is_some().then(|| arr.govern())
}

/// A measured intra-node kernel scaling curve: aggregate speedup over the
/// single-threaded run at each thread count, obtained by timing a real
/// parallel kernel on the host (or loaded from a `scibench bench` run).
///
/// Feeds [`simcluster::ClusterSpec::with_measured_scaling`] so the engine
/// analogs' per-node speedup model can be grounded in a measurement instead
/// of the analytic hyper-threading curve.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelScaling {
    /// `(threads, speedup)` points, sorted by thread count. `(1, 1.0)` is
    /// the serial anchor.
    pub points: Vec<(usize, f64)>,
}

impl KernelScaling {
    /// Build from explicit points; sorts by thread count.
    pub fn from_points(mut points: Vec<(usize, f64)>) -> KernelScaling {
        points.sort_by_key(|&(t, _)| t);
        points.dedup_by_key(|&mut (t, _)| t);
        KernelScaling { points }
    }

    /// Measure the NLM denoise kernel (the dominant cost of the
    /// neuroscience pipeline) at each thread count on a small phantom and
    /// return the speedup curve relative to the serial run.
    ///
    /// On a single-core host the curve is flat (~1×) — the measurement is
    /// honest about the hardware it ran on.
    // scilint: allow(F001, calibration probe runs on synthetic data sized by the model itself; a shape fault is a model bug)
    // scilint: allow(F002, the cost model calibrates against wall time by design; timings feed tuning only, never result payloads)
    pub fn measure(thread_counts: &[usize]) -> KernelScaling {
        use sciops::neuro::{nlmeans3d_par, NlmParams};
        use sciops::synth::dmri::{DmriPhantom, DmriSpec};
        use sciops::Parallelism;

        let spec = DmriSpec::test_scale();
        let phantom = DmriPhantom::generate(3, &spec);
        let data: marray::NdArray<f64> = phantom.data.cast();
        let (_, mask) = sciops::neuro::pipeline::segmentation(&data, &phantom.gtab);
        let vol = data.slice_axis(3, 0).expect("volume 0");
        let nlm = NlmParams {
            search_radius: 2,
            patch_radius: 1,
            sigma: 20.0,
            h_factor: 1.0,
        };

        let time_at = |par: Parallelism| {
            // Warm-up run, then time the better of two runs to shave
            // scheduler noise on small inputs.
            let _ = nlmeans3d_par(&vol, Some(&mask), &nlm, par);
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let t = Instant::now();
                let _ = nlmeans3d_par(&vol, Some(&mask), &nlm, par);
                best = best.min(t.elapsed().as_secs_f64());
            }
            best.max(1e-9)
        };

        let serial = time_at(Parallelism::Serial);
        let mut points = vec![(1usize, 1.0f64)];
        for &t in thread_counts {
            if t <= 1 {
                continue;
            }
            points.push((t, serial / time_at(Parallelism::threads(t))));
        }
        KernelScaling::from_points(points)
    }

    /// Predict the scaling curve a morsel-scheduled kernel would achieve
    /// from its measured per-morsel cost profile: at each thread count,
    /// speedup is the serial total over the makespan of
    /// [`parexec::simulate_workers`]'s deterministic claim model. This is
    /// the scheduler's `measured_scaling` feedback path — a skewed cost
    /// profile caps the predicted speedup at `total / hottest_morsel` no
    /// matter how many workers are added.
    pub fn from_morsel_costs(costs: &[f64], thread_counts: &[usize]) -> KernelScaling {
        let total: f64 = costs.iter().sum();
        let mut points = vec![(1usize, 1.0f64)];
        if total > 0.0 {
            for &t in thread_counts {
                if t <= 1 {
                    continue;
                }
                let load = parexec::simulate_workers(costs, t, parexec::Schedule::Morsel);
                let makespan = load.iter().cloned().fold(0.0f64, f64::max);
                if makespan > 0.0 {
                    points.push((t, total / makespan));
                }
            }
        }
        KernelScaling::from_points(points)
    }

    /// Aggregate speedup at `threads`: piecewise-linear between measured
    /// points, flat beyond the ends, 1.0 for an empty curve.
    pub fn speedup_at(&self, threads: usize) -> f64 {
        let Some(&(first_t, first_s)) = self.points.first() else {
            return 1.0;
        };
        let &(last_t, last_s) = self.points.last().unwrap_or(&(first_t, first_s));
        if threads <= first_t {
            return first_s;
        }
        if threads >= last_t {
            return last_s;
        }
        for pair in self.points.windows(2) {
            let (t0, s0) = pair[0];
            let (t1, s1) = pair[1];
            if threads >= t0 && threads <= t1 {
                let frac = (threads - t0) as f64 / (t1 - t0) as f64;
                return s0 + frac * (s1 - s0);
            }
        }
        last_s
    }

    /// Apply this curve to a cluster spec, replacing its analytic
    /// intra-node scaling model.
    pub fn apply_to(&self, cluster: simcluster::ClusterSpec) -> simcluster::ClusterSpec {
        cluster.with_measured_scaling(self.points.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denoise_dominates_neuro() {
        // The paper: "the bulk of the processing happens in the
        // user-defined denoising function".
        let m = CostModel::default();
        let w = NeuroWorkload { subjects: 1 };
        let denoise = m.neuro_total_denoise(&w);
        let rest = m.neuro_filter_per_subject
            + m.neuro_mean_per_subject
            + m.neuro_mask_per_subject
            + m.neuro_fit_per_subject;
        assert!(denoise > 10.0 * rest, "denoise {denoise} vs rest {rest}");
    }

    #[test]
    fn unmasked_denoise_is_1_5x() {
        let m = CostModel::default();
        assert!(
            (m.neuro_denoise_per_volume_unmasked() / m.neuro_denoise_per_volume - 1.5).abs()
                < 1e-12
        );
    }

    #[test]
    fn csv_conversion_costs_more_than_npy() {
        // Figure 11's analysis: "the NIfTI-to-CSV conversion overhead for
        // SciDB is a little larger than the NIfTI-to-NumPy overhead".
        let m = CostModel::default();
        assert!(m.convert_nifti_to_csv_per_subject > m.convert_nifti_to_npy_per_subject);
        // CSV is ~6× the bytes of the binary form; the conversion stays
        // within that byte-inflation multiple of the NumPy staging cost.
        assert!(m.convert_nifti_to_csv_per_subject < 6.0 * m.convert_nifti_to_npy_per_subject);
    }

    #[test]
    fn kernel_scaling_interpolates_and_clamps() {
        let s = KernelScaling::from_points(vec![(4, 3.0), (1, 1.0), (2, 1.8)]);
        assert_eq!(s.points, vec![(1, 1.0), (2, 1.8), (4, 3.0)]);
        assert_eq!(s.speedup_at(1), 1.0);
        assert!((s.speedup_at(3) - 2.4).abs() < 1e-12);
        assert_eq!(s.speedup_at(64), 3.0);
        assert_eq!(KernelScaling::from_points(vec![]).speedup_at(8), 1.0);
    }

    #[test]
    fn morsel_cost_scaling_is_capped_by_the_hottest_morsel() {
        // Uniform profile: near-linear until worker count passes the
        // morsel count.
        let uniform = KernelScaling::from_morsel_costs(&[1.0; 16], &[2, 4, 8]);
        assert_eq!(uniform.points[0], (1, 1.0));
        assert!((uniform.speedup_at(4) - 4.0).abs() < 1e-9);
        // Skewed profile: one morsel carries half the work, so speedup
        // saturates at total/max = 2.0 regardless of width.
        let mut costs = vec![1.0f64; 15];
        costs.push(15.0);
        let skewed = KernelScaling::from_morsel_costs(&costs, &[2, 4, 8]);
        assert!(skewed.speedup_at(8) <= 2.0 + 1e-9);
        assert!(skewed.speedup_at(8) > 1.0);
        // Degenerate inputs stay sane.
        assert_eq!(
            KernelScaling::from_morsel_costs(&[], &[2]).points,
            vec![(1, 1.0)]
        );
    }

    #[test]
    fn kernel_scaling_applies_to_cluster() {
        let s = KernelScaling::from_points(vec![(1, 1.0), (2, 2.0), (4, 4.0)]);
        let c = s.apply_to(simcluster::ClusterSpec::r3_2xlarge(1));
        assert!((c.node.slot_speed(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measured_scaling_is_sane() {
        // One small measurement: serial anchor present, all speedups
        // positive, and the curve never claims superlinear scaling beyond
        // the thread count.
        let s = KernelScaling::measure(&[2]);
        assert_eq!(s.points[0], (1, 1.0));
        for &(t, sp) in &s.points {
            assert!(sp > 0.0, "non-positive speedup at {t} threads");
            assert!(sp <= t as f64 * 1.5, "implausible speedup {sp} at {t}");
        }
    }

    #[test]
    fn boundary_packing_follows_plane_kind() {
        // Mask planes always attempt and a zero mask lands on Const.
        let mask: marray::NdArray<u8> = marray::NdArray::zeros(&[32, 32]);
        let packed = pack_for_boundary(&mask, PlaneKind::Mask).expect("mask should pack");
        assert_eq!(packed.repr(), marray::ChunkRepr::Const);
        assert_eq!(packed.data(), mask.data());

        // Noise in every pixel: the flux prior declines without scanning.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let noisy = marray::NdArray::<f64>::from_fn(&[24, 24], |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        });
        assert!(pack_for_boundary(&noisy, PlaneKind::Flux).is_none());

        // A mostly-constant variance plane (read-noise floor + a few
        // source pixels) clears the RLE break-even and packs.
        let mut var = marray::NdArray::full(&[24, 24], 64.0);
        for p in [5usize, 100, 101, 300] {
            var.data_mut()[p] = 90.5;
        }
        let packed = pack_for_boundary(&var, PlaneKind::Variance).expect("variance should pack");
        assert_eq!(packed.repr(), marray::ChunkRepr::Rle);
        assert!(packed.stored_nbytes() < var.nbytes() / 2);
        assert_eq!(packed.data(), var.data());

        // Already-encoded and degenerate arrays keep the caller's handle.
        assert!(pack_for_boundary(&packed, PlaneKind::Variance).is_none());
        let single: marray::NdArray<f64> = marray::NdArray::zeros(&[1]);
        assert!(pack_for_boundary(&single, PlaneKind::Mask).is_none());
    }

    #[test]
    fn budget_derives_chunk_granularity() {
        // Unbounded: one chunk, whole array.
        assert_eq!(
            choose_chunk_shape(&[24, 100, 100], 8, 4, None),
            vec![24, 100, 100]
        );
        // 32 MiB over 4 workers, slack 4: 2 MiB per chunk = 26 planes of
        // 100×100 f64 — floored to whole planes.
        let budget = Some(32u64 << 20);
        let shape = choose_chunk_shape(&[1000, 100, 100], 8, 4, budget);
        assert_eq!(&shape[1..], &[100, 100]);
        assert!(shape[0] >= 1 && shape[0] < 1000);
        assert!(shape[0] as u64 * 100 * 100 * 8 <= (32u64 << 20) / (4 * CHUNK_BUDGET_SLACK));
        // A budget smaller than one plane still yields one whole plane.
        assert_eq!(
            choose_chunk_shape(&[10, 512, 512], 8, 8, Some(1 << 20))[0],
            1
        );
        // Tighter budget, smaller chunks (monotone).
        let loose = choose_chunk_elems(1 << 24, 8, 2, Some(256 << 20));
        let tight = choose_chunk_elems(1 << 24, 8, 2, Some(16 << 20));
        assert!(tight < loose);
        // Morsel hints inherit the same share, floor winning conflicts.
        let h = budget_cost_hint(16, 8, 4, Some(1 << 20));
        assert_eq!(h.min_items, 16);
        assert_eq!(
            h.max_items as u64,
            (1u64 << 20) / (4 * CHUNK_BUDGET_SLACK) / 8
        );
        assert_eq!(budget_cost_hint(16, 8, 4, None).max_items, 0);
    }

    #[test]
    fn boundary_governing_follows_the_budget() {
        let arr: marray::NdArray<f64> = marray::NdArray::zeros(&[64, 64]);
        assert!(
            govern_for_boundary(&arr).is_none(),
            "no budget: caller's handle"
        );
        marray::with_mem_budget(Some(1 << 20), || {
            let governed = govern_for_boundary(&arr).expect("budget active");
            assert_eq!(governed.residency(), marray::Residency::Resident);
            assert_eq!(governed.data(), arr.data());
        });
    }

    #[test]
    fn choose_repr_thresholds() {
        assert!(choose_repr(PlaneKind::Mask, 1.0));
        assert!(!choose_repr(PlaneKind::Variance, 1.2));
        assert!(choose_repr(PlaneKind::Variance, 1.5));
        assert!(!choose_repr(PlaneKind::Flux, 2.0));
        assert!(choose_repr(PlaneKind::Flux, 3.5));
        assert!(choose_repr(PlaneKind::Other, 4.0));
    }

    #[test]
    fn calibration_keeps_denoise_dominant() {
        let m = CostModel::calibrated();
        assert!(
            m.neuro_denoise_per_volume > m.neuro_mean_per_subject,
            "denoise {} vs mean {}",
            m.neuro_denoise_per_volume,
            m.neuro_mean_per_subject
        );
        assert!(m.neuro_denoise_per_volume >= 1.0);
    }
}
