//! Table 1: implementation complexity per engine and pipeline step.
//!
//! The paper measures lines of code. We reproduce the published LoC
//! numbers as the reference column and put our own implementations'
//! complexity (plan operators / API calls, from the `usecases` module)
//! beside them, with the same NA/impossible markers.

use crate::lower::Engine;

/// One Table 1 cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// Lines of code (paper) or API calls (ours).
    Count(u32),
    /// Not applicable (the engine cannot express the operation at all).
    NotApplicable,
    /// Not possible to implement in practice (the paper's ✗).
    Impossible,
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Count(n) => write!(f, "{n}"),
            Cell::NotApplicable => write!(f, "NA"),
            Cell::Impossible => write!(f, "X"),
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Row {
    /// Use case ("Neuroscience" / "Astronomy").
    pub use_case: &'static str,
    /// Step name.
    pub step: &'static str,
    /// Per-engine cells in [Dask, SciDB, Spark, Myria, TensorFlow] order
    /// (the paper's column order).
    pub cells: [Cell; 5],
}

/// The paper's column order.
pub const COLUMNS: [Engine; 5] = [
    Engine::Dask,
    Engine::SciDb,
    Engine::Spark,
    Engine::Myria,
    Engine::TensorFlow,
];

/// The published Table 1 (lines of code).
pub fn paper_table1() -> Vec<Row> {
    use Cell::*;
    vec![
        Row {
            use_case: "Neuroscience",
            step: "Re-used Reference",
            cells: [Count(30), Count(3), Count(32), Count(35), Count(0)],
        },
        Row {
            use_case: "Neuroscience",
            step: "Data Ingest",
            cells: [Count(33), Count(60), Count(8), Count(5), Count(15)],
        },
        Row {
            use_case: "Neuroscience",
            step: "Segmentation",
            cells: [Count(25), Count(40), Count(34), Count(10), Count(121)],
        },
        Row {
            use_case: "Neuroscience",
            step: "Denoising",
            cells: [Count(19), Count(52), Count(1), Count(3), Count(128)],
        },
        Row {
            use_case: "Neuroscience",
            step: "Model Fit.",
            cells: [
                Count(11),
                NotApplicable,
                Count(39),
                Count(15),
                NotApplicable,
            ],
        },
        Row {
            use_case: "Astronomy",
            step: "Re-used Reference",
            cells: [
                Impossible,
                NotApplicable,
                Count(212),
                Count(225),
                NotApplicable,
            ],
        },
        Row {
            use_case: "Astronomy",
            step: "Data Ingest",
            cells: [Impossible, Count(85), Count(12), Count(5), NotApplicable],
        },
        Row {
            use_case: "Astronomy",
            step: "Pre-proc.",
            cells: [Impossible, Impossible, Count(1), Count(4), NotApplicable],
        },
        Row {
            use_case: "Astronomy",
            step: "Patch Creation",
            cells: [Impossible, Impossible, Count(4), Count(9), NotApplicable],
        },
        Row {
            use_case: "Astronomy",
            step: "Co-Addition",
            cells: [Impossible, Count(180), Count(2), Count(5), NotApplicable],
        },
        Row {
            use_case: "Astronomy",
            step: "Source Detection",
            cells: [Impossible, NotApplicable, Count(7), Count(2), NotApplicable],
        },
    ]
}

/// Our implementations' complexity in engine API calls / plan operators,
/// with the same expressibility pattern (measured from `usecases`).
pub fn our_table1() -> Vec<Row> {
    use Cell::*;
    vec![
        Row {
            use_case: "Neuroscience",
            step: "Data Ingest",
            cells: [Count(3), Count(4), Count(2), Count(2), Count(4)],
        },
        Row {
            use_case: "Neuroscience",
            step: "Segmentation",
            cells: [Count(4), Count(3), Count(4), Count(4), Count(7)],
        },
        Row {
            use_case: "Neuroscience",
            step: "Denoising",
            cells: [Count(2), Count(2), Count(1), Count(2), Count(5)],
        },
        Row {
            use_case: "Neuroscience",
            step: "Model Fit.",
            cells: [Count(3), NotApplicable, Count(3), Count(2), NotApplicable],
        },
        Row {
            use_case: "Astronomy",
            step: "Data Ingest",
            cells: [Impossible, Count(3), Count(1), Count(1), NotApplicable],
        },
        Row {
            use_case: "Astronomy",
            step: "Pre-proc.",
            cells: [Impossible, Impossible, Count(1), Count(1), NotApplicable],
        },
        Row {
            use_case: "Astronomy",
            step: "Patch Creation",
            cells: [Impossible, Impossible, Count(2), Count(2), NotApplicable],
        },
        Row {
            use_case: "Astronomy",
            step: "Co-Addition",
            cells: [Impossible, Count(9), Count(1), Count(1), NotApplicable],
        },
        Row {
            use_case: "Astronomy",
            step: "Source Detection",
            cells: [Impossible, NotApplicable, Count(1), Count(1), NotApplicable],
        },
    ]
}

/// Total count for an engine column (counting only `Count` cells).
pub fn column_total(rows: &[Row], col: usize) -> u32 {
    rows.iter()
        .map(|r| match r.cells[col] {
            Cell::Count(n) => n,
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_neuro_scidb_total_is_155() {
        // "The SciDB implementation of the neuroscience use case took 155
        // LoC" = 3 + 60 + 40 + 52.
        let rows: Vec<Row> = paper_table1()
            .into_iter()
            .filter(|r| r.use_case == "Neuroscience")
            .collect();
        assert_eq!(column_total(&rows, 1), 155);
    }

    #[test]
    fn expressibility_patterns_match_paper() {
        // Whatever the counts, the NA/X pattern of our implementations
        // must match the paper's: SciDB cannot fit the model, TensorFlow
        // runs nothing in astronomy, Dask's astronomy was not runnable.
        let ours = our_table1();
        for r in &ours {
            if r.use_case == "Astronomy" {
                assert_eq!(r.cells[0], Cell::Impossible, "Dask astronomy ({})", r.step);
                assert_eq!(r.cells[4], Cell::NotApplicable, "TF astronomy ({})", r.step);
            }
            if r.step == "Model Fit." {
                assert_eq!(r.cells[1], Cell::NotApplicable, "SciDB model fit");
            }
        }
    }

    #[test]
    fn spark_denoise_is_tersest() {
        // The paper's famous "1 LoC" Spark denoise (a single map call):
        // ours is also a single API call.
        let ours = our_table1();
        let denoise = ours.iter().find(|r| r.step == "Denoising").unwrap();
        assert_eq!(denoise.cells[2], Cell::Count(1));
    }

    #[test]
    fn our_scidb_coadd_count_matches_the_implementation() {
        // The hand-recorded Table 1 cell must track the actual operator
        // count of the AQL-style implementation.
        let ours = our_table1();
        let row = ours
            .iter()
            .find(|r| r.use_case == "Astronomy" && r.step == "Co-Addition")
            .expect("coadd row");
        assert_eq!(
            row.cells[1],
            Cell::Count(crate::usecases::astro::SCIDB_COADD_OPS as u32)
        );
    }

    #[test]
    fn display_cells() {
        assert_eq!(Cell::Count(7).to_string(), "7");
        assert_eq!(Cell::NotApplicable.to_string(), "NA");
        assert_eq!(Cell::Impossible.to_string(), "X");
    }
}
