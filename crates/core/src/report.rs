//! Fixed-width table and CSV rendering for experiment results.

/// A simple table: header plus rows of strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render with aligned fixed-width columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format seconds compactly.
pub fn secs(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a ratio.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}")
}

/// Format gigabytes.
pub fn gb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e9)
}

/// Render "failed" cells.
pub const FAILED: &str = "OOM";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["sys", "time"]);
        t.push(vec!["Spark".into(), "10.0".into()]);
        t.push(vec!["Myria".into(), "9.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("Spark"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "aligned rows");
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(12345.6), "12346");
        assert_eq!(secs(99.95), "100.0");
        assert_eq!(secs(5.125), "5.12");
        assert_eq!(ratio(0.589), "0.59");
        assert_eq!(gb(4_200_000_000), "4.2");
    }
}
