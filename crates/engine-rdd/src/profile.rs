//! Architectural constants used when lowering RDD jobs onto the cluster
//! simulator.

/// The Spark-analog execution profile.
///
/// Every field models a mechanism the paper identifies:
/// * `py_worker_crossing_per_byte` / `py_worker_crossing_fixed` — each
///   closure runs in a separate Python worker process; records are
///   serialized across (the cause of Spark's order-of-magnitude slower
///   filter in Figure 12a).
/// * `per_task_overhead` — task serialization + scheduling dispatch.
/// * `spills` — Spark "can spill intermediate results to disk to avoid
///   out-of-memory failures", trading speed when memory is plentiful
///   (Figure 10h) for robustness (§5.3.2).
/// * `master_enumerates_ingest` — the S3 reader lists keys on the master
///   before parallel download (slower ingest than Myria in Figure 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RddEngineProfile {
    /// One-time executor/container allocation cost when a job starts on a
    /// cold cluster (s) — the dominant fixed cost at small data sizes.
    pub executor_startup: f64,
    /// Dispatch overhead per task (s).
    pub per_task_overhead: f64,
    /// Serialization cost per byte crossing the JVM↔Python boundary (s/B).
    pub py_worker_crossing_per_byte: f64,
    /// Fixed cost per closure invocation batch (s).
    pub py_worker_crossing_fixed: f64,
    /// Whether memory pressure spills to disk instead of failing.
    pub spills: bool,
    /// Fraction of shuffle data written+read through disk even when memory
    /// suffices (Spark's sort-based shuffle always touches disk buffers).
    pub shuffle_disk_fraction: f64,
    /// Seconds the master spends enumerating S3 keys per object.
    pub ingest_enumeration_per_object: f64,
}

impl Default for RddEngineProfile {
    fn default() -> Self {
        RddEngineProfile {
            executor_startup: 70.0,
            per_task_overhead: 0.08,
            py_worker_crossing_per_byte: 1.0 / 350e6, // ~350 MB/s pickle
            py_worker_crossing_fixed: 0.012,
            spills: true,
            shuffle_disk_fraction: 0.3,
            ingest_enumeration_per_object: 0.006,
        }
    }
}

impl RddEngineProfile {
    /// Serialization time for moving `bytes` across the Python boundary
    /// once (one direction).
    pub fn crossing_time(&self, bytes: u64) -> f64 {
        self.py_worker_crossing_fixed + bytes as f64 * self.py_worker_crossing_per_byte
    }

    /// The statically checkable invariants of this engine's lowerings,
    /// consumed by [`plancheck::check`]: staged execution (shuffle
    /// barriers between wide stages — data edges must not bypass them),
    /// spilling instead of failing under memory pressure, and the paper's
    /// §5.3.2 observation that reliable runs wanted roughly twice the
    /// input's footprint in cluster memory.
    pub fn invariants(&self) -> plancheck::InvariantProfile {
        plancheck::InvariantProfile {
            spills: self.spills,
            mem_requirement_factor: 2.0,
            barriers: plancheck::BarrierDiscipline::Staged,
            ..plancheck::InvariantProfile::new("Spark")
        }
    }

    /// What each Spark-analog task label executes, for the scimemo
    /// cacheability certifier. Labels the shared lowerings emit
    /// (`astro:*`, `ingest:*`, bare step names) live in core's shared
    /// table; this one covers the `spark:`-prefixed operators.
    pub fn op_bindings(&self) -> &'static [plancheck::OpBinding] {
        SPARK_OPS
    }
}

const SPARK_OPS: &[plancheck::OpBinding] = &{
    use plancheck::{OpBinding, OpClass};
    const EMPTY: &[&str] = &[]; // pure data movement, no kernel runs
    [
        OpBinding::new("spark:submit", OpClass::Infra),
        OpBinding::new("spark:enumerate", OpClass::Infra),
        OpBinding::new("spark:stage-barrier", OpClass::Infra),
        OpBinding::new("spark:ingest", OpClass::Source),
        OpBinding::new("spark:collect", OpClass::Kernel(EMPTY)),
        OpBinding::new("spark:broadcast-mask", OpClass::Kernel(EMPTY)),
        OpBinding::new(
            "spark:filter+partial-mean",
            OpClass::Kernel(&["segmentation"]),
        ),
        OpBinding::new("spark:mask", OpClass::Kernel(&["median_otsu"])),
        OpBinding::new("spark:denoise", OpClass::Kernel(&["nlmeans3d"])),
        OpBinding::new("spark:fit", OpClass::Kernel(&["fit_dtm_volume"])),
    ]
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_scales_with_bytes() {
        let p = RddEngineProfile::default();
        let small = p.crossing_time(1_000);
        let big = p.crossing_time(1_000_000_000);
        assert!(big > small * 10.0);
        assert!(small >= p.py_worker_crossing_fixed);
    }
}
