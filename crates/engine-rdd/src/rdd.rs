//! Lazy, partitioned, lineage-carrying collections.

use std::collections::BTreeMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;
use std::sync::Mutex;

/// The internal evaluation interface: an RDD knows its partition count and
/// how to compute any one partition.
trait RddImpl<T>: Send + Sync {
    fn num_partitions(&self) -> usize;
    fn compute(&self, partition: usize) -> Vec<T>;
}

/// A lazy, partitioned collection of records with lineage.
///
/// Narrow transformations (`map`, `flat_map`, `filter`) chain without
/// materialization; wide ones (`group_by_key`, `reduce_by_key`,
/// `repartition`) introduce a shuffle that materializes every parent
/// partition first — a stage barrier, exactly as in Spark.
pub struct Rdd<T> {
    inner: Arc<dyn RddImpl<T>>,
}

impl<T> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            inner: Arc::clone(&self.inner),
        }
    }
}

struct Parallelized<T> {
    partitions: Vec<Vec<T>>,
}

impl<T: Clone + Send + Sync> RddImpl<T> for Parallelized<T> {
    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }
    fn compute(&self, partition: usize) -> Vec<T> {
        // scilint: allow(C001, recompute-on-access semantics; element NdArrays clone as refcount bumps)
        self.partitions[partition].clone()
    }
}

struct MapRdd<T, U> {
    parent: Rdd<T>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(T) -> U + Send + Sync>,
}

impl<T: Send + Sync + 'static, U: Send + Sync> RddImpl<U> for MapRdd<T, U> {
    fn num_partitions(&self) -> usize {
        self.parent.inner.num_partitions()
    }
    fn compute(&self, partition: usize) -> Vec<U> {
        self.parent
            .inner
            .compute(partition)
            .into_iter()
            .map(|t| (self.f)(t))
            .collect()
    }
}

struct FlatMapRdd<T, U> {
    parent: Rdd<T>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(T) -> Vec<U> + Send + Sync>,
}

impl<T: Send + Sync + 'static, U: Send + Sync> RddImpl<U> for FlatMapRdd<T, U> {
    fn num_partitions(&self) -> usize {
        self.parent.inner.num_partitions()
    }
    fn compute(&self, partition: usize) -> Vec<U> {
        self.parent
            .inner
            .compute(partition)
            .into_iter()
            .flat_map(|t| (self.f)(t))
            .collect()
    }
}

struct FilterRdd<T> {
    parent: Rdd<T>,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&T) -> bool + Send + Sync>,
}

impl<T: Send + Sync + 'static> RddImpl<T> for FilterRdd<T> {
    fn num_partitions(&self) -> usize {
        self.parent.inner.num_partitions()
    }
    fn compute(&self, partition: usize) -> Vec<T> {
        self.parent
            .inner
            .compute(partition)
            .into_iter()
            .filter(|t| (self.f)(t))
            .collect()
    }
}

fn bucket_of<K: Hash>(key: &K, buckets: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % buckets as u64) as usize
}

/// Materialized shuffle output: per-partition key groups.
type Buckets<K, V> = Arc<Vec<Vec<(K, Vec<V>)>>>;

/// A shuffle: hash-partitions parent records by key into `partitions`
/// buckets, materializing the entire parent on first access (the stage
/// barrier).
struct ShuffledRdd<K, V> {
    parent: Rdd<(K, V)>,
    partitions: usize,
    materialized: Mutex<Option<Buckets<K, V>>>,
}

impl<K, V> ShuffledRdd<K, V>
where
    K: Clone + Hash + Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    // scilint: allow(F001, poisoned cache lock means a worker already panicked; aborting the job is the engine contract)
    fn materialize(&self) -> Buckets<K, V> {
        let mut guard = self.materialized.lock().expect("shuffle lock poisoned");
        if let Some(m) = guard.as_ref() {
            return Arc::clone(m);
        }
        // Barrier: compute every parent partition, then bucket by key hash.
        // BTreeMap keeps each bucket key-ordered, so shuffle output is
        // deterministic regardless of any hash seed.
        let mut buckets: Vec<BTreeMap<K, Vec<V>>> =
            (0..self.partitions).map(|_| BTreeMap::new()).collect();
        for p in 0..self.parent.inner.num_partitions() {
            for (k, v) in self.parent.inner.compute(p) {
                let b = bucket_of(&k, self.partitions);
                buckets[b].entry(k).or_default().push(v);
            }
        }
        let result: Buckets<K, V> = Arc::new(
            buckets
                .into_iter()
                .map(|m| m.into_iter().collect::<Vec<(K, Vec<V>)>>())
                .collect(),
        );
        *guard = Some(Arc::clone(&result));
        result
    }
}

impl<K, V> RddImpl<(K, Vec<V>)> for ShuffledRdd<K, V>
where
    K: Clone + Hash + Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn num_partitions(&self) -> usize {
        self.partitions
    }
    fn compute(&self, partition: usize) -> Vec<(K, Vec<V>)> {
        // scilint: allow(C001, shuffle output handoff; grouped values hold shared handles)
        self.materialize()[partition].clone()
    }
}

/// Caching layer: partitions are computed once and pinned.
struct CachedRdd<T> {
    parent: Rdd<T>,
    slots: Vec<Mutex<Option<Arc<Vec<T>>>>>,
}

impl<T: Clone + Send + Sync + 'static> RddImpl<T> for CachedRdd<T> {
    fn num_partitions(&self) -> usize {
        self.parent.inner.num_partitions()
    }
    // scilint: allow(F001, poisoned cache lock means a worker already panicked; aborting the job is the engine contract)
    fn compute(&self, partition: usize) -> Vec<T> {
        let mut slot = self.slots[partition].lock().expect("cache lock poisoned");
        if let Some(v) = slot.as_ref() {
            // scilint: allow(C001, cache hit hands out the pinned partition; elements are shared handles)
            return v.as_ref().clone();
        }
        let v = Arc::new(self.parent.inner.compute(partition));
        *slot = Some(Arc::clone(&v));
        // scilint: allow(C001, first access fills the cache then hands out shared-handle elements)
        v.as_ref().clone()
    }
}

impl<T: Clone + Send + Sync + 'static> Rdd<T> {
    /// Build an RDD from explicit partitions (used by `SparkContext`).
    pub(crate) fn from_partitions(partitions: Vec<Vec<T>>) -> Rdd<T> {
        Rdd {
            inner: Arc::new(Parallelized { partitions }),
        }
    }

    /// Number of partitions (schedulable tasks per stage).
    pub fn num_partitions(&self) -> usize {
        self.inner.num_partitions()
    }

    /// Narrow transformation: apply `f` to each record.
    pub fn map<U: Clone + Send + Sync + 'static>(
        &self,
        f: impl Fn(T) -> U + Send + Sync + 'static,
    ) -> Rdd<U> {
        Rdd {
            inner: Arc::new(MapRdd {
                parent: self.clone(),
                f: Arc::new(f),
            }),
        }
    }

    /// Narrow transformation: apply `f` producing zero or more records each.
    pub fn flat_map<U: Clone + Send + Sync + 'static>(
        &self,
        f: impl Fn(T) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        Rdd {
            inner: Arc::new(FlatMapRdd {
                parent: self.clone(),
                f: Arc::new(f),
            }),
        }
    }

    /// Narrow transformation: keep records satisfying `f`.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        Rdd {
            inner: Arc::new(FilterRdd {
                parent: self.clone(),
                f: Arc::new(f),
            }),
        }
    }

    /// Pin computed partitions in memory (Spark `.cache()`).
    pub fn cache(&self) -> Rdd<T> {
        let n = self.num_partitions();
        Rdd {
            inner: Arc::new(CachedRdd {
                parent: self.clone(),
                slots: (0..n).map(|_| Mutex::new(None)).collect(),
            }),
        }
    }

    /// Action: materialize every partition (in parallel) and concatenate.
    // scilint: allow(F001, partition-task panics propagate to the driver, mirroring Spark task failure)
    // scilint: allow(F004, this scope.spawn IS the simulated Spark executor's partition tasks, the engine boundary; TODO(flow): route through the morsel pool)
    pub fn collect(&self) -> Vec<T> {
        let n = self.num_partitions();
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|p| {
                    let inner = Arc::clone(&self.inner);
                    scope.spawn(move || inner.compute(p))
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("partition task panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    }

    /// Action: number of records.
    pub fn count(&self) -> usize {
        (0..self.num_partitions())
            .map(|p| self.inner.compute(p).len())
            .sum()
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Clone + Hash + Ord + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Wide transformation: group records by key into `partitions` output
    /// partitions (a shuffle with a stage barrier).
    pub fn group_by_key(&self, partitions: usize) -> Rdd<(K, Vec<V>)> {
        Rdd {
            inner: Arc::new(ShuffledRdd {
                parent: self.clone(),
                partitions: partitions.max(1),
                materialized: Mutex::new(None),
            }),
        }
    }

    /// Wide transformation: combine values per key with `f`.
    // scilint: allow(F001, shuffle groups are non-empty by construction)
    pub fn reduce_by_key(
        &self,
        partitions: usize,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Rdd<(K, V)> {
        let f = Arc::new(f);
        self.group_by_key(partitions).map(move |(k, vs)| {
            let mut it = vs.into_iter();
            let first = it.next().expect("group has at least one value");
            (k, it.fold(first, |a, b| f(a, b)))
        })
    }

    /// Action: collect into an ordered map (keys must be unique per record
    /// group). Ordered so downstream iteration is seed-independent.
    pub fn collect_as_map(&self) -> BTreeMap<K, V> {
        self.collect().into_iter().collect()
    }

    /// Wide transformation: inner equi-join with another keyed RDD.
    ///
    /// Both sides shuffle into `partitions` buckets; matching keys produce
    /// the cross product of their values. This is the join the paper's
    /// Spark implementation *avoided* by broadcasting the mask — provided
    /// so the trade-off is expressible.
    pub fn join<W>(&self, other: &Rdd<(K, W)>, partitions: usize) -> Rdd<(K, (V, W))>
    where
        W: Clone + Send + Sync + 'static,
    {
        let left = self.group_by_key(partitions);
        let right = other.group_by_key(partitions);
        // Co-partitioned: bucket p of both sides holds the same keys.
        let mut joined: Vec<Vec<(K, (V, W))>> = Vec::with_capacity(partitions);
        for p in 0..partitions.max(1) {
            let l = left.inner.compute(p);
            let mut r: BTreeMap<K, Vec<W>> = BTreeMap::new();
            for (k, vs) in right.inner.compute(p) {
                r.insert(k, vs);
            }
            let mut out = Vec::new();
            for (k, vs) in l {
                if let Some(ws) = r.get(&k) {
                    for v in &vs {
                        for w in ws {
                            out.push((k.clone(), (v.clone(), w.clone())));
                        }
                    }
                }
            }
            joined.push(out);
        }
        Rdd::from_partitions(joined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn rdd_of(n: usize, parts: usize) -> Rdd<(usize, usize)> {
        let mut partitions: Vec<Vec<(usize, usize)>> = vec![Vec::new(); parts];
        for i in 0..n {
            partitions[i % parts].push((i % 4, i));
        }
        Rdd::from_partitions(partitions)
    }

    #[test]
    fn map_filter_collect() {
        let r = rdd_of(20, 4);
        let out = r
            .map(|(k, v)| (k, v * 2))
            .filter(|&(_, v)| v >= 20)
            .collect();
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&(_, v)| v % 2 == 0 && v >= 20));
    }

    #[test]
    fn flat_map_expands() {
        let r = rdd_of(5, 2);
        let out = r.flat_map(|(k, v)| vec![(k, v), (k, v + 100)]).collect();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let r = rdd_of(40, 5);
        let grouped = r.group_by_key(3);
        assert_eq!(grouped.num_partitions(), 3);
        let out = grouped.collect();
        assert_eq!(out.len(), 4, "four distinct keys");
        let total: usize = out.iter().map(|(_, vs)| vs.len()).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn same_key_lands_in_same_partition() {
        let r = rdd_of(40, 5);
        let grouped = r.group_by_key(4);
        let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
        for p in 0..4 {
            for (k, _) in grouped.inner.compute(p) {
                assert!(seen.insert(k, p).is_none(), "key {k} in two partitions");
            }
        }
    }

    #[test]
    fn reduce_by_key_sums() {
        let r = rdd_of(16, 4); // keys 0..4, each 4 values
        let out = r.reduce_by_key(2, |a, b| a + b).collect_as_map();
        let expected: usize = (0..16).sum();
        assert_eq!(out.values().sum::<usize>(), expected);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn lazy_until_action() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let r = rdd_of(10, 2).map(move |x| {
            c.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(calls.load(Ordering::SeqCst), 0, "no work before the action");
        r.collect();
        assert_eq!(calls.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn cache_computes_once() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let cached = rdd_of(10, 2)
            .map(move |x| {
                c.fetch_add(1, Ordering::SeqCst);
                x
            })
            .cache();
        cached.collect();
        cached.collect();
        assert_eq!(
            calls.load(Ordering::SeqCst),
            10,
            "second collect served from cache"
        );
    }

    #[test]
    fn uncached_recomputes_lineage() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let r = rdd_of(10, 2).map(move |x| {
            c.fetch_add(1, Ordering::SeqCst);
            x
        });
        r.collect();
        r.collect();
        assert_eq!(
            calls.load(Ordering::SeqCst),
            20,
            "lineage recomputed without cache"
        );
    }

    #[test]
    fn count_matches_collect_len() {
        let r = rdd_of(17, 3).filter(|&(k, _)| k == 1);
        assert_eq!(r.count(), r.collect().len());
    }
}
