use std::sync::Arc;

/// A read-only value replicated to every worker.
///
/// Mirrors Spark's broadcast variables: the paper's Spark implementation
/// broadcasts the brain mask "to avoid joins", so closures capture the
/// broadcast handle and read it on any partition without a shuffle.
#[derive(Debug)]
pub struct Broadcast<T> {
    value: Arc<T>,
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> Broadcast<T> {
    pub(crate) fn new(value: T) -> Self {
        Broadcast {
            value: Arc::new(value),
        }
    }

    /// Access the broadcast value (Spark's `.value`).
    pub fn value(&self) -> &T {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_value() {
        let b = Broadcast::new(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b.value(), c.value());
        assert!(Arc::ptr_eq(&b.value, &c.value));
    }
}
