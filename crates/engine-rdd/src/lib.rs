#![warn(missing_docs)]

//! # engine-rdd — an RDD-based cluster-computing engine (Spark analog)
//!
//! Reproduces the architectural properties of Spark that the paper's
//! analysis rests on:
//!
//! * **Resilient Distributed Datasets** — lazy, partitioned, immutable
//!   collections with lineage ([`Rdd`]): `map`, `flat_map`, `filter`,
//!   `group_by_key`, `reduce_by_key`, `collect`.
//! * **Stage barriers at shuffles** — wide dependencies materialize every
//!   parent partition before any child partition is produced.
//! * **Explicit partition counts** — the Figure 14 tuning knob; unspecified
//!   counts default to one partition per storage block, the paper's
//!   under-utilization trap.
//! * **Broadcast variables** — replicated read-only values ([`Broadcast`]),
//!   used for the neuroscience mask to avoid a join.
//! * **Caching** — [`Rdd::cache`] pins computed partitions in memory
//!   (the §5.3.3 experiment).
//! * **Worker-side Python process** — every closure invocation crosses a
//!   serialization boundary in the cost model; the eager executor runs
//!   closures natively and counts the crossings.
//!
//! The eager executor really computes (multi-threaded over partitions);
//! [`RddEngineProfile`] exports the scheduling/overhead constants the
//! benchmark harness uses to lower RDD jobs onto `simcluster`.
//!
//! ```
//! use engine_rdd::SparkContext;
//!
//! let sc = SparkContext::new(8);
//! let totals = sc
//!     .parallelize((0..100u32).map(|i| (i % 3, i)).collect(), 4)
//!     .reduce_by_key(2, |a, b| a + b)
//!     .collect_as_map();
//! assert_eq!(totals.values().sum::<u32>(), (0..100).sum());
//! ```

mod broadcast;
mod context;
mod profile;
mod rdd;

pub use broadcast::Broadcast;
pub use context::{SparkContext, DEFAULT_BLOCK_BYTES};
pub use profile::RddEngineProfile;
pub use rdd::Rdd;
