//! The driver-side entry point.

use crate::broadcast::Broadcast;
use crate::rdd::Rdd;

/// Default storage block size: with no explicit partition count, the engine
/// creates one partition per 128 MB block — the paper's observation that
/// "if the number of data partitions is unspecified, Spark creates a
/// partition for each HDFS block, which typically leads to a small number
/// of large partitions".
pub const DEFAULT_BLOCK_BYTES: u64 = 128 * 1024 * 1024;

/// The cluster connection / driver context.
#[derive(Debug, Clone)]
pub struct SparkContext {
    /// Worker slots available across the cluster (nodes × cores).
    pub total_slots: usize,
}

impl SparkContext {
    /// Connect to a cluster with the given number of total worker slots.
    pub fn new(total_slots: usize) -> SparkContext {
        SparkContext {
            total_slots: total_slots.max(1),
        }
    }

    /// Distribute a local collection into `num_partitions` partitions
    /// (round-robin, like Spark's `parallelize` slicing).
    pub fn parallelize<T: Clone + Send + Sync + 'static>(
        &self,
        items: Vec<T>,
        num_partitions: usize,
    ) -> Rdd<T> {
        let p = num_partitions.max(1);
        let mut partitions: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            partitions[i % p].push(item);
        }
        Rdd::from_partitions(partitions)
    }

    /// Partition count chosen when the user does not specify one: one per
    /// storage block of the dataset.
    pub fn default_partitions(&self, dataset_bytes: u64) -> usize {
        (dataset_bytes.div_ceil(DEFAULT_BLOCK_BYTES)).max(1) as usize
    }

    /// Replicate a read-only value to all workers.
    pub fn broadcast<T>(&self, value: T) -> Broadcast<T> {
        Broadcast::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelize_round_robins() {
        let sc = SparkContext::new(8);
        let r = sc.parallelize((0..10).collect(), 3);
        assert_eq!(r.num_partitions(), 3);
        assert_eq!(r.count(), 10);
    }

    #[test]
    fn default_partitions_is_block_count() {
        let sc = SparkContext::new(128);
        // A single 4.2 GB subject → only 4 blocks of ~128 MB... the paper:
        // "for the neuroscience use case with a single subject, Spark
        // creates only 4 partitions". Four 1 GB-ish volume groups → with
        // 128 MB blocks a 4.2 GB subject would give 34 blocks; the paper's
        // staged NumPy files were consolidated, yielding 4. We model the
        // block rule itself.
        assert_eq!(sc.default_partitions(512 * 1024 * 1024), 4);
        assert_eq!(sc.default_partitions(1), 1);
        assert_eq!(sc.default_partitions(DEFAULT_BLOCK_BYTES * 3 + 1), 4);
    }

    #[test]
    fn broadcast_usable_in_closures() {
        let sc = SparkContext::new(4);
        let factor = sc.broadcast(10usize);
        let r = sc.parallelize(vec![1usize, 2, 3], 2);
        let f = factor.clone();
        let out = r.map(move |x| x * *f.value()).collect();
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 20, 30]);
    }
}
