//! Regression test for hash-seed nondeterminism: the same keyed job must
//! produce byte-identical output in two *separate processes*.
//!
//! `HashMap`'s `RandomState` is reseeded per process, so iteration-order
//! leaks only show up across process boundaries — an in-process double run
//! can pass while two CI runs disagree. The parent test therefore re-execs
//! this test binary twice (filtered to `child_digest`) with
//! `SCIBENCH_DETERMINISM_CHILD=1` and compares the digests the children
//! print.

use engine_rdd::SparkContext;
use std::process::Command;

const CHILD_ENV: &str = "SCIBENCH_DETERMINISM_CHILD";

/// FNV-1a over the formatted rows: stable, dependency-free fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A representative shuffle-heavy job: string keys (where hash seeds bite
/// hardest), group, reduce, join, then fold everything into one digest.
fn run_job() -> u64 {
    let sc = SparkContext::new(8);
    let words: Vec<(String, u64)> = (0..512u64)
        .map(|i| (format!("key-{}", i % 37), i))
        .collect();
    let pairs = sc.parallelize(words, 8);

    let grouped = pairs.group_by_key(5).collect();
    let reduced = pairs.reduce_by_key(3, |a, b| a.wrapping_mul(31).wrapping_add(b));
    let other: Vec<(String, u64)> = (0..37u64).map(|k| (format!("key-{k}"), k * k)).collect();
    let joined = reduced.join(&sc.parallelize(other, 4), 6).collect();
    let as_map = reduced.collect_as_map();

    let mut transcript = String::new();
    for (k, vs) in &grouped {
        transcript.push_str(&format!("g {k} {vs:?}\n"));
    }
    for (k, (v, w)) in &joined {
        transcript.push_str(&format!("j {k} {v} {w}\n"));
    }
    for (k, v) in &as_map {
        transcript.push_str(&format!("m {k} {v}\n"));
    }
    fnv1a(transcript.as_bytes())
}

/// Child half: prints the digest when invoked by the parent, no-ops in a
/// normal `cargo test` run.
#[test]
fn child_digest() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    println!("DIGEST={:016x}", run_job());
}

/// Parent half: two fresh processes (fresh hash seeds) must agree.
#[test]
fn identical_output_across_two_process_runs() {
    let exe = std::env::current_exe().expect("test binary path");
    let digest_of_run = || {
        let out = Command::new(&exe)
            .args(["--exact", "child_digest", "--nocapture", "--test-threads=1"])
            .env(CHILD_ENV, "1")
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        // With --nocapture the digest may share a line with the harness's
        // `test child_digest ...` prefix, so match anywhere in the line.
        stdout
            .lines()
            .find_map(|l| l.split_once("DIGEST=").map(|(_, d)| d.trim().to_string()))
            .unwrap_or_else(|| panic!("no DIGEST line in child output:\n{stdout}"))
    };
    let first = digest_of_run();
    let second = digest_of_run();
    assert_eq!(
        first, second,
        "shuffle output depends on the process hash seed"
    );
    // And the in-process result matches too: the digest is a pure function
    // of the job, not of any per-process state.
    assert_eq!(first, format!("{:016x}", run_job()));
}
