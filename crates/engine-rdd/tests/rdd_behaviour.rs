//! Behavioural tests of the RDD engine beyond the unit level: shuffle
//! determinism, lineage semantics, realistic image-record pipelines.

use engine_rdd::{SparkContext, DEFAULT_BLOCK_BYTES};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn shuffle_is_deterministic_across_runs() {
    let build = || {
        let sc = SparkContext::new(8);
        sc.parallelize((0..200).map(|i| (i % 7, i)).collect::<Vec<_>>(), 5)
            .group_by_key(3)
            .map(|(k, vs)| (k, vs.iter().sum::<i32>()))
            .collect()
    };
    assert_eq!(build(), build());
}

#[test]
fn flat_map_can_drop_and_multiply() {
    let sc = SparkContext::new(4);
    let r = sc
        .parallelize((0..10).collect::<Vec<i32>>(), 3)
        .flat_map(|x| {
            if x % 2 == 0 {
                vec![]
            } else {
                vec![x; x as usize]
            }
        });
    let out = r.collect();
    let expected: usize = (0..10).filter(|x| x % 2 == 1).map(|x| x as usize).sum();
    assert_eq!(out.len(), expected);
}

#[test]
fn chained_shuffles_compose() {
    let sc = SparkContext::new(8);
    let out = sc
        .parallelize(
            (0..120).map(|i| ((i % 4, i % 3), 1u32)).collect::<Vec<_>>(),
            6,
        )
        .reduce_by_key(4, |a, b| a + b) // per (i%4, i%3) pair: 10 each
        .map(|((a, _), n)| (a, n))
        .reduce_by_key(2, |a, b| a + b) // per i%4: 30 each
        .collect_as_map();
    assert_eq!(out.len(), 4);
    assert!(out.values().all(|&v| v == 30));
}

#[test]
fn cache_interacts_with_branches() {
    // Two downstream branches off a cached RDD compute the parent once —
    // the §5.3.3 caching scenario in miniature.
    let calls = Arc::new(AtomicUsize::new(0));
    let sc = SparkContext::new(4);
    let c = Arc::clone(&calls);
    let base = sc
        .parallelize((0..16).collect::<Vec<u32>>(), 4)
        .map(move |x| {
            c.fetch_add(1, Ordering::SeqCst);
            x
        })
        .cache();
    let branch_a = base.map(|x| x * 2).collect();
    let branch_b = base.filter(|&x| x > 7).collect();
    assert_eq!(branch_a.len(), 16);
    assert_eq!(branch_b.len(), 8);
    assert_eq!(
        calls.load(Ordering::SeqCst),
        16,
        "parent computed once, not twice"
    );
}

#[test]
fn uncached_branches_recompute_like_the_paper_says() {
    let calls = Arc::new(AtomicUsize::new(0));
    let sc = SparkContext::new(4);
    let c = Arc::clone(&calls);
    let base = sc
        .parallelize((0..16).collect::<Vec<u32>>(), 4)
        .map(move |x| {
            c.fetch_add(1, Ordering::SeqCst);
            x
        });
    base.map(|x| x * 2).collect();
    base.filter(|&x| x > 7).collect();
    assert_eq!(
        calls.load(Ordering::SeqCst),
        32,
        "branch re-executes the lineage"
    );
}

#[test]
fn broadcast_replaces_join_pattern() {
    // The paper's mask-as-broadcast idiom: key the small side by subject
    // and read it from every closure without a shuffle.
    let sc = SparkContext::new(4);
    let masks: HashMap<u32, f64> = (0..4).map(|s| (s, (s + 1) as f64)).collect();
    let bc = sc.broadcast(masks);
    let records: Vec<(u32, f64)> = (0..40).map(|i| (i % 4, i as f64)).collect();
    let b = bc.clone();
    let out = sc
        .parallelize(records, 8)
        .map(move |(s, v)| (s, v * b.value()[&s]))
        .collect();
    assert_eq!(out.len(), 40);
    for (s, v) in out {
        assert_eq!(v % (s + 1) as f64, 0.0);
    }
}

#[test]
fn default_partition_rule_matches_block_math() {
    let sc = SparkContext::new(128);
    assert_eq!(sc.default_partitions(0), 1);
    assert_eq!(sc.default_partitions(DEFAULT_BLOCK_BYTES), 1);
    assert_eq!(sc.default_partitions(DEFAULT_BLOCK_BYTES + 1), 2);
    assert_eq!(sc.default_partitions(10 * DEFAULT_BLOCK_BYTES), 10);
}

#[test]
fn group_by_key_handles_skewed_keys() {
    // One hot key with 90% of the records (astro patch skew in miniature).
    let sc = SparkContext::new(8);
    let mut records: Vec<(u8, u32)> = (0..900).map(|i| (0u8, i)).collect();
    records.extend((0..100).map(|i| ((1 + (i % 5)) as u8, i)));
    let grouped = sc.parallelize(records, 10).group_by_key(4).collect();
    let hot = grouped
        .iter()
        .find(|(k, _)| *k == 0)
        .expect("hot key present");
    assert_eq!(hot.1.len(), 900);
    let total: usize = grouped.iter().map(|(_, v)| v.len()).sum();
    assert_eq!(total, 1000);
}

#[test]
fn join_matches_broadcast_result() {
    // The join-vs-broadcast trade-off from the paper: same answer either way.
    let sc = SparkContext::new(4);
    let images: Vec<(u32, f64)> = (0..24).map(|i| (i % 4, i as f64)).collect();
    let masks: Vec<(u32, f64)> = (0..4).map(|s| (s, (s + 1) as f64)).collect();

    let via_join = sc
        .parallelize(images.clone(), 6)
        .join(&sc.parallelize(masks.clone(), 2), 4)
        .map(|(s, (v, m))| (s, v * m))
        .collect();

    let mask_map: HashMap<u32, f64> = masks.into_iter().collect();
    let bc = sc.broadcast(mask_map);
    let b = bc.clone();
    let via_broadcast = sc
        .parallelize(images, 6)
        .map(move |(s, v)| (s, v * b.value()[&s]))
        .collect();

    let norm = |mut v: Vec<(u32, f64)>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    };
    assert_eq!(norm(via_join), norm(via_broadcast));
}

#[test]
fn join_is_inner() {
    let sc = SparkContext::new(4);
    let left = sc.parallelize(vec![(1u32, "a"), (2, "b"), (3, "c")], 2);
    let right = sc.parallelize(vec![(2u32, 20), (3, 30), (4, 40)], 2);
    let out = left.join(&right, 3).collect();
    assert_eq!(out.len(), 2, "keys 2 and 3 only");
    assert!(out.iter().all(|(k, _)| *k == 2 || *k == 3));
}

#[test]
fn join_produces_cross_product_per_key() {
    let sc = SparkContext::new(4);
    let left = sc.parallelize(vec![(0u8, 1), (0, 2)], 2);
    let right = sc.parallelize(vec![(0u8, 10), (0, 20), (0, 30)], 2);
    let out = left.join(&right, 2).collect();
    assert_eq!(out.len(), 6);
}
