//! Concurrent-determinism contract for the resident service: N clients
//! replaying the same schedule concurrently must receive byte-identical
//! responses to a serial replay — hits, misses, interleavings and
//! evictions may differ, payload bytes may not.

use std::path::Path;

use parexec::Parallelism;
use scibench_core::lower::Engine;
use sciserve::{demo_catalog, Pipeline, QueryDesc, ServeOutcome, Server};

fn server(par: Parallelism) -> Server {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/serve sits two levels below the workspace root");
    let purity = scilint::purity::analyze_workspace(root).expect("workspace readable");
    Server::new(demo_catalog(true), purity).with_parallelism(par)
}

/// A small mixed schedule: repeated hot queries, a cold prefix-sharing
/// chain, an uncertified fixture and a rejected plan, interleaved.
fn schedule() -> Vec<QueryDesc> {
    let base = [
        QueryDesc::new(Engine::Spark, Pipeline::NeuroSegment, "dmri", 1),
        QueryDesc::new(Engine::Dask, Pipeline::NeuroSegment, "dmri", 1),
        QueryDesc::new(Engine::Spark, Pipeline::NeuroDenoise, "dmri", 1),
        QueryDesc::new(Engine::Spark, Pipeline::FixtureAmbient, "dmri", 1),
        QueryDesc::new(Engine::Spark, Pipeline::NeuroSegment, "dmri", 2),
        QueryDesc::new(Engine::TensorFlow, Pipeline::NeuroFa, "dmri", 1),
    ];
    (0..4).flat_map(|_| base.iter().cloned()).collect()
}

fn fingerprints(outcomes: &[ServeOutcome]) -> Vec<Option<u64>> {
    outcomes
        .iter()
        .map(|o| o.response().map(|r| r.fingerprint))
        .collect()
}

#[test]
fn concurrent_replay_matches_serial_byte_for_byte() {
    let schedule = schedule();
    let serial = server(Parallelism::Serial);
    let serial_out = serial.serve_batch(&schedule);

    let concurrent = server(Parallelism::threads(4));
    let concurrent_out = concurrent.serve_batch(&schedule);

    assert_eq!(serial_out.len(), concurrent_out.len());
    assert_eq!(
        fingerprints(&serial_out),
        fingerprints(&concurrent_out),
        "concurrent replay must be byte-identical to serial"
    );
    // The same requests must be rejected in both worlds.
    for (s, c) in serial_out.iter().zip(&concurrent_out) {
        assert_eq!(s.is_rejected(), c.is_rejected());
    }
    // The concurrent server really did share its cache: far fewer misses
    // than requests.
    let stats = concurrent.cache_stats();
    assert!(stats.hits > 0, "repeated queries must hit");
    assert!(stats.misses < schedule.len() as u64);
}

#[test]
fn concurrent_cache_off_replay_is_also_deterministic() {
    let schedule = schedule();
    let on = server(Parallelism::threads(4));
    let off = server(Parallelism::threads(4)).with_caching(false);
    assert_eq!(
        fingerprints(&on.serve_batch(&schedule)),
        fingerprints(&off.serve_batch(&schedule)),
        "the cache must never change a single payload byte"
    );
    assert_eq!(off.cache_len(), 0);
}
