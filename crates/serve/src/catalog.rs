//! The versioned dataset catalog: every input the service can be queried
//! against, content-fingerprinted at registration.
//!
//! A dataset is addressed as `name@version`; its fingerprint is a digest
//! of the payload *content* (every voxel, pixel, gradient and mask bit),
//! not of the name — so the input half of a cache key
//! (`combine_fingerprints(plan, input)`) changes exactly when the bytes a
//! query would consume change. Registering the same content under two
//! versions is allowed and simply aliases the same cache entries, which
//! is sound for the same reason the cache itself is: the key covers the
//! content.

use std::collections::BTreeMap;
use std::sync::Arc;

use marray::NdArray;
use scibench_core::usecases::astro as astro_uc;
use scibench_core::usecases::neuro::Subject;
use sciops::synth::sky::{SkySpec, SkySurvey};

use crate::fp::Fingerprint;

/// The payload of one registered dataset.
#[derive(Clone)]
pub enum DatasetPayload {
    /// dMRI subjects for the neuroscience pipelines.
    Neuro(Arc<Vec<Subject>>),
    /// A synthetic sky survey for the astronomy pipeline.
    AstroSurvey(Arc<SkySurvey>),
    /// A `(visit, rows, cols)` patch cube for the SciDB-style coadd.
    AstroCube(Arc<NdArray<f64>>),
}

impl DatasetPayload {
    /// Payload kind name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            DatasetPayload::Neuro(_) => "neuro",
            DatasetPayload::AstroSurvey(_) => "astro-survey",
            DatasetPayload::AstroCube(_) => "astro-cube",
        }
    }

    /// Approximate payload bytes (the f64/bool/u8 planes it pins).
    pub fn nbytes(&self) -> u64 {
        match self {
            DatasetPayload::Neuro(subs) => subs
                .iter()
                .map(|s| s.data.nbytes() as u64 + 32 * s.gtab.bvals.len() as u64)
                .sum(),
            DatasetPayload::AstroSurvey(sv) => sv
                .visits
                .iter()
                .flatten()
                .map(|e| (e.flux.nbytes() + e.variance.nbytes() + e.mask.nbytes()) as u64)
                .sum(),
            DatasetPayload::AstroCube(c) => c.nbytes() as u64,
        }
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        match self {
            DatasetPayload::Neuro(subs) => {
                fp.push_usize(subs.len());
                for s in subs.iter() {
                    fp.push_u64(u64::from(s.id));
                    for &d in s.data.dims() {
                        fp.push_usize(d);
                    }
                    fp.push_f64_slice(s.data.data());
                    fp.push_f64_slice(&s.gtab.bvals);
                    for v in &s.gtab.bvecs {
                        fp.push_f64_slice(v);
                    }
                }
            }
            DatasetPayload::AstroSurvey(sv) => {
                fp.push_usize(sv.visits.len());
                for exposures in &sv.visits {
                    fp.push_usize(exposures.len());
                    for e in exposures {
                        fp.push_u64(u64::from(e.visit));
                        fp.push_u64(u64::from(e.sensor));
                        fp.push_i64(e.bbox.x0);
                        fp.push_i64(e.bbox.y0);
                        fp.push_u64(e.bbox.width);
                        fp.push_u64(e.bbox.height);
                        fp.push_f64_slice(e.flux.data());
                        fp.push_f64_slice(e.variance.data());
                        fp.push_usize(e.mask.data().len());
                        fp.push_bytes(e.mask.data());
                    }
                }
            }
            DatasetPayload::AstroCube(c) => {
                for &d in c.dims() {
                    fp.push_usize(d);
                }
                fp.push_f64_slice(c.data());
            }
        }
        fp.finish()
    }
}

/// One registered dataset.
#[derive(Clone)]
pub struct Dataset {
    /// Catalog name.
    pub name: String,
    /// Version within the name.
    pub version: u32,
    /// Content fingerprint, computed once at registration.
    pub fingerprint: u64,
    /// Approximate payload bytes.
    pub nbytes: u64,
    /// The shared payload (all handles are refcount bumps).
    pub payload: DatasetPayload,
}

/// The versioned dataset catalog.
#[derive(Default)]
pub struct Catalog {
    entries: BTreeMap<(String, u32), Dataset>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register `payload` as `name@version`, fingerprinting its content.
    /// Returns the content fingerprint. Re-registering an existing
    /// `name@version` replaces it (versions are the sanctioned way to
    /// evolve a dataset; replacement is for catalog rebuilds).
    pub fn register(&mut self, name: &str, version: u32, payload: DatasetPayload) -> u64 {
        let fingerprint = payload.fingerprint();
        let nbytes = payload.nbytes();
        self.entries.insert(
            (name.to_string(), version),
            Dataset {
                name: name.to_string(),
                version,
                fingerprint,
                nbytes,
                payload,
            },
        );
        fingerprint
    }

    /// Look up `name@version`.
    pub fn get(&self, name: &str, version: u32) -> Option<&Dataset> {
        self.entries.get(&(name.to_string(), version))
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All registered datasets in `(name, version)` order.
    pub fn iter(&self) -> impl Iterator<Item = &Dataset> {
        self.entries.values()
    }
}

/// Build the `(visit, rows, cols)` cube of calibrated, merged exposures
/// for the first patch of `survey` — the SciDB-style coadd's ingest
/// input, suitable for [`DatasetPayload::AstroCube`].
pub fn cube_for_survey(survey: &SkySurvey) -> NdArray<f64> {
    let grid = survey.patch_grid();
    let (calib, _, _) = astro_uc::astro_params();
    let patch_box = grid.patch_box((0, 0));
    let visits = survey.visits.len();
    let rows = patch_box.height as usize;
    let cols = patch_box.width as usize;
    let mut cube = NdArray::<f64>::zeros(&[visits, rows, cols]);
    for (v, exposures) in survey.visits.iter().enumerate() {
        let calibrated: Vec<_> = exposures
            .iter()
            .map(|e| sciops::astro::calibrate_exposure(e, &calib))
            .collect();
        let pieces: Vec<_> = calibrated
            .iter()
            .filter_map(|e| e.crop_to(&patch_box))
            .collect();
        let merged = sciops::astro::pipeline::merge_visit_pieces(&patch_box, &pieces);
        let slice = merged
            .flux
            .clone()
            .reshape(&[1, rows, cols])
            .expect("merged patch flux is rows x cols by construction");
        cube.write_subarray(&[v, 0, 0], &slice)
            .expect("patch slice fits the cube by construction");
    }
    cube
}

/// The demo catalog the serve bench (and the service's own tests) run
/// against: two versions of a dMRI dataset, a test-scale sky survey with
/// its first-patch cube, and a 24-visit survey whose full-pipeline
/// Myria-pipelined plan is the Figure 15 OOM configuration (registered so
/// admission control has something real to refuse).
///
/// All content is generated from fixed seeds, so every process computes
/// the same fingerprints. `quick` shrinks the subject counts for CI.
pub fn demo_catalog(quick: bool) -> Catalog {
    use sciops::synth::dmri::{DmriPhantom, DmriSpec};

    let subjects = |base: u64, n: usize| -> DatasetPayload {
        let spec = DmriSpec::test_scale();
        let subs: Vec<Subject> = (0..n)
            .map(|i| {
                let phantom = DmriPhantom::generate(base + i as u64, &spec);
                Subject::from_phantom(i as u32, &phantom)
            })
            .collect();
        DatasetPayload::Neuro(Arc::new(subs))
    };

    let mut cat = Catalog::new();
    let n = if quick { 1 } else { 2 };
    cat.register("dmri", 1, subjects(7000, n));
    cat.register("dmri", 2, subjects(8000, n));

    let survey = Arc::new(SkySurvey::generate(99, &SkySpec::test_scale()));
    let cube = Arc::new(cube_for_survey(&survey));
    cat.register("hits", 1, DatasetPayload::AstroSurvey(survey));
    cat.register("hits-cube", 1, DatasetPayload::AstroCube(cube));

    // The paper's full visit count at test-scale geometry: cheap to hold,
    // and its pipelined Myria plan at 16 nodes overruns the memory budget
    // (Figure 15), which the admission gate must refuse.
    let deep_spec = SkySpec {
        n_visits: 24,
        ..SkySpec::test_scale()
    };
    cat.register(
        "hits-deep",
        1,
        DatasetPayload::AstroSurvey(Arc::new(SkySurvey::generate(99, &deep_spec))),
    );
    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_fingerprints_content_not_names() {
        let mut cat = Catalog::new();
        let quick = demo_catalog(true);
        let subs = match &quick.get("dmri", 1).unwrap().payload {
            DatasetPayload::Neuro(s) => Arc::clone(s),
            _ => unreachable!(),
        };
        let a = cat.register("x", 1, DatasetPayload::Neuro(Arc::clone(&subs)));
        let b = cat.register("y", 9, DatasetPayload::Neuro(subs));
        assert_eq!(a, b, "same content, same fingerprint, any name/version");
    }

    #[test]
    fn versions_with_different_content_differ() {
        let cat = demo_catalog(true);
        let v1 = cat.get("dmri", 1).unwrap();
        let v2 = cat.get("dmri", 2).unwrap();
        assert_ne!(v1.fingerprint, v2.fingerprint);
        assert!(v1.nbytes > 0);
    }

    #[test]
    fn demo_catalog_registers_the_expected_sets() {
        let cat = demo_catalog(true);
        assert_eq!(cat.len(), 5);
        for (name, version) in [
            ("dmri", 1),
            ("dmri", 2),
            ("hits", 1),
            ("hits-cube", 1),
            ("hits-deep", 1),
        ] {
            assert!(cat.get(name, version).is_some(), "{name}@v{version}");
        }
        assert!(cat.get("dmri", 3).is_none());
        match &cat.get("hits-deep", 1).unwrap().payload {
            DatasetPayload::AstroSurvey(sv) => assert_eq!(sv.visits.len(), 24),
            _ => unreachable!(),
        }
    }
}
