//! FNV-1a 64 content fingerprints for catalog payloads and responses.
//!
//! Same constants and convention as `plancheck::fingerprint` (the
//! workspace's structural digest) and the bench crate's kernel
//! fingerprints: floats hash as IEEE bit patterns, so bit-identical
//! payloads — the workspace determinism contract — yield equal digests,
//! and any single-bit divergence perturbs them.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64 hasher over typed pushes.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    /// Start a fresh digest.
    pub fn new() -> Fingerprint {
        Fingerprint(FNV_OFFSET)
    }

    /// Fold raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Fold one `u64`.
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_be_bytes());
    }

    /// Fold one `i64`.
    pub fn push_i64(&mut self, v: i64) {
        self.push_bytes(&v.to_be_bytes());
    }

    /// Fold one `usize` (as `u64`, platform-independently).
    pub fn push_usize(&mut self, v: usize) {
        self.push_u64(v as u64);
    }

    /// Fold one `f64` as its IEEE bit pattern.
    pub fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Fold a slice of `f64` bit patterns, length-prefixed.
    pub fn push_f64_slice(&mut self, vs: &[f64]) {
        self.push_usize(vs.len());
        for &v in vs {
            self.push_u64(v.to_bits());
        }
    }

    /// Fold a slice of bools as bytes, length-prefixed.
    pub fn push_bool_slice(&mut self, vs: &[bool]) {
        self.push_usize(vs.len());
        for &v in vs {
            self.push_bytes(&[u8::from(v)]);
        }
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        let digest = |f: &dyn Fn(&mut Fingerprint)| {
            let mut fp = Fingerprint::new();
            f(&mut fp);
            fp.finish()
        };
        assert_eq!(
            digest(&|f| f.push_f64_slice(&[1.0, 2.0])),
            digest(&|f| f.push_f64_slice(&[1.0, 2.0]))
        );
        assert_ne!(
            digest(&|f| f.push_f64_slice(&[1.0, 2.0])),
            digest(&|f| f.push_f64_slice(&[2.0, 1.0]))
        );
        // -0.0 and 0.0 differ bitwise, so they differ here too.
        assert_ne!(digest(&|f| f.push_f64(0.0)), digest(&|f| f.push_f64(-0.0)));
        assert_ne!(digest(&|f| f.push_i64(-1)), digest(&|f| f.push_i64(1)));
    }

    #[test]
    fn length_prefix_prevents_concatenation_aliasing() {
        let a = {
            let mut f = Fingerprint::new();
            f.push_f64_slice(&[1.0]);
            f.push_f64_slice(&[2.0]);
            f.finish()
        };
        let b = {
            let mut f = Fingerprint::new();
            f.push_f64_slice(&[1.0, 2.0]);
            f.push_f64_slice(&[]);
            f.finish()
        };
        assert_ne!(a, b);
    }
}
