//! The declarative query description a client submits.
//!
//! A query names an engine, a pipeline, a catalog dataset and the cluster
//! size the plan should be admission-checked against. The service lowers
//! it through the existing engine analogs ([`scibench_core::lower`]), so
//! a query is exactly as expressible as the paper's systems were: asking
//! TensorFlow for the full neuroscience pipeline, or SciDB for the full
//! astronomy pipeline, is rejected the same way the paper reports "NA".

use scibench_core::lower::Engine;

/// The pipelines the service can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipeline {
    /// Step 1N alone: b0 filter, mean, median-otsu mask.
    NeuroSegment,
    /// Steps 1N–2N: segmentation then masked NLM denoising.
    NeuroDenoise,
    /// The full neuroscience pipeline 1N–3N, ending in the FA map.
    NeuroFa,
    /// The full astronomy pipeline: calibrate, patch, coadd, detect.
    AstroFull,
    /// The SciDB-style clipped coadd over a pre-ingested patch cube.
    AstroCoadd,
    /// A deliberately-unsafe plan whose operator binds to `parexec`'s
    /// ambient thread-count probe: statically uncertifiable, so every
    /// request must take the cache bypass path. Kept for the gate's own
    /// regression coverage.
    FixtureAmbient,
}

impl Pipeline {
    /// Stable name, used in query keys and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Pipeline::NeuroSegment => "neuro-segment",
            Pipeline::NeuroDenoise => "neuro-denoise",
            Pipeline::NeuroFa => "neuro-fa",
            Pipeline::AstroFull => "astro-full",
            Pipeline::AstroCoadd => "astro-coadd",
            Pipeline::FixtureAmbient => "fixture-ambient",
        }
    }
}

/// Myria's memory-management mode for [`Pipeline::AstroFull`] (ignored by
/// every other engine/pipeline combination).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstroMode {
    /// Fully pipelined: fastest, but can exhaust memory (Figure 15).
    Pipelined,
    /// Materialize intermediates to disk between stages.
    Materialized,
    /// Split into independently-run sub-queries.
    MultiQuery,
}

impl AstroMode {
    /// Stable name, used in query keys and reports.
    pub fn name(&self) -> &'static str {
        match self {
            AstroMode::Pipelined => "pipelined",
            AstroMode::Materialized => "materialized",
            AstroMode::MultiQuery => "multiquery",
        }
    }

    /// The engine-rel execution mode this lowers to.
    pub fn execution_mode(&self) -> engine_rel::ExecutionMode {
        match self {
            AstroMode::Pipelined => engine_rel::ExecutionMode::Pipelined,
            AstroMode::Materialized => engine_rel::ExecutionMode::Materialized,
            AstroMode::MultiQuery => engine_rel::ExecutionMode::MultiQuery { pieces: 4 },
        }
    }
}

/// One declarative query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryDesc {
    /// Which engine analog plans (and is admission-checked for) the run.
    pub engine: Engine,
    /// Which pipeline to execute.
    pub pipeline: Pipeline,
    /// Catalog dataset name.
    pub dataset: String,
    /// Catalog dataset version.
    pub version: u32,
    /// Cluster size the plan is admission-checked against.
    pub nodes: usize,
    /// Myria memory-management mode for the full astronomy pipeline.
    pub mode: AstroMode,
}

impl QueryDesc {
    /// A query with the workspace defaults: 16 nodes, materialized mode.
    pub fn new(engine: Engine, pipeline: Pipeline, dataset: &str, version: u32) -> QueryDesc {
        QueryDesc {
            engine,
            pipeline,
            dataset: dataset.to_string(),
            version,
            nodes: 16,
            mode: AstroMode::Materialized,
        }
    }

    /// Admission-check against `nodes` instead of the default 16.
    pub fn with_nodes(mut self, nodes: usize) -> QueryDesc {
        self.nodes = nodes;
        self
    }

    /// Set Myria's memory-management mode for [`Pipeline::AstroFull`].
    pub fn with_mode(mut self, mode: AstroMode) -> QueryDesc {
        self.mode = mode;
        self
    }

    /// Canonical key: two queries with equal keys lower to the same plan
    /// against the same input. The Myria mode participates only where it
    /// changes the plan (the full astronomy pipeline on Myria).
    pub fn key(&self) -> String {
        let mode = if self.pipeline == Pipeline::AstroFull && self.engine == Engine::Myria {
            format!(" {}", self.mode.name())
        } else {
            String::new()
        };
        format!(
            "{} {} {}@v{} nodes={}{mode}",
            self.pipeline.name(),
            self.engine.name(),
            self.dataset,
            self.version,
            self.nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_distinguish_everything_that_changes_the_plan_or_input() {
        let base = QueryDesc::new(Engine::Spark, Pipeline::NeuroFa, "dmri", 1);
        assert_eq!(base.key(), "neuro-fa Spark dmri@v1 nodes=16");
        assert_ne!(base.key(), base.clone().with_nodes(64).key());
        let v2 = QueryDesc::new(Engine::Spark, Pipeline::NeuroFa, "dmri", 2);
        assert_ne!(base.key(), v2.key());
        let dask = QueryDesc::new(Engine::Dask, Pipeline::NeuroFa, "dmri", 1);
        assert_ne!(base.key(), dask.key());
    }

    #[test]
    fn myria_mode_participates_only_where_it_changes_the_plan() {
        let spark = QueryDesc::new(Engine::Spark, Pipeline::AstroFull, "hits", 1);
        assert_eq!(
            spark.key(),
            spark.clone().with_mode(AstroMode::Pipelined).key()
        );
        let myria = QueryDesc::new(Engine::Myria, Pipeline::AstroFull, "hits", 1);
        assert_ne!(
            myria.key(),
            myria.clone().with_mode(AstroMode::Pipelined).key()
        );
        assert!(myria.key().ends_with("materialized"));
    }
}
