//! The resident query service.
//!
//! A [`Server`] holds the dataset catalog, the workspace purity table
//! (computed once at startup — the service is resident, so the static
//! analysis is paid once and amortized over every request), a plan cache,
//! a shared [`MorselPool`] for concurrent requests, and the process-wide
//! result cache: a [`SharedMemoTable`] keyed by
//! `combine_fingerprints(stage plan fingerprint, input content
//! fingerprint)`.
//!
//! The result cache and the kernels' working set share one memory
//! governor: the server registers the cache as a governor *valve*
//! ([`marray::register_valve`]), so when a process-wide budget
//! ([`marray::mem_budget`]) comes under pressure, clean cached results —
//! which are recomputable from their certificates — are evicted before
//! any working-set chunk pays spill I/O.
//!
//! # Life of a request
//!
//! 1. **Resolve** the dataset (`name@version`) in the catalog.
//! 2. **Plan**: lower the query through the engine's existing analogs
//!    into per-stage task graphs; fingerprint each stage (chained, so a
//!    stage's fingerprint covers every upstream stage); certify each
//!    stage with [`scimemo::certify`]; admission-check every graph with
//!    [`plancheck::check`] — a plan with *any* error, memory errors
//!    included, is refused (the Figure 15 pipelined-OOM configuration is
//!    the canonical rejection). When a process-wide memory budget is
//!    active the governor gives every engine analog a spill tier, so
//!    memory overruns degrade to spill I/O instead of OOM and admission
//!    runs with `spills = true` — the Figure 15 plan becomes runnable
//!    (slowly) rather than refused. The whole `Result` is cached per
//!    (query key, budget-active bit), so repeat queries skip lowering
//!    and certification entirely.
//! 3. **Execute** stage by stage. Every stage probes the result cache:
//!    certified stages hit (an `Arc` clone of the resident payload —
//!    zero copies, verified by `CopyCounter` in the serve bench) or
//!    compute-and-admit; uncertified stages always take the bypass path.
//!    Because execution is *always* stage-wise, a cold query whose prefix
//!    matches a previously-served plan reuses the warm prefix (sub-plan
//!    memoization), and cache-on/cache-off runs execute byte-identical
//!    stage code.
//!
//! # Soundness
//!
//! The cache can only be populated through a probe that asserts the
//! stage's static certificate (see `scimemo::table`), the key's plan half
//! covers operator kind, parameters and upstream stages, and the input
//! half covers every payload byte of the dataset. DESIGN.md §3.15 spells
//! out the full argument.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use marray::{Mask, NdArray};
use parexec::{CostHint, MorselPool, Parallelism};
use plancheck::{combine_fingerprints, graph_fingerprint, OpBinding, OpClass};
use scibench_core::experiments::{tuned_partitions, Setup};
use scibench_core::lower::Engine;
use scibench_core::lower::{astro as lower_astro, neuro as lower_neuro, steps as lower_steps};
use scibench_core::usecases::astro as astro_uc;
use scibench_core::usecases::neuro as neuro_uc;
use scibench_core::workload::{AstroWorkload, NeuroWorkload};
use scilint::purity::PurityTable;
use scimemo::{certify, MemoStats, Probe, SharedMemoTable};
use simcluster::{TaskGraph, TaskSpec};

use crate::catalog::{Catalog, Dataset, DatasetPayload};
use crate::fp::Fingerprint;
use crate::query::{Pipeline, QueryDesc};

/// The deliberately-unsafe fixture's binding table: `fixture:auto-tile`
/// claims to run `auto`, the ambient thread-count probe in `parexec`,
/// whose purity verdict is `ambient_read` — so the certifier must refuse
/// to let the fixture populate the cache.
pub const FIXTURE_OPS: &[OpBinding] = &[
    OpBinding::new("fixture:ingest", OpClass::Source),
    OpBinding::new("fixture:auto-tile", OpClass::Kernel(&["auto"])),
];

/// The fixture plan: a versioned ingest feeding the ambient-read kernel.
pub fn fixture_graph() -> TaskGraph {
    let mut g = TaskGraph::new();
    let ingest = g.add(TaskSpec::compute("fixture:ingest", 1.0).output(1 << 20));
    g.add(TaskSpec::compute("fixture:auto-tile", 1.0).after(&[ingest]));
    g
}

/// One cacheable stage payload. Every variant is behind an `Arc`, so a
/// cache hit's `clone` is a refcount bump: zero payload bytes move.
#[derive(Clone)]
enum Payload {
    /// Per-subject `(volume, mask)` pairs — segmentation's `(mean_b0,
    /// mask)` or denoising's `(denoised, mask)`.
    VolMask(Arc<BTreeMap<u32, (NdArray<f64>, Mask)>>),
    /// Per-subject volumes (the FA maps).
    Vols(Arc<BTreeMap<u32, NdArray<f64>>>),
    /// The full astronomy result: per-patch coadds and catalogs.
    Astro(Arc<astro_uc::AstroResult>),
    /// The clipped-coadd plane.
    Coadd(Arc<NdArray<f64>>),
    /// A scalar (the fixture's output).
    Scalar(f64),
}

/// A payload plus its content fingerprint and pinned bytes, both computed
/// once when the payload is first produced — hits reuse them, so serving
/// a warm request never re-reads the payload.
#[derive(Clone)]
struct Cached {
    payload: Payload,
    fingerprint: u64,
    nbytes: u64,
}

impl Cached {
    fn wrap(payload: Payload) -> Cached {
        let mut fp = Fingerprint::new();
        let mut nbytes: u64 = 0;
        match &payload {
            Payload::VolMask(m) => {
                for (id, (vol, mask)) in m.iter() {
                    fp.push_u64(u64::from(*id));
                    fp.push_f64_slice(vol.data());
                    fp.push_bool_slice(mask.bits());
                    nbytes += vol.nbytes() as u64 + mask.bits().len() as u64;
                }
            }
            Payload::Vols(m) => {
                for (id, vol) in m.iter() {
                    fp.push_u64(u64::from(*id));
                    fp.push_f64_slice(vol.data());
                    nbytes += vol.nbytes() as u64;
                }
            }
            Payload::Astro(r) => {
                for (patch, flux) in &r.coadd_flux {
                    fp.push_usize(patch.0 as usize);
                    fp.push_usize(patch.1 as usize);
                    fp.push_f64_slice(flux.data());
                    nbytes += flux.nbytes() as u64;
                }
                for sources in r.catalogs.values() {
                    fp.push_usize(sources.len());
                    nbytes += 48 * sources.len() as u64;
                    for s in sources {
                        fp.push_f64(s.centroid.0);
                        fp.push_f64(s.centroid.1);
                        fp.push_f64(s.flux);
                        fp.push_f64(s.peak);
                        fp.push_usize(s.npix);
                    }
                }
            }
            Payload::Coadd(c) => {
                fp.push_f64_slice(c.data());
                nbytes += c.nbytes() as u64;
            }
            Payload::Scalar(v) => {
                fp.push_f64(*v);
                nbytes += 8;
            }
        }
        Cached {
            payload,
            fingerprint: fp.finish(),
            nbytes,
        }
    }
}

/// One stage of an admitted plan.
struct StagePlan {
    /// Stage name, stable across runs.
    name: &'static str,
    /// Chained plan fingerprint: this stage's canonical graph digest
    /// folded over every upstream stage's.
    fingerprint: u64,
    /// Whether [`scimemo::certify`] certified every payload node.
    certified: bool,
}

/// A lowered, certified, admission-checked plan.
struct PlanInfo {
    stages: Vec<StagePlan>,
}

/// How one stage of a served request was satisfied.
#[derive(Debug, Clone, Copy)]
pub struct StageOutcome {
    /// Stage name.
    pub stage: &'static str,
    /// Hit / miss / bypass (with caching disabled, every stage reports
    /// [`Probe::Bypass`]: it computed and nothing was consulted or
    /// stored).
    pub probe: Probe,
}

/// A successfully-served request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The query key ([`QueryDesc::key`]).
    pub key: String,
    /// Content fingerprint of the final payload.
    pub fingerprint: u64,
    /// Service latency in microseconds (plan lookup + all stages).
    pub micros: f64,
    /// Per-stage cache outcomes, in execution order.
    pub stages: Vec<StageOutcome>,
}

impl Response {
    /// True when every stage was served from the cache.
    pub fn all_hits(&self) -> bool {
        self.stages.iter().all(|s| s.probe == Probe::Hit)
    }

    /// True when any stage computed and admitted.
    pub fn any_miss(&self) -> bool {
        self.stages.iter().any(|s| s.probe == Probe::Miss)
    }

    /// True when any stage took the uncertified bypass path.
    pub fn any_bypass(&self) -> bool {
        self.stages.iter().any(|s| s.probe == Probe::Bypass)
    }
}

/// The outcome of one request.
#[derive(Debug, Clone)]
pub enum ServeOutcome {
    /// The plan was admitted and executed.
    Done(Response),
    /// The query was refused before execution: unknown dataset, an
    /// engine/pipeline combination the engine cannot express, or an
    /// admission failure (the plan would error — e.g. overrun memory).
    Rejected {
        /// The query key.
        key: String,
        /// Why the query was refused.
        reason: String,
    },
}

impl ServeOutcome {
    /// The response, when the request was served.
    pub fn response(&self) -> Option<&Response> {
        match self {
            ServeOutcome::Done(r) => Some(r),
            ServeOutcome::Rejected { .. } => None,
        }
    }

    /// True when the query was refused.
    pub fn is_rejected(&self) -> bool {
        matches!(self, ServeOutcome::Rejected { .. })
    }
}

/// The resident query service. See the module docs for the life of a
/// request.
pub struct Server {
    setup: Setup,
    catalog: Catalog,
    purity: PurityTable,
    pool: MorselPool,
    plans: Mutex<BTreeMap<String, Arc<Result<PlanInfo, String>>>>,
    cache: Arc<SharedMemoTable<Cached>>,
    /// Keeps the cache registered as a memory-governor valve for the
    /// server's lifetime: under budget pressure the governor drains LRU
    /// cache entries (recomputable) before spilling working-set chunks
    /// (which cost reload I/O). Never read — dropping it unregisters.
    _cache_valve: marray::ValveGuard,
    caching: bool,
}

impl Server {
    /// Start a server over `catalog`. `purity` is the workspace purity
    /// table backing certification — the caller runs
    /// `scilint::purity::analyze_workspace` once at startup and the cost
    /// is amortized over every request.
    pub fn new(catalog: Catalog, purity: PurityTable) -> Server {
        let cache = Arc::new(SharedMemoTable::new());
        Server {
            setup: Setup::default(),
            catalog,
            purity,
            pool: MorselPool::with_hint(Parallelism::Serial, CostHint::min_items(1)),
            plans: Mutex::new(BTreeMap::new()),
            _cache_valve: Self::arm_valve(&cache),
            cache,
            caching: true,
        }
    }

    /// Register `cache` as a governor valve. Valves only fire when a
    /// memory budget is both set and under pressure, so unconditional
    /// registration costs nothing in the unbounded case.
    fn arm_valve(cache: &Arc<SharedMemoTable<Cached>>) -> marray::ValveGuard {
        let cache = Arc::clone(cache);
        marray::register_valve(Box::new(move |excess| cache.evict_bytes(excess)))
    }

    /// Serve concurrent batches across `par` workers (each request is one
    /// morsel item; the pool is shared by every batch).
    pub fn with_parallelism(mut self, par: Parallelism) -> Server {
        self.pool = MorselPool::with_hint(par, CostHint::min_items(1));
        self
    }

    /// Bound the result cache to `bytes` (LRU eviction past it). Replaces
    /// the cache, so call before serving.
    pub fn with_cache_budget(mut self, bytes: u64) -> Server {
        self.cache = Arc::new(SharedMemoTable::with_budget(bytes));
        self._cache_valve = Self::arm_valve(&self.cache);
        self
    }

    /// Enable or disable the result cache entirely — the cache-off
    /// baseline replays every stage from scratch. Call before serving.
    pub fn with_caching(mut self, on: bool) -> Server {
        self.caching = on;
        self
    }

    /// The catalog this server answers queries against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Whether the result cache is consulted at all.
    pub fn caching(&self) -> bool {
        self.caching
    }

    /// Result-cache traffic counters so far.
    pub fn cache_stats(&self) -> MemoStats {
        self.cache.stats()
    }

    /// Resident result-cache entries right now.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Resident result-cache bytes right now.
    pub fn cache_bytes(&self) -> u64 {
        self.cache.resident_bytes()
    }

    fn plans_lock(&self) -> MutexGuard<'_, BTreeMap<String, Arc<Result<PlanInfo, String>>>> {
        self.plans.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Serve one request.
    pub fn serve_one(&self, q: &QueryDesc) -> ServeOutcome {
        let key = q.key();
        let t0 = Instant::now();
        let Some(dataset) = self.catalog.get(&q.dataset, q.version) else {
            return ServeOutcome::Rejected {
                key,
                reason: format!("unknown dataset `{}@v{}`", q.dataset, q.version),
            };
        };
        let plan = self.plan_for(&key, q, dataset);
        let plan = match plan.as_ref() {
            Ok(p) => p,
            Err(reason) => {
                return ServeOutcome::Rejected {
                    key,
                    reason: reason.clone(),
                }
            }
        };
        let mut prev: Option<Cached> = None;
        let mut stages = Vec::with_capacity(plan.stages.len());
        for st in &plan.stages {
            let cache_key = combine_fingerprints(st.fingerprint, dataset.fingerprint);
            let (out, probe) = if self.caching {
                // `prev` is cloned into the compute closure: an Arc bump,
                // and unused entirely when the probe hits.
                let prev = prev.clone();
                self.cache.get_or_compute(
                    cache_key,
                    st.certified,
                    || Cached::wrap(exec_stage(st.name, q, dataset, prev.as_ref())),
                    |c| c.nbytes,
                )
            } else {
                (
                    Cached::wrap(exec_stage(st.name, q, dataset, prev.as_ref())),
                    Probe::Bypass,
                )
            };
            stages.push(StageOutcome {
                stage: st.name,
                probe,
            });
            prev = Some(out);
        }
        let last = prev.expect("every admitted plan has at least one stage");
        ServeOutcome::Done(Response {
            key,
            fingerprint: last.fingerprint,
            micros: t0.elapsed().as_secs_f64() * 1e6,
            stages,
        })
    }

    /// Serve a batch of requests concurrently on the shared pool,
    /// results in input order.
    pub fn serve_batch(&self, queries: &[QueryDesc]) -> Vec<ServeOutcome> {
        self.pool.map(queries, |_, q| self.serve_one(q))
    }

    /// The cached plan (or cached rejection) for `key`, building it on
    /// first sight. Building happens outside the lock: two requests
    /// racing a new key both lower, deterministically identically, and
    /// the first insertion wins. The admission verdict depends on whether
    /// a memory budget (and therefore a spill tier) is active, so the
    /// internal key carries that bit; [`Response::key`] stays
    /// [`QueryDesc::key`].
    fn plan_for(
        &self,
        key: &str,
        q: &QueryDesc,
        dataset: &Dataset,
    ) -> Arc<Result<PlanInfo, String>> {
        let plan_key = format!("{key}|spill={}", marray::mem_budget().is_some());
        if let Some(p) = self.plans_lock().get(&plan_key) {
            return Arc::clone(p);
        }
        let built = Arc::new(self.build_plan(q, dataset));
        self.plans_lock().entry(plan_key).or_insert(built).clone()
    }

    /// Validate, lower, fingerprint, certify and admission-check `q`.
    fn build_plan(&self, q: &QueryDesc, dataset: &Dataset) -> Result<PlanInfo, String> {
        validate(q, dataset)?;
        let cluster = self.setup.cluster_for(q.engine, q.nodes);
        let mut inv = self.setup.profiles.invariants(q.engine);
        // With a process-wide budget active the governor gives every
        // engine analog a spill tier: memory pressure degrades to spill
        // I/O instead of OOM, so admission treats overruns the way it
        // treats Spark's native spilling — the Figure 15 pipelined plan
        // becomes runnable (slowly) rather than refused.
        if marray::mem_budget().is_some() {
            inv.spills = true;
        }
        let admit = |graph: &TaskGraph| -> Result<(), String> {
            let report = plancheck::check(graph, &cluster, &inv);
            let errors = report.errors().count();
            if errors == 0 {
                Ok(())
            } else {
                Err(format!(
                    "admission: plancheck refused the plan ({errors} error(s); {})",
                    report.summary()
                ))
            }
        };
        let certified = |graph: &TaskGraph| -> bool {
            let tables = self.setup.profiles.op_bindings(q.engine);
            certify(graph, &tables, &self.purity)
                .rejections()
                .next()
                .is_none()
        };
        let mut stages = Vec::new();
        match q.pipeline {
            Pipeline::NeuroSegment | Pipeline::NeuroDenoise | Pipeline::NeuroFa => {
                let n = match &dataset.payload {
                    DatasetPayload::Neuro(subs) => subs.len(),
                    _ => unreachable!("validated as a neuro payload"),
                };
                let w = NeuroWorkload { subjects: n };
                let seg = lower_steps::mean_step(
                    q.engine,
                    &w,
                    &self.setup.cm,
                    &self.setup.profiles,
                    &cluster,
                );
                admit(&seg)?;
                let seg_fp = graph_fingerprint(&seg);
                stages.push(StagePlan {
                    name: "segment",
                    fingerprint: seg_fp,
                    certified: certified(&seg),
                });
                if q.pipeline != Pipeline::NeuroSegment {
                    let den = lower_steps::denoise_step(
                        q.engine,
                        &w,
                        &self.setup.cm,
                        &self.setup.profiles,
                        &cluster,
                    );
                    admit(&den)?;
                    let den_fp = combine_fingerprints(seg_fp, graph_fingerprint(&den));
                    stages.push(StagePlan {
                        name: "denoise",
                        fingerprint: den_fp,
                        certified: certified(&den),
                    });
                    if q.pipeline == Pipeline::NeuroFa {
                        let full = match q.engine {
                            Engine::Spark => lower_neuro::spark(
                                &w,
                                &self.setup.cm,
                                &self.setup.profiles,
                                &cluster,
                                Some(tuned_partitions(&cluster)),
                                true,
                            ),
                            Engine::Myria => lower_neuro::myria(
                                &w,
                                &self.setup.cm,
                                &self.setup.profiles,
                                &cluster,
                            ),
                            Engine::Dask => lower_neuro::dask(
                                &w,
                                &self.setup.cm,
                                &self.setup.profiles,
                                &cluster,
                            ),
                            _ => unreachable!("validated: only the e2e engines reach here"),
                        };
                        admit(&full)?;
                        stages.push(StagePlan {
                            name: "fa",
                            fingerprint: combine_fingerprints(den_fp, graph_fingerprint(&full)),
                            certified: certified(&full),
                        });
                    }
                }
            }
            Pipeline::AstroFull => {
                let visits = match &dataset.payload {
                    DatasetPayload::AstroSurvey(sv) => sv.visits.len(),
                    _ => unreachable!("validated as a survey payload"),
                };
                let w = AstroWorkload { visits };
                let graph = match q.engine {
                    Engine::Spark => {
                        lower_astro::spark(&w, &self.setup.cm, &self.setup.profiles, &cluster)
                    }
                    Engine::Myria => {
                        lower_astro::myria(
                            &w,
                            &self.setup.cm,
                            &self.setup.profiles,
                            &cluster,
                            q.mode.execution_mode(),
                        )
                        .0
                    }
                    _ => unreachable!("validated: only Spark/Myria reach here"),
                };
                admit(&graph)?;
                stages.push(StagePlan {
                    name: "astro-full",
                    fingerprint: graph_fingerprint(&graph),
                    certified: certified(&graph),
                });
            }
            Pipeline::AstroCoadd => {
                let visits = match &dataset.payload {
                    DatasetPayload::AstroCube(c) => c.dims()[0],
                    _ => unreachable!("validated as a cube payload"),
                };
                let w = AstroWorkload { visits };
                let graph = lower_astro::scidb_coadd(
                    &w,
                    &self.setup.cm,
                    &self.setup.profiles,
                    &cluster,
                    1000,
                );
                admit(&graph)?;
                stages.push(StagePlan {
                    name: "coadd",
                    fingerprint: graph_fingerprint(&graph),
                    certified: certified(&graph),
                });
            }
            Pipeline::FixtureAmbient => {
                let graph = fixture_graph();
                admit(&graph)?;
                // The fixture certifies against its own binding table,
                // which routes its kernel to the ambient-read probe: the
                // certifier decides (and must refuse) — nothing is
                // hard-coded here, so this is live regression coverage.
                let cert = certify(&graph, &[FIXTURE_OPS], &self.purity);
                stages.push(StagePlan {
                    name: "ambient",
                    fingerprint: graph_fingerprint(&graph),
                    certified: cert.rejections().next().is_none(),
                });
            }
        }
        Ok(PlanInfo { stages })
    }
}

/// Which engine/pipeline/payload combinations are expressible, mirroring
/// the paper's capability matrix.
fn validate(q: &QueryDesc, dataset: &Dataset) -> Result<(), String> {
    if q.nodes == 0 {
        return Err("admission: a zero-node cluster cannot run anything".to_string());
    }
    let engine_ok = match q.pipeline {
        Pipeline::NeuroSegment | Pipeline::NeuroDenoise | Pipeline::FixtureAmbient => true,
        Pipeline::NeuroFa => Engine::neuro_e2e().contains(&q.engine),
        Pipeline::AstroFull => Engine::astro_e2e().contains(&q.engine),
        Pipeline::AstroCoadd => q.engine == Engine::SciDb,
    };
    if !engine_ok {
        return Err(format!(
            "{} cannot express `{}` (the paper reports this combination NA)",
            q.engine.name(),
            q.pipeline.name()
        ));
    }
    let payload_ok = match q.pipeline {
        Pipeline::NeuroSegment
        | Pipeline::NeuroDenoise
        | Pipeline::NeuroFa
        | Pipeline::FixtureAmbient => {
            matches!(&dataset.payload, DatasetPayload::Neuro(s) if !s.is_empty())
        }
        Pipeline::AstroFull => {
            matches!(&dataset.payload, DatasetPayload::AstroSurvey(sv) if !sv.visits.is_empty())
        }
        Pipeline::AstroCoadd => matches!(&dataset.payload, DatasetPayload::AstroCube(_)),
    };
    if !payload_ok {
        return Err(format!(
            "pipeline `{}` cannot consume dataset `{}@v{}` (payload kind `{}`)",
            q.pipeline.name(),
            dataset.name,
            dataset.version,
            dataset.payload.kind()
        ));
    }
    Ok(())
}

/// Execute one stage. Always runs the same shared kernels regardless of
/// cache state — cache-on and cache-off runs are byte-identical by
/// construction, which the serve bench verifies end to end.
fn exec_stage(name: &str, q: &QueryDesc, dataset: &Dataset, prev: Option<&Cached>) -> Payload {
    match (name, &dataset.payload) {
        ("segment", DatasetPayload::Neuro(subs)) => {
            let mut out = BTreeMap::new();
            for s in subs.iter() {
                let (mean_b0, mask) = sciops::neuro::pipeline::segmentation(&s.data, &s.gtab);
                out.insert(s.id, (mean_b0, mask));
            }
            Payload::VolMask(Arc::new(out))
        }
        ("denoise", DatasetPayload::Neuro(subs)) => {
            let seg = prev_volmask(prev);
            let params = neuro_uc::nlm_params();
            let mut out = BTreeMap::new();
            for s in subs.iter() {
                let (_, mask) = seg
                    .get(&s.id)
                    .expect("segment stage output covers every subject");
                let denoised = sciops::neuro::pipeline::denoise_all(&s.data, mask, &params);
                out.insert(s.id, (denoised, mask.clone()));
            }
            Payload::VolMask(Arc::new(out))
        }
        ("fa", DatasetPayload::Neuro(subs)) => {
            let den = prev_volmask(prev);
            let mut out = BTreeMap::new();
            for s in subs.iter() {
                let (denoised, mask) = den
                    .get(&s.id)
                    .expect("denoise stage output covers every subject");
                out.insert(s.id, sciops::neuro::fit_dtm_volume(denoised, mask, &s.gtab));
            }
            Payload::Vols(Arc::new(out))
        }
        ("astro-full", DatasetPayload::AstroSurvey(sv)) => {
            // Execution runs the test-scale engine analogs at their e2e
            // bench shapes; `q.nodes` sizes only the admission model.
            let result = match q.engine {
                Engine::Spark => astro_uc::spark(sv, 6),
                Engine::Myria => astro_uc::myria(sv, 4, 1),
                _ => unreachable!("validated: only Spark/Myria reach here"),
            };
            Payload::Astro(Arc::new(result))
        }
        ("coadd", DatasetPayload::AstroCube(cube)) => {
            let db = engine_array::ArrayDb::connect(4);
            let out = astro_uc::scidb_coadd_cube(&db, cube, 8)
                .expect("the registered cube satisfies the coadd's shape contract");
            Payload::Coadd(Arc::new(out))
        }
        ("ambient", DatasetPayload::Neuro(subs)) => {
            // Runtime-deterministic on purpose: the fixture is *statically*
            // uncertifiable (its operator binds to an ambient-read sink),
            // which is exactly what the bypass path must handle; a
            // genuinely nondeterministic payload would break the replay
            // comparisons without testing anything further.
            let s = subs.first().expect("validated as a non-empty dataset");
            let data = s.data.data();
            let mean = data.iter().sum::<f64>() / data.len() as f64;
            Payload::Scalar(mean)
        }
        _ => unreachable!("stage/payload pairs are fixed by build_plan"),
    }
}

fn prev_volmask(prev: Option<&Cached>) -> &BTreeMap<u32, (NdArray<f64>, Mask)> {
    match prev.map(|c| &c.payload) {
        Some(Payload::VolMask(m)) => m,
        _ => unreachable!("stage order is fixed by build_plan"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::demo_catalog;
    use crate::query::AstroMode;
    use marray::CopyCounter;
    use std::path::Path;

    fn workspace_root() -> &'static Path {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/serve sits two levels below the workspace root")
    }

    fn server() -> Server {
        let purity =
            scilint::purity::analyze_workspace(workspace_root()).expect("workspace readable");
        Server::new(demo_catalog(true), purity)
    }

    fn fp(outcome: &ServeOutcome) -> u64 {
        outcome.response().expect("served").fingerprint
    }

    #[test]
    fn warm_hit_is_zero_copy_and_bit_identical() {
        // Budget pinned off: a concurrent budget test's governor pressure
        // would otherwise drain this server's cache through its valve.
        marray::with_mem_budget(None, || {
            let srv = server();
            let q = QueryDesc::new(Engine::Spark, Pipeline::NeuroSegment, "dmri", 1);
            let cold = srv.serve_one(&q);
            assert!(cold.response().expect("served").any_miss());
            let before = CopyCounter::snapshot();
            let warm = srv.serve_one(&q);
            let delta = CopyCounter::snapshot().since(&before);
            assert_eq!((delta.copies, delta.bytes), (0, 0), "hit must move nothing");
            assert!(warm.response().expect("served").all_hits());
            assert_eq!(fp(&cold), fp(&warm));
        });
    }

    #[test]
    fn cold_query_reuses_the_warm_prefix_of_a_previous_plan() {
        marray::with_mem_budget(None, || {
            let srv = server();
            let den = QueryDesc::new(Engine::Spark, Pipeline::NeuroDenoise, "dmri", 1);
            srv.serve_one(&den);
            // The FA query has never run, but its first two stages have.
            let fa = QueryDesc::new(Engine::Spark, Pipeline::NeuroFa, "dmri", 1);
            let r = srv.serve_one(&fa);
            let probes: Vec<Probe> = r
                .response()
                .expect("served")
                .stages
                .iter()
                .map(|s| s.probe)
                .collect();
            assert_eq!(probes, [Probe::Hit, Probe::Hit, Probe::Miss]);
        });
    }

    #[test]
    fn engines_and_inputs_do_not_share_cache_entries() {
        let srv = server();
        let spark = QueryDesc::new(Engine::Spark, Pipeline::NeuroSegment, "dmri", 1);
        let dask = QueryDesc::new(Engine::Dask, Pipeline::NeuroSegment, "dmri", 1);
        let v2 = QueryDesc::new(Engine::Spark, Pipeline::NeuroSegment, "dmri", 2);
        srv.serve_one(&spark);
        for q in [&dask, &v2] {
            assert!(
                srv.serve_one(q).response().expect("served").any_miss(),
                "{}: distinct plan or input must not hit",
                q.key()
            );
        }
    }

    #[test]
    fn fixture_always_bypasses_and_stays_deterministic() {
        let srv = server();
        let q = QueryDesc::new(Engine::Spark, Pipeline::FixtureAmbient, "dmri", 1);
        let a = srv.serve_one(&q);
        let resident = srv.cache_len();
        let b = srv.serve_one(&q);
        assert!(a.response().expect("served").any_bypass());
        assert!(b.response().expect("served").any_bypass());
        assert_eq!(srv.cache_len(), resident, "bypass must never populate");
        assert_eq!(fp(&a), fp(&b));
        assert_eq!(srv.cache_stats().bypasses, 2);
    }

    #[test]
    fn figure_15_plan_is_refused_at_admission() {
        // Admission depends on the budget-active bit — pin it off.
        marray::with_mem_budget(None, || {
            let srv = server();
            let q = QueryDesc::new(Engine::Myria, Pipeline::AstroFull, "hits-deep", 1)
                .with_mode(AstroMode::Pipelined)
                .with_nodes(16);
            match srv.serve_one(&q) {
                ServeOutcome::Rejected { reason, .. } => {
                    assert!(reason.contains("admission"), "{reason}");
                }
                ServeOutcome::Done(_) => panic!("the Figure 15 OOM plan must be refused"),
            }
            // The disk-backed mode of the same query is admitted.
            let ok = srv.serve_one(&q.with_mode(AstroMode::Materialized));
            assert!(ok.response().is_some());
        });
    }

    #[test]
    fn figure_15_plan_runs_under_a_memory_budget() {
        marray::with_mem_budget(Some(64 << 20), || {
            let srv = server();
            let q = QueryDesc::new(Engine::Myria, Pipeline::AstroFull, "hits-deep", 1)
                .with_mode(AstroMode::Pipelined)
                .with_nodes(16);
            // Statically this plan overruns cluster memory (the refusal
            // above); with the governor's spill tier active, memory
            // pressure degrades to spill I/O, so admission lets it run.
            let pipelined = srv.serve_one(&q);
            let r = pipelined.response().expect("spill tier admits the plan");
            // Execution modes lower to different plans but the same
            // kernels: the spilled pipelined run must be bit-identical
            // to the disk-backed one.
            let materialized = srv.serve_one(&q.with_mode(AstroMode::Materialized));
            assert_eq!(r.fingerprint, fp(&materialized));
        });
    }

    #[test]
    fn governor_pressure_drains_the_result_cache_first() {
        let srv = server();
        let q = QueryDesc::new(Engine::Spark, Pipeline::NeuroSegment, "dmri", 1);
        marray::with_mem_budget(None, || srv.serve_one(&q));
        assert!(srv.cache_len() > 0, "the served stage must be cached");
        let before = srv.cache_stats().evictions;
        marray::with_mem_budget(Some(1024), || {
            // Governing any chunk bigger than the budget puts the
            // governor under pressure; valves (the result cache) run
            // before any chunk is spilled.
            let arr = NdArray::from_fn(&[64, 64], |ix| (ix[0] + ix[1]) as f64);
            let governed = arr.govern();
            marray::MemoryGovernor::enforce();
            drop(governed);
        });
        assert!(
            srv.cache_stats().evictions > before,
            "the valve must evict cached results under pressure"
        );
        assert_eq!(srv.cache_len(), 0, "1 KiB of headroom fits no payload");
    }

    #[test]
    fn inexpressible_combinations_are_refused() {
        let srv = server();
        for q in [
            QueryDesc::new(Engine::TensorFlow, Pipeline::NeuroFa, "dmri", 1),
            QueryDesc::new(Engine::SciDb, Pipeline::AstroFull, "hits", 1),
            QueryDesc::new(Engine::Spark, Pipeline::AstroCoadd, "hits-cube", 1),
            QueryDesc::new(Engine::Spark, Pipeline::AstroFull, "dmri", 1),
            QueryDesc::new(Engine::Spark, Pipeline::NeuroFa, "nope", 1),
        ] {
            assert!(srv.serve_one(&q).is_rejected(), "{}", q.key());
        }
    }

    #[test]
    fn cache_off_server_matches_cache_on_fingerprints() {
        let on = server();
        let off = server().with_caching(false);
        let queries = [
            QueryDesc::new(Engine::Spark, Pipeline::NeuroSegment, "dmri", 1),
            QueryDesc::new(Engine::Spark, Pipeline::NeuroSegment, "dmri", 1),
            QueryDesc::new(Engine::Dask, Pipeline::NeuroDenoise, "dmri", 1),
        ];
        for q in &queries {
            assert_eq!(fp(&on.serve_one(q)), fp(&off.serve_one(q)), "{}", q.key());
        }
        assert_eq!(off.cache_len(), 0);
        assert_eq!(off.cache_stats(), MemoStats::default());
    }
}
