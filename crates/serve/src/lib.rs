//! `sciserve`: the resident query service over the scibench engine
//! analogs.
//!
//! The paper's batch experiments pay full price for every run; a service
//! that stays resident can do better, because the same plans recur over
//! the same registered inputs. This crate turns the workspace into that
//! service:
//!
//! - [`catalog`] — a versioned dataset catalog, every payload
//!   content-fingerprinted at registration;
//! - [`query`] — the small declarative query description clients submit
//!   (engine, pipeline, dataset, cluster size);
//! - [`server`] — the request loop: plans are lowered through the
//!   existing engine analogs, admission-checked by `plancheck` (memory
//!   errors refuse the plan — the Figure 15 configuration is the
//!   canonical rejection), certified by `scimemo`, and executed over a
//!   shared `parexec` pool with a process-wide zero-copy result cache
//!   keyed by `(plan fingerprint, input fingerprint)`;
//! - [`fp`] — the FNV-1a content fingerprints both halves of that key
//!   are built from.
//!
//! Only `scimemo`-certified stages may populate the cache; uncertified
//! plans (the ambient-read fixture) always take the bypass path. Hits are
//! `Arc` shares — zero copies, zero bytes, verified by `CopyCounter` in
//! `scibench bench serve` — and stage-wise keys give sub-plan
//! memoization: a cold query reuses the warm prefix of any
//! previously-served plan. See DESIGN.md §3.15.

pub mod catalog;
pub mod fp;
pub mod query;
pub mod server;

pub use catalog::{cube_for_survey, demo_catalog, Catalog, Dataset, DatasetPayload};
pub use fp::Fingerprint;
pub use query::{AstroMode, Pipeline, QueryDesc};
pub use server::{Response, ServeOutcome, Server, StageOutcome};
