//! Tuple values, including the blob type that carries image volumes.

use marray::NdArray;
use std::sync::Arc;

/// Column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Serialized array blob — "users .. directly manipulate NumPy arrays
    /// .. by storing them as blobs".
    Blob,
}

/// One field of a tuple.
#[derive(Debug, Clone)]
pub enum Value {
    /// Integer field.
    Int(i64),
    /// Float field.
    Float(f64),
    /// String field.
    Str(Arc<str>),
    /// Array blob field (shared, so tuple copies are cheap).
    Blob(Arc<NdArray<f64>>),
}

impl Value {
    /// The value's type tag.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Blob(_) => ValueType::Blob,
        }
    }

    /// Integer accessor (panics on type mismatch — queries are typed by
    /// construction).
    // scilint: allow(F001, typed Value accessor panics on a column type mismatch, the simulated engine's schema contract)
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {:?}", other.value_type()),
        }
    }

    /// Float accessor.
    // scilint: allow(F001, typed Value accessor panics on a column type mismatch, the simulated engine's schema contract)
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            Value::Int(v) => *v as f64,
            other => panic!("expected Float, got {:?}", other.value_type()),
        }
    }

    /// String accessor.
    // scilint: allow(F001, typed Value accessor panics on a column type mismatch, the simulated engine's schema contract)
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(v) => v,
            other => panic!("expected Str, got {:?}", other.value_type()),
        }
    }

    /// Blob accessor.
    // scilint: allow(F001, typed Value accessor panics on a column type mismatch, the simulated engine's schema contract)
    pub fn as_blob(&self) -> &Arc<NdArray<f64>> {
        match self {
            Value::Blob(v) => v,
            other => panic!("expected Blob, got {:?}", other.value_type()),
        }
    }

    /// Serialized size in bytes (used for partitioning and cost accounting).
    /// Blobs charge their stored footprint, so a compressed plane crossing
    /// a worker boundary costs its encoded bytes, not its dense shape.
    pub fn nbytes(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len(),
            Value::Blob(b) => b.stored_nbytes(),
        }
    }

    /// Build a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Build a blob value.
    pub fn blob(array: NdArray<f64>) -> Value {
        Value::Blob(Arc::new(array))
    }
}

/// A tuple is a row of values.
pub type Tuple = Vec<Value>;

/// Serialized size of a tuple.
pub fn tuple_nbytes(tuple: &Tuple) -> usize {
    tuple.iter().map(Value::nbytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_types() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::Int(7).as_float(), 7.0);
        assert_eq!(Value::Float(2.5).as_float(), 2.5);
        assert_eq!(Value::str("abc").as_str(), "abc");
        let b = Value::blob(NdArray::zeros(&[2, 2]));
        assert_eq!(b.as_blob().len(), 4);
        assert_eq!(b.value_type(), ValueType::Blob);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn wrong_accessor_panics() {
        Value::str("x").as_int();
    }

    #[test]
    fn nbytes() {
        assert_eq!(Value::Int(1).nbytes(), 8);
        assert_eq!(Value::str("abcd").nbytes(), 4);
        assert_eq!(Value::blob(NdArray::zeros(&[10])).nbytes(), 80);
        let t: Tuple = vec![Value::Int(1), Value::blob(NdArray::zeros(&[4]))];
        assert_eq!(tuple_nbytes(&t), 8 + 32);
    }
}
