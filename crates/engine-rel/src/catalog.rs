//! Relations, schemas, and the connection/catalog.

use crate::value::{Tuple, Value, ValueType};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::sync::RwLock;
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A relation's column names and types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ValueType)>,
}

impl Schema {
    /// Build a schema from (name, type) pairs.
    pub fn new(columns: &[(&str, ValueType)]) -> Schema {
        Schema {
            columns: columns.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        }
    }

    /// Column count.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// The columns.
    pub fn columns(&self) -> &[(String, ValueType)] {
        &self.columns
    }

    /// Validate a tuple against this schema.
    pub fn check(&self, tuple: &Tuple) -> bool {
        tuple.len() == self.columns.len()
            && tuple
                .iter()
                .zip(&self.columns)
                .all(|(v, (_, t))| v.value_type() == *t)
    }
}

/// A horizontally partitioned relation: one fragment per worker.
#[derive(Debug, Clone)]
pub struct Relation {
    /// The relation's schema.
    pub schema: Schema,
    /// One tuple fragment per worker.
    pub fragments: Vec<Vec<Tuple>>,
    /// The column the relation is hash-partitioned on (`None` = broadcast
    /// or arbitrary placement).
    pub partition_column: Option<usize>,
}

/// Hash used for partitioning.
pub(crate) fn partition_hash(value: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    match value {
        Value::Int(v) => v.hash(&mut h),
        Value::Float(v) => v.to_bits().hash(&mut h),
        Value::Str(s) => s.hash(&mut h),
        Value::Blob(b) => (b.len(), b.dims()).hash(&mut h),
    }
    h.finish()
}

impl Relation {
    /// Hash-partition `tuples` on `partition_column` over `workers`
    /// fragments.
    pub fn partitioned(
        schema: Schema,
        tuples: Vec<Tuple>,
        partition_column: usize,
        workers: usize,
    ) -> Relation {
        assert!(
            partition_column < schema.arity(),
            "partition column out of range"
        );
        let mut fragments: Vec<Vec<Tuple>> = (0..workers.max(1)).map(|_| Vec::new()).collect();
        for t in tuples {
            debug_assert!(schema.check(&t), "tuple does not match schema");
            let w = (partition_hash(&t[partition_column]) % fragments.len() as u64) as usize;
            fragments[w].push(t);
        }
        Relation {
            schema,
            fragments,
            partition_column: Some(partition_column),
        }
    }

    /// Replicate `tuples` to every worker (a broadcast relation).
    pub fn broadcast(schema: Schema, tuples: Vec<Tuple>, workers: usize) -> Relation {
        Relation {
            schema,
            // scilint: allow(C001, broadcast replicates per worker by design; tuples hold scalar Values)
            fragments: (0..workers.max(1)).map(|_| tuples.clone()).collect(),
            partition_column: None,
        }
    }

    /// Total tuple count across fragments.
    pub fn len(&self) -> usize {
        self.fragments.iter().map(Vec::len).sum()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All tuples, concatenated in worker order.
    pub fn all_tuples(&self) -> Vec<Tuple> {
        self.fragments.iter().flatten().cloned().collect()
    }

    /// Total serialized bytes.
    pub fn nbytes(&self) -> usize {
        self.fragments
            .iter()
            .flatten()
            .map(crate::value::tuple_nbytes)
            .sum()
    }
}

/// Registered Python-style UDF over blob/scalar columns: takes the argument
/// values, returns one value.
pub type Udf = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// Registered UDA: folds a group's tuples into one value.
pub type Uda = Arc<dyn Fn(&[Tuple]) -> Value + Send + Sync>;

/// Registered multi-output UDA: folds a group's tuples into several output
/// columns at once. This is what lets image-valued aggregates return their
/// planes as separate blob columns instead of packing them into one blob
/// (the pack/unpack round trip §5.3 charges Myria for).
pub type MultiUda = Arc<dyn Fn(&[Tuple]) -> Vec<Value> + Send + Sync>;

/// Registered table-valued UDF: maps one tuple's argument values to zero
/// or more output rows (a flatmap, as Step 2A's patch creation needs).
pub type TableUdf = Arc<dyn Fn(&[Value]) -> Vec<Vec<Value>> + Send + Sync>;

/// The connection: catalog of relations plus registered functions.
///
/// Mirrors the paper's Figure 7 flow: `MyriaConnection(url=...)`, then
/// `create_function("Denoise", Denoise)`, then query submission.
pub struct MyriaConnection {
    /// Number of cluster nodes.
    pub nodes: usize,
    /// Workers per node (Figure 13's knob; the paper found 4 optimal).
    pub workers_per_node: usize,
    catalog: RwLock<BTreeMap<String, Arc<Relation>>>,
    udfs: RwLock<BTreeMap<String, Udf>>,
    udas: RwLock<BTreeMap<String, Uda>>,
    multi_udas: RwLock<BTreeMap<String, MultiUda>>,
    table_udfs: RwLock<BTreeMap<String, TableUdf>>,
}

/// Read access to one catalog map. Poisoning means a worker panicked while
/// holding the write lock; the simulated MyriaX coordinator aborts rather
/// than serve a half-written catalog — the workspace's single sanctioned
/// panic point for catalog access.
fn read_guard<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    // scilint: allow(F001, poisoned catalog lock means a worker already panicked mid-DDL; aborting here is the engine contract)
    lock.read().expect("catalog lock poisoned")
}

/// Write access to one catalog map; see [`read_guard`] for the poisoning
/// contract.
fn write_guard<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    // scilint: allow(F001, poisoned catalog lock means a worker already panicked mid-DDL; aborting here is the engine contract)
    lock.write().expect("catalog lock poisoned")
}

impl MyriaConnection {
    /// Connect to a simulated deployment.
    pub fn connect(nodes: usize, workers_per_node: usize) -> MyriaConnection {
        MyriaConnection {
            nodes: nodes.max(1),
            workers_per_node: workers_per_node.max(1),
            catalog: RwLock::new(BTreeMap::new()),
            udfs: RwLock::new(BTreeMap::new()),
            udas: RwLock::new(BTreeMap::new()),
            multi_udas: RwLock::new(BTreeMap::new()),
            table_udfs: RwLock::new(BTreeMap::new()),
        }
    }

    /// Total workers.
    pub fn workers(&self) -> usize {
        self.nodes * self.workers_per_node
    }

    /// Ingest tuples as a new hash-partitioned relation.
    pub fn ingest(&self, name: &str, schema: Schema, tuples: Vec<Tuple>, partition_column: usize) {
        let rel = Relation::partitioned(schema, tuples, partition_column, self.workers());
        write_guard(&self.catalog).insert(name.to_string(), Arc::new(rel));
    }

    /// Store an already-built relation (e.g. a query result).
    pub fn store(&self, name: &str, relation: Relation) {
        write_guard(&self.catalog).insert(name.to_string(), Arc::new(relation));
    }

    /// Ingest a broadcast relation (replicated everywhere).
    pub fn ingest_broadcast(&self, name: &str, schema: Schema, tuples: Vec<Tuple>) {
        let rel = Relation::broadcast(schema, tuples, self.workers());
        write_guard(&self.catalog).insert(name.to_string(), Arc::new(rel));
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Option<Arc<Relation>> {
        read_guard(&self.catalog).get(name).cloned()
    }

    /// Register a Python-style UDF.
    pub fn create_function(
        &self,
        name: &str,
        f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) {
        write_guard(&self.udfs).insert(name.to_string(), Arc::new(f));
    }

    /// Register a UDA.
    pub fn create_aggregate(
        &self,
        name: &str,
        f: impl Fn(&[Tuple]) -> Value + Send + Sync + 'static,
    ) {
        write_guard(&self.udas).insert(name.to_string(), Arc::new(f));
    }

    /// Register a multi-output UDA (see [`MultiUda`]).
    pub fn create_multi_aggregate(
        &self,
        name: &str,
        f: impl Fn(&[Tuple]) -> Vec<Value> + Send + Sync + 'static,
    ) {
        write_guard(&self.multi_udas).insert(name.to_string(), Arc::new(f));
    }

    /// Register a table-valued (flatmap) UDF.
    pub fn create_table_function(
        &self,
        name: &str,
        f: impl Fn(&[Value]) -> Vec<Vec<Value>> + Send + Sync + 'static,
    ) {
        write_guard(&self.table_udfs).insert(name.to_string(), Arc::new(f));
    }

    pub(crate) fn udf(&self, name: &str) -> Option<Udf> {
        read_guard(&self.udfs).get(name).cloned()
    }

    pub(crate) fn table_udf(&self, name: &str) -> Option<TableUdf> {
        read_guard(&self.table_udfs).get(name).cloned()
    }

    pub(crate) fn uda(&self, name: &str) -> Option<Uda> {
        read_guard(&self.udas).get(name).cloned()
    }

    pub(crate) fn multi_uda(&self, name: &str) -> Option<MultiUda> {
        read_guard(&self.multi_udas).get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(&[("subjId", ValueType::Int), ("imgId", ValueType::Int)])
    }

    fn tuples(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| vec![Value::Int((i % 5) as i64), Value::Int(i as i64)])
            .collect()
    }

    #[test]
    fn partition_is_total_and_consistent() {
        let r = Relation::partitioned(schema(), tuples(100), 0, 8);
        assert_eq!(r.len(), 100);
        // Same key always in the same fragment.
        for (w, frag) in r.fragments.iter().enumerate() {
            for t in frag {
                let expect = (partition_hash(&t[0]) % 8) as usize;
                assert_eq!(w, expect);
            }
        }
    }

    #[test]
    fn broadcast_replicates() {
        let r = Relation::broadcast(schema(), tuples(3), 4);
        assert_eq!(r.fragments.len(), 4);
        for f in &r.fragments {
            assert_eq!(f.len(), 3);
        }
    }

    #[test]
    fn connection_catalog_roundtrip() {
        let conn = MyriaConnection::connect(4, 4);
        assert_eq!(conn.workers(), 16);
        conn.ingest("Images", schema(), tuples(20), 0);
        let r = conn.relation("Images").unwrap();
        assert_eq!(r.len(), 20);
        assert_eq!(r.fragments.len(), 16);
        assert!(conn.relation("Missing").is_none());
    }

    #[test]
    fn udf_registration() {
        let conn = MyriaConnection::connect(1, 1);
        conn.create_function("AddOne", |args| Value::Int(args[0].as_int() + 1));
        let f = conn.udf("AddOne").unwrap();
        assert_eq!(f(&[Value::Int(41)]).as_int(), 42);
        assert!(conn.udf("Nope").is_none());
    }

    #[test]
    fn schema_check() {
        let s = schema();
        assert!(s.check(&vec![Value::Int(1), Value::Int(2)]));
        assert!(!s.check(&vec![Value::Int(1)]));
        assert!(!s.check(&vec![Value::str("x"), Value::Int(2)]));
        assert_eq!(s.index_of("imgId"), Some(1));
    }
}
