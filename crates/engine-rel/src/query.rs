//! MyriaL-style query plans and their pipelined executor.
//!
//! A [`Query`] is an imperative-declarative chain, mirroring the paper's
//! Figure 7: scan (with optional selection pushdown into the local store),
//! select, broadcast join, Python-UDF apply, shuffle, and UDA group-by.
//! Execution is per-worker and pipelined: within a worker, tuples stream
//! through the operator chain without intermediate materialization; only
//! shuffles exchange tuples between workers.

use crate::catalog::{partition_hash, MyriaConnection, Relation, Schema};
use crate::value::{Tuple, Value, ValueType};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Errors raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A scanned relation is not in the catalog.
    UnknownRelation(String),
    /// A referenced UDF/UDA is not registered.
    UnknownFunction(String),
    /// A referenced column is not in the current schema.
    UnknownColumn(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownRelation(n) => write!(f, "unknown relation {n:?}"),
            QueryError::UnknownFunction(n) => write!(f, "unknown function {n:?}"),
            QueryError::UnknownColumn(n) => write!(f, "unknown column {n:?}"),
        }
    }
}

impl std::error::Error for QueryError {}

type Pred = Arc<dyn Fn(&Value) -> bool + Send + Sync>;

enum Op {
    Scan {
        relation: String,
        pushdown: Option<(String, Pred)>,
    },
    Select {
        column: String,
        pred: Pred,
    },
    Apply {
        udf: String,
        args: Vec<String>,
        keep: Vec<String>,
        out: (String, ValueType),
    },
    FlatApply {
        udf: String,
        args: Vec<String>,
        out: Vec<(String, ValueType)>,
    },
    BroadcastJoin {
        right: String,
        left_col: String,
        right_col: String,
    },
    Shuffle {
        column: String,
    },
    GroupBy {
        keys: Vec<String>,
        uda: String,
        out: (String, ValueType),
    },
    GroupByMulti {
        keys: Vec<String>,
        uda: String,
        out: Vec<(String, ValueType)>,
    },
}

/// A query plan under construction.
pub struct Query {
    ops: Vec<Op>,
}

impl Default for Query {
    fn default() -> Self {
        Query::new()
    }
}

impl Query {
    /// Start an empty plan.
    pub fn new() -> Query {
        Query { ops: Vec::new() }
    }

    /// `T = SCAN(relation)`.
    pub fn scan(relation: &str) -> Query {
        Query {
            ops: vec![Op::Scan {
                relation: relation.to_string(),
                pushdown: None,
            }],
        }
    }

    /// Scan with a selection pushed down into the per-worker local store
    /// (the PostgreSQL role): only matching tuples leave storage.
    pub fn scan_select(
        relation: &str,
        column: &str,
        pred: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> Query {
        Query {
            ops: vec![Op::Scan {
                relation: relation.to_string(),
                pushdown: Some((column.to_string(), Arc::new(pred))),
            }],
        }
    }

    /// In-pipeline selection on one column.
    pub fn select(
        mut self,
        column: &str,
        pred: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> Query {
        self.ops.push(Op::Select {
            column: column.to_string(),
            pred: Arc::new(pred),
        });
        self
    }

    /// `EMIT PYUDF(udf, args...) as out, keep...` — apply a registered UDF
    /// to `args` columns, keeping `keep` columns alongside the result.
    pub fn apply(
        mut self,
        udf: &str,
        args: &[&str],
        keep: &[&str],
        out_name: &str,
        out_type: ValueType,
    ) -> Query {
        self.ops.push(Op::Apply {
            udf: udf.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
            keep: keep.iter().map(|s| s.to_string()).collect(),
            out: (out_name.to_string(), out_type),
        });
        self
    }

    /// Flatmap a registered table-valued UDF over `args`: each input tuple
    /// yields zero or more output rows with the schema `out` (the Step 2A
    /// patch-creation shape).
    pub fn flat_apply(mut self, udf: &str, args: &[&str], out: &[(&str, ValueType)]) -> Query {
        self.ops.push(Op::FlatApply {
            udf: udf.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
            out: out.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        });
        self
    }

    /// Broadcast join with a (small, replicated) relation on equality of
    /// `left_col = right_col`; emits left columns then right columns
    /// (minus the join column).
    pub fn broadcast_join(mut self, right: &str, left_col: &str, right_col: &str) -> Query {
        self.ops.push(Op::BroadcastJoin {
            right: right.to_string(),
            left_col: left_col.to_string(),
            right_col: right_col.to_string(),
        });
        self
    }

    /// Re-partition tuples across workers by hash of `column`.
    pub fn shuffle(mut self, column: &str) -> Query {
        self.ops.push(Op::Shuffle {
            column: column.to_string(),
        });
        self
    }

    /// Group by `keys`, folding each group with a registered UDA.
    /// Performs the necessary shuffle on the first key.
    pub fn group_by(
        mut self,
        keys: &[&str],
        uda: &str,
        out_name: &str,
        out_type: ValueType,
    ) -> Query {
        self.ops.push(Op::GroupBy {
            keys: keys.iter().map(|s| s.to_string()).collect(),
            uda: uda.to_string(),
            out: (out_name.to_string(), out_type),
        });
        self
    }

    /// Group by `keys`, folding each group with a registered multi-output
    /// UDA ([`MyriaConnection::create_multi_aggregate`]); the group's row
    /// carries the key columns followed by every output column. Lets
    /// image-valued aggregates keep their planes in separate blob columns
    /// instead of packing them into one blob.
    pub fn group_by_multi(mut self, keys: &[&str], uda: &str, out: &[(&str, ValueType)]) -> Query {
        self.ops.push(Op::GroupByMulti {
            keys: keys.iter().map(|s| s.to_string()).collect(),
            uda: uda.to_string(),
            out: out.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        });
        self
    }

    /// Number of plan operators (the Table 1 complexity proxy).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Execute the plan on `conn`, returning the result relation.
    // scilint: allow(F001, operator invariants (schema before scan, non-empty plan) abort the simulated query like a coordinator fault)
    // scilint: allow(F004, this scope.spawn IS the simulated engine's own worker pool, the engine boundary; TODO(flow): route through the morsel pool)
    pub fn execute(&self, conn: &MyriaConnection) -> Result<Relation, QueryError> {
        let workers = conn.workers();
        let mut schema: Option<Schema> = None;
        let mut fragments: Vec<Vec<Tuple>> = vec![Vec::new(); workers];
        let mut partition_column: Option<usize> = None;

        let col = |schema: &Schema, name: &str| -> Result<usize, QueryError> {
            schema
                .index_of(name)
                .ok_or_else(|| QueryError::UnknownColumn(name.to_string()))
        };

        for op in &self.ops {
            match op {
                Op::Scan { relation, pushdown } => {
                    let rel = conn
                        .relation(relation)
                        .ok_or_else(|| QueryError::UnknownRelation(relation.clone()))?;
                    let s = rel.schema.clone();
                    // scilint: allow(C001, scan copies stored fragments into the pipeline; tuples hold scalar Values rather than chunk buffers)
                    let mut frags = rel.fragments.clone();
                    if frags.len() != workers {
                        // Catalog built under a different worker count:
                        // re-partition on ingest column 0.
                        let all: Vec<Tuple> = frags.into_iter().flatten().collect();
                        let pc = rel.partition_column.unwrap_or(0);
                        frags = vec![Vec::new(); workers];
                        for t in all {
                            let w = (partition_hash(&t[pc]) % workers as u64) as usize;
                            frags[w].push(t);
                        }
                    }
                    if let Some((column, pred)) = pushdown {
                        let ci = col(&s, column)?;
                        for f in &mut frags {
                            f.retain(|t| pred(&t[ci]));
                        }
                    }
                    partition_column = rel.partition_column;
                    schema = Some(s);
                    fragments = frags;
                }
                Op::Select { column, pred } => {
                    let s = schema.as_ref().expect("select before scan");
                    let ci = col(s, column)?;
                    for f in &mut fragments {
                        f.retain(|t| pred(&t[ci]));
                    }
                }
                Op::Apply {
                    udf,
                    args,
                    keep,
                    out,
                } => {
                    let s = schema.as_ref().expect("apply before scan");
                    let f = conn
                        .udf(udf)
                        .ok_or_else(|| QueryError::UnknownFunction(udf.clone()))?;
                    let arg_ix: Vec<usize> =
                        args.iter().map(|a| col(s, a)).collect::<Result<_, _>>()?;
                    let keep_ix: Vec<usize> =
                        keep.iter().map(|k| col(s, k)).collect::<Result<_, _>>()?;
                    // Workers evaluate their fragments independently and in
                    // parallel, as the real engine's Python UDF workers do.
                    std::thread::scope(|scope| {
                        for frag in fragments.iter_mut() {
                            let f = &f;
                            let arg_ix = &arg_ix;
                            let keep_ix = &keep_ix;
                            scope.spawn(move || {
                                *frag = frag
                                    .iter()
                                    .map(|t| {
                                        let argv: Vec<Value> =
                                            // scilint: allow(C001, Value is a small scalar enum; per-cell clone)
                                            arg_ix.iter().map(|&i| t[i].clone()).collect();
                                        let mut row: Tuple =
                                            // scilint: allow(C001, Value is a small scalar enum; per-cell clone)
                                            keep_ix.iter().map(|&i| t[i].clone()).collect();
                                        row.push(f(&argv));
                                        row
                                    })
                                    .collect();
                            });
                        }
                    });
                    let mut cols: Vec<(&str, ValueType)> = Vec::new();
                    for (i, k) in keep.iter().enumerate() {
                        cols.push((k.as_str(), s.columns()[keep_ix[i]].1));
                    }
                    cols.push((out.0.as_str(), out.1));
                    schema = Some(Schema::new(&cols));
                    partition_column = None;
                }
                Op::FlatApply { udf, args, out } => {
                    let s = schema.as_ref().expect("flat_apply before scan");
                    let f = conn
                        .table_udf(udf)
                        .ok_or_else(|| QueryError::UnknownFunction(udf.clone()))?;
                    let arg_ix: Vec<usize> =
                        args.iter().map(|a| col(s, a)).collect::<Result<_, _>>()?;
                    for frag in &mut fragments {
                        *frag = frag
                            .iter()
                            .flat_map(|t| {
                                let argv: Vec<Value> =
                                    // scilint: allow(C001, Value is a small scalar enum; per-cell clone)
                                    arg_ix.iter().map(|&i| t[i].clone()).collect();
                                f(&argv)
                            })
                            .collect();
                    }
                    let cols: Vec<(&str, ValueType)> =
                        out.iter().map(|(n, t)| (n.as_str(), *t)).collect();
                    schema = Some(Schema::new(&cols));
                    partition_column = None;
                }
                Op::BroadcastJoin {
                    right,
                    left_col,
                    right_col,
                } => {
                    let s = schema.as_ref().expect("join before scan");
                    let rel = conn
                        .relation(right)
                        .ok_or_else(|| QueryError::UnknownRelation(right.clone()))?;
                    let li = col(s, left_col)?;
                    let ri = rel
                        .schema
                        .index_of(right_col)
                        .ok_or_else(|| QueryError::UnknownColumn(right_col.to_string()))?;
                    // Broadcast: the right side replicates on every worker.
                    let right_tuples = if rel.partition_column.is_none() {
                        rel.fragments.first().cloned().unwrap_or_default()
                    } else {
                        rel.all_tuples()
                    };
                    let mut index: BTreeMap<u64, Vec<&Tuple>> = BTreeMap::new();
                    for t in &right_tuples {
                        index.entry(partition_hash(&t[ri])).or_default().push(t);
                    }
                    for frag in &mut fragments {
                        *frag = frag
                            .iter()
                            .flat_map(|lt| {
                                index
                                    .get(&partition_hash(&lt[li]))
                                    .into_iter()
                                    .flatten()
                                    .map(move |rt| {
                                        let mut row = lt.clone();
                                        for (i, v) in rt.iter().enumerate() {
                                            if i != ri {
                                                row.push(v.clone());
                                            }
                                        }
                                        row
                                    })
                                    .collect::<Vec<_>>()
                            })
                            .collect();
                    }
                    let mut cols: Vec<(&str, ValueType)> =
                        s.columns().iter().map(|(n, t)| (n.as_str(), *t)).collect();
                    for (i, (n, t)) in rel.schema.columns().iter().enumerate() {
                        if i != ri {
                            cols.push((n.as_str(), *t));
                        }
                    }
                    schema = Some(Schema::new(&cols));
                }
                Op::Shuffle { column } => {
                    let s = schema.as_ref().expect("shuffle before scan");
                    let ci = col(s, column)?;
                    let mut next: Vec<Vec<Tuple>> = vec![Vec::new(); workers];
                    for f in fragments.drain(..) {
                        for t in f {
                            let w = (partition_hash(&t[ci]) % workers as u64) as usize;
                            next[w].push(t);
                        }
                    }
                    fragments = next;
                    partition_column = Some(ci);
                }
                Op::GroupBy { keys, uda, out } => {
                    // scilint: allow(C001, Schema clone - column-name metadata rather than payload)
                    let s = schema.as_ref().expect("group by before scan").clone();
                    let agg = conn
                        .uda(uda)
                        .ok_or_else(|| QueryError::UnknownFunction(uda.clone()))?;
                    let key_ix: Vec<usize> =
                        keys.iter().map(|k| col(&s, k)).collect::<Result<_, _>>()?;
                    // Shuffle on the first key unless already partitioned so.
                    if partition_column != Some(key_ix[0]) {
                        let mut next: Vec<Vec<Tuple>> = vec![Vec::new(); workers];
                        for f in fragments.drain(..) {
                            for t in f {
                                let w = (partition_hash(&t[key_ix[0]]) % workers as u64) as usize;
                                next[w].push(t);
                            }
                        }
                        fragments = next;
                    }
                    std::thread::scope(|scope| {
                        for frag in fragments.iter_mut() {
                            let agg = &agg;
                            let key_ix = &key_ix;
                            scope.spawn(move || {
                                let mut groups: Vec<(Vec<u64>, Vec<Tuple>)> = Vec::new();
                                let mut lookup: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
                                for t in frag.drain(..) {
                                    let key: Vec<u64> =
                                        key_ix.iter().map(|&i| partition_hash(&t[i])).collect();
                                    match lookup.get(&key) {
                                        Some(&g) => groups[g].1.push(t),
                                        None => {
                                            lookup.insert(key.clone(), groups.len());
                                            groups.push((key, vec![t]));
                                        }
                                    }
                                }
                                *frag = groups
                                    .into_iter()
                                    .map(|(_, tuples)| {
                                        let mut row: Tuple =
                                            // scilint: allow(C001, Value is a small scalar enum; per-cell clone)
                                            key_ix.iter().map(|&i| tuples[0][i].clone()).collect();
                                        row.push(agg(&tuples));
                                        row
                                    })
                                    .collect();
                            });
                        }
                    });
                    let mut cols: Vec<(&str, ValueType)> = key_ix
                        .iter()
                        .map(|&i| (s.columns()[i].0.as_str(), s.columns()[i].1))
                        .collect();
                    cols.push((out.0.as_str(), out.1));
                    schema = Some(Schema::new(&cols));
                    partition_column = Some(0);
                }
                Op::GroupByMulti { keys, uda, out } => {
                    // scilint: allow(C001, Schema clone - column-name metadata rather than payload)
                    let s = schema.as_ref().expect("group by before scan").clone();
                    let agg = conn
                        .multi_uda(uda)
                        .ok_or_else(|| QueryError::UnknownFunction(uda.clone()))?;
                    let key_ix: Vec<usize> =
                        keys.iter().map(|k| col(&s, k)).collect::<Result<_, _>>()?;
                    if partition_column != Some(key_ix[0]) {
                        let mut next: Vec<Vec<Tuple>> = vec![Vec::new(); workers];
                        for f in fragments.drain(..) {
                            for t in f {
                                let w = (partition_hash(&t[key_ix[0]]) % workers as u64) as usize;
                                next[w].push(t);
                            }
                        }
                        fragments = next;
                    }
                    std::thread::scope(|scope| {
                        for frag in fragments.iter_mut() {
                            let agg = &agg;
                            let key_ix = &key_ix;
                            scope.spawn(move || {
                                let mut groups: Vec<(Vec<u64>, Vec<Tuple>)> = Vec::new();
                                let mut lookup: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
                                for t in frag.drain(..) {
                                    let key: Vec<u64> =
                                        key_ix.iter().map(|&i| partition_hash(&t[i])).collect();
                                    match lookup.get(&key) {
                                        Some(&g) => groups[g].1.push(t),
                                        None => {
                                            lookup.insert(key.clone(), groups.len());
                                            groups.push((key, vec![t]));
                                        }
                                    }
                                }
                                *frag = groups
                                    .into_iter()
                                    .map(|(_, tuples)| {
                                        let mut row: Tuple =
                                            // scilint: allow(C001, Value is a small scalar enum; per-cell clone)
                                            key_ix.iter().map(|&i| tuples[0][i].clone()).collect();
                                        row.extend(agg(&tuples));
                                        row
                                    })
                                    .collect();
                            });
                        }
                    });
                    let mut cols: Vec<(&str, ValueType)> = key_ix
                        .iter()
                        .map(|&i| (s.columns()[i].0.as_str(), s.columns()[i].1))
                        .collect();
                    for (n, t) in out {
                        cols.push((n.as_str(), *t));
                    }
                    schema = Some(Schema::new(&cols));
                    partition_column = Some(0);
                }
            }
        }

        Ok(Relation {
            schema: schema.expect("empty query"),
            fragments,
            partition_column,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marray::NdArray;

    fn conn_with_images() -> MyriaConnection {
        let conn = MyriaConnection::connect(2, 2);
        let schema = Schema::new(&[
            ("subjId", ValueType::Int),
            ("imgId", ValueType::Int),
            ("img", ValueType::Blob),
        ]);
        let tuples: Vec<Tuple> = (0..12)
            .map(|i| {
                vec![
                    Value::Int((i % 3) as i64),
                    Value::Int(i as i64),
                    Value::blob(NdArray::full(&[4], i as f64)),
                ]
            })
            .collect();
        conn.ingest("Images", schema, tuples, 0);
        conn
    }

    #[test]
    fn scan_returns_everything() {
        let conn = conn_with_images();
        let r = Query::scan("Images").execute(&conn).unwrap();
        assert_eq!(r.len(), 12);
        assert_eq!(r.schema.arity(), 3);
    }

    #[test]
    fn scan_unknown_relation_errors() {
        let conn = conn_with_images();
        assert_eq!(
            Query::scan("Nope").execute(&conn).unwrap_err(),
            QueryError::UnknownRelation("Nope".into())
        );
    }

    #[test]
    fn pushdown_select_filters() {
        let conn = conn_with_images();
        let r = Query::scan_select("Images", "imgId", |v| v.as_int() < 4)
            .execute(&conn)
            .unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn apply_udf_transforms_blobs() {
        let conn = conn_with_images();
        conn.create_function("Double", |args| {
            Value::blob(args[0].as_blob().map(|v| v * 2.0))
        });
        let r = Query::scan("Images")
            .apply(
                "Double",
                &["img"],
                &["subjId", "imgId"],
                "img2",
                ValueType::Blob,
            )
            .execute(&conn)
            .unwrap();
        assert_eq!(r.len(), 12);
        assert_eq!(r.schema.index_of("img2"), Some(2));
        for t in r.all_tuples() {
            let id = t[1].as_int() as f64;
            assert_eq!(t[2].as_blob().data()[0], id * 2.0);
        }
    }

    #[test]
    fn unknown_udf_errors() {
        let conn = conn_with_images();
        let err = Query::scan("Images")
            .apply("Nope", &["img"], &[], "x", ValueType::Blob)
            .execute(&conn)
            .unwrap_err();
        assert_eq!(err, QueryError::UnknownFunction("Nope".into()));
    }

    #[test]
    fn broadcast_join_matches_subjects() {
        let conn = conn_with_images();
        let mask_schema = Schema::new(&[("subjId", ValueType::Int), ("mask", ValueType::Blob)]);
        let masks: Vec<Tuple> = (0..3)
            .map(|s| {
                vec![
                    Value::Int(s as i64),
                    Value::blob(NdArray::full(&[4], 100.0 + s as f64)),
                ]
            })
            .collect();
        conn.ingest_broadcast("Mask", mask_schema, masks);
        let r = Query::scan("Images")
            .broadcast_join("Mask", "subjId", "subjId")
            .execute(&conn)
            .unwrap();
        assert_eq!(r.len(), 12, "every image matches exactly one mask");
        assert_eq!(r.schema.arity(), 4);
        for t in r.all_tuples() {
            let subj = t[0].as_int() as f64;
            assert_eq!(t[3].as_blob().data()[0], 100.0 + subj);
        }
    }

    #[test]
    fn group_by_uda_counts() {
        let conn = conn_with_images();
        conn.create_aggregate("CountAll", |tuples| Value::Int(tuples.len() as i64));
        let r = Query::scan("Images")
            .group_by(&["subjId"], "CountAll", "n", ValueType::Int)
            .execute(&conn)
            .unwrap();
        assert_eq!(r.len(), 3, "three subjects");
        for t in r.all_tuples() {
            assert_eq!(t[1].as_int(), 4);
        }
    }

    #[test]
    fn group_by_multi_emits_every_output_column() {
        let conn = conn_with_images();
        conn.create_multi_aggregate("CountAndSum", |tuples| {
            let sum: f64 = tuples.iter().map(|t| t[2].as_blob().sum()).sum();
            vec![Value::Int(tuples.len() as i64), Value::Float(sum)]
        });
        let r = Query::scan("Images")
            .group_by_multi(
                &["subjId"],
                "CountAndSum",
                &[("n", ValueType::Int), ("total", ValueType::Float)],
            )
            .execute(&conn)
            .unwrap();
        assert_eq!(r.len(), 3, "three subjects");
        assert_eq!(r.schema.arity(), 3);
        assert_eq!(r.schema.index_of("total"), Some(2));
        for t in r.all_tuples() {
            assert_eq!(t[1].as_int(), 4);
            // Blobs are full(&[4], imgId): sum over the subject's images.
            let subj = t[0].as_int();
            let expect: f64 = (0..12)
                .filter(|i| i % 3 == subj)
                .map(|i| 4.0 * i as f64)
                .sum();
            assert_eq!(t[2].as_float(), expect);
        }
    }

    #[test]
    fn group_by_multi_unknown_uda_errors() {
        let conn = conn_with_images();
        let err = Query::scan("Images")
            .group_by_multi(&["subjId"], "Nope", &[("n", ValueType::Int)])
            .execute(&conn)
            .unwrap_err();
        assert_eq!(err, QueryError::UnknownFunction("Nope".into()));
    }

    #[test]
    fn group_lands_on_one_worker() {
        let conn = conn_with_images();
        conn.create_aggregate("CountAll", |tuples| Value::Int(tuples.len() as i64));
        let r = Query::scan("Images")
            .shuffle("imgId") // deliberately mis-partition first
            .group_by(&["subjId"], "CountAll", "n", ValueType::Int)
            .execute(&conn)
            .unwrap();
        // Each subject appears exactly once overall (no split groups).
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn pipeline_chains_operators() {
        let conn = conn_with_images();
        conn.create_function("Sum", |args| Value::Float(args[0].as_blob().sum()));
        let r = Query::scan_select("Images", "subjId", |v| v.as_int() == 1)
            .apply("Sum", &["img"], &["imgId"], "total", ValueType::Float)
            .select("total", |v| v.as_float() > 4.0 * 3.0)
            .execute(&conn)
            .unwrap();
        // Subject 1 has images 1,4,7,10 with blob values = imgId·4.
        assert_eq!(r.len(), 3, "images 4, 7, 10 pass the total filter");
    }
}
