#![warn(missing_docs)]

//! # engine-rel — a shared-nothing relational DBMS with blob UDFs
//! (Myria analog)
//!
//! Reproduces the architectural properties of Myria the paper's analysis
//! rests on:
//!
//! * **Relational data model with BLOBs** — relations of typed tuples;
//!   image volumes travel in a blob column holding serialized arrays
//!   ([`Value::Blob`]), so queries manipulate whole NumPy-style arrays.
//! * **Hash partitioning across workers** — relations are partitioned by a
//!   key column over `nodes × workers_per_node` workers; the
//!   workers-per-node count is the Figure 13 tuning knob.
//! * **Per-node local storage with selection pushdown** — each worker owns
//!   a local store (the PostgreSQL role); scans can push simple predicates
//!   into the store ([`Query::scan_select`]), the mechanism behind Myria's
//!   fast filter in Figure 12a.
//! * **Python UDFs and UDAs** — registered functions over blob columns
//!   ([`MyriaConnection::create_function`]), reusing the reference kernels.
//! * **Pipelined iterator execution** — operators stream tuples without
//!   materializing (fast, but hard-fails on memory exhaustion); the
//!   [`ExecutionMode`] enum also offers `Materialized` and `MultiQuery`
//!   (Figure 15's three strategies).
//! * **Broadcast join** — small relations replicate to all workers.
//!
//! The eager executor really computes; [`RelEngineProfile`] exports the
//! lowering constants for `simcluster`.
//!
//! ```
//! use engine_rel::{MyriaConnection, Query, Schema, Value, ValueType};
//!
//! let conn = MyriaConnection::connect(2, 2);
//! let schema = Schema::new(&[("id", ValueType::Int)]);
//! conn.ingest("T", schema, (0..10).map(|i| vec![Value::Int(i)]).collect(), 0);
//! let out = Query::scan_select("T", "id", |v| v.as_int() < 3).execute(&conn).unwrap();
//! assert_eq!(out.len(), 3);
//! ```

mod catalog;
mod profile;
mod query;
mod value;

pub use catalog::{MultiUda, MyriaConnection, Relation, Schema, TableUdf, Uda, Udf};
pub use profile::{ExecutionMode, RelEngineProfile};
pub use query::{Query, QueryError};
pub use value::{tuple_nbytes, Tuple, Value, ValueType};
