//! Architectural constants used when lowering relational queries onto the
//! cluster simulator.

/// How the engine trades memory for execution time (the paper's Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Operators pipeline tuples without materializing — fastest, but the
    /// whole working set is resident: hard OOM failure when it exceeds
    /// memory.
    Pipelined,
    /// Intermediate results are materialized to local disk between
    /// operators — slower (8–11% in the paper) but the working set is one
    /// operator deep.
    Materialized,
    /// The input is cut into subsets processed by separate queries —
    /// slowest (15–23%) but bounds memory by the subset size.
    MultiQuery {
        /// Number of input subsets.
        pieces: usize,
    },
}

/// The Myria-analog execution profile.
///
/// * `per_task_overhead` — operator dispatch is cheap (JVM-internal).
/// * `pg_scan_bw` / `pg_insert_bw` — the per-node PostgreSQL store's
///   effective scan/insert bandwidth (ingest writes through it; pushed-down
///   selections scan at this rate but return only matches).
/// * `py_udf_crossing_*` — Python UDFs run out-of-process like Spark's,
///   but only UDF columns cross the boundary.
/// * `ingest_from_key_list` — Myria "can directly work with a csv list of
///   files avoiding overhead", the Figure 11 edge over Spark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelEngineProfile {
    /// Dispatch overhead per task (s).
    pub per_task_overhead: f64,
    /// Local-store scan bandwidth (bytes/s).
    pub pg_scan_bw: f64,
    /// Local-store insert bandwidth (bytes/s).
    pub pg_insert_bw: f64,
    /// Serialization cost per byte crossing into the Python UDF process.
    pub py_udf_crossing_per_byte: f64,
    /// Fixed cost per UDF batch invocation (s).
    pub py_udf_crossing_fixed: f64,
    /// Whether ingest downloads straight from a key list (no master-side
    /// enumeration).
    pub ingest_from_key_list: bool,
}

impl Default for RelEngineProfile {
    fn default() -> Self {
        RelEngineProfile {
            per_task_overhead: 0.05,
            pg_scan_bw: 400e6,
            pg_insert_bw: 180e6,
            py_udf_crossing_per_byte: 1.0 / 700e6,
            py_udf_crossing_fixed: 0.010,
            ingest_from_key_list: true,
        }
    }
}

impl RelEngineProfile {
    /// Time for `bytes` to cross into the UDF process once.
    pub fn crossing_time(&self, bytes: u64) -> f64 {
        self.py_udf_crossing_fixed + bytes as f64 * self.py_udf_crossing_per_byte
    }

    /// The statically checkable invariants of this engine's lowerings,
    /// consumed by [`plancheck::check`]: operators read the per-node
    /// store (no in-graph writer required), pipelined execution does not
    /// spill (the paper's Figure 15 OOM), and hash partitioning is
    /// watched for the §5.3.3 hot-patch skew (a hot worker receiving ≥6×
    /// its input share, vs. the workload's 2.5× mean growth).
    pub fn invariants(&self) -> plancheck::InvariantProfile {
        plancheck::InvariantProfile {
            store_backed: true,
            skew_ratio: 6.0,
            ..plancheck::InvariantProfile::new("Myria")
        }
    }

    /// What each Myria-analog task label executes, for the scimemo
    /// cacheability certifier (shared `astro:*`/`ingest:*`/step labels
    /// live in core's table).
    pub fn op_bindings(&self) -> &'static [plancheck::OpBinding] {
        MYRIA_OPS
    }
}

const MYRIA_OPS: &[plancheck::OpBinding] = &{
    use plancheck::{OpBinding, OpClass};
    const EMPTY: &[&str] = &[]; // pure data movement, no kernel runs
    [
        OpBinding::new("myria:submit", OpClass::Infra),
        OpBinding::new("myria:subquery", OpClass::Infra),
        OpBinding::new("myria:subquery-done", OpClass::Infra),
        OpBinding::new("myria:scan", OpClass::Source),
        OpBinding::new("myria:scan-b0", OpClass::Source),
        OpBinding::new("myria:broadcast-mask", OpClass::Kernel(EMPTY)),
        OpBinding::new("myria:mean", OpClass::Kernel(&["segmentation"])),
        OpBinding::new("myria:mask", OpClass::Kernel(&["median_otsu"])),
        OpBinding::new("myria:denoise", OpClass::Kernel(&["nlmeans3d"])),
        OpBinding::new("myria:fit", OpClass::Kernel(&["fit_dtm_volume"])),
    ]
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_are_distinct() {
        assert_ne!(ExecutionMode::Pipelined, ExecutionMode::Materialized);
        assert_eq!(
            ExecutionMode::MultiQuery { pieces: 4 },
            ExecutionMode::MultiQuery { pieces: 4 }
        );
    }

    #[test]
    fn crossing_time_monotone() {
        let p = RelEngineProfile::default();
        assert!(p.crossing_time(10) < p.crossing_time(1_000_000));
    }
}
