//! Behavioural tests of the relational engine: repartitioning on worker
//! mismatch, flat_apply pipelines, blob-heavy workloads.

use engine_rel::{MyriaConnection, Query, Relation, Schema, Value, ValueType};
use marray::NdArray;

fn images_schema() -> Schema {
    Schema::new(&[
        ("subjId", ValueType::Int),
        ("imgId", ValueType::Int),
        ("img", ValueType::Blob),
    ])
}

fn image_tuples(n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| {
            vec![
                Value::Int((i % 4) as i64),
                Value::Int(i as i64),
                Value::blob(NdArray::full(&[8], i as f64)),
            ]
        })
        .collect()
}

#[test]
fn scan_repartitions_when_worker_count_changed() {
    // A relation built for 4 workers stored into a 12-worker deployment:
    // the scan must redistribute rather than lose fragments.
    let conn = MyriaConnection::connect(3, 4);
    let rel = Relation::partitioned(images_schema(), image_tuples(40), 0, 4);
    assert_eq!(rel.fragments.len(), 4);
    conn.store("Images", rel);
    let out = Query::scan("Images").execute(&conn).unwrap();
    assert_eq!(out.len(), 40);
    assert_eq!(out.fragments.len(), 12);
}

#[test]
fn flat_apply_fans_out_and_regroups() {
    // The Step 2A shape: each record fans out 1–3 ways, then groups back.
    let conn = MyriaConnection::connect(2, 3);
    conn.ingest("Images", images_schema(), image_tuples(30), 0);
    conn.create_table_function("FanOut", |args| {
        let id = args[0].as_int();
        let fan = (id % 3 + 1) as usize;
        (0..fan)
            .map(|p| vec![Value::Int(id % 5), Value::Int(id), Value::Int(p as i64)])
            .collect()
    });
    conn.create_aggregate("CountAll", |tuples| Value::Int(tuples.len() as i64));
    let out = Query::scan("Images")
        .flat_apply(
            "FanOut",
            &["imgId"],
            &[
                ("grp", ValueType::Int),
                ("imgId", ValueType::Int),
                ("piece", ValueType::Int),
            ],
        )
        .group_by(&["grp"], "CountAll", "n", ValueType::Int)
        .execute(&conn)
        .unwrap();
    let expected: i64 = (0..30).map(|i| i % 3 + 1).sum();
    let total: i64 = out.all_tuples().iter().map(|t| t[1].as_int()).sum();
    assert_eq!(total, expected, "fan-out row count");
    assert_eq!(out.len(), 5, "five groups");
}

#[test]
fn flat_apply_can_drop_rows() {
    let conn = MyriaConnection::connect(1, 2);
    conn.ingest("Images", images_schema(), image_tuples(10), 0);
    conn.create_table_function("KeepEven", |args| {
        let id = args[0].as_int();
        if id % 2 == 0 {
            vec![vec![Value::Int(id)]]
        } else {
            vec![]
        }
    });
    let out = Query::scan("Images")
        .flat_apply("KeepEven", &["imgId"], &[("imgId", ValueType::Int)])
        .execute(&conn)
        .unwrap();
    assert_eq!(out.len(), 5);
}

#[test]
fn blob_aggregation_pipeline() {
    // A mean-volume UDA over blob columns, the Step 1N core.
    let conn = MyriaConnection::connect(2, 2);
    conn.ingest("Images", images_schema(), image_tuples(20), 0);
    conn.create_aggregate("MeanVol", |tuples| {
        let first = tuples[0][2].as_blob();
        let mut acc = NdArray::<f64>::zeros(first.dims());
        for t in tuples {
            acc = acc.zip_with(t[2].as_blob(), |a, b| a + b).unwrap();
        }
        let n = tuples.len() as f64;
        acc.map_inplace(|v| v / n);
        Value::blob(acc)
    });
    let out = Query::scan("Images")
        .group_by(&["subjId"], "MeanVol", "mean", ValueType::Blob)
        .execute(&conn)
        .unwrap();
    assert_eq!(out.len(), 4);
    for t in out.all_tuples() {
        let subj = t[0].as_int();
        // Subject s owns imgIds {s, s+4, s+8, s+12, s+16}; blob value = imgId.
        let expect = (subj as f64 * 5.0 + (4.0 + 8.0 + 12.0 + 16.0)) / 5.0;
        assert!((t[1].as_blob().data()[0] - expect).abs() < 1e-12);
    }
}

#[test]
fn pushdown_and_pipeline_select_equivalent() {
    let conn = MyriaConnection::connect(2, 2);
    conn.ingest("Images", images_schema(), image_tuples(24), 1);
    let pushed = Query::scan_select("Images", "imgId", |v| v.as_int() < 6)
        .execute(&conn)
        .unwrap();
    let piped = Query::scan("Images")
        .select("imgId", |v| v.as_int() < 6)
        .execute(&conn)
        .unwrap();
    assert_eq!(pushed.len(), piped.len());
    assert_eq!(pushed.len(), 6);
}

#[test]
fn broadcast_join_drops_unmatched_left_rows() {
    let conn = MyriaConnection::connect(1, 4);
    conn.ingest("Images", images_schema(), image_tuples(12), 0);
    let mask_schema = Schema::new(&[("subjId", ValueType::Int), ("m", ValueType::Float)]);
    // Masks for subjects 0 and 1 only.
    conn.ingest_broadcast(
        "Mask",
        mask_schema,
        vec![
            vec![Value::Int(0), Value::Float(0.5)],
            vec![Value::Int(1), Value::Float(0.7)],
        ],
    );
    let out = Query::scan("Images")
        .broadcast_join("Mask", "subjId", "subjId")
        .execute(&conn)
        .unwrap();
    assert_eq!(out.len(), 6, "subjects 2 and 3 have no mask and drop out");
}
