//! Bit-identical-output guarantees for the parallel kernel ports.
//!
//! Every `_par` kernel must produce *exactly* the same bytes at any worker
//! count as the single-threaded reference path: slab boundaries are fixed
//! by the input shape (not by the worker count) and every per-element
//! accumulation order is unchanged, so there is no legal source of float
//! divergence. These tests pin that contract on the real synthetic
//! generators — the same phantoms the benchmarks and engines run on.

use parexec::Parallelism;
use sciops::astro::{
    calibrate_exposure, coadd_sigma_clip_par, detect_sources_par, estimate_background_par,
    reference_pipeline_calibrated, reference_pipeline_calibrated_par, reference_pipeline_par,
    subtract_background_par, BackgroundParams, CalibParams, CoaddParams, DetectParams, Exposure,
};
use sciops::neuro::pipeline::{denoise_all_par, segmentation};
use sciops::neuro::{
    fit_dtm_volume, fit_dtm_volume_full_par, fit_dtm_volume_par, nlmeans3d_par, NlmParams,
};
use sciops::synth::dmri::{DmriPhantom, DmriSpec};
use sciops::synth::sky::{SkySpec, SkySurvey};

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

fn tiny_phantom() -> DmriPhantom {
    let mut spec = DmriSpec::test_scale();
    spec.dims = [8, 7, 6];
    spec.n_volumes = 6;
    DmriPhantom::generate(17, &spec)
}

#[test]
fn nlm_denoise_bit_identical_across_thread_counts() {
    let phantom = tiny_phantom();
    let data = phantom.data.cast::<f64>();
    let (_, mask) = segmentation(&data, &phantom.gtab);
    let vol = data.slice_axis(3, 0).unwrap();
    let nlm = NlmParams {
        search_radius: 1,
        patch_radius: 1,
        sigma: 20.0,
        h_factor: 1.0,
    };
    let serial = nlmeans3d_par(&vol, Some(&mask), &nlm, Parallelism::Serial);
    for workers in WORKER_COUNTS {
        let par = nlmeans3d_par(&vol, Some(&mask), &nlm, Parallelism::threads(workers));
        assert_eq!(serial, par, "nlmeans3d workers={workers}");
    }
}

#[test]
fn denoise_all_volumes_bit_identical_across_thread_counts() {
    let phantom = tiny_phantom();
    let data = phantom.data.cast::<f64>();
    let (_, mask) = segmentation(&data, &phantom.gtab);
    let nlm = NlmParams {
        search_radius: 1,
        patch_radius: 1,
        sigma: 20.0,
        h_factor: 1.0,
    };
    let serial = denoise_all_par(&data, &mask, &nlm, Parallelism::Serial);
    for workers in WORKER_COUNTS {
        let par = denoise_all_par(&data, &mask, &nlm, Parallelism::threads(workers));
        assert_eq!(serial, par, "denoise_all workers={workers}");
    }
}

#[test]
fn dtm_fit_bit_identical_across_thread_counts() {
    let phantom = tiny_phantom();
    let data = phantom.data.cast::<f64>();
    let (_, mask) = segmentation(&data, &phantom.gtab);
    let (fa_s, md_s) = fit_dtm_volume_full_par(&data, &mask, &phantom.gtab, Parallelism::Serial);
    for workers in WORKER_COUNTS {
        let (fa_p, md_p) =
            fit_dtm_volume_full_par(&data, &mask, &phantom.gtab, Parallelism::threads(workers));
        assert_eq!(fa_s, fa_p, "FA workers={workers}");
        assert_eq!(md_s, md_p, "MD workers={workers}");
    }
}

#[test]
fn coadd_bit_identical_across_thread_counts() {
    let survey = SkySurvey::generate(23, &SkySpec::test_scale());
    let grid = survey.patch_grid();
    let calib = CalibParams::default();
    let calibrated: Vec<_> = survey
        .visits
        .iter()
        .flatten()
        .map(|e| calibrate_exposure(e, &calib))
        .collect();
    let by_patch = sciops::astro::pipeline::create_patches(&calibrated, &grid);
    let (patch, pieces) = by_patch.iter().next().expect("survey covers >= 1 patch");
    let patch_box = grid.patch_box(*patch);
    let merged: Vec<_> = pieces
        .chunks(1)
        .map(|chunk| sciops::astro::pipeline::merge_visit_pieces(&patch_box, chunk))
        .collect();
    let params = CoaddParams::default();
    let serial = coadd_sigma_clip_par(&merged, &params, Parallelism::Serial);
    for workers in WORKER_COUNTS {
        let par = coadd_sigma_clip_par(&merged, &params, Parallelism::threads(workers));
        assert_eq!(serial, par, "coadd workers={workers}");
    }
}

#[test]
fn background_bit_identical_across_thread_counts() {
    let survey = SkySurvey::generate(29, &SkySpec::test_scale());
    let exposure = &survey.visits[0][0];
    let params = BackgroundParams {
        cell_size: 8,
        ..Default::default()
    };
    let bg_serial = estimate_background_par(&exposure.flux, &params, Parallelism::Serial);
    let sub_serial = subtract_background_par(&exposure.flux, &params, Parallelism::Serial);
    for workers in WORKER_COUNTS {
        let par = Parallelism::threads(workers);
        assert_eq!(
            bg_serial,
            estimate_background_par(&exposure.flux, &params, par),
            "background workers={workers}"
        );
        assert_eq!(
            sub_serial,
            subtract_background_par(&exposure.flux, &params, par),
            "subtract workers={workers}"
        );
    }
}

#[test]
fn detect_bit_identical_across_thread_counts() {
    let survey = SkySurvey::generate(31, &SkySpec::test_scale());
    let grid = survey.patch_grid();
    let out = reference_pipeline_par(
        &survey.visits,
        &grid,
        &CalibParams::default(),
        &CoaddParams::default(),
        &DetectParams::default(),
        Parallelism::Serial,
    );
    let coadd = out.coadds.values().next().expect("at least one coadd");
    let params = DetectParams::default();
    let serial = detect_sources_par(coadd, &params, Parallelism::Serial);
    for workers in WORKER_COUNTS {
        let par = detect_sources_par(coadd, &params, Parallelism::threads(workers));
        assert_eq!(serial, par, "detect workers={workers}");
    }
}

#[test]
fn dtm_fa_wrapper_bit_identical_to_serial_twin() {
    // The FA-only convenience wrapper: fit_dtm_volume_par at any worker
    // count must reproduce fit_dtm_volume (the serial twin) bit for bit.
    let phantom = tiny_phantom();
    let data = phantom.data.cast::<f64>();
    let (_, mask) = segmentation(&data, &phantom.gtab);
    let serial = fit_dtm_volume(&data, &mask, &phantom.gtab);
    for workers in WORKER_COUNTS {
        let par = fit_dtm_volume_par(&data, &mask, &phantom.gtab, Parallelism::threads(workers));
        assert_eq!(serial, par, "fit_dtm_volume workers={workers}");
    }
}

#[test]
fn calibrated_entry_point_bit_identical_to_serial_twin() {
    // The mid-pipeline entry (steps 2A → 4A over pre-calibrated exposures,
    // used by the pipelined-ingest path) must reproduce its serial twin
    // bit for bit at every worker count.
    let survey = SkySurvey::generate(41, &SkySpec::test_scale());
    let grid = survey.patch_grid();
    let calib = CalibParams::default();
    let calibrated: Vec<Exposure> = survey
        .visits
        .iter()
        .flatten()
        .map(|e| calibrate_exposure(e, &calib))
        .collect();
    let serial = reference_pipeline_calibrated(
        calibrated.clone(),
        &grid,
        &CoaddParams::default(),
        &DetectParams::default(),
    );
    for workers in WORKER_COUNTS {
        let par = reference_pipeline_calibrated_par(
            calibrated.clone(),
            &grid,
            &CoaddParams::default(),
            &DetectParams::default(),
            Parallelism::threads(workers),
        );
        assert_eq!(serial.coadds, par.coadds, "coadds workers={workers}");
        assert_eq!(serial.catalogs, par.catalogs, "catalogs workers={workers}");
    }
}

#[test]
fn full_astro_pipeline_bit_identical_across_thread_counts() {
    let survey = SkySurvey::generate(37, &SkySpec::test_scale());
    let grid = survey.patch_grid();
    let run = |par| {
        reference_pipeline_par(
            &survey.visits,
            &grid,
            &CalibParams::default(),
            &CoaddParams::default(),
            &DetectParams::default(),
            par,
        )
    };
    let serial = run(Parallelism::Serial);
    for workers in WORKER_COUNTS {
        let par = run(Parallelism::threads(workers));
        assert_eq!(serial.coadds, par.coadds, "coadds workers={workers}");
        assert_eq!(serial.catalogs, par.catalogs, "catalogs workers={workers}");
    }
}
