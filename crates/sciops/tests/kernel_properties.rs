//! Property-based tests on the scientific kernels' invariants.

use marray::{Mask, NdArray};
use proptest::prelude::*;
use sciops::linalg::{solve, sym3_eigenvalues};
use sciops::neuro::dtm::{fit_dtm_voxel, fractional_anisotropy};
use sciops::neuro::{nlmeans3d, otsu_threshold, GradientTable, NlmParams};
use sciops::stats::{mean_std, median, sigma_clipped_mean};

fn volumes() -> impl Strategy<Value = NdArray<f64>> {
    (2usize..=5, 2usize..=5, 2usize..=5).prop_flat_map(|(x, y, z)| {
        prop::collection::vec(0.0f64..1e4, x * y * z)
            .prop_map(move |data| NdArray::from_vec(&[x, y, z], data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn median_is_order_statistic(mut v in prop::collection::vec(-1e6f64..1e6, 1..40)) {
        let m = median(&mut v.clone());
        let below = v.iter().filter(|&&x| x <= m + 1e-12).count();
        let above = v.iter().filter(|&&x| x >= m - 1e-12).count();
        prop_assert!(below * 2 >= v.len());
        prop_assert!(above * 2 >= v.len());
        v.sort_by(f64::total_cmp);
        prop_assert!(m >= v[0] && m <= v[v.len() - 1]);
    }

    #[test]
    fn sigma_clip_bounded_by_extremes(v in prop::collection::vec(-1e6f64..1e6, 1..40)) {
        let m = sigma_clipped_mean(&v, 3.0, 2);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "{m} outside [{lo}, {hi}]");
    }

    #[test]
    fn sigma_clip_is_mean_without_outliers(base in -1e3f64..1e3, spread in 0.0f64..1.0) {
        // Tightly clustered values survive clipping entirely.
        let v: Vec<f64> = (0..10).map(|i| base + spread * (i as f64 / 10.0)).collect();
        let clipped = sigma_clipped_mean(&v, 3.0, 2);
        let (mean, _) = mean_std(&v);
        prop_assert!((clipped - mean).abs() < 1e-9);
    }

    #[test]
    fn otsu_threshold_within_range(v in volumes()) {
        let t = otsu_threshold(&v, 128);
        prop_assert!(t >= v.min() - 1e-9 && t <= v.max() + 1e-9);
    }

    #[test]
    fn nlmeans_preserves_range_and_mask(v in volumes(), flip in any::<u64>()) {
        let bits: Vec<bool> = (0..v.len()).map(|i| (flip >> (i % 64)) & 1 == 1).collect();
        let mask = Mask::from_vec(v.dims(), bits).unwrap();
        let params = NlmParams { search_radius: 1, patch_radius: 1, sigma: 100.0, h_factor: 1.0 };
        let out = nlmeans3d(&v, Some(&mask), &params);
        // Weighted averages cannot exceed the input range.
        prop_assert!(out.min() >= v.min() - 1e-9);
        prop_assert!(out.max() <= v.max() + 1e-9);
        // Unmasked voxels pass through.
        for i in 0..v.len() {
            if !mask.get_flat(i) {
                prop_assert_eq!(out.data()[i], v.data()[i]);
            }
        }
    }

    #[test]
    fn fa_always_in_unit_interval(
        e1 in 0.0f64..3e-3,
        e2 in 0.0f64..3e-3,
        e3 in 0.0f64..3e-3,
    ) {
        let fa = fractional_anisotropy(&[e1, e2, e3]);
        prop_assert!((0.0..=1.0).contains(&fa), "FA {fa}");
    }

    #[test]
    fn eigenvalues_match_trace(
        dxx in 0.1f64..3.0, dyy in 0.1f64..3.0, dzz in 0.1f64..3.0,
        dxy in -0.5f64..0.5, dxz in -0.5f64..0.5, dyz in -0.5f64..0.5,
    ) {
        let eig = sym3_eigenvalues(&[dxx, dyy, dzz, dxy, dxz, dyz]);
        prop_assert!((eig[0] + eig[1] + eig[2] - (dxx + dyy + dzz)).abs() < 1e-8);
        prop_assert!(eig[0] >= eig[1] && eig[1] >= eig[2]);
    }

    #[test]
    fn solve_produces_valid_solutions(seed in any::<u64>()) {
        // Diagonally dominant random 6×6 systems are solvable; residuals
        // must be tiny.
        let n = 6;
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        for v in a.iter_mut() { *v = next(); }
        for (i, v) in b.iter_mut().enumerate() {
            *v = next();
            a[i * n + i] += 4.0;
        }
        let x = solve(&a, &b, n).expect("well conditioned");
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            prop_assert!((ax - b[i]).abs() < 1e-8, "row {i} residual {}", ax - b[i]);
        }
    }

    #[test]
    fn dtm_fit_recovers_random_spd_tensors(
        l1 in 0.5e-3f64..2e-3, l2 in 0.3e-3f64..1.5e-3, l3 in 0.1e-3f64..1e-3,
        s0 in 100.0f64..2000.0,
    ) {
        // A diagonal SPD tensor must be recovered exactly from clean data.
        let gtab = GradientTable::hcp_like(48, 4, 1000.0);
        let tensor = [l1, l2, l3, 0.0, 0.0, 0.0];
        let signals: Vec<f64> = gtab
            .bvals
            .iter()
            .zip(&gtab.bvecs)
            .map(|(&b, g)| {
                let quad = tensor[0] * g[0] * g[0] + tensor[1] * g[1] * g[1] + tensor[2] * g[2] * g[2];
                s0 * (-b * quad).exp()
            })
            .collect();
        let fit = fit_dtm_voxel(&signals, &gtab).expect("clean fit");
        for (got, want) in fit.tensor.iter().zip(&tensor) {
            prop_assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
        prop_assert!((fit.s0 - s0).abs() / s0 < 1e-6);
    }
}

// ---------------------------------------------------------------------------
// Scientific validation beyond properties: photometry and full-resolution
// phantom structure.
// ---------------------------------------------------------------------------

#[test]
fn detected_fluxes_track_injected_fluxes() {
    use sciops::astro::{CalibParams, CoaddParams, DetectParams};
    use sciops::synth::sky::{SkySpec, SkySurvey};

    // A sparse field so sources stay isolated.
    let spec = SkySpec {
        n_sources: 14,
        n_visits: 8,
        ..SkySpec::test_scale()
    };
    let survey = SkySurvey::generate(35, &spec);
    let grid = survey.patch_grid();
    let out = sciops::astro::pipeline::reference_pipeline(
        &survey.visits,
        &grid,
        &CalibParams::default(),
        &CoaddParams::default(),
        &DetectParams::default(),
    );
    // Match each injected source to the nearest detection. Sources within
    // a PSF reach of a patch boundary are skipped: detection runs per
    // patch, so boundary clusters split and their fluxes are partial.
    let patch = spec.patch_size as f64;
    let origin = -(spec.dither as f64);
    let boundary_distance = |v: f64| {
        let r = (v - origin).rem_euclid(patch);
        r.min(patch - r)
    };
    let mut matched: Vec<(f64, f64)> = Vec::new();
    for s in &survey.sources {
        if boundary_distance(s.x) < 5.0 || boundary_distance(s.y) < 5.0 {
            continue;
        }
        let mut best: Option<(f64, f64)> = None;
        for sources in out.catalogs.values() {
            for d in sources {
                let dist = ((d.centroid.0 - s.x).powi(2) + (d.centroid.1 - s.y).powi(2)).sqrt();
                if best.map(|(bd, _)| dist < bd).unwrap_or(true) {
                    best = Some((dist, d.flux));
                }
            }
        }
        if let Some((dist, flux)) = best {
            if dist < 3.0 {
                matched.push((s.flux, flux));
            }
        }
    }
    assert!(
        matched.len() >= 3,
        "matched {} of {} sources",
        matched.len(),
        survey.sources.len()
    );
    for a in &matched {
        for b in &matched {
            if a.0 > 2.0 * b.0 {
                assert!(
                    a.1 > b.1,
                    "brighter injected source measured fainter: {a:?} vs {b:?}"
                );
            }
        }
    }
}

#[test]
fn full_resolution_phantom_slab_has_paper_structure() {
    use sciops::synth::dmri::{DmriPhantom, DmriSpec};

    // Full 145×145×174 spatial resolution, 3 volumes (1 b0): one volume is
    // the paper's 14.6 MB unit.
    let spec = DmriSpec {
        dims: [145, 145, 174],
        n_volumes: 3,
        n_b0: 1,
        ..DmriSpec::test_scale()
    };
    let p = DmriPhantom::generate(77, &spec);
    assert_eq!(p.data.dims(), &[145, 145, 174, 3]);
    assert_eq!(p.data.len() / 3, 145 * 145 * 174);
    // Brain fraction at full resolution matches the geometric model.
    let frac = DmriPhantom::brain_fraction(&spec);
    assert!((0.3..0.5).contains(&frac), "brain fraction {frac}");
    // The b0 volume's center is bright, corners dark, at full resolution.
    let b0: NdArray<f64> = p.data.cast::<f64>().slice_axis(3, 0).unwrap();
    assert!(b0[&[72, 72, 87][..]] > 500.0);
    assert!(b0[&[2, 2, 2][..]] < 200.0);
}
