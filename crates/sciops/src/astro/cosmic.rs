//! Cosmic-ray and cosmetic-defect detection and repair (part of Step 1A).
//!
//! Cosmic rays deposit charge in isolated pixels or short trails that are
//! much sharper than the instrument's point-spread function. The detector
//! here uses a Laplacian significance test (van Dokkum's L.A.Cosmic idea in
//! simplified form): a pixel whose Laplacian is many noise sigmas above its
//! neighborhood is flagged; flagged pixels are repaired with the median of
//! their unflagged neighbors.

use marray::NdArray;

/// Mask bit set on pixels identified as cosmic-ray hits.
pub const MASK_CR: u8 = 0b0000_0001;
/// Mask bit set on known-bad detector pixels.
pub const MASK_BAD: u8 = 0b0000_0010;

/// Cosmic-ray detector parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosmicParams {
    /// Detection threshold in noise sigmas.
    pub threshold_sigma: f64,
}

impl Default for CosmicParams {
    fn default() -> Self {
        // High enough that a PSF-shaped source (whose own shot noise raises
        // the local sigma) never trips the test, while single-pixel hits —
        // whose Laplacian is ~4× their full amplitude — exceed it hugely.
        CosmicParams {
            threshold_sigma: 15.0,
        }
    }
}

/// Detect cosmic rays in an image with a per-pixel `variance` plane.
/// Returns the per-pixel hit flags as an `u8` array (1 = hit).
pub fn detect_cosmic_rays(
    image: &NdArray<f64>,
    variance: &NdArray<f64>,
    params: &CosmicParams,
) -> NdArray<u8> {
    assert_eq!(image.dims(), variance.dims());
    let (rows, cols) = (image.dims()[0], image.dims()[1]);
    let data = image.data();
    let mut flags = NdArray::<u8>::zeros(&[rows, cols]);
    for r in 0..rows {
        for c in 0..cols {
            // 4-neighbor Laplacian with border clamping.
            let v = data[r * cols + c];
            let up = data[r.saturating_sub(1) * cols + c];
            let down = data[(r + 1).min(rows - 1) * cols + c];
            let left = data[r * cols + c.saturating_sub(1)];
            let right = data[r * cols + (c + 1).min(cols - 1)];
            let lap = 4.0 * v - up - down - left - right;
            let sigma = variance.data()[r * cols + c].max(1e-12).sqrt();
            if lap > params.threshold_sigma * sigma * 4.0 {
                flags.data_mut()[r * cols + c] = 1;
            }
        }
    }
    flags
}

/// Repair flagged pixels in place with the median of their unflagged
/// 8-neighborhood; pixels with no clean neighbor fall back to the local mean
/// of the whole neighborhood.
pub fn repair(image: &mut NdArray<f64>, flags: &NdArray<u8>) {
    assert_eq!(image.dims(), flags.dims());
    let (rows, cols) = (image.dims()[0], image.dims()[1]);
    let original = image.clone();
    let mut neigh: Vec<f64> = Vec::with_capacity(8);
    for r in 0..rows {
        for c in 0..cols {
            if flags.data()[r * cols + c] == 0 {
                continue;
            }
            neigh.clear();
            let mut all = Vec::with_capacity(8);
            for dr in -1i64..=1 {
                for dc in -1i64..=1 {
                    if dr == 0 && dc == 0 {
                        continue;
                    }
                    let nr = r as i64 + dr;
                    let nc = c as i64 + dc;
                    if nr < 0 || nc < 0 || nr >= rows as i64 || nc >= cols as i64 {
                        continue;
                    }
                    let off = nr as usize * cols + nc as usize;
                    all.push(original.data()[off]);
                    if flags.data()[off] == 0 {
                        neigh.push(original.data()[off]);
                    }
                }
            }
            let replacement = if !neigh.is_empty() {
                crate::stats::median(&mut neigh)
            } else {
                all.iter().sum::<f64>() / all.len().max(1) as f64
            };
            image.data_mut()[r * cols + c] = replacement;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_with_hit() -> (NdArray<f64>, NdArray<f64>) {
        let mut img = NdArray::<f64>::full(&[16, 16], 100.0);
        img[&[8, 8][..]] = 5000.0; // single-pixel cosmic ray
        let var = NdArray::<f64>::full(&[16, 16], 100.0); // sigma = 10
        (img, var)
    }

    #[test]
    fn detects_isolated_hit() {
        let (img, var) = flat_with_hit();
        let flags = detect_cosmic_rays(&img, &var, &CosmicParams::default());
        assert_eq!(flags[&[8, 8][..]], 1);
        assert_eq!(flags.sum() as usize, 1, "only the hit is flagged");
    }

    #[test]
    fn smooth_star_not_flagged() {
        // A PSF-like blob (slowly varying) must not trigger.
        let img = NdArray::from_fn(&[16, 16], |ix| {
            let dr = ix[0] as f64 - 8.0;
            let dc = ix[1] as f64 - 8.0;
            100.0 + 500.0 * (-(dr * dr + dc * dc) / 18.0).exp()
        });
        let var = NdArray::<f64>::full(&[16, 16], 100.0);
        let flags = detect_cosmic_rays(&img, &var, &CosmicParams::default());
        assert_eq!(flags.sum(), 0.0, "smooth PSF flagged as cosmic ray");
    }

    #[test]
    fn repair_restores_flat_level() {
        let (mut img, var) = flat_with_hit();
        let flags = detect_cosmic_rays(&img, &var, &CosmicParams::default());
        repair(&mut img, &flags);
        assert!((img[&[8, 8][..]] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn repair_of_cluster_uses_clean_neighbors() {
        let mut img = NdArray::<f64>::full(&[8, 8], 10.0);
        let mut flags = NdArray::<u8>::zeros(&[8, 8]);
        for &(r, c) in &[(3usize, 3usize), (3, 4), (4, 3)] {
            img[&[r, c][..]] = 9999.0;
            flags[&[r, c][..]] = 1;
        }
        repair(&mut img, &flags);
        for &(r, c) in &[(3usize, 3usize), (3, 4), (4, 3)] {
            assert!((img[&[r, c][..]] - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_threshold_detects_less() {
        let (img, var) = flat_with_hit();
        let strict = detect_cosmic_rays(
            &img,
            &var,
            &CosmicParams {
                threshold_sigma: 1e6,
            },
        );
        assert_eq!(strict.sum(), 0.0);
    }
}
