//! Astronomy use case: LSST-style survey image processing (the paper's §3.2).
//!
//! The pipeline has four steps, mirroring Figure 3 of the paper:
//!
//! 1. **Pre-processing** (Step 1A) — background estimation and subtraction,
//!    cosmic-ray/defect detection and repair, photometric calibration
//!    ([`background`], [`cosmic`], [`calib`]).
//! 2. **Patch creation** (Step 2A) — map each calibrated exposure to the sky
//!    patches it overlaps (a 1–6-way flatmap) and cut out per-patch
//!    exposures ([`geometry`]).
//! 3. **Co-addition** (Step 3A) — stack the per-patch exposures across
//!    visits with two rounds of 3σ outlier rejection ([`coadd`]).
//! 4. **Source detection** (Step 4A) — threshold the coadd above its
//!    background and measure connected pixel clusters ([`detect`]).
//!
//! [`pipeline`] chains the four steps into the single-machine reference
//! implementation every engine's output is validated against.

pub mod background;
pub mod calib;
pub mod coadd;
pub mod cosmic;
pub mod detect;
pub mod geometry;
pub mod pipeline;

pub use background::{
    estimate_background, estimate_background_par, subtract_background, subtract_background_par,
    BackgroundParams,
};
pub use calib::{calibrate_exposure, CalibParams};
pub use coadd::{coadd_sigma_clip, coadd_sigma_clip_par, CoaddParams};
pub use cosmic::{detect_cosmic_rays, repair, CosmicParams};
pub use detect::{detect_sources, detect_sources_par, DetectParams, Source};
pub use geometry::{Exposure, PatchGrid, PatchId, SkyBox};
pub use pipeline::{
    reference_pipeline, reference_pipeline_calibrated, reference_pipeline_calibrated_par,
    reference_pipeline_par, AstroOutput,
};
