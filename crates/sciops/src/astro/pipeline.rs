//! The single-machine astronomy reference pipeline (Steps 1A → 4A).
//!
//! Plays the role of the paper's LSST-stack reference implementation:
//! engines' outputs are validated against it.

use crate::astro::calib::{calibrate_exposure, CalibParams};
use crate::astro::coadd::{coadd_sigma_clip_par, Coadd, CoaddParams};
use crate::astro::detect::{detect_sources_par, DetectParams, Source};
use crate::astro::geometry::{Exposure, PatchGrid, PatchId};
use parexec::{par_map_slabs, Parallelism};
use std::collections::BTreeMap;

/// Output of the full astronomy pipeline.
#[derive(Debug, Clone)]
pub struct AstroOutput {
    /// One coadd per sky patch that received data.
    pub coadds: BTreeMap<PatchId, Coadd>,
    /// Detected sources per patch.
    pub catalogs: BTreeMap<PatchId, Vec<Source>>,
}

impl AstroOutput {
    /// Total number of detected sources across all patches.
    pub fn total_sources(&self) -> usize {
        self.catalogs.values().map(Vec::len).sum()
    }
}

/// Step 2A for a set of calibrated exposures: group the per-patch pieces.
pub fn create_patches(
    calibrated: &[Exposure],
    grid: &PatchGrid,
) -> BTreeMap<PatchId, Vec<Exposure>> {
    let mut by_patch: BTreeMap<PatchId, Vec<Exposure>> = BTreeMap::new();
    for exposure in calibrated {
        for (patch, piece) in grid.map_to_patches(exposure) {
            by_patch.entry(patch).or_default().push(piece);
        }
    }
    by_patch
}

/// Within one visit, merge all the pieces covering the same patch into one
/// exposure spanning the whole patch ("creates a new exposure object for
/// each patch in each visit"). Pixels with no data carry a non-zero mask.
// scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
pub fn merge_visit_pieces(
    patch_box: &crate::astro::geometry::SkyBox,
    pieces: &[Exposure],
) -> Exposure {
    use marray::NdArray;
    let rows = patch_box.height as usize;
    let cols = patch_box.width as usize;
    let mut flux = NdArray::<f64>::zeros(&[rows, cols]);
    let mut variance = NdArray::<f64>::full(&[rows, cols], 1.0);
    // Start fully masked; unmask where a piece provides pixels.
    let mut mask = NdArray::<u8>::full(&[rows, cols], crate::astro::cosmic::MASK_BAD);
    for piece in pieces {
        let r0 = (piece.bbox.y0 - patch_box.y0) as usize;
        let c0 = (piece.bbox.x0 - patch_box.x0) as usize;
        flux.write_subarray(&[r0, c0], &piece.flux)
            .expect("piece inside patch");
        variance
            .write_subarray(&[r0, c0], &piece.variance)
            .expect("piece inside patch");
        mask.write_subarray(&[r0, c0], &piece.mask)
            .expect("piece inside patch");
    }
    Exposure {
        visit: pieces.first().map(|p| p.visit).unwrap_or(0),
        sensor: u32::MAX, // merged patch exposure has no single sensor
        bbox: *patch_box,
        flux,
        variance,
        mask,
    }
}

/// Run the complete four-step pipeline over all visits.
///
/// `visits[v]` holds the raw sensor exposures of visit `v`.
pub fn reference_pipeline(
    visits: &[Vec<Exposure>],
    grid: &PatchGrid,
    calib: &CalibParams,
    coadd: &CoaddParams,
    detect: &DetectParams,
) -> AstroOutput {
    reference_pipeline_par(visits, grid, calib, coadd, detect, Parallelism::Serial)
}

/// [`reference_pipeline`] with explicit intra-node parallelism: calibration
/// fans out over exposures, and each patch's co-add and detection use the
/// row-parallel kernels. Patch iteration order (BTreeMap) and every
/// per-pixel accumulation order are unchanged, so output is bit-identical
/// at every worker count.
pub fn reference_pipeline_par(
    visits: &[Vec<Exposure>],
    grid: &PatchGrid,
    calib: &CalibParams,
    coadd: &CoaddParams,
    detect: &DetectParams,
    par: Parallelism,
) -> AstroOutput {
    // Step 1A: calibrate every exposure (one exposure per slab).
    let raw: Vec<&Exposure> = visits.iter().flatten().collect();
    let calibrated: Vec<Exposure> = par_map_slabs(&raw, par, |_, e| calibrate_exposure(e, calib));
    reference_pipeline_calibrated_par(calibrated, grid, coadd, detect, par)
}

/// Steps 2A → 4A over already-calibrated exposures, serial reference.
pub fn reference_pipeline_calibrated(
    calibrated: Vec<Exposure>,
    grid: &PatchGrid,
    coadd: &CoaddParams,
    detect: &DetectParams,
) -> AstroOutput {
    reference_pipeline_calibrated_par(calibrated, grid, coadd, detect, Parallelism::Serial)
}

/// Steps 2A → 4A over already-calibrated exposures. Split out so ingest
/// paths that overlap decode with calibration (see `parexec::pipeline`) can
/// join the reference pipeline after Step 1A with bit-identical results.
pub fn reference_pipeline_calibrated_par(
    calibrated: Vec<Exposure>,
    grid: &PatchGrid,
    coadd: &CoaddParams,
    detect: &DetectParams,
    par: Parallelism,
) -> AstroOutput {
    // Step 2A: flatmap to patches, then merge pieces per (patch, visit).
    let by_patch = create_patches(&calibrated, grid);
    let mut merged: BTreeMap<PatchId, Vec<Exposure>> = BTreeMap::new();
    for (patch, pieces) in by_patch {
        let patch_box = grid.patch_box(patch);
        let mut by_visit: BTreeMap<u32, Vec<Exposure>> = BTreeMap::new();
        for piece in pieces {
            by_visit.entry(piece.visit).or_default().push(piece);
        }
        let visit_exposures: Vec<Exposure> = by_visit
            .into_values()
            .map(|pieces| merge_visit_pieces(&patch_box, &pieces))
            .collect();
        merged.insert(patch, visit_exposures);
    }

    // Step 3A: coadd each patch across visits.
    let coadds: BTreeMap<PatchId, Coadd> = merged
        .into_iter()
        .map(|(patch, exposures)| (patch, coadd_sigma_clip_par(&exposures, coadd, par)))
        .collect();

    // Step 4A: detect sources per coadd.
    let catalogs = coadds
        .iter()
        .map(|(patch, c)| (*patch, detect_sources_par(c, detect, par)))
        .collect();

    AstroOutput { coadds, catalogs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::sky::{SkySpec, SkySurvey};

    #[test]
    fn end_to_end_finds_injected_sources() {
        let spec = SkySpec::test_scale();
        let survey = SkySurvey::generate(11, &spec);
        let grid = survey.patch_grid();
        let out = reference_pipeline(
            &survey.visits,
            &grid,
            &CalibParams::default(),
            &CoaddParams::default(),
            &DetectParams::default(),
        );
        assert!(!out.coadds.is_empty());
        let found = out.total_sources();
        // The generator injected a known number of bright sources; the
        // pipeline should recover most of them and not hallucinate wildly.
        let injected = spec.n_sources;
        assert!(
            found >= injected / 2 && found <= injected * 3,
            "found {found}, injected {injected}"
        );
    }

    #[test]
    fn coadd_depth_reflects_visit_count() {
        let spec = SkySpec::test_scale();
        let survey = SkySurvey::generate(5, &spec);
        let grid = survey.patch_grid();
        let out = reference_pipeline(
            &survey.visits,
            &grid,
            &CalibParams::default(),
            &CoaddParams::default(),
            &DetectParams::default(),
        );
        let n_visits = survey.visits.len() as f64;
        // Median depth should be close to the number of visits.
        let mut depths: Vec<f64> = out
            .coadds
            .values()
            .flat_map(|c| c.depth.data().iter().map(|&d| d as f64))
            .filter(|&d| d > 0.0)
            .collect();
        let med = crate::stats::median(&mut depths);
        assert!(
            med >= n_visits - 1.5,
            "median depth {med} for {n_visits} visits"
        );
    }

    #[test]
    fn merge_visit_pieces_masks_gaps() {
        use crate::astro::geometry::SkyBox;
        use marray::NdArray;
        let patch_box = SkyBox {
            x0: 0,
            y0: 0,
            width: 10,
            height: 10,
        };
        let piece = Exposure {
            visit: 2,
            sensor: 0,
            bbox: SkyBox {
                x0: 0,
                y0: 0,
                width: 5,
                height: 10,
            },
            flux: NdArray::full(&[10, 5], 7.0),
            variance: NdArray::full(&[10, 5], 1.0),
            mask: NdArray::zeros(&[10, 5]),
        };
        let merged = merge_visit_pieces(&patch_box, &[piece]);
        assert_eq!(merged.visit, 2);
        assert_eq!(merged.mask[&[0, 0][..]], 0, "covered pixel unmasked");
        assert_ne!(merged.mask[&[0, 7][..]], 0, "gap pixel masked");
        assert_eq!(merged.flux[&[3, 2][..]], 7.0);
    }
}
