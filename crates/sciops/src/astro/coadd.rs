//! Step 3A — co-addition with iterative outlier rejection.
//!
//! Exposures of the same patch from different visits are stacked: for each
//! pixel, compute the mean across visits, null out samples more than three
//! standard deviations away, and repeat (two cleaning iterations in the
//! reference). The surviving samples are averaged with inverse-variance
//! weights. The output per patch is a *Coadd*.

use crate::astro::geometry::{Exposure, SkyBox};
use marray::NdArray;
use parexec::{par_map_slabs, Parallelism};

/// Co-addition parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoaddParams {
    /// Outlier rejection threshold in standard deviations.
    pub kappa: f64,
    /// Number of rejection iterations (the paper's reference uses 2).
    pub iterations: usize,
}

impl Default for CoaddParams {
    fn default() -> Self {
        CoaddParams {
            kappa: 3.0,
            iterations: 2,
        }
    }
}

/// How one exposure's mask gates its samples, resolved once per stack
/// from the mask plane's stored representation.
enum MaskPlan {
    /// Const-encoded all-zero mask: every pixel contributes.
    AllGood,
    /// Const-encoded non-zero mask: no pixel contributes.
    AllBad,
    /// Dense (or non-Const) mask: check per pixel.
    PerPixel,
}

/// The stacked output for one patch.
#[derive(Debug, Clone, PartialEq)]
pub struct Coadd {
    /// Sky region the coadd covers.
    pub bbox: SkyBox,
    /// Clipped, inverse-variance-weighted mean flux per pixel.
    pub flux: NdArray<f64>,
    /// Variance of the weighted mean per pixel.
    pub variance: NdArray<f64>,
    /// Number of visits contributing to each pixel after clipping.
    pub depth: NdArray<u16>,
}

/// Stack per-patch exposures from different visits into a coadd.
///
/// All inputs must share the same bbox (they are the same patch cut from
/// different visits). Pixels where an input's mask is non-zero are excluded
/// from that input's contribution.
pub fn coadd_sigma_clip(exposures: &[Exposure], params: &CoaddParams) -> Coadd {
    coadd_sigma_clip_par(exposures, params, Parallelism::Serial)
}

/// [`coadd_sigma_clip`] with explicit intra-node parallelism: pixel rows of
/// the stack are clipped and averaged independently across
/// `par.workers()` threads. Each pixel's rejection loop only reads its own
/// column of samples, so output is bit-identical at every worker count.
// scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
pub fn coadd_sigma_clip_par(
    exposures: &[Exposure],
    params: &CoaddParams,
    par: Parallelism,
) -> Coadd {
    let first = exposures.first().expect("coadd of zero exposures");
    let bbox = first.bbox;
    for e in exposures {
        assert_eq!(e.bbox, bbox, "all coadd inputs must cover the same patch");
    }
    let (rows, cols) = first.dims();
    let n = exposures.len();

    // Run-level fast paths over compressed planes: a Const-encoded mask
    // or variance plane is a single run covering the patch, so its
    // contribution is resolved once for the whole stack and the plane is
    // never decoded. The per-pixel branch below sees exactly the values
    // the dense path would read, so output is bit-identical.
    let mask_plan: Vec<MaskPlan> = exposures
        .iter()
        .map(|e| match e.mask.encoded().and_then(|m| m.as_const()) {
            Some(0) => MaskPlan::AllGood,
            Some(_) => MaskPlan::AllBad,
            None => MaskPlan::PerPixel,
        })
        .collect();
    let var_const: Vec<Option<f64>> = exposures
        .iter()
        .map(|e| {
            e.variance
                .encoded()
                .and_then(|v| v.as_const())
                .map(|v| v.max(1e-12))
        })
        .collect();

    let row_ids: Vec<usize> = (0..rows).collect();
    let stacked = par_map_slabs(&row_ids, par, |_, &r| {
        let mut flux_row = vec![0.0f64; cols];
        let mut var_row = vec![0.0f64; cols];
        let mut depth_row = vec![0u16; cols];
        let mut samples: Vec<(f64, f64)> = Vec::with_capacity(n); // (flux, var)
        for c in 0..cols {
            let p = r * cols + c;
            samples.clear();
            for (e, (plan, vc)) in exposures.iter().zip(mask_plan.iter().zip(&var_const)) {
                let good = match plan {
                    MaskPlan::AllGood => true,
                    MaskPlan::AllBad => false,
                    MaskPlan::PerPixel => e.mask.data()[p] == 0,
                };
                if good {
                    let v = match vc {
                        Some(v) => *v,
                        None => e.variance.data()[p].max(1e-12),
                    };
                    samples.push((e.flux.data()[p], v));
                }
            }
            if samples.is_empty() {
                continue;
            }
            // Iterative 3-sigma rejection on the flux samples.
            for _ in 0..params.iterations {
                if samples.len() <= 1 {
                    break;
                }
                let vals: Vec<f64> = samples.iter().map(|s| s.0).collect();
                let (mean, std) = crate::stats::mean_std(&vals);
                // scilint: allow(N001, exact-zero std is mean_std's all-equal-samples sentinel so clipping can never remove anything)
                if std == 0.0 {
                    break;
                }
                let before = samples.len();
                samples.retain(|s| (s.0 - mean).abs() <= params.kappa * std);
                if samples.is_empty() || samples.len() == before {
                    break;
                }
            }
            // Inverse-variance weighted mean of the survivors.
            let wsum: f64 = samples.iter().map(|s| 1.0 / s.1).sum();
            let fsum: f64 = samples.iter().map(|s| s.0 / s.1).sum();
            flux_row[c] = fsum / wsum;
            var_row[c] = 1.0 / wsum;
            // scilint: allow(N002, depth counts visits per pixel which is far below u16::MAX)
            depth_row[c] = samples.len() as u16;
        }
        (flux_row, var_row, depth_row)
    });

    let mut flux = Vec::with_capacity(rows * cols);
    let mut variance = Vec::with_capacity(rows * cols);
    let mut depth = Vec::with_capacity(rows * cols);
    for (flux_row, var_row, depth_row) in stacked {
        flux.extend(flux_row);
        variance.extend(var_row);
        depth.extend(depth_row);
    }
    Coadd {
        bbox,
        flux: NdArray::from_vec(&[rows, cols], flux).expect("row stitching preserves shape"),
        variance: NdArray::from_vec(&[rows, cols], variance)
            .expect("row stitching preserves shape"),
        depth: NdArray::from_vec(&[rows, cols], depth).expect("row stitching preserves shape"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marray::NdArray;

    fn exposure(visit: u32, flux: NdArray<f64>) -> Exposure {
        let dims = flux.dims().to_vec();
        Exposure {
            visit,
            sensor: 0,
            bbox: SkyBox {
                x0: 0,
                y0: 0,
                width: dims[1] as u64,
                height: dims[0] as u64,
            },
            variance: NdArray::full(&dims, 4.0),
            mask: NdArray::zeros(&dims),
            flux,
        }
    }

    #[test]
    fn mean_of_identical_exposures() {
        let e = exposure(0, NdArray::full(&[4, 4], 10.0));
        let stack: Vec<Exposure> = (0..6)
            .map(|v| Exposure {
                visit: v,
                ..e.clone()
            })
            .collect();
        let coadd = coadd_sigma_clip(&stack, &CoaddParams::default());
        for &v in coadd.flux.data() {
            assert!((v - 10.0).abs() < 1e-12);
        }
        // Variance of a 6-fold mean of var-4 samples is 4/6.
        for &v in coadd.variance.data() {
            assert!((v - 4.0 / 6.0).abs() < 1e-12);
        }
        assert!(coadd.depth.data().iter().all(|&d| d == 6));
    }

    #[test]
    fn transient_outlier_rejected() {
        // 11 visits at 10, one at 10_000 (e.g. an uncaught cosmic ray/satellite).
        let mut stack: Vec<Exposure> = (0..11)
            .map(|v| {
                exposure(
                    v,
                    NdArray::from_fn(&[3, 3], |ix| 10.0 + 0.01 * (v as f64 + ix[0] as f64)),
                )
            })
            .collect();
        stack.push(exposure(11, NdArray::full(&[3, 3], 10_000.0)));
        let coadd = coadd_sigma_clip(&stack, &CoaddParams::default());
        for &v in coadd.flux.data() {
            assert!((v - 10.0).abs() < 0.5, "outlier survived: {v}");
        }
        assert!(coadd.depth.data().iter().all(|&d| d == 11));
    }

    #[test]
    fn masked_pixels_excluded() {
        let clean = exposure(0, NdArray::full(&[2, 2], 5.0));
        let mut flagged = exposure(1, NdArray::full(&[2, 2], 50.0));
        flagged.mask[&[0, 0][..]] = 1;
        let coadd = coadd_sigma_clip(&[clean, flagged], &CoaddParams::default());
        assert_eq!(coadd.depth[&[0, 0][..]], 1, "masked sample dropped");
        assert!((coadd.flux[&[0, 0][..]] - 5.0).abs() < 1e-12);
        assert_eq!(coadd.depth[&[1, 1][..]], 2);
    }

    #[test]
    fn inverse_variance_weighting() {
        let mut precise = exposure(0, NdArray::full(&[1, 1], 0.0));
        precise.variance = NdArray::full(&[1, 1], 1.0);
        let mut noisy = exposure(1, NdArray::full(&[1, 1], 10.0));
        noisy.variance = NdArray::full(&[1, 1], 9.0);
        let coadd = coadd_sigma_clip(
            &[precise, noisy],
            &CoaddParams {
                kappa: 100.0,
                iterations: 0,
            },
        );
        // Weighted mean = (0/1 + 10/9) / (1 + 1/9) = 1.0.
        assert!((coadd.flux[&[0, 0][..]] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_coadd_is_bit_identical() {
        let stack: Vec<Exposure> = (0..7)
            .map(|v| {
                exposure(
                    v,
                    NdArray::from_fn(&[9, 5], |ix| {
                        10.0 + (v as f64) * 0.3 + (ix[0] * 5 + ix[1]) as f64 * 0.07
                    }),
                )
            })
            .collect();
        let params = CoaddParams::default();
        let serial = coadd_sigma_clip_par(&stack, &params, Parallelism::Serial);
        for workers in [1usize, 2, 4, 8] {
            let par = coadd_sigma_clip_par(&stack, &params, Parallelism::threads(workers));
            assert_eq!(serial, par, "workers={workers}");
        }
    }

    #[test]
    fn compressed_planes_reproduce_dense_coadd_bitwise() {
        let dense: Vec<Exposure> = (0..6)
            .map(|v| {
                let mut e = exposure(
                    v,
                    NdArray::from_fn(&[11, 7], |ix| {
                        20.0 + (v as f64) * 0.4 + ((ix[0] * 7 + ix[1]) % 13) as f64 * 0.9
                    }),
                );
                if v == 3 {
                    // Partially flagged mask: stays per-pixel after compression.
                    e.mask[&[2, 2][..]] = 1;
                    e.mask[&[2, 3][..]] = 1;
                }
                if v == 5 {
                    // Fully flagged: compresses to Const(1), i.e. MaskPlan::AllBad.
                    e.mask = NdArray::full(&[11, 7], 1);
                }
                e
            })
            .collect();
        let compressed: Vec<Exposure> = dense
            .iter()
            .map(|e| Exposure {
                flux: e.flux.compressed(),
                variance: e.variance.compressed(),
                mask: e.mask.compressed(),
                ..e.clone()
            })
            .collect();
        assert!(
            compressed
                .iter()
                .any(|e| e.mask.repr() == marray::ChunkRepr::Const
                    && e.variance.repr() == marray::ChunkRepr::Const),
            "fast-path preconditions not met"
        );
        let params = CoaddParams::default();
        let base = coadd_sigma_clip(&dense, &params);
        let eq = |a: &NdArray<f64>, b: &NdArray<f64>| {
            a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| x.to_bits() == y.to_bits())
        };
        for workers in [1usize, 2, 4, 8] {
            let fast = coadd_sigma_clip_par(&compressed, &params, Parallelism::threads(workers));
            assert!(
                eq(&base.flux, &fast.flux),
                "flux differs at workers={workers}"
            );
            assert!(
                eq(&base.variance, &fast.variance),
                "variance differs at workers={workers}"
            );
            assert_eq!(base.depth, fast.depth, "depth differs at workers={workers}");
        }
    }

    #[test]
    #[should_panic(expected = "same patch")]
    fn mismatched_bboxes_panic() {
        let a = exposure(0, NdArray::full(&[2, 2], 1.0));
        let mut b = exposure(1, NdArray::full(&[2, 2], 1.0));
        b.bbox = SkyBox {
            x0: 5,
            y0: 0,
            width: 2,
            height: 2,
        };
        coadd_sigma_clip(&[a, b], &CoaddParams::default());
    }
}
