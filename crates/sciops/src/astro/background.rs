//! Background estimation and subtraction (part of Step 1A and Step 4A).
//!
//! The sky background varies smoothly across a sensor. Following the LSST
//! stack's approach, the image is divided into a coarse mesh of cells; each
//! cell's background is a sigma-clipped median (robust against stars), and
//! the per-pixel background is bilinear interpolation between cell centers.

use crate::stats::sigma_clipped_median;
use marray::{Encoded, NdArray};
use parexec::{par_chunks_mut, par_map_slabs, Parallelism};

/// Background-mesh parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundParams {
    /// Mesh cell edge length in pixels.
    pub cell_size: usize,
    /// Sigma-clipping threshold inside each cell.
    pub kappa: f64,
    /// Sigma-clipping iterations inside each cell.
    pub clip_iterations: usize,
}

impl Default for BackgroundParams {
    fn default() -> Self {
        BackgroundParams {
            cell_size: 16,
            kappa: 3.0,
            clip_iterations: 2,
        }
    }
}

/// Estimate the smooth background of a 2-D image.
pub fn estimate_background(image: &NdArray<f64>, params: &BackgroundParams) -> NdArray<f64> {
    estimate_background_par(image, params, Parallelism::Serial)
}

/// [`estimate_background`] with explicit intra-node parallelism: mesh rows
/// are clipped independently, then output pixel rows are interpolated
/// independently, each across `par.workers()` threads. Both stages are
/// per-row pure functions of read-only inputs, so output is bit-identical
/// at every worker count.
pub fn estimate_background_par(
    image: &NdArray<f64>,
    params: &BackgroundParams,
    par: Parallelism,
) -> NdArray<f64> {
    assert_eq!(
        image.shape().rank(),
        2,
        "background estimation expects a 2-D image"
    );
    let (rows, cols) = (image.dims()[0], image.dims()[1]);
    let cell = params.cell_size.max(1);
    let mesh_rows = rows.div_ceil(cell).max(1);
    let mesh_cols = cols.div_ceil(cell).max(1);

    // Robust per-cell levels, one mesh row per slab.
    //
    // Run-level fast path: when the image is Rle/Const-encoded, cells
    // gather straight from the run table (the plane is never decoded) and
    // consecutive all-constant cells reuse the previous cell's clipped
    // median. Both are bit-identical to the dense path — the run table
    // reproduces the exact pixel values, and `sigma_clipped_median` is a
    // pure function of the gathered values.
    let runs: Option<(Vec<usize>, Vec<f64>)> = match image.encoded() {
        Some(Encoded::Const { value, len }) => Some((vec![0, *len], vec![*value])),
        Some(Encoded::Rle { runs, len }) => {
            let mut bounds = Vec::with_capacity(runs.len() + 1);
            let mut values = Vec::with_capacity(runs.len());
            let mut at = 0usize;
            for &(n, v) in runs {
                bounds.push(at);
                values.push(v);
                at += n as usize;
            }
            bounds.push(*len);
            Some((bounds, values))
        }
        _ => None,
    };
    let mesh_row_ids: Vec<usize> = (0..mesh_rows).collect();
    let mesh: Vec<f64> = par_map_slabs(&mesh_row_ids, par, |_, &mr| {
        let mut mesh_row = vec![0.0f64; mesh_cols];
        let mut cell_values = Vec::with_capacity(cell * cell);
        // (value bits, count) -> clipped median of the last constant cell.
        let mut memo: Option<(u64, usize, f64)> = None;
        for (mc, slot) in mesh_row.iter_mut().enumerate() {
            cell_values.clear();
            let r1 = ((mr + 1) * cell).min(rows);
            let c1 = ((mc + 1) * cell).min(cols);
            match &runs {
                Some((bounds, values)) => {
                    for r in mr * cell..r1 {
                        let (lo, hi) = (r * cols + mc * cell, r * cols + c1);
                        let mut i = bounds.partition_point(|&b| b <= lo) - 1;
                        let mut at = lo;
                        while at < hi {
                            let end = bounds[i + 1].min(hi);
                            cell_values.resize(cell_values.len() + (end - at), values[i]);
                            at = end;
                            i += 1;
                        }
                    }
                }
                None => {
                    for r in mr * cell..r1 {
                        for c in mc * cell..c1 {
                            cell_values.push(image.data()[r * cols + c]);
                        }
                    }
                }
            }
            if runs.is_some() {
                if let Some((&head, tail)) = cell_values.split_first() {
                    if tail.iter().all(|v| v.to_bits() == head.to_bits()) {
                        let key = (head.to_bits(), cell_values.len());
                        if let Some((bits, count, med)) = memo {
                            if (bits, count) == key {
                                *slot = med;
                                continue;
                            }
                        }
                        let med = sigma_clipped_median(
                            &cell_values,
                            params.kappa,
                            params.clip_iterations,
                        );
                        memo = Some((key.0, key.1, med));
                        *slot = med;
                        continue;
                    }
                }
            }
            *slot = sigma_clipped_median(&cell_values, params.kappa, params.clip_iterations);
        }
        mesh_row
    })
    .into_iter()
    .flatten()
    .collect();

    // Bilinear interpolation between cell centers, one pixel row per slab.
    let mut out = NdArray::zeros(&[rows, cols]);
    let center = |m: usize| (m * cell) as f64 + (cell as f64 - 1.0) / 2.0;
    if cols == 0 {
        return out;
    }
    par_chunks_mut(out.data_mut(), cols, par, |r, out_row| {
        // Fractional mesh-row position of this pixel row.
        let fr = if mesh_rows == 1 {
            0.0
        } else {
            (((r as f64) - center(0)) / cell as f64).clamp(0.0, (mesh_rows - 1) as f64)
        };
        let mr0 = fr.floor() as usize;
        let mr1 = (mr0 + 1).min(mesh_rows - 1);
        let tr = fr - mr0 as f64;
        for (c, slot) in out_row.iter_mut().enumerate() {
            let fc = if mesh_cols == 1 {
                0.0
            } else {
                (((c as f64) - center(0)) / cell as f64).clamp(0.0, (mesh_cols - 1) as f64)
            };
            let mc0 = fc.floor() as usize;
            let mc1 = (mc0 + 1).min(mesh_cols - 1);
            let tc = fc - mc0 as f64;
            let v00 = mesh[mr0 * mesh_cols + mc0];
            let v01 = mesh[mr0 * mesh_cols + mc1];
            let v10 = mesh[mr1 * mesh_cols + mc0];
            let v11 = mesh[mr1 * mesh_cols + mc1];
            let top = v00 * (1.0 - tc) + v01 * tc;
            let bottom = v10 * (1.0 - tc) + v11 * tc;
            *slot = top * (1.0 - tr) + bottom * tr;
        }
    });
    out
}

/// Subtract the estimated background from an image.
pub fn subtract_background(image: &NdArray<f64>, params: &BackgroundParams) -> NdArray<f64> {
    subtract_background_par(image, params, Parallelism::Serial)
}

/// [`subtract_background`] with explicit intra-node parallelism.
// scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
pub fn subtract_background_par(
    image: &NdArray<f64>,
    params: &BackgroundParams,
    par: Parallelism,
) -> NdArray<f64> {
    let bg = estimate_background_par(image, params, par);
    image.zip_with(&bg, |v, b| v - b).expect("same shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_background_recovered_exactly() {
        let img = NdArray::<f64>::full(&[32, 32], 250.0);
        let bg = estimate_background(&img, &BackgroundParams::default());
        for &v in bg.data() {
            assert!((v - 250.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gradient_background_tracked() {
        // Linear ramp along columns.
        let img = NdArray::from_fn(&[32, 64], |ix| 100.0 + ix[1] as f64);
        let bg = estimate_background(
            &img,
            &BackgroundParams {
                cell_size: 8,
                ..Default::default()
            },
        );
        // Interior pixels track the ramp closely.
        for r in 8..24 {
            for c in 8..56 {
                let expected = 100.0 + c as f64;
                let got = bg[&[r, c][..]];
                assert!(
                    (got - expected).abs() < 2.0,
                    "({r},{c}): {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn stars_do_not_bias_background() {
        // Flat sky + a few very bright "stars" — the robust mesh ignores them.
        let mut img = NdArray::<f64>::full(&[32, 32], 50.0);
        for &(r, c) in &[(5usize, 5usize), (20, 11), (28, 30)] {
            img[&[r, c][..]] = 50_000.0;
        }
        let bg = estimate_background(
            &img,
            &BackgroundParams {
                cell_size: 8,
                ..Default::default()
            },
        );
        for &v in bg.data() {
            assert!((v - 50.0).abs() < 1.0, "background {v} biased by stars");
        }
    }

    #[test]
    fn subtract_centers_residuals_at_zero() {
        let img = NdArray::from_fn(&[32, 32], |ix| 10.0 + 0.5 * ix[0] as f64);
        let sub = subtract_background(
            &img,
            &BackgroundParams {
                cell_size: 8,
                ..Default::default()
            },
        );
        assert!(sub.mean().abs() < 0.5);
    }

    #[test]
    fn parallel_background_is_bit_identical() {
        let img = NdArray::from_fn(&[33, 29], |ix| {
            40.0 + 0.3 * ix[0] as f64 - 0.2 * ix[1] as f64 + ((ix[0] * 29 + ix[1]) % 7) as f64
        });
        let params = BackgroundParams {
            cell_size: 8,
            ..Default::default()
        };
        let serial = estimate_background_par(&img, &params, Parallelism::Serial);
        for workers in [1usize, 2, 4, 8] {
            let par = estimate_background_par(&img, &params, Parallelism::threads(workers));
            assert_eq!(serial, par, "workers={workers}");
        }
    }

    #[test]
    fn compressed_image_reproduces_dense_background_bitwise() {
        // Mostly-constant "flat-field" plane with a few star islands:
        // compresses to Rle, so the run-level mesh path engages.
        let mut img = NdArray::<f64>::full(&[33, 29], 120.0);
        for &(r, c) in &[(3usize, 4usize), (3, 5), (17, 20), (30, 2)] {
            img[&[r, c][..]] = 50_000.0 + (r * 29 + c) as f64;
        }
        let packed = img.compressed();
        assert_eq!(packed.repr(), marray::ChunkRepr::Rle, "plane must pack");
        let params = BackgroundParams {
            cell_size: 8,
            ..Default::default()
        };
        let base = estimate_background(&img, &params);
        for workers in [1usize, 2, 4, 8] {
            let fast = estimate_background_par(&packed, &params, Parallelism::threads(workers));
            assert!(
                base.data()
                    .iter()
                    .zip(fast.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "compressed background differs at workers={workers}"
            );
        }
    }

    #[test]
    fn tiny_image_single_cell() {
        let img = NdArray::<f64>::full(&[4, 4], 9.0);
        let bg = estimate_background(
            &img,
            &BackgroundParams {
                cell_size: 16,
                ..Default::default()
            },
        );
        for &v in bg.data() {
            assert_eq!(v, 9.0);
        }
    }
}
