//! Step 4A — source detection.
//!
//! Detects sources in a coadd: estimate and subtract the residual
//! background, threshold at `n_sigma` above the per-pixel noise, label the
//! 8-connected pixel clusters, and measure each cluster's centroid, total
//! flux and peak.

use crate::astro::background::{estimate_background_par, BackgroundParams};
use crate::astro::coadd::Coadd;
use marray::NdArray;
use parexec::{par_chunks_mut, par_map_slabs, Parallelism};

/// Detection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectParams {
    /// Detection threshold in units of the per-pixel noise sigma.
    pub n_sigma: f64,
    /// Minimum cluster size in pixels.
    pub min_pixels: usize,
    /// Background mesh used for residual background removal.
    pub background: BackgroundParams,
}

impl Default for DetectParams {
    fn default() -> Self {
        DetectParams {
            n_sigma: 5.0,
            min_pixels: 3,
            background: BackgroundParams::default(),
        }
    }
}

/// One detected source.
#[derive(Debug, Clone, PartialEq)]
pub struct Source {
    /// Flux-weighted centroid in global sky coordinates (x, y).
    pub centroid: (f64, f64),
    /// Total background-subtracted flux in the cluster.
    pub flux: f64,
    /// Peak pixel value.
    pub peak: f64,
    /// Cluster size in pixels.
    pub npix: usize,
}

/// Union-find over pixel labels.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: vec![0] } // label 0 = background sentinel
    }
    fn make(&mut self) -> u32 {
        // scilint: allow(N002, label count is bounded by the pixel count of one patch and cannot reach u32::MAX)
        let l = self.parent.len() as u32;
        self.parent.push(l);
        l
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra.max(rb) as usize] = ra.min(rb);
        }
    }
}

/// Detect sources in a coadd. Centroids are reported in global sky
/// coordinates using the coadd's bbox origin.
pub fn detect_sources(coadd: &Coadd, params: &DetectParams) -> Vec<Source> {
    detect_sources_par(coadd, params, Parallelism::Serial)
}

/// [`detect_sources`] with explicit intra-node parallelism: the background
/// mesh, the residual subtraction, and the per-pixel threshold map are all
/// computed row-parallel across `par.workers()` threads; the connected-
/// component labeling stays serial (its scan order is part of the label
/// semantics). Output is bit-identical at every worker count.
pub fn detect_sources_par(coadd: &Coadd, params: &DetectParams, par: Parallelism) -> Vec<Source> {
    let (rows, cols) = (coadd.flux.dims()[0], coadd.flux.dims()[1]);
    let bg = estimate_background_par(&coadd.flux, &params.background, par);
    let mut sub: NdArray<f64> = coadd.flux.clone();
    if cols > 0 {
        par_chunks_mut(sub.data_mut(), cols, par, |r, row| {
            for (c, v) in row.iter_mut().enumerate() {
                *v -= bg.data()[r * cols + c];
            }
        });
    }

    // Per-pixel significance threshold from the coadd variance.
    let row_ids: Vec<usize> = (0..rows).collect();
    let above: Vec<bool> = par_map_slabs(&row_ids, par, |_, &r| {
        let mut row = vec![false; cols];
        for (c, flag) in row.iter_mut().enumerate() {
            let p = r * cols + c;
            let sigma = coadd.variance.data()[p].max(1e-12).sqrt();
            *flag = sub.data()[p] > params.n_sigma * sigma;
        }
        row
    })
    .into_iter()
    .flatten()
    .collect();

    // Two-pass 8-connected labeling.
    let mut labels = vec![0u32; rows * cols];
    let mut uf = UnionFind::new();
    for r in 0..rows {
        for c in 0..cols {
            let p = r * cols + c;
            if !above[p] {
                continue;
            }
            // Previously-visited neighbors: W, NW, N, NE.
            let mut neighbor_labels: [u32; 4] = [0; 4];
            let mut count = 0;
            if c > 0 && labels[p - 1] != 0 {
                neighbor_labels[count] = labels[p - 1];
                count += 1;
            }
            if r > 0 {
                let base = p - cols;
                if c > 0 && labels[base - 1] != 0 {
                    neighbor_labels[count] = labels[base - 1];
                    count += 1;
                }
                if labels[base] != 0 {
                    neighbor_labels[count] = labels[base];
                    count += 1;
                }
                if c + 1 < cols && labels[base + 1] != 0 {
                    neighbor_labels[count] = labels[base + 1];
                    count += 1;
                }
            }
            if count == 0 {
                labels[p] = uf.make();
            } else {
                let mut min = neighbor_labels[0];
                for &l in &neighbor_labels[1..count] {
                    if l < min {
                        min = l;
                    }
                }
                labels[p] = min;
                for &l in &neighbor_labels[..count] {
                    uf.union(min, l);
                }
            }
        }
    }

    // Second pass: resolve labels, accumulate measurements. BTreeMap keeps
    // accumulation order label-sorted, independent of any hash seed.
    use std::collections::BTreeMap;
    #[derive(Default)]
    struct Acc {
        flux: f64,
        peak: f64,
        wx: f64,
        wy: f64,
        npix: usize,
    }
    let mut clusters: BTreeMap<u32, Acc> = BTreeMap::new();
    for r in 0..rows {
        for c in 0..cols {
            let p = r * cols + c;
            if labels[p] == 0 {
                continue;
            }
            let root = uf.find(labels[p]);
            let v = sub.data()[p].max(0.0);
            let acc = clusters.entry(root).or_default();
            acc.flux += v;
            acc.peak = acc.peak.max(sub.data()[p]);
            acc.wx += v * c as f64;
            acc.wy += v * r as f64;
            acc.npix += 1;
        }
    }

    let mut sources: Vec<Source> = clusters
        .into_values()
        .filter(|a| a.npix >= params.min_pixels && a.flux > 0.0)
        .map(|a| Source {
            centroid: (
                coadd.bbox.x0 as f64 + a.wx / a.flux,
                coadd.bbox.y0 as f64 + a.wy / a.flux,
            ),
            flux: a.flux,
            peak: a.peak,
            npix: a.npix,
        })
        .collect();
    // Deterministic order: brightest first, ties by position. total_cmp is
    // a total order, so NaN flux cannot panic the sort.
    sources.sort_by(|a, b| {
        b.flux
            .total_cmp(&a.flux)
            .then(a.centroid.0.total_cmp(&b.centroid.0))
    });
    sources
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astro::geometry::SkyBox;

    fn coadd_with_sources(positions: &[(usize, usize)], amp: f64) -> Coadd {
        let flux = NdArray::from_fn(&[48, 48], |ix| {
            let mut v = 100.0; // residual background
            for &(r, c) in positions {
                let dr = ix[0] as f64 - r as f64;
                let dc = ix[1] as f64 - c as f64;
                v += amp * (-(dr * dr + dc * dc) / 4.0).exp();
            }
            v
        });
        Coadd {
            bbox: SkyBox {
                x0: 1000,
                y0: 2000,
                width: 48,
                height: 48,
            },
            variance: NdArray::full(&[48, 48], 1.0),
            depth: NdArray::full(&[48, 48], 10),
            flux,
        }
    }

    #[test]
    fn finds_isolated_sources_at_positions() {
        let coadd = coadd_with_sources(&[(12, 12), (34, 30)], 500.0);
        let sources = detect_sources(&coadd, &DetectParams::default());
        assert_eq!(sources.len(), 2, "expected 2 sources, got {sources:?}");
        // Centroids are in global coordinates near the injected spots.
        for s in &sources {
            let local = (s.centroid.0 - 1000.0, s.centroid.1 - 2000.0);
            let near_a = (local.0 - 12.0).abs() < 1.5 && (local.1 - 12.0).abs() < 1.5;
            let near_b = (local.0 - 30.0).abs() < 1.5 && (local.1 - 34.0).abs() < 1.5;
            assert!(
                near_a || near_b,
                "centroid {local:?} matches no injected source"
            );
        }
    }

    #[test]
    fn empty_sky_detects_nothing() {
        let coadd = coadd_with_sources(&[], 0.0);
        assert!(detect_sources(&coadd, &DetectParams::default()).is_empty());
    }

    #[test]
    fn touching_pixels_form_one_source() {
        let coadd = coadd_with_sources(&[(20, 20)], 800.0);
        let sources = detect_sources(&coadd, &DetectParams::default());
        assert_eq!(sources.len(), 1, "PSF blob fragmented: {sources:?}");
        assert!(sources[0].npix >= 3);
    }

    #[test]
    fn min_pixels_filters_specks() {
        let mut coadd = coadd_with_sources(&[], 0.0);
        coadd.flux[&[5, 5][..]] = 10_000.0; // 1-pixel spike
        let sources = detect_sources(
            &coadd,
            &DetectParams {
                min_pixels: 3,
                ..Default::default()
            },
        );
        assert!(sources.is_empty());
        let loose = detect_sources(
            &coadd,
            &DetectParams {
                min_pixels: 1,
                ..Default::default()
            },
        );
        assert_eq!(loose.len(), 1);
    }

    #[test]
    fn parallel_detection_is_bit_identical() {
        let coadd = coadd_with_sources(&[(12, 12), (34, 30), (8, 40)], 600.0);
        let params = DetectParams::default();
        let serial = detect_sources_par(&coadd, &params, Parallelism::Serial);
        for workers in [1usize, 2, 4, 8] {
            let par = detect_sources_par(&coadd, &params, Parallelism::threads(workers));
            assert_eq!(serial, par, "workers={workers}");
        }
    }

    #[test]
    fn brighter_source_sorts_first() {
        let mut coadd = coadd_with_sources(&[(10, 10)], 300.0);
        let bright = coadd_with_sources(&[(35, 35)], 900.0);
        // Merge: add the bright source into the same image.
        coadd.flux = coadd
            .flux
            .zip_with(&bright.flux, |a, b| a + b - 100.0)
            .unwrap();
        let sources = detect_sources(&coadd, &DetectParams::default());
        assert_eq!(sources.len(), 2);
        assert!(sources[0].flux > sources[1].flux);
    }
}
