//! Step 1A — exposure pre-processing (calibration).
//!
//! Combines the pieces of the paper's pre-processing step: "background
//! estimation and subtraction, detection and repair of cosmetic defects and
//! cosmic rays, and aperture corrections for the photometric calibration".
//! The output is a *calibrated exposure*.

use crate::astro::background::{estimate_background, BackgroundParams};
use crate::astro::cosmic::{detect_cosmic_rays, repair, CosmicParams, MASK_CR};
use crate::astro::geometry::Exposure;

/// Calibration parameters for Step 1A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibParams {
    /// Background mesh settings.
    pub background: BackgroundParams,
    /// Cosmic-ray detector settings.
    pub cosmic: CosmicParams,
    /// Aperture-correction factor applied to fluxes (photometric scale to a
    /// common zero point).
    pub aperture_scale: f64,
}

impl Default for CalibParams {
    fn default() -> Self {
        CalibParams {
            background: BackgroundParams::default(),
            cosmic: CosmicParams::default(),
            aperture_scale: 1.0,
        }
    }
}

/// Calibrate one exposure: subtract background, repair cosmic rays (setting
/// the CR mask bit), and apply the aperture correction to flux and variance.
// scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
pub fn calibrate_exposure(exposure: &Exposure, params: &CalibParams) -> Exposure {
    let bg = estimate_background(&exposure.flux, &params.background);
    let mut flux = exposure
        .flux
        .zip_with(&bg, |v, b| v - b)
        .expect("background matches exposure shape");

    let cr = detect_cosmic_rays(&flux, &exposure.variance, &params.cosmic);
    repair(&mut flux, &cr);

    let s = params.aperture_scale;
    flux.map_inplace(|v| v * s);
    let variance = exposure.variance.map(|v| v * s * s);
    let mask = exposure
        .mask
        .zip_with(&cr, |m, hit| if hit != 0 { m | MASK_CR } else { m })
        .expect("same shape");

    Exposure {
        visit: exposure.visit,
        sensor: exposure.sensor,
        bbox: exposure.bbox,
        flux,
        variance,
        mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astro::geometry::SkyBox;
    use marray::NdArray;

    fn raw_exposure() -> Exposure {
        // Flat sky at 200 + one star + one cosmic ray.
        let mut flux = NdArray::from_fn(&[32, 32], |ix| {
            let dr = ix[0] as f64 - 10.0;
            let dc = ix[1] as f64 - 10.0;
            200.0 + 800.0 * (-(dr * dr + dc * dc) / 8.0).exp()
        });
        flux[&[25, 25][..]] = 30_000.0; // cosmic ray
        Exposure {
            visit: 3,
            sensor: 1,
            bbox: SkyBox {
                x0: 0,
                y0: 0,
                width: 32,
                height: 32,
            },
            variance: NdArray::full(&[32, 32], 225.0),
            mask: NdArray::zeros(&[32, 32]),
            flux,
        }
    }

    #[test]
    fn background_removed_and_star_kept() {
        let cal = calibrate_exposure(&raw_exposure(), &CalibParams::default());
        // Far from the star the calibrated flux is ~0.
        assert!(cal.flux[&[30, 3][..]].abs() < 20.0);
        // The star's peak survives, minus background.
        assert!(cal.flux[&[10, 10][..]] > 500.0);
    }

    #[test]
    fn cosmic_ray_repaired_and_masked() {
        let cal = calibrate_exposure(&raw_exposure(), &CalibParams::default());
        assert!(cal.flux[&[25, 25][..]].abs() < 50.0, "CR pixel repaired");
        assert_eq!(cal.mask[&[25, 25][..]] & MASK_CR, MASK_CR, "CR bit set");
        assert_eq!(cal.mask[&[10, 10][..]] & MASK_CR, 0, "star not CR-masked");
    }

    #[test]
    fn aperture_scale_applies_to_flux_and_variance() {
        let params = CalibParams {
            aperture_scale: 2.0,
            ..Default::default()
        };
        let cal = calibrate_exposure(&raw_exposure(), &params);
        let base = calibrate_exposure(&raw_exposure(), &CalibParams::default());
        let p = [10usize, 10usize];
        assert!((cal.flux[&p[..]] - 2.0 * base.flux[&p[..]]).abs() < 1e-9);
        assert!((cal.variance[&p[..]] - 4.0 * base.variance[&p[..]]).abs() < 1e-9);
    }

    #[test]
    fn metadata_preserved() {
        let cal = calibrate_exposure(&raw_exposure(), &CalibParams::default());
        assert_eq!(cal.visit, 3);
        assert_eq!(cal.sensor, 1);
        assert_eq!(cal.bbox.width, 32);
    }
}
