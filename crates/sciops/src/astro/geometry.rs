//! Sky geometry: exposures, patches, and the exposure↔patch flatmap.
//!
//! The survey observes a region of sky repeatedly ("visits"); each visit is
//! divided into sensor images. The analysis partitions the sky into
//! rectangular **patches**; Step 2A replicates each exposure once per patch
//! it overlaps (1–6 patches per exposure in the paper) and regroups by
//! patch. Sky coordinates here are a flat pixel grid — adequate for the
//! small survey footprints the use case covers.

use marray::NdArray;

/// An axis-aligned rectangle on the (flat) sky, in global pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SkyBox {
    /// Inclusive minimum x (column) coordinate.
    pub x0: i64,
    /// Inclusive minimum y (row) coordinate.
    pub y0: i64,
    /// Width in pixels.
    pub width: u64,
    /// Height in pixels.
    pub height: u64,
}

impl SkyBox {
    /// Exclusive maximum x.
    pub fn x1(&self) -> i64 {
        self.x0 + self.width as i64
    }

    /// Exclusive maximum y.
    pub fn y1(&self) -> i64 {
        self.y0 + self.height as i64
    }

    /// Intersection with another box, if non-empty.
    pub fn intersect(&self, other: &SkyBox) -> Option<SkyBox> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1().min(other.x1());
        let y1 = self.y1().min(other.y1());
        if x0 < x1 && y0 < y1 {
            Some(SkyBox {
                x0,
                y0,
                width: (x1 - x0) as u64,
                height: (y1 - y0) as u64,
            })
        } else {
            None
        }
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        self.width * self.height
    }
}

/// One sensor exposure: flux/variance/mask planes plus its sky placement.
#[derive(Debug, Clone, PartialEq)]
pub struct Exposure {
    /// Which visit (epoch) this exposure belongs to.
    pub visit: u32,
    /// Sensor index within the visit.
    pub sensor: u32,
    /// Where the exposure sits on the sky.
    pub bbox: SkyBox,
    /// Flux per pixel (rows = y, columns = x).
    pub flux: NdArray<f64>,
    /// Per-pixel variance.
    pub variance: NdArray<f64>,
    /// Per-pixel mask bits (0 = good).
    pub mask: NdArray<u8>,
}

impl Exposure {
    /// Dimensions as (rows, cols) = (height, width).
    pub fn dims(&self) -> (usize, usize) {
        (self.flux.dims()[0], self.flux.dims()[1])
    }

    /// Total serialized payload size of the three planes in bytes
    /// (f64 flux + f64 variance + u8 mask).
    pub fn nbytes(&self) -> usize {
        self.flux.nbytes() + self.variance.nbytes() + self.mask.nbytes()
    }

    /// Bytes the three planes' stored representations occupy — what the
    /// exposure actually costs to carry across an engine boundary when
    /// some planes are compressed (see `marray::codec`).
    pub fn stored_nbytes(&self) -> usize {
        self.flux.stored_nbytes() + self.variance.stored_nbytes() + self.mask.stored_nbytes()
    }

    /// Cut out the part of this exposure that falls inside `region`,
    /// producing a new exposure whose bbox is the intersection.
    /// Returns `None` when there is no overlap.
    // scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
    pub fn crop_to(&self, region: &SkyBox) -> Option<Exposure> {
        let inter = self.bbox.intersect(region)?;
        let row0 = (inter.y0 - self.bbox.y0) as usize;
        let col0 = (inter.x0 - self.bbox.x0) as usize;
        let dims = [inter.height as usize, inter.width as usize];
        let starts = [row0, col0];
        Some(Exposure {
            visit: self.visit,
            sensor: self.sensor,
            bbox: inter,
            flux: self
                .flux
                .subarray(&starts, &dims)
                .expect("intersection inside exposure"),
            variance: self
                .variance
                .subarray(&starts, &dims)
                .expect("intersection inside exposure"),
            mask: self
                .mask
                .subarray(&starts, &dims)
                .expect("intersection inside exposure"),
        })
    }
}

/// Identifier of a sky patch: its (row, column) in the patch grid.
pub type PatchId = (u32, u32);

/// A regular grid of rectangular sky patches covering a survey footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchGrid {
    /// The full footprint covered by the grid.
    pub footprint: SkyBox,
    /// Patch width and height in pixels.
    pub patch_size: (u64, u64),
}

impl PatchGrid {
    /// Grid over `footprint` with patches of `patch_size` (w, h).
    pub fn new(footprint: SkyBox, patch_size: (u64, u64)) -> Self {
        assert!(patch_size.0 > 0 && patch_size.1 > 0);
        PatchGrid {
            footprint,
            patch_size,
        }
    }

    /// Number of patch columns and rows.
    pub fn grid_dims(&self) -> (u32, u32) {
        (
            // scilint: allow(N002, patch-grid columns are footprint/patch_size and far below u32::MAX)
            self.footprint.width.div_ceil(self.patch_size.0) as u32,
            // scilint: allow(N002, patch-grid rows are footprint/patch_size and far below u32::MAX)
            self.footprint.height.div_ceil(self.patch_size.1) as u32,
        )
    }

    /// The sky region of patch `(row, col)` (edge patches are clipped to
    /// the footprint).
    pub fn patch_box(&self, id: PatchId) -> SkyBox {
        let (row, col) = id;
        let x0 = self.footprint.x0 + col as i64 * self.patch_size.0 as i64;
        let y0 = self.footprint.y0 + row as i64 * self.patch_size.1 as i64;
        let width = self
            .patch_size
            .0
            .min((self.footprint.x1() - x0).max(0) as u64);
        let height = self
            .patch_size
            .1
            .min((self.footprint.y1() - y0).max(0) as u64);
        SkyBox {
            x0,
            y0,
            width,
            height,
        }
    }

    /// All patches overlapping `bbox` — the Step 2A flatmap fan-out.
    pub fn overlapping_patches(&self, bbox: &SkyBox) -> Vec<PatchId> {
        let clipped = match bbox.intersect(&self.footprint) {
            Some(c) => c,
            None => return Vec::new(),
        };
        // scilint: allow(N002, clipped to the footprint so the patch column index fits u32)
        let col0 = ((clipped.x0 - self.footprint.x0) / self.patch_size.0 as i64) as u32;
        // scilint: allow(N002, clipped to the footprint so the patch column index fits u32)
        let col1 = ((clipped.x1() - 1 - self.footprint.x0) / self.patch_size.0 as i64) as u32;
        // scilint: allow(N002, clipped to the footprint so the patch row index fits u32)
        let row0 = ((clipped.y0 - self.footprint.y0) / self.patch_size.1 as i64) as u32;
        // scilint: allow(N002, clipped to the footprint so the patch row index fits u32)
        let row1 = ((clipped.y1() - 1 - self.footprint.y0) / self.patch_size.1 as i64) as u32;
        let mut out = Vec::new();
        for row in row0..=row1 {
            for col in col0..=col1 {
                out.push((row, col));
            }
        }
        out
    }

    /// Step 2A for one exposure: the (patch, cropped exposure) pairs.
    pub fn map_to_patches(&self, exposure: &Exposure) -> Vec<(PatchId, Exposure)> {
        self.overlapping_patches(&exposure.bbox)
            .into_iter()
            .filter_map(|id| {
                exposure
                    .crop_to(&self.patch_box(id))
                    .map(|cropped| (id, cropped))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exposure_at(x0: i64, y0: i64, w: u64, h: u64) -> Exposure {
        Exposure {
            visit: 0,
            sensor: 0,
            bbox: SkyBox {
                x0,
                y0,
                width: w,
                height: h,
            },
            flux: NdArray::from_fn(&[h as usize, w as usize], |ix| {
                (ix[0] * w as usize + ix[1]) as f64
            }),
            variance: NdArray::full(&[h as usize, w as usize], 1.0),
            mask: NdArray::zeros(&[h as usize, w as usize]),
        }
    }

    #[test]
    fn skybox_intersection() {
        let a = SkyBox {
            x0: 0,
            y0: 0,
            width: 10,
            height: 10,
        };
        let b = SkyBox {
            x0: 5,
            y0: 5,
            width: 10,
            height: 10,
        };
        let i = a.intersect(&b).unwrap();
        assert_eq!(
            i,
            SkyBox {
                x0: 5,
                y0: 5,
                width: 5,
                height: 5
            }
        );
        let c = SkyBox {
            x0: 20,
            y0: 0,
            width: 5,
            height: 5,
        };
        assert!(a.intersect(&c).is_none());
        // Touching edges do not intersect.
        let d = SkyBox {
            x0: 10,
            y0: 0,
            width: 5,
            height: 5,
        };
        assert!(a.intersect(&d).is_none());
    }

    #[test]
    fn crop_preserves_pixel_values() {
        let e = exposure_at(100, 200, 10, 8);
        let region = SkyBox {
            x0: 103,
            y0: 202,
            width: 4,
            height: 3,
        };
        let c = e.crop_to(&region).unwrap();
        assert_eq!(c.bbox, region);
        // Pixel at global (x=103, y=202) is local (row 2, col 3) in e.
        assert_eq!(c.flux[&[0, 0][..]], e.flux[&[2, 3][..]]);
        assert_eq!(c.flux[&[2, 3][..]], e.flux[&[4, 6][..]]);
    }

    #[test]
    fn patch_grid_dims_and_clipping() {
        let grid = PatchGrid::new(
            SkyBox {
                x0: 0,
                y0: 0,
                width: 25,
                height: 17,
            },
            (10, 10),
        );
        assert_eq!(grid.grid_dims(), (3, 2));
        assert_eq!(grid.patch_box((0, 0)).area(), 100);
        assert_eq!(
            grid.patch_box((1, 2)),
            SkyBox {
                x0: 20,
                y0: 10,
                width: 5,
                height: 7
            }
        );
    }

    #[test]
    fn fanout_is_between_1_and_6() {
        // Paper: each exposure maps to 1..=6 patches. A sensor smaller than
        // a patch straddling a corner touches 4; an elongated one up to 6.
        let grid = PatchGrid::new(
            SkyBox {
                x0: 0,
                y0: 0,
                width: 300,
                height: 300,
            },
            (100, 100),
        );
        let aligned = SkyBox {
            x0: 0,
            y0: 0,
            width: 100,
            height: 100,
        };
        assert_eq!(grid.overlapping_patches(&aligned).len(), 1);
        let corner = SkyBox {
            x0: 50,
            y0: 50,
            width: 100,
            height: 100,
        };
        assert_eq!(grid.overlapping_patches(&corner).len(), 4);
        let elongated = SkyBox {
            x0: 50,
            y0: 50,
            width: 200,
            height: 100,
        };
        assert_eq!(grid.overlapping_patches(&elongated).len(), 6);
    }

    #[test]
    fn map_to_patches_covers_every_pixel_once() {
        let grid = PatchGrid::new(
            SkyBox {
                x0: 0,
                y0: 0,
                width: 30,
                height: 30,
            },
            (10, 10),
        );
        let e = exposure_at(5, 5, 20, 20);
        let parts = grid.map_to_patches(&e);
        let total: u64 = parts.iter().map(|(_, p)| p.bbox.area()).sum();
        assert_eq!(total, e.bbox.area(), "patch pieces partition the exposure");
        assert_eq!(parts.len(), 9);
    }

    #[test]
    fn out_of_footprint_exposure_maps_nowhere() {
        let grid = PatchGrid::new(
            SkyBox {
                x0: 0,
                y0: 0,
                width: 30,
                height: 30,
            },
            (10, 10),
        );
        let e = exposure_at(100, 100, 10, 10);
        assert!(grid.map_to_patches(&e).is_empty());
    }
}
