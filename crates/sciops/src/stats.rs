//! Order statistics and robust estimators shared by both pipelines.

/// Median of a slice (average of middle two for even lengths).
/// Returns `NaN` for an empty slice.
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mid = values.len() / 2;
    values.sort_unstable_by(f64::total_cmp);
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

/// Mean and population standard deviation in one pass.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Iteratively sigma-clipped mean: repeatedly discard samples more than
/// `kappa` standard deviations from the current mean, `iterations` times.
///
/// This is the outlier-rejection rule of the co-addition step (Step 3A):
/// "computing the mean flux value for each pixel and setting any pixel that
/// is three standard deviations away from the mean to null", two iterations.
pub fn sigma_clipped_mean(values: &[f64], kappa: f64, iterations: usize) -> f64 {
    let mut kept: Vec<f64> = values.to_vec();
    for _ in 0..iterations {
        if kept.len() <= 1 {
            break;
        }
        let (mean, std) = mean_std(&kept);
        // scilint: allow(N001, exact-zero std is mean_std's all-equal-samples sentinel so clipping can never remove anything)
        if std == 0.0 {
            break;
        }
        let next: Vec<f64> = kept
            .iter()
            .copied()
            .filter(|v| (v - mean).abs() <= kappa * std)
            .collect();
        if next.is_empty() || next.len() == kept.len() {
            break;
        }
        kept = next;
    }
    mean_std(&kept).0
}

/// Sigma-clipped median: like [`sigma_clipped_mean`] but returns the median
/// of the surviving samples (used by background mesh estimation).
pub fn sigma_clipped_median(values: &[f64], kappa: f64, iterations: usize) -> f64 {
    let mut kept: Vec<f64> = values.to_vec();
    for _ in 0..iterations {
        if kept.len() <= 1 {
            break;
        }
        let (mean, std) = mean_std(&kept);
        // scilint: allow(N001, exact-zero std is mean_std's all-equal-samples sentinel so clipping can never remove anything)
        if std == 0.0 {
            break;
        }
        let next: Vec<f64> = kept
            .iter()
            .copied()
            .filter(|v| (v - mean).abs() <= kappa * std)
            .collect();
        if next.is_empty() || next.len() == kept.len() {
            break;
        }
        kept = next;
    }
    median(&mut kept)
}

/// Fixed-width histogram over `[lo, hi]` with `bins` buckets.
/// Values outside the range clamp into the edge buckets.
pub fn histogram(values: impl Iterator<Item = f64>, lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for v in values {
        let bin = if width <= 0.0 {
            0
        } else {
            (((v - lo) / width) as isize).clamp(0, bins as isize - 1) as usize
        };
        counts[bin] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m, 5.0);
        assert_eq!(s, 2.0);
    }

    #[test]
    fn sigma_clip_removes_outlier() {
        // 11 inliers at ~10 and one wild outlier.
        let mut v = vec![10.0; 11];
        v.push(1000.0);
        let clipped = sigma_clipped_mean(&v, 3.0, 2);
        assert!((clipped - 10.0).abs() < 1e-9);
        // Plain mean would be dragged far off.
        assert!((mean_std(&v).0 - 10.0).abs() > 50.0);
    }

    #[test]
    fn sigma_clip_no_outliers_equals_mean() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(sigma_clipped_mean(&v, 3.0, 2), 2.5);
    }

    #[test]
    fn sigma_clipped_median_robust() {
        let mut v = vec![5.0, 5.5, 4.5, 5.0, 5.2, 4.8];
        v.push(500.0);
        let m = sigma_clipped_median(&v, 3.0, 2);
        assert!((m - 5.0).abs() < 0.3);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        // 0.5 sits exactly on the bin edge and goes to the upper bin.
        let h = histogram([0.1, 0.9, 0.5, -5.0, 5.0].into_iter(), 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 3]);
        assert_eq!(h.iter().sum::<usize>(), 5);
    }
}
