//! Small dense linear algebra for the diffusion-tensor fit.
//!
//! The DTM fit needs two primitives: solving the (7×7) weighted-least-squares
//! normal equations, and the eigenvalues of a symmetric 3×3 tensor. Both are
//! implemented directly — no external BLAS.

/// Solve `A x = b` for a small dense system via Gaussian elimination with
/// partial pivoting. `a` is row-major `n×n`; `b` has length `n`.
/// Returns `None` if the system is (numerically) singular.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = m[col * n + col].abs();
        for row in col + 1..n {
            let v = m[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                m.swap(col * n + k, pivot * n + k);
            }
            rhs.swap(col, pivot);
        }
        // Eliminate below.
        let diag = m[col * n + col];
        for row in col + 1..n {
            let factor = m[row * n + col] / diag;
            // scilint: allow(N001, exact-zero factor skips a no-op elimination row - any nonzero value takes the full path)
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = rhs[row];
        for k in row + 1..n {
            sum -= m[row * n + k] * x[k];
        }
        x[row] = sum / m[row * n + row];
    }
    Some(x)
}

/// Eigenvalues of a symmetric 3×3 matrix given as
/// `[dxx, dyy, dzz, dxy, dxz, dyz]`, returned in descending order.
///
/// Uses the analytic trigonometric solution for symmetric 3×3 matrices
/// (Smith 1961), which is what matters for the per-voxel FA computation:
/// millions of voxels, no iteration.
pub fn sym3_eigenvalues(d: &[f64; 6]) -> [f64; 3] {
    let (dxx, dyy, dzz, dxy, dxz, dyz) = (d[0], d[1], d[2], d[3], d[4], d[5]);
    let p1 = dxy * dxy + dxz * dxz + dyz * dyz;
    // scilint: allow(N001, exact-zero off-diagonal energy detects the already-diagonal case the analytic formula requires)
    if p1 == 0.0 {
        // Already diagonal.
        let mut eig = [dxx, dyy, dzz];
        eig.sort_by(|a, b| b.partial_cmp(a).expect("finite eigenvalues"));
        return eig;
    }
    let q = (dxx + dyy + dzz) / 3.0;
    let p2 = (dxx - q).powi(2) + (dyy - q).powi(2) + (dzz - q).powi(2) + 2.0 * p1;
    let p = (p2 / 6.0).sqrt();
    // B = (A - q I) / p; r = det(B) / 2 in [-1, 1].
    let b = [
        (dxx - q) / p,
        (dyy - q) / p,
        (dzz - q) / p,
        dxy / p,
        dxz / p,
        dyz / p,
    ];
    let det_b = b[0] * (b[1] * b[2] - b[5] * b[5]) - b[3] * (b[3] * b[2] - b[5] * b[4])
        + b[4] * (b[3] * b[5] - b[1] * b[4]);
    let r = (det_b / 2.0).clamp(-1.0, 1.0);
    let phi = r.acos() / 3.0;
    let e1 = q + 2.0 * p * phi.cos();
    let e3 = q + 2.0 * p * (phi + 2.0 * std::f64::consts::PI / 3.0).cos();
    let e2 = 3.0 * q - e1 - e3;
    let mut eig = [e1, e2, e3];
    eig.sort_by(|a, b| b.partial_cmp(a).expect("finite eigenvalues"));
    eig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let x = solve(&a, &[3.0, -1.0, 2.0], 3).unwrap();
        assert_eq!(x, vec![3.0, -1.0, 2.0]);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the first diagonal entry forces a row swap.
        let a = [0.0, 1.0, 1.0, 0.0];
        let x = solve(&a, &[2.0, 3.0], 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(solve(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn solve_random_system_residual() {
        // Fixed pseudo-random 5x5 system; check residual, not the exact x.
        let n = 5;
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for v in a.iter_mut() {
            *v = next();
        }
        for (i, v) in b.iter_mut().enumerate() {
            *v = next();
            a[i * n + i] += 3.0; // diagonally dominant => well conditioned
        }
        let x = solve(&a, &b, n).unwrap();
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn eigenvalues_diagonal() {
        let eig = sym3_eigenvalues(&[3.0, 1.0, 2.0, 0.0, 0.0, 0.0]);
        assert_eq!(eig, [3.0, 2.0, 1.0]);
    }

    #[test]
    fn eigenvalues_isotropic() {
        let eig = sym3_eigenvalues(&[2.0, 2.0, 2.0, 0.0, 0.0, 0.0]);
        assert_eq!(eig, [2.0, 2.0, 2.0]);
    }

    #[test]
    fn eigenvalues_known_offdiagonal() {
        // [[2,1,0],[1,2,0],[0,0,3]] has eigenvalues {3, 3, 1}. The acos
        // formulation loses a few digits near degenerate eigenvalues, so the
        // tolerance is 1e-6 rather than machine precision.
        let eig = sym3_eigenvalues(&[2.0, 2.0, 3.0, 1.0, 0.0, 0.0]);
        assert!((eig[0] - 3.0).abs() < 1e-6);
        assert!((eig[1] - 3.0).abs() < 1e-6);
        assert!((eig[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn eigenvalue_invariants_trace_and_det() {
        let d = [1.7, 0.9, 1.1, 0.3, -0.2, 0.15];
        let eig = sym3_eigenvalues(&d);
        let trace = d[0] + d[1] + d[2];
        assert!((eig.iter().sum::<f64>() - trace).abs() < 1e-9);
        let det = d[0] * (d[1] * d[2] - d[5] * d[5]) - d[3] * (d[3] * d[2] - d[5] * d[4])
            + d[4] * (d[3] * d[5] - d[1] * d[4]);
        assert!((eig[0] * eig[1] * eig[2] - det).abs() < 1e-9);
    }
}
