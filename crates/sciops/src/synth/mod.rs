//! Deterministic synthetic datasets standing in for the paper's gated data.
//!
//! * [`dmri`] — a diffusion-MRI phantom replacing the Human Connectome
//!   Project S900 subjects (1.25 mm, 145×145×174 voxels × 288 volumes).
//! * [`sky`] — a synthetic transient-survey sky replacing the HiTS visits
//!   (60 sensors of 4000×4072 pixels per visit, up to 24 visits).
//!
//! Both generators are seeded and fully deterministic, support the paper's
//! full geometry (`paper_scale`) and a laptop-friendly `test_scale`, and
//! produce data with the statistical structure the pipelines depend on
//! (brain/background intensity split, anisotropic fiber regions, sky
//! background + PSF sources + cosmic-ray outliers).

pub mod dmri;
pub mod sky;

/// A tiny deterministic normal sampler (Box–Muller over a SplitMix64-style
/// stream) so generators do not need a distributions dependency.
#[derive(Debug, Clone)]
pub struct Randn {
    state: u64,
    spare: Option<f64>,
}

impl Randn {
    /// Seeded sampler.
    pub fn new(seed: u64) -> Self {
        Randn {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
            spare: None,
        }
    }

    /// Next uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next uniform in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Next standard normal sample.
    pub fn normal(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller.
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Next integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        ((self.uniform() * n as f64) as usize).min(n.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Randn::new(42);
        let mut b = Randn::new(42);
        for _ in 0..100 {
            assert_eq!(a.normal(), b.normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Randn::new(1);
        let mut b = Randn::new(2);
        let same = (0..50).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Randn::new(7);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.normal()).collect();
        let (mean, std) = crate::stats::mean_std(&samples);
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((std - 1.0).abs() < 0.03, "std {std}");
    }

    #[test]
    fn uniform_in_bounds() {
        let mut rng = Randn::new(9);
        for _ in 0..1000 {
            let v = rng.uniform_in(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
            let i = rng.index(7);
            assert!(i < 7);
        }
    }
}
