//! Synthetic transient-survey sky generator.
//!
//! Substitutes for the HiTS survey data: a fixed population of point
//! sources on a flat sky, observed by repeated dithered visits. Each visit
//! is a grid of sensor exposures with smooth background, Gaussian-PSF
//! sources, photon + read noise, and per-visit cosmic rays — the outliers
//! the coadd's 3σ rejection must remove.

use crate::astro::geometry::{Exposure, PatchGrid, SkyBox};
use crate::synth::Randn;
use marray::NdArray;

/// Survey geometry and signal parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SkySpec {
    /// Sensor width in pixels (paper: 4000).
    pub sensor_width: usize,
    /// Sensor height in pixels (paper: 4072).
    pub sensor_height: usize,
    /// Sensors per visit, as a (columns, rows) grid (paper: 60 total).
    pub sensor_grid: (usize, usize),
    /// Number of visits.
    pub n_visits: usize,
    /// Injected point sources across the footprint.
    pub n_sources: usize,
    /// Sky background level (counts).
    pub background: f64,
    /// Linear background gradient per pixel.
    pub bg_gradient: f64,
    /// Source flux range (peak counts).
    pub flux_range: (f64, f64),
    /// PSF sigma in pixels.
    pub psf_sigma: f64,
    /// Read-noise sigma.
    pub read_noise: f64,
    /// Cosmic-ray hits per sensor per visit.
    pub cosmic_rays_per_sensor: usize,
    /// Maximum dither of a visit's pointing, in pixels.
    pub dither: i64,
    /// Sky patch edge length for the analysis (paper tuning: 1000 works well).
    pub patch_size: u64,
}

impl SkySpec {
    /// The paper's full HiTS-like geometry: 60 sensors of 4000×4072 px,
    /// ≈4.8 GB per visit (three f32-equivalent planes are generated as
    /// f64 flux/variance + u8 mask in memory).
    pub fn paper_scale() -> Self {
        SkySpec {
            sensor_width: 4000,
            sensor_height: 4072,
            sensor_grid: (6, 10),
            n_visits: 24,
            n_sources: 20_000,
            background: 300.0,
            bg_gradient: 0.002,
            flux_range: (500.0, 50_000.0),
            psf_sigma: 2.0,
            read_noise: 12.0,
            cosmic_rays_per_sensor: 40,
            dither: 30,
            patch_size: 1000,
        }
    }

    /// Small geometry for tests and examples.
    pub fn test_scale() -> Self {
        SkySpec {
            sensor_width: 48,
            sensor_height: 48,
            sensor_grid: (2, 2),
            n_visits: 6,
            n_sources: 10,
            background: 200.0,
            bg_gradient: 0.05,
            flux_range: (3000.0, 9000.0),
            psf_sigma: 1.2,
            read_noise: 8.0,
            cosmic_rays_per_sensor: 2,
            dither: 2,
            patch_size: 36,
        }
    }

    /// Sensors per visit.
    pub fn sensors_per_visit(&self) -> usize {
        self.sensor_grid.0 * self.sensor_grid.1
    }

    /// Footprint covered by the sensor grid at zero dither.
    pub fn footprint(&self) -> SkyBox {
        SkyBox {
            x0: 0,
            y0: 0,
            width: (self.sensor_grid.0 * self.sensor_width) as u64,
            height: (self.sensor_grid.1 * self.sensor_height) as u64,
        }
    }

    /// Approximate in-memory bytes of one visit (f64 flux + f64 variance +
    /// u8 mask per pixel).
    pub fn visit_nbytes(&self) -> usize {
        self.sensors_per_visit() * self.sensor_width * self.sensor_height * 17
    }
}

/// One injected source: global position and peak flux.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedSource {
    /// Global x (column) position.
    pub x: f64,
    /// Global y (row) position.
    pub y: f64,
    /// Peak counts above background.
    pub flux: f64,
}

/// A generated survey: the ground-truth sources and all visit exposures.
#[derive(Debug, Clone)]
pub struct SkySurvey {
    /// The generating spec.
    pub spec: SkySpec,
    /// Ground-truth injected sources (shared by all visits).
    pub sources: Vec<InjectedSource>,
    /// `visits[v]` holds visit v's sensor exposures.
    pub visits: Vec<Vec<Exposure>>,
}

impl SkySurvey {
    /// Generate a survey. Deterministic per (seed, spec).
    pub fn generate(seed: u64, spec: &SkySpec) -> SkySurvey {
        Self::generate_clustered(seed, spec, 0.0)
    }

    /// Generate a survey whose source field is spatially skewed: 80% of
    /// the sources are packed into a single patch-sized window in the
    /// footprint's corner (the paper's §5.3.3 "patches with many sources
    /// dominate a straggler worker" scenario), the rest stay uniform.
    /// Deterministic per (seed, spec).
    pub fn generate_skewed(seed: u64, spec: &SkySpec) -> SkySurvey {
        Self::generate_clustered(seed, spec, 0.8)
    }

    fn generate_clustered(seed: u64, spec: &SkySpec, dense_fraction: f64) -> SkySurvey {
        let mut rng = Randn::new(seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(13));
        let fp = spec.footprint();
        // The dense window: one patch-sized square in the corner (clamped
        // to the footprint), inset so PSF tails stay on-sensor.
        let win_w = (spec.patch_size as f64).min(fp.width as f64 - 8.0).max(1.0);
        let win_h = (spec.patch_size as f64)
            .min(fp.height as f64 - 8.0)
            .max(1.0);
        let n_dense = (spec.n_sources as f64 * dense_fraction).round() as usize;
        // Fixed sky: sources shared across visits, away from the borders.
        let sources: Vec<InjectedSource> = (0..spec.n_sources)
            .map(|i| {
                let (x, y) = if i < n_dense {
                    (
                        rng.uniform_in(4.0, 4.0 + win_w),
                        rng.uniform_in(4.0, 4.0 + win_h),
                    )
                } else {
                    (
                        rng.uniform_in(4.0, fp.width as f64 - 4.0),
                        rng.uniform_in(4.0, fp.height as f64 - 4.0),
                    )
                };
                InjectedSource {
                    x,
                    y,
                    flux: rng.uniform_in(spec.flux_range.0, spec.flux_range.1),
                }
            })
            .collect();

        let mut visits = Vec::with_capacity(spec.n_visits);
        // scilint: allow(N002, visit counts are at most a few thousand and fit u32 trivially)
        for visit in 0..spec.n_visits as u32 {
            let ddx = if spec.dither > 0 {
                rng.index((2 * spec.dither + 1) as usize) as i64 - spec.dither
            } else {
                0
            };
            let ddy = if spec.dither > 0 {
                rng.index((2 * spec.dither + 1) as usize) as i64 - spec.dither
            } else {
                0
            };
            let mut exposures = Vec::with_capacity(spec.sensors_per_visit());
            let mut sensor_id = 0u32;
            for grid_row in 0..spec.sensor_grid.1 {
                for grid_col in 0..spec.sensor_grid.0 {
                    let bbox = SkyBox {
                        x0: (grid_col * spec.sensor_width) as i64 + ddx,
                        y0: (grid_row * spec.sensor_height) as i64 + ddy,
                        width: spec.sensor_width as u64,
                        height: spec.sensor_height as u64,
                    };
                    exposures.push(Self::render_sensor(
                        spec, &sources, visit, sensor_id, bbox, &mut rng,
                    ));
                    sensor_id += 1;
                }
            }
            visits.push(exposures);
        }
        SkySurvey {
            spec: spec.clone(),
            sources,
            visits,
        }
    }

    // scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
    fn render_sensor(
        spec: &SkySpec,
        sources: &[InjectedSource],
        visit: u32,
        sensor: u32,
        bbox: SkyBox,
        rng: &mut Randn,
    ) -> Exposure {
        let rows = bbox.height as usize;
        let cols = bbox.width as usize;
        let mut flux = vec![0f64; rows * cols];
        let mut variance = vec![0f64; rows * cols];

        // Background + noise everywhere.
        for r in 0..rows {
            let gy = bbox.y0 as f64 + r as f64;
            for c in 0..cols {
                let gx = bbox.x0 as f64 + c as f64;
                let bg = spec.background + spec.bg_gradient * (gx + gy);
                let var = bg.max(0.0) + spec.read_noise * spec.read_noise;
                let off = r * cols + c;
                flux[off] = bg + var.sqrt() * rng.normal();
                variance[off] = var;
            }
        }

        // Sources: render each within ±4σ of its center.
        let reach = (4.0 * spec.psf_sigma).ceil() as i64;
        let two_sig2 = 2.0 * spec.psf_sigma * spec.psf_sigma;
        for s in sources {
            let lx = s.x - bbox.x0 as f64;
            let ly = s.y - bbox.y0 as f64;
            if lx < -(reach as f64)
                || ly < -(reach as f64)
                || lx > cols as f64 + reach as f64
                || ly > rows as f64 + reach as f64
            {
                continue;
            }
            let r0 = ((ly as i64) - reach).max(0) as usize;
            let r1 = (((ly as i64) + reach + 1).max(0) as usize).min(rows);
            let c0 = ((lx as i64) - reach).max(0) as usize;
            let c1 = (((lx as i64) + reach + 1).max(0) as usize).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    let dr = r as f64 - ly;
                    let dc = c as f64 - lx;
                    let v = s.flux * (-(dr * dr + dc * dc) / two_sig2).exp();
                    let off = r * cols + c;
                    flux[off] += v;
                    variance[off] += v.max(0.0); // shot noise of the source
                }
            }
        }

        // Per-visit cosmic rays: single hot pixels.
        for _ in 0..spec.cosmic_rays_per_sensor {
            let r = rng.index(rows);
            let c = rng.index(cols);
            flux[r * cols + c] += rng.uniform_in(20_000.0, 60_000.0);
        }

        Exposure {
            visit,
            sensor,
            bbox,
            flux: NdArray::from_vec(&[rows, cols], flux).expect("sized buffer"),
            variance: NdArray::from_vec(&[rows, cols], variance).expect("sized buffer"),
            mask: NdArray::zeros(&[rows, cols]),
        }
    }

    /// The analysis patch grid over the survey footprint (padded by the
    /// dither so every exposure falls inside).
    pub fn patch_grid(&self) -> PatchGrid {
        let fp = self.spec.footprint();
        let pad = self.spec.dither;
        let padded = SkyBox {
            x0: fp.x0 - pad,
            y0: fp.y0 - pad,
            width: fp.width + 2 * pad as u64,
            height: fp.height + 2 * pad as u64,
        };
        PatchGrid::new(padded, (self.spec.patch_size, self.spec.patch_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let spec = SkySpec::test_scale();
        let a = SkySurvey::generate(2, &spec);
        let b = SkySurvey::generate(2, &spec);
        assert_eq!(a.visits[0][0].flux, b.visits[0][0].flux);
        let c = SkySurvey::generate(3, &spec);
        assert_ne!(a.visits[0][0].flux, c.visits[0][0].flux);
    }

    #[test]
    fn structure_matches_spec() {
        let spec = SkySpec::test_scale();
        let s = SkySurvey::generate(1, &spec);
        assert_eq!(s.visits.len(), spec.n_visits);
        for v in &s.visits {
            assert_eq!(v.len(), spec.sensors_per_visit());
            for e in v {
                assert_eq!(e.dims(), (spec.sensor_height, spec.sensor_width));
            }
        }
        assert_eq!(s.sources.len(), spec.n_sources);
    }

    #[test]
    fn sources_visible_above_background() {
        let spec = SkySpec::test_scale();
        let s = SkySurvey::generate(4, &spec);
        let src = s.sources[0];
        // Find a visit-0 sensor containing the source.
        let e = s.visits[0]
            .iter()
            .find(|e| {
                src.x >= e.bbox.x0 as f64
                    && src.x < e.bbox.x1() as f64
                    && src.y >= e.bbox.y0 as f64
                    && src.y < e.bbox.y1() as f64
            })
            .expect("source inside footprint");
        let r = (src.y - e.bbox.y0 as f64).round() as usize;
        let c = (src.x - e.bbox.x0 as f64).round() as usize;
        let peak = e.flux[&[r.min(e.dims().0 - 1), c.min(e.dims().1 - 1)][..]];
        assert!(
            peak > spec.background + 0.3 * spec.flux_range.0,
            "peak {peak} not above background"
        );
    }

    #[test]
    fn visits_are_dithered_copies_of_same_sky() {
        let spec = SkySpec::test_scale();
        let s = SkySurvey::generate(6, &spec);
        // Same sensor in two visits: bboxes differ at most by dither.
        let a = &s.visits[0][0].bbox;
        let b = &s.visits[1][0].bbox;
        assert!((a.x0 - b.x0).abs() <= 2 * spec.dither);
        assert!((a.y0 - b.y0).abs() <= 2 * spec.dither);
        assert_eq!(a.width, b.width);
    }

    #[test]
    fn paper_scale_visit_size_near_4_8_gb() {
        let spec = SkySpec::paper_scale();
        // The paper counts ~80 MB/sensor × 60 sensors ≈ 4.8 GB per visit.
        // One 4000×4072 f32 plane is 65 MB; the nominal 80 MB includes
        // headers and the (smaller) variance/mask extensions. The pixel
        // geometry is what matters and must match: 60 × 4000 × 4072.
        assert_eq!(spec.sensors_per_visit(), 60);
        let pixels = spec.sensors_per_visit() * spec.sensor_width * spec.sensor_height;
        let one_plane_gb = (pixels * 4) as f64 / 1e9;
        assert!(
            (3.5..=4.8).contains(&one_plane_gb),
            "visit size {one_plane_gb} GB"
        );
    }

    #[test]
    fn skewed_generation_clusters_sources_and_stays_deterministic() {
        let spec = SkySpec::test_scale();
        let s = SkySurvey::generate_skewed(2, &spec);
        let t = SkySurvey::generate_skewed(2, &spec);
        assert_eq!(s.visits[0][0].flux, t.visits[0][0].flux, "deterministic");
        // 80% of sources must sit inside the corner patch window.
        let win = 4.0 + spec.patch_size as f64;
        let dense = s
            .sources
            .iter()
            .filter(|src| src.x <= win && src.y <= win)
            .count();
        assert!(
            dense >= (spec.n_sources * 4) / 5,
            "{dense}/{} sources in the dense window",
            spec.n_sources
        );
        // dense_fraction = 0.0 path reproduces the uniform generator.
        let uniform = SkySurvey::generate(2, &spec);
        let zero = SkySurvey::generate_clustered(2, &spec, 0.0);
        assert_eq!(uniform.visits[0][0].flux, zero.visits[0][0].flux);
    }

    #[test]
    fn patch_grid_covers_all_exposures() {
        let spec = SkySpec::test_scale();
        let s = SkySurvey::generate(8, &spec);
        let grid = s.patch_grid();
        for v in &s.visits {
            for e in v {
                let mapped = grid.map_to_patches(e);
                let area: u64 = mapped.iter().map(|(_, p)| p.bbox.area()).sum();
                assert_eq!(area, e.bbox.area(), "exposure fully covered by patches");
            }
        }
    }
}
