//! Diffusion-MRI phantom generator.
//!
//! Substitutes for the Human Connectome Project S900 subjects: an
//! ellipsoidal "brain" on a dark background, with an annular white-matter
//! region of tangentially-oriented anisotropic tensors (circular fiber
//! arcs) inside an isotropic gray-matter bulk. Signals follow the diffusion
//! tensor model with additive Rician-like noise, so the full pipeline
//! (segmentation → denoising → DTM fit) produces meaningful masks and FA
//! maps with elevated FA in the fiber annulus.

use crate::neuro::gradients::GradientTable;
use crate::synth::Randn;
use marray::NdArray;

/// Geometry and signal parameters of the phantom.
#[derive(Debug, Clone, PartialEq)]
pub struct DmriSpec {
    /// Spatial dims (x, y, z).
    pub dims: [usize; 3],
    /// Number of volumes (gradient directions + b0s).
    pub n_volumes: usize,
    /// Number of b=0 calibration volumes among them.
    pub n_b0: usize,
    /// Diffusion weighting of the non-b0 volumes (s/mm²).
    pub bval: f64,
    /// Brain tissue b0 signal level.
    pub s0_brain: f64,
    /// Background signal level (air/skull remnants).
    pub s0_background: f64,
    /// Additive noise sigma.
    pub noise_sigma: f64,
    /// Voxel edge length in mm (HCP: 1.25).
    pub voxel_mm: f32,
}

impl DmriSpec {
    /// The paper's full HCP geometry: 145×145×174 voxels, 288 volumes
    /// (18 b0), ≈4.2 GB per subject uncompressed.
    pub fn paper_scale() -> Self {
        DmriSpec {
            dims: [145, 145, 174],
            n_volumes: 288,
            n_b0: 18,
            bval: 1000.0,
            s0_brain: 1000.0,
            s0_background: 30.0,
            noise_sigma: 20.0,
            voxel_mm: 1.25,
        }
    }

    /// Small geometry for tests and examples (same structure, ~seconds).
    pub fn test_scale() -> Self {
        DmriSpec {
            dims: [12, 12, 10],
            n_volumes: 12,
            n_b0: 2,
            bval: 1000.0,
            s0_brain: 1000.0,
            s0_background: 30.0,
            noise_sigma: 20.0,
            voxel_mm: 1.25,
        }
    }

    /// Uncompressed payload size in bytes (float32 voxels).
    pub fn nbytes(&self) -> usize {
        self.dims.iter().product::<usize>() * self.n_volumes * 4
    }
}

/// One generated subject.
#[derive(Debug, Clone)]
pub struct DmriPhantom {
    /// 4-D (x, y, z, volume) float32 data.
    pub data: NdArray<f32>,
    /// The acquisition's gradient table.
    pub gtab: GradientTable,
    /// The generating spec.
    pub spec: DmriSpec,
}

/// Tissue classification of a voxel in the phantom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tissue {
    Background,
    Gray,
    White,
}

fn classify(spec: &DmriSpec, x: usize, y: usize, z: usize) -> (Tissue, [f64; 3]) {
    let cx = (spec.dims[0] as f64 - 1.0) / 2.0;
    let cy = (spec.dims[1] as f64 - 1.0) / 2.0;
    let cz = (spec.dims[2] as f64 - 1.0) / 2.0;
    // Semi-axes at 45% of each extent: the brain fills roughly half the box.
    let ax = 0.45 * spec.dims[0] as f64;
    let ay = 0.45 * spec.dims[1] as f64;
    let az = 0.45 * spec.dims[2] as f64;
    let dx = (x as f64 - cx) / ax;
    let dy = (y as f64 - cy) / ay;
    let dz = (z as f64 - cz) / az;
    let r2 = dx * dx + dy * dy + dz * dz;
    if r2 > 1.0 {
        return (Tissue::Background, [0.0, 0.0, 0.0]);
    }
    // White-matter annulus: mid-radius shell with tangential (circular)
    // fiber direction in the x-y plane.
    if (0.25..=0.70).contains(&r2) {
        let tx = -(y as f64 - cy);
        let ty = x as f64 - cx;
        let norm = (tx * tx + ty * ty).sqrt();
        if norm > 1e-9 {
            return (Tissue::White, [tx / norm, ty / norm, 0.0]);
        }
    }
    (Tissue::Gray, [0.0, 0.0, 0.0])
}

/// Diffusion tensor of a tissue class: `[dxx,dyy,dzz,dxy,dxz,dyz]`.
fn tensor_of(tissue: Tissue, dir: &[f64; 3]) -> [f64; 6] {
    match tissue {
        Tissue::Background => [0.0; 6],
        // Isotropic gray matter.
        Tissue::Gray => [0.8e-3, 0.8e-3, 0.8e-3, 0.0, 0.0, 0.0],
        // λ∥ = 1.7e-3 along `dir`, λ⊥ = 0.3e-3: D = λ⊥ I + (λ∥-λ⊥) d dᵀ.
        Tissue::White => {
            let (l_par, l_perp) = (1.7e-3, 0.3e-3);
            let d = l_par - l_perp;
            [
                l_perp + d * dir[0] * dir[0],
                l_perp + d * dir[1] * dir[1],
                l_perp + d * dir[2] * dir[2],
                d * dir[0] * dir[1],
                d * dir[0] * dir[2],
                d * dir[1] * dir[2],
            ]
        }
    }
}

impl DmriPhantom {
    /// Generate subject `seed` under `spec`. Deterministic per (seed, spec).
    // scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
    pub fn generate(seed: u64, spec: &DmriSpec) -> DmriPhantom {
        let gtab = GradientTable::hcp_like(spec.n_volumes, spec.n_b0, spec.bval);
        let [nx, ny, nz] = spec.dims;
        let nv = spec.n_volumes;
        let mut rng = Randn::new(seed.wrapping_mul(0x5851F42D4C957F2D).wrapping_add(7));
        let mut data = vec![0f32; nx * ny * nz * nv];
        let mut off = 0;
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let (tissue, dir) = classify(spec, x, y, z);
                    let tensor = tensor_of(tissue, &dir);
                    let s0 = match tissue {
                        Tissue::Background => spec.s0_background,
                        _ => spec.s0_brain,
                    };
                    for v in 0..nv {
                        let b = gtab.bvals[v];
                        let g = &gtab.bvecs[v];
                        let quad = tensor[0] * g[0] * g[0]
                            + tensor[1] * g[1] * g[1]
                            + tensor[2] * g[2] * g[2]
                            + 2.0 * tensor[3] * g[0] * g[1]
                            + 2.0 * tensor[4] * g[0] * g[2]
                            + 2.0 * tensor[5] * g[1] * g[2];
                        let clean = s0 * (-b * quad).exp();
                        // Rician-like: magnitude of a complex signal with
                        // Gaussian noise on both channels.
                        let re = clean + spec.noise_sigma * rng.normal();
                        let im = spec.noise_sigma * rng.normal();
                        // scilint: allow(N002, the phantom stores f32 by design to match scanner output precision)
                        data[off] = ((re * re + im * im).sqrt()) as f32;
                        off += 1;
                    }
                }
            }
        }
        let data = NdArray::from_vec(&[nx, ny, nz, nv], data).expect("buffer sized to dims");
        DmriPhantom {
            data,
            gtab,
            spec: spec.clone(),
        }
    }

    /// Fraction of voxels inside the phantom brain (mask ground truth).
    pub fn brain_fraction(spec: &DmriSpec) -> f64 {
        let [nx, ny, nz] = spec.dims;
        let mut inside = 0usize;
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    if classify(spec, x, y, z).0 != Tissue::Background {
                        inside += 1;
                    }
                }
            }
        }
        inside as f64 / (nx * ny * nz) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let spec = DmriSpec::test_scale();
        let a = DmriPhantom::generate(3, &spec);
        let b = DmriPhantom::generate(3, &spec);
        assert_eq!(a.data, b.data);
        let c = DmriPhantom::generate(4, &spec);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn shapes_match_spec() {
        let spec = DmriSpec::test_scale();
        let p = DmriPhantom::generate(1, &spec);
        assert_eq!(p.data.dims(), &[12, 12, 10, 12]);
        assert_eq!(p.gtab.len(), 12);
        assert_eq!(p.gtab.b0_indices().len(), 2);
    }

    #[test]
    fn paper_scale_size_is_4_2_gb() {
        let spec = DmriSpec::paper_scale();
        let gb = spec.nbytes() as f64 / 1e9;
        assert!((gb - 4.2).abs() < 0.15, "subject size {gb} GB");
    }

    #[test]
    fn brain_brighter_than_background_in_b0() {
        let spec = DmriSpec::test_scale();
        let p = DmriPhantom::generate(5, &spec);
        let b0: NdArray<f64> = p.data.cast::<f64>().slice_axis(3, 0).unwrap();
        let center = b0[&[6, 6, 5][..]];
        let corner = b0[&[0, 0, 0][..]];
        assert!(center > 5.0 * corner, "center {center} vs corner {corner}");
    }

    #[test]
    fn diffusion_attenuates_weighted_volumes_in_brain() {
        let spec = DmriSpec::test_scale();
        let p = DmriPhantom::generate(5, &spec);
        let data = p.data.cast::<f64>();
        let b0_ix = p.gtab.b0_indices()[0];
        let w_ix = (0..p.gtab.len()).find(|&i| p.gtab.bvals[i] > 0.0).unwrap();
        let center = [6usize, 6, 5];
        let s_b0 = data[&[center[0], center[1], center[2], b0_ix][..]];
        let s_w = data[&[center[0], center[1], center[2], w_ix][..]];
        assert!(
            s_w < s_b0,
            "weighted {s_w} should be attenuated vs b0 {s_b0}"
        );
    }

    #[test]
    fn brain_fraction_reasonable() {
        let f = DmriPhantom::brain_fraction(&DmriSpec::test_scale());
        assert!(f > 0.25 && f < 0.75, "brain fraction {f}");
    }
}
