#![warn(missing_docs)]

//! # sciops — scientific image-analytics kernels and synthetic data
//!
//! The "reference implementation" layer of the reproduction: real, runnable
//! Rust versions of every algorithm in the two use cases of Mehta et al.
//! (VLDB 2017), plus seeded synthetic data generators standing in for the
//! gated Human Connectome Project and HiTS survey datasets.
//!
//! * [`neuro`] — the diffusion-MRI pipeline (the paper's Steps 1N–3N):
//!   b0 selection, mean volume, Otsu/median-Otsu segmentation, non-local
//!   means denoising, diffusion-tensor model fitting, fractional anisotropy.
//! * [`astro`] — the LSST-style pipeline (Steps 1A–4A): background
//!   estimation, cosmic-ray repair, calibration, sky patch geometry,
//!   sigma-clipped co-addition, source detection.
//! * [`synth`] — deterministic phantom generators for both datasets at the
//!   paper's full geometry or scaled-down test geometry.
//! * [`stats`] / [`linalg`] — the numeric support both pipelines share.
//!
//! Every engine in the workspace runs these same kernels as its "UDFs",
//! mirroring the paper's setup where all systems execute the scientists'
//! reference Python code.

pub mod astro;
pub mod linalg;
pub mod neuro;
pub mod stats;
pub mod synth;

pub use parexec::Parallelism;
