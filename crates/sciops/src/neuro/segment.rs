//! Step 1N — volume segmentation.
//!
//! Builds the per-subject brain mask: average the b0 volumes, smooth with a
//! 3-D median filter, threshold with Otsu's method, and keep the largest
//! connected component. This mirrors Dipy's `median_otsu`, the function the
//! paper's reference implementation calls.

use crate::stats::histogram;
use marray::{Mask, NdArray, WindowIter};

/// Otsu's threshold (Otsu 1975, the paper's \[27]): the gray level that
/// maximizes inter-class variance of the intensity histogram.
///
/// Returns the threshold in the data's units. `bins` controls histogram
/// resolution (256 matches the classic formulation).
pub fn otsu_threshold(values: &NdArray<f64>, bins: usize) -> f64 {
    let lo = values.min();
    let hi = values.max();
    if hi <= lo {
        return lo;
    }
    let counts = histogram(values.data().iter().copied(), lo, hi, bins);
    let total: usize = counts.iter().sum();
    let bin_width = (hi - lo) / bins as f64;
    let bin_center = |i: usize| lo + (i as f64 + 0.5) * bin_width;

    let sum_all: f64 = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| bin_center(i) * c as f64)
        .sum();
    let mut w_bg = 0.0f64; // background weight
    let mut sum_bg = 0.0f64;
    let mut best_var = -1.0;
    let mut best_t = lo;
    for (i, &count) in counts.iter().enumerate().take(bins - 1) {
        w_bg += count as f64;
        // scilint: allow(N001, class weights are integer histogram counts held exactly in f64 - zero means an empty class)
        if w_bg == 0.0 {
            continue;
        }
        let w_fg = total as f64 - w_bg;
        // scilint: allow(N001, class weights are integer histogram counts held exactly in f64 - zero means an empty class)
        if w_fg == 0.0 {
            break;
        }
        sum_bg += bin_center(i) * count as f64;
        let mean_bg = sum_bg / w_bg;
        let mean_fg = (sum_all - sum_bg) / w_fg;
        let between = w_bg * w_fg * (mean_bg - mean_fg) * (mean_bg - mean_fg);
        if between > best_var {
            best_var = between;
            best_t = lo + (i as f64 + 1.0) * bin_width; // threshold after bin i
        }
    }
    best_t
}

/// 3-D median filter with a cubic window of the given radius
/// (radius 1 = 3×3×3), clamped at the borders.
pub fn median_filter3d(volume: &NdArray<f64>, radius: usize) -> NdArray<f64> {
    assert_eq!(
        volume.shape().rank(),
        3,
        "median_filter3d expects a 3-D volume"
    );
    let dims = volume.dims().to_vec();
    let data = volume.data();
    let mut out = NdArray::zeros(&dims);
    let (sy, sz) = (dims[1] * dims[2], dims[2]);
    let mut window: Vec<f64> = Vec::with_capacity((2 * radius + 1).pow(3));
    for pos in WindowIter::new(volume.shape(), radius) {
        window.clear();
        for x in pos.bounds[0].0..pos.bounds[0].1 {
            for y in pos.bounds[1].0..pos.bounds[1].1 {
                let row = x * sy + y * sz;
                window.extend_from_slice(&data[row + pos.bounds[2].0..row + pos.bounds[2].1]);
            }
        }
        let m = crate::stats::median(&mut window);
        let off = pos.center[0] * sy + pos.center[1] * sz + pos.center[2];
        out.data_mut()[off] = m;
    }
    out
}

/// 3-D 6-connected component labeling; returns (labels, count).
/// Label 0 is background (positions where `mask` is false).
fn label_components(mask: &Mask, dims: &[usize; 3]) -> (Vec<u32>, u32) {
    let n = dims[0] * dims[1] * dims[2];
    let mut labels = vec![0u32; n];
    let mut next_label = 0u32;
    let (sy, sz) = (dims[1] * dims[2], dims[2]);
    let mut stack: Vec<usize> = Vec::new();
    for start in 0..n {
        if !mask.get_flat(start) || labels[start] != 0 {
            continue;
        }
        next_label += 1;
        labels[start] = next_label;
        stack.push(start);
        while let Some(off) = stack.pop() {
            let x = off / sy;
            let y = (off % sy) / sz;
            let z = off % sz;
            let mut try_push = |nx: usize, ny: usize, nz: usize| {
                let noff = nx * sy + ny * sz + nz;
                if mask.get_flat(noff) && labels[noff] == 0 {
                    labels[noff] = next_label;
                    stack.push(noff);
                }
            };
            if x > 0 {
                try_push(x - 1, y, z);
            }
            if x + 1 < dims[0] {
                try_push(x + 1, y, z);
            }
            if y > 0 {
                try_push(x, y - 1, z);
            }
            if y + 1 < dims[1] {
                try_push(x, y + 1, z);
            }
            if z > 0 {
                try_push(x, y, z - 1);
            }
            if z + 1 < dims[2] {
                try_push(x, y, z + 1);
            }
        }
    }
    (labels, next_label)
}

/// Dipy-style `median_otsu`: median filter, Otsu threshold, keep the largest
/// 6-connected component. Input is the mean-b0 volume; output is the brain
/// mask used by Steps 2N and 3N.
// scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
pub fn median_otsu(mean_b0: &NdArray<f64>, median_radius: usize) -> Mask {
    assert_eq!(
        mean_b0.shape().rank(),
        3,
        "median_otsu expects a 3-D volume"
    );
    let smoothed = median_filter3d(mean_b0, median_radius);
    let threshold = otsu_threshold(&smoothed, 256);
    let raw = Mask::threshold(&smoothed, threshold);
    let dims = [mean_b0.dims()[0], mean_b0.dims()[1], mean_b0.dims()[2]];
    let (labels, count) = label_components(&raw, &dims);
    if count <= 1 {
        return raw;
    }
    // Keep only the most populous component.
    let mut sizes = vec![0usize; count as usize + 1];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes[0] = 0;
    let largest = sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        // scilint: allow(N002, component label index is bounded by the component count of one volume)
        .map(|(l, _)| l as u32)
        .unwrap_or(0);
    Mask::from_vec(
        mean_b0.dims(),
        labels.iter().map(|&l| l == largest).collect(),
    )
    .expect("dims/len agree")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated intensity populations.
    fn bimodal() -> NdArray<f64> {
        NdArray::from_fn(&[8, 8, 8], |ix| {
            let center = ix.iter().all(|&c| (2..6).contains(&c));
            if center {
                100.0 + (ix[0] as f64)
            } else {
                5.0 + (ix[2] as f64) * 0.1
            }
        })
    }

    #[test]
    fn otsu_separates_bimodal() {
        let v = bimodal();
        let t = otsu_threshold(&v, 256);
        // Background mode tops out at 5.7, bright mode starts at 100; any
        // threshold strictly between separates the classes (Otsu picks the
        // first maximizer of the between-class variance, which lands just
        // above the background mode).
        assert!(t > 5.7 && t < 100.0, "threshold {t} should split the modes");
        let dark = v.data().iter().filter(|&&x| x <= t).count();
        assert_eq!(
            dark,
            8 * 8 * 8 - 4 * 4 * 4,
            "all background below threshold"
        );
    }

    #[test]
    fn otsu_constant_volume() {
        let v = NdArray::<f64>::full(&[4, 4, 4], 7.0);
        assert_eq!(otsu_threshold(&v, 256), 7.0);
    }

    #[test]
    fn median_filter_removes_speckle() {
        let mut v = NdArray::<f64>::full(&[5, 5, 5], 10.0);
        v[&[2, 2, 2][..]] = 1000.0; // single-voxel speckle
        let f = median_filter3d(&v, 1);
        assert_eq!(f[&[2, 2, 2][..]], 10.0);
        assert_eq!(f[&[0, 0, 0][..]], 10.0);
    }

    #[test]
    fn median_filter_preserves_constant() {
        let v = NdArray::<f64>::full(&[4, 4, 4], 3.0);
        assert_eq!(median_filter3d(&v, 1), v);
    }

    #[test]
    fn median_otsu_finds_center_blob() {
        let v = bimodal();
        let mask = median_otsu(&v, 1);
        // The central 4x4x4 blob is selected, the border is not.
        assert!(mask.bits()[v.shape().offset(&[3, 3, 3])]);
        assert!(!mask.bits()[v.shape().offset(&[0, 0, 0])]);
        let frac = mask.fill_fraction();
        assert!(frac > 0.05 && frac < 0.3, "fill fraction {frac}");
    }

    #[test]
    fn median_otsu_keeps_largest_component_only() {
        // Big bright blob + a distant small bright voxel cluster.
        let v = NdArray::from_fn(&[10, 10, 10], |ix| {
            let in_big = ix.iter().all(|&c| (1..6).contains(&c));
            let in_small = ix.iter().all(|&c| c == 8);
            if in_big || in_small {
                100.0
            } else {
                1.0
            }
        });
        let mask = median_otsu(&v, 0); // radius 0 = no smoothing
        assert!(mask.bits()[v.shape().offset(&[3, 3, 3])]);
        assert!(
            !mask.bits()[v.shape().offset(&[8, 8, 8])],
            "small component rejected"
        );
    }

    #[test]
    fn label_components_counts() {
        // Two disjoint voxels are two components under 6-connectivity.
        let dims = [3usize, 3, 3];
        let mut bits = vec![false; 27];
        bits[0] = true; // (0,0,0)
        bits[26] = true; // (2,2,2)
        let mask = Mask::from_vec(&[3, 3, 3], bits).unwrap();
        let (_, count) = label_components(&mask, &dims);
        assert_eq!(count, 2);
    }
}
