//! The single-machine neuroscience reference pipeline (Steps 1N → 2N → 3N).
//!
//! This plays the role of the paper's Python/Cython reference implementation
//! ("executes as a single process on one machine"): every engine's output is
//! validated against it.

use crate::neuro::denoise::{nlmeans3d_par, NlmParams};
use crate::neuro::dtm::fit_dtm_volume_par;
use crate::neuro::gradients::GradientTable;
use crate::neuro::segment::median_otsu;
use marray::{Mask, NdArray};
use parexec::Parallelism;

/// Output of the full neuroscience pipeline for one subject.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuroOutput {
    /// The Step 1N brain mask.
    pub mask: Mask,
    /// The Step 1N mean b0 volume.
    pub mean_b0: NdArray<f64>,
    /// The Step 2N denoised volumes, stacked back into (x,y,z,volume).
    pub denoised: NdArray<f64>,
    /// The Step 3N fractional anisotropy map.
    pub fa: NdArray<f64>,
}

/// Step 1N in isolation: filter to b0 volumes, average, build the mask.
// scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
pub fn segmentation(data: &NdArray<f64>, gtab: &GradientTable) -> (NdArray<f64>, Mask) {
    let b0 = data
        .compress_axis(&gtab.b0s_mask(), 3)
        .expect("b0 mask matches volume axis");
    let mean_b0 = b0.mean_axis(3);
    let mask = median_otsu(&mean_b0, 1);
    (mean_b0, mask)
}

/// Step 2N in isolation: denoise every volume under the mask.
pub fn denoise_all(data: &NdArray<f64>, mask: &Mask, params: &NlmParams) -> NdArray<f64> {
    denoise_all_par(data, mask, params, Parallelism::Serial)
}

/// [`denoise_all`] with explicit intra-node parallelism: the volume loop
/// stays serial (each volume is a full NLM invocation), and each volume's
/// slabs run across `par.workers()` threads.
// scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
pub fn denoise_all_par(
    data: &NdArray<f64>,
    mask: &Mask,
    params: &NlmParams,
    par: Parallelism,
) -> NdArray<f64> {
    let dims = data.dims();
    let n_vols = dims[3];
    let mut volumes = Vec::with_capacity(n_vols);
    for v in 0..n_vols {
        let vol = data.slice_axis(3, v).expect("volume index in range");
        let den = nlmeans3d_par(&vol, Some(mask), params, par);
        let mut vd = den.dims().to_vec();
        vd.push(1);
        volumes.push(den.reshape(&vd).expect("same element count"));
    }
    let refs: Vec<&NdArray<f64>> = volumes.iter().collect();
    NdArray::concat(&refs, 3).expect("volumes share spatial dims")
}

/// Run the complete three-step pipeline for one subject.
///
/// `data` is the 4-D (x, y, z, volume) dataset; `gtab` describes the
/// acquisition.
pub fn reference_pipeline(
    data: &NdArray<f64>,
    gtab: &GradientTable,
    nlm: &NlmParams,
) -> NeuroOutput {
    reference_pipeline_par(data, gtab, nlm, Parallelism::Serial)
}

/// [`reference_pipeline`] with explicit intra-node parallelism threaded
/// through the denoising and tensor-fitting steps (segmentation is a
/// negligible fraction of the runtime and stays serial).
pub fn reference_pipeline_par(
    data: &NdArray<f64>,
    gtab: &GradientTable,
    nlm: &NlmParams,
    par: Parallelism,
) -> NeuroOutput {
    let (mean_b0, mask) = segmentation(data, gtab);
    let denoised = denoise_all_par(data, &mask, nlm, par);
    let fa = fit_dtm_volume_par(&denoised, &mask, gtab, par);
    NeuroOutput {
        mask,
        mean_b0,
        denoised,
        fa,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::dmri::{DmriPhantom, DmriSpec};

    fn tiny_subject() -> (NdArray<f64>, GradientTable) {
        let spec = DmriSpec::test_scale();
        let phantom = DmriPhantom::generate(7, &spec);
        (phantom.data.cast(), phantom.gtab)
    }

    #[test]
    fn pipeline_produces_brain_fa() {
        let (data, gtab) = tiny_subject();
        let nlm = NlmParams {
            search_radius: 1,
            patch_radius: 1,
            sigma: 20.0,
            h_factor: 1.0,
        };
        let out = reference_pipeline(&data, &gtab, &nlm);
        // Mask selects a substantial brain region (phantom brain ≈ half).
        let frac = out.mask.fill_fraction();
        assert!(frac > 0.1 && frac < 0.9, "mask fraction {frac}");
        // FA is nonzero somewhere in the brain and zero outside.
        let max_fa = out.fa.max();
        assert!(max_fa > 0.2, "max FA {max_fa}");
        for i in 0..out.fa.len() {
            if !out.mask.get_flat(i) {
                assert_eq!(out.fa.data()[i], 0.0);
            }
            assert!((0.0..=1.0).contains(&out.fa.data()[i]));
        }
    }

    #[test]
    fn segmentation_mask_covers_phantom_brain() {
        let (data, gtab) = tiny_subject();
        let (mean_b0, mask) = segmentation(&data, &gtab);
        assert_eq!(mean_b0.dims(), &data.dims()[..3]);
        // The brain is brighter, so the masked mean must exceed the global.
        let brain_mean: f64 = mean_b0
            .data()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask.get_flat(*i))
            .map(|(_, &v)| v)
            .sum::<f64>()
            / mask.count() as f64;
        assert!(brain_mean > mean_b0.mean());
    }

    #[test]
    fn denoise_preserves_shape_and_background() {
        let (data, gtab) = tiny_subject();
        let (_, mask) = segmentation(&data, &gtab);
        let nlm = NlmParams {
            search_radius: 1,
            patch_radius: 1,
            sigma: 20.0,
            h_factor: 1.0,
        };
        let den = denoise_all(&data, &mask, &nlm);
        assert_eq!(den.dims(), data.dims());
        // Background voxels pass through unchanged in every volume.
        let n_vols = data.dims()[3];
        for voxel in 0..mask.len() {
            if !mask.get_flat(voxel) {
                for v in 0..n_vols {
                    assert_eq!(
                        den.data()[voxel * n_vols + v],
                        data.data()[voxel * n_vols + v]
                    );
                }
            }
        }
    }
}
