//! Step 3N — diffusion tensor model fitting.
//!
//! Fits the diffusion tensor model (Basser et al. 1994, the paper's \[3]) to
//! each voxel: the signal follows `S(g, b) = S0 · exp(-b gᵀ D g)` where `D`
//! is a symmetric 3×3 tensor. Taking logs turns the fit into a weighted
//! linear least squares over 7 parameters (6 unique tensor elements plus
//! `ln S0`). The tensor's eigenvalues summarize to fractional anisotropy.

use crate::linalg::{solve, sym3_eigenvalues};
use crate::neuro::gradients::GradientTable;
use marray::{Mask, NdArray};
use parexec::{CostHint, MorselPool, Parallelism};

/// Per-voxel diffusion tensor fit result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtmFit {
    /// Unique tensor elements `[dxx, dyy, dzz, dxy, dxz, dyz]`.
    pub tensor: [f64; 6],
    /// Fitted non-diffusion-weighted signal.
    pub s0: f64,
}

impl DtmFit {
    /// Eigenvalues of the tensor in descending order.
    pub fn eigenvalues(&self) -> [f64; 3] {
        sym3_eigenvalues(&self.tensor)
    }

    /// Fractional anisotropy in `[0, 1]`.
    pub fn fa(&self) -> f64 {
        let eig = self.eigenvalues();
        fractional_anisotropy(&eig)
    }

    /// Mean diffusivity: the tensor's mean eigenvalue (= trace / 3) —
    /// the other standard DTI summary scalar alongside FA.
    pub fn md(&self) -> f64 {
        (self.tensor[0] + self.tensor[1] + self.tensor[2]) / 3.0
    }
}

/// Fractional anisotropy of a set of tensor eigenvalues.
pub fn fractional_anisotropy(eig: &[f64; 3]) -> f64 {
    let (l1, l2, l3) = (eig[0], eig[1], eig[2]);
    let norm2 = l1 * l1 + l2 * l2 + l3 * l3;
    if norm2 <= 0.0 {
        return 0.0;
    }
    let mean = (l1 + l2 + l3) / 3.0;
    let num = (l1 - mean).powi(2) + (l2 - mean).powi(2) + (l3 - mean).powi(2);
    ((1.5 * num / norm2).sqrt()).clamp(0.0, 1.0)
}

/// Design-matrix row for one measurement: coefficients of
/// `[dxx, dyy, dzz, dxy, dxz, dyz, ln S0]` in `ln S = -b gᵀDg + ln S0`.
fn design_row(b: f64, g: &[f64; 3]) -> [f64; 7] {
    [
        -b * g[0] * g[0],
        -b * g[1] * g[1],
        -b * g[2] * g[2],
        -2.0 * b * g[0] * g[1],
        -2.0 * b * g[0] * g[2],
        -2.0 * b * g[1] * g[2],
        1.0,
    ]
}

/// Fit the DTM for a single voxel given its signal across all volumes.
///
/// Weighted least squares with weights `S²` (the standard log-linear WLS,
/// which de-emphasizes low-SNR measurements). Returns `None` when the voxel
/// has non-positive signal everywhere or a singular system.
pub fn fit_dtm_voxel(signals: &[f64], gtab: &GradientTable) -> Option<DtmFit> {
    assert_eq!(signals.len(), gtab.len(), "one signal per volume");
    const N: usize = 7;
    let mut ata = [0.0f64; N * N];
    let mut atb = [0.0f64; N];
    let mut usable = 0;
    for (i, &s) in signals.iter().enumerate() {
        if s <= 0.0 {
            continue;
        }
        usable += 1;
        let row = design_row(gtab.bvals[i], &gtab.bvecs[i]);
        let w = s * s; // WLS weight
        let y = s.ln();
        // ata is symmetric, so accumulate only the upper triangle and
        // mirror it once after the sample loop — ~45% fewer multiplies per
        // sample. The product is associated as w·(row[r]·row[c]): IEEE
        // multiplication is commutative in the result bits, so the mirror
        // equals what direct lower-triangle accumulation would produce.
        for r in 0..N {
            let wr = w * row[r];
            atb[r] += wr * y;
            for c in r..N {
                ata[r * N + c] += w * (row[r] * row[c]);
            }
        }
    }
    if usable < N {
        return None;
    }
    for r in 1..N {
        for c in 0..r {
            ata[r * N + c] = ata[c * N + r];
        }
    }
    let x = solve(&ata, &atb, N)?;
    Some(DtmFit {
        tensor: [x[0], x[1], x[2], x[3], x[4], x[5]],
        s0: x[6].exp(),
    })
}

/// Fit the DTM for every masked voxel and return both summary maps
/// (FA, MD). Unmasked voxels get 0.
pub fn fit_dtm_volume_full(
    data: &NdArray<f64>,
    mask: &Mask,
    gtab: &GradientTable,
) -> (NdArray<f64>, NdArray<f64>) {
    fit_dtm_volume_full_par(data, mask, gtab, Parallelism::Serial)
}

/// [`fit_dtm_volume_full`] with explicit intra-node parallelism: the
/// volume's voxels are split into morsels by [`parexec::MorselPool`] with a
/// granularity floor of one axis-0 plane, and workers claim them from the
/// shared cursor. The per-voxel fit is independent by construction and the
/// morsels partition the volume in order, so output is bit-identical at
/// every worker count and at any claim order.
// scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
pub fn fit_dtm_volume_full_par(
    data: &NdArray<f64>,
    mask: &Mask,
    gtab: &GradientTable,
    par: Parallelism,
) -> (NdArray<f64>, NdArray<f64>) {
    assert_eq!(data.shape().rank(), 4, "expected 4-D (x,y,z,volume) data");
    let dims = data.dims();
    let n_vols = dims[3];
    assert_eq!(n_vols, gtab.len(), "volume count must match gradient table");
    assert_eq!(mask.dims(), &dims[..3], "mask must be 3-D over (x,y,z)");
    let spatial = [dims[0], dims[1], dims[2]];
    let plane_len = spatial[1] * spatial[2];
    let n_spatial = spatial.iter().product::<usize>();
    let raw = data.data();
    // Morsel granularity floor of one axis-0 plane: at realistic volume
    // sizes a single plane holds too little work to amortize per-morsel
    // dispatch, which is why the old per-plane version scaled *negatively*
    // (0.86x at 2 threads in BENCH_kernels). The morsel split is invisible
    // to the result: each voxel's fit is independent and morsel outputs
    // stitch back in voxel order.
    let pool = MorselPool::with_hint(par, CostHint::min_items(plane_len));
    let fitted = pool.map_ranges(n_spatial, |_, range| {
        let mut fa_batch = vec![0.0f64; range.len()];
        let mut md_batch = vec![0.0f64; range.len()];
        for (slot, voxel) in range.clone().enumerate() {
            if !mask.get_flat(voxel) {
                continue;
            }
            // Row-major (x,y,z,v): the volume axis is contiguous per voxel,
            // so the fit reads the signal lane in place — no staging copy.
            let base = voxel * n_vols;
            if let Some(fit) = fit_dtm_voxel(&raw[base..base + n_vols], gtab) {
                fa_batch[slot] = fit.fa();
                md_batch[slot] = fit.md();
            }
        }
        (fa_batch, md_batch)
    });
    let mut fa = Vec::with_capacity(n_spatial);
    let mut md = Vec::with_capacity(n_spatial);
    for (fa_batch, md_batch) in fitted {
        fa.extend(fa_batch);
        md.extend(md_batch);
    }
    let fa = NdArray::from_vec(&spatial, fa).expect("plane stitching preserves shape");
    let md = NdArray::from_vec(&spatial, md).expect("plane stitching preserves shape");
    (fa, md)
}

/// Fit the DTM for every masked voxel of a subject's 4-D dataset
/// (x, y, z, volume) and return the FA map. Unmasked voxels get FA 0.
pub fn fit_dtm_volume(data: &NdArray<f64>, mask: &Mask, gtab: &GradientTable) -> NdArray<f64> {
    fit_dtm_volume_full_par(data, mask, gtab, Parallelism::Serial).0
}

/// [`fit_dtm_volume`] with explicit intra-node parallelism.
pub fn fit_dtm_volume_par(
    data: &NdArray<f64>,
    mask: &Mask,
    gtab: &GradientTable,
    par: Parallelism,
) -> NdArray<f64> {
    fit_dtm_volume_full_par(data, mask, gtab, par).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate a voxel's signal from a known tensor.
    fn simulate(gtab: &GradientTable, tensor: &[f64; 6], s0: f64) -> Vec<f64> {
        gtab.bvals
            .iter()
            .zip(&gtab.bvecs)
            .map(|(&b, g)| {
                let quad = tensor[0] * g[0] * g[0]
                    + tensor[1] * g[1] * g[1]
                    + tensor[2] * g[2] * g[2]
                    + 2.0 * tensor[3] * g[0] * g[1]
                    + 2.0 * tensor[4] * g[0] * g[2]
                    + 2.0 * tensor[5] * g[1] * g[2];
                s0 * (-b * quad).exp()
            })
            .collect()
    }

    #[test]
    fn recovers_isotropic_tensor() {
        let gtab = GradientTable::hcp_like(64, 4, 1000.0);
        let truth = [0.7e-3, 0.7e-3, 0.7e-3, 0.0, 0.0, 0.0];
        let fit = fit_dtm_voxel(&simulate(&gtab, &truth, 1000.0), &gtab).unwrap();
        for (a, b) in fit.tensor.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert!((fit.s0 - 1000.0).abs() < 1.0);
        assert!(fit.fa() < 0.01, "isotropic tensor FA {}", fit.fa());
    }

    #[test]
    fn recovers_anisotropic_tensor_and_fa() {
        let gtab = GradientTable::hcp_like(64, 4, 1000.0);
        // Strongly anisotropic: principal diffusion along x.
        let truth = [1.7e-3, 0.2e-3, 0.2e-3, 0.0, 0.0, 0.0];
        let fit = fit_dtm_voxel(&simulate(&gtab, &truth, 500.0), &gtab).unwrap();
        for (a, b) in fit.tensor.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-6);
        }
        let expected_fa = fractional_anisotropy(&[1.7e-3, 0.2e-3, 0.2e-3]);
        assert!((fit.fa() - expected_fa).abs() < 1e-6);
        assert!(fit.fa() > 0.7, "white-matter-like FA, got {}", fit.fa());
    }

    #[test]
    fn recovers_off_diagonal_terms() {
        let gtab = GradientTable::hcp_like(96, 6, 2000.0);
        let truth = [1.0e-3, 0.8e-3, 0.6e-3, 0.2e-3, -0.1e-3, 0.15e-3];
        let fit = fit_dtm_voxel(&simulate(&gtab, &truth, 800.0), &gtab).unwrap();
        for (a, b) in fit.tensor.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn fa_bounds() {
        assert_eq!(fractional_anisotropy(&[0.0, 0.0, 0.0]), 0.0);
        assert!((fractional_anisotropy(&[1.0, 1.0, 1.0])).abs() < 1e-12);
        // Degenerate stick tensor approaches FA = 1.
        assert!(fractional_anisotropy(&[1.0, 0.0, 0.0]) > 0.99);
    }

    #[test]
    fn rejects_unusable_voxel() {
        let gtab = GradientTable::hcp_like(32, 2, 1000.0);
        let zeros = vec![0.0; 32];
        assert!(fit_dtm_voxel(&zeros, &gtab).is_none());
    }

    #[test]
    fn md_is_trace_over_three() {
        let gtab = GradientTable::hcp_like(48, 4, 1000.0);
        let truth = [1.2e-3, 0.9e-3, 0.6e-3, 0.0, 0.0, 0.0];
        let fit = fit_dtm_voxel(&simulate(&gtab, &truth, 700.0), &gtab).unwrap();
        assert!((fit.md() - 0.9e-3).abs() < 1e-8, "MD {}", fit.md());
    }

    #[test]
    fn full_fit_returns_consistent_fa_and_md() {
        let gtab = GradientTable::hcp_like(32, 2, 1000.0);
        let aniso = [1.7e-3, 0.2e-3, 0.2e-3, 0.0, 0.0, 0.0];
        let sig = simulate(&gtab, &aniso, 1000.0);
        let data = NdArray::from_fn(&[2, 2, 2, 32], |ix| sig[ix[3]]);
        let mask = Mask::from_vec(&[2, 2, 2], vec![true; 8]).unwrap();
        let (fa, md) = fit_dtm_volume_full(&data, &mask, &gtab);
        let fa_only = fit_dtm_volume(&data, &mask, &gtab);
        assert_eq!(fa, fa_only);
        let expect_md = (1.7e-3 + 0.2e-3 + 0.2e-3) / 3.0;
        for &v in md.data() {
            assert!((v - expect_md).abs() < 1e-8);
        }
    }

    #[test]
    fn parallel_fit_is_bit_identical() {
        let gtab = GradientTable::hcp_like(32, 2, 1000.0);
        let aniso = [1.5e-3, 0.4e-3, 0.3e-3, 0.1e-3, 0.0, -0.05e-3];
        let sig = simulate(&gtab, &aniso, 900.0);
        let data = NdArray::from_fn(&[5, 3, 3, 32], |ix| {
            sig[ix[3]] * (1.0 + 0.01 * ix[0] as f64)
        });
        let mask = Mask::from_vec(&[5, 3, 3], (0..45).map(|i| i % 4 != 0).collect()).unwrap();
        let (fa_s, md_s) = fit_dtm_volume_full_par(&data, &mask, &gtab, Parallelism::Serial);
        for workers in [1usize, 2, 4, 8] {
            let (fa_p, md_p) =
                fit_dtm_volume_full_par(&data, &mask, &gtab, Parallelism::threads(workers));
            assert_eq!(fa_s, fa_p, "FA workers={workers}");
            assert_eq!(md_s, md_p, "MD workers={workers}");
        }
    }

    #[test]
    fn morsel_ranges_respect_plane_granularity() {
        // The generic morsel sizing must preserve what the old bespoke
        // dtm batching guaranteed: exact in-order partition, no morsel
        // finer than one axis-0 plane (except the remainder), and a
        // dispatch count bounded by a small multiple of the worker count.
        for (n_spatial, plane_len, workers) in [
            (45usize, 9usize, 1usize),
            (45, 9, 8),
            (4096, 64, 2),
            (100_000, 256, 4),
            (7, 9, 4),  // volume smaller than one plane
            (1, 1, 16), // degenerate single voxel
        ] {
            let ranges = parexec::morsel_ranges(n_spatial, workers, CostHint::min_items(plane_len));
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must be contiguous and ordered");
                next = r.end;
            }
            assert_eq!(next, n_spatial, "ranges must cover every voxel");
            let floor = plane_len.max(1).min(n_spatial);
            for r in &ranges[..ranges.len().saturating_sub(1)] {
                assert!(r.len() >= floor, "morsel {r:?} finer than one plane");
            }
            assert!(ranges.len() <= workers.max(1) * parexec::MORSELS_PER_WORKER);
        }
    }

    #[test]
    fn morsel_parallel_fit_matches_per_voxel_serial_scan() {
        // The morsel split must be invisible to results: compare the
        // pooled path at several worker counts against a hand-rolled
        // per-voxel serial scan (the pre-batching reference order).
        let gtab = GradientTable::hcp_like(32, 2, 1000.0);
        let aniso = [1.5e-3, 0.4e-3, 0.3e-3, 0.1e-3, 0.0, -0.05e-3];
        let sig = simulate(&gtab, &aniso, 900.0);
        let data = NdArray::from_fn(&[6, 4, 4, 32], |ix| {
            sig[ix[3]] * (1.0 + 0.01 * ix[0] as f64 + 0.002 * ix[1] as f64)
        });
        let mask = Mask::from_vec(&[6, 4, 4], (0..96).map(|i| i % 5 != 0).collect()).unwrap();
        let mut fa_ref = vec![0.0f64; 96];
        let mut signals = vec![0.0f64; 32];
        for (voxel, fa_slot) in fa_ref.iter_mut().enumerate() {
            if !mask.get_flat(voxel) {
                continue;
            }
            signals.copy_from_slice(&data.data()[voxel * 32..(voxel + 1) * 32]);
            if let Some(fit) = fit_dtm_voxel(&signals, &gtab) {
                *fa_slot = fit.fa();
            }
        }
        for workers in [1usize, 2, 3, 8] {
            let par = if workers == 1 {
                Parallelism::Serial
            } else {
                Parallelism::threads(workers)
            };
            let (fa, _) = fit_dtm_volume_full_par(&data, &mask, &gtab, par);
            assert_eq!(fa.data(), &fa_ref[..], "workers={workers}");
        }
    }

    #[test]
    fn volume_fit_respects_mask() {
        let gtab = GradientTable::hcp_like(32, 2, 1000.0);
        let aniso = [1.7e-3, 0.2e-3, 0.2e-3, 0.0, 0.0, 0.0];
        let sig = simulate(&gtab, &aniso, 1000.0);
        let data = NdArray::from_fn(&[2, 2, 2, 32], |ix| sig[ix[3]]);
        let mut bits = vec![true; 8];
        bits[0] = false;
        let mask = Mask::from_vec(&[2, 2, 2], bits).unwrap();
        let fa = fit_dtm_volume(&data, &mask, &gtab);
        assert_eq!(fa.data()[0], 0.0, "unmasked voxel stays 0");
        assert!(fa.data()[1] > 0.7, "masked voxel gets the anisotropic FA");
    }
}
