//! Diffusion gradient tables.
//!
//! Each of a subject's volumes was acquired with a gradient direction and a
//! diffusion weighting (b-value). The HCP protocol the paper uses has 288
//! volumes of which 18 are unweighted (b=0) calibration volumes; the rest
//! carry b-values around 1000–3000 s/mm² in spread directions.

use marray::Mask;

/// Gradient directions and diffusion weightings for one acquisition.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientTable {
    /// b-value per volume (s/mm²); 0 marks a calibration volume.
    pub bvals: Vec<f64>,
    /// Unit gradient direction per volume (arbitrary for b=0 volumes).
    pub bvecs: Vec<[f64; 3]>,
}

impl GradientTable {
    /// Number of volumes.
    pub fn len(&self) -> usize {
        self.bvals.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.bvals.is_empty()
    }

    /// The `b0s_mask` of the reference code: true for b=0 volumes.
    // scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
    pub fn b0s_mask(&self) -> Mask {
        Mask::from_vec(
            &[self.len()],
            // scilint: allow(N001, b=0 is the acquisition's exact sentinel for non-diffusion volumes)
            self.bvals.iter().map(|&b| b == 0.0).collect(),
        )
        .expect("mask length matches")
    }

    /// Indices of the b=0 volumes.
    pub fn b0_indices(&self) -> Vec<usize> {
        self.bvals
            .iter()
            .enumerate()
            // scilint: allow(N001, b=0 is the acquisition's exact sentinel for non-diffusion volumes)
            .filter_map(|(i, &b)| (b == 0.0).then_some(i))
            .collect()
    }

    /// HCP-like table: `total` volumes of which `n_b0` are b=0, the rest
    /// weighted at `b` with directions spread over the sphere by a golden-
    /// spiral layout. Deterministic.
    pub fn hcp_like(total: usize, n_b0: usize, b: f64) -> GradientTable {
        assert!(n_b0 <= total);
        let mut bvals = Vec::with_capacity(total);
        let mut bvecs = Vec::with_capacity(total);
        let n_weighted = total - n_b0;
        // Interleave b0 volumes roughly evenly through the acquisition, as
        // real protocols do (first volume is always b0 when n_b0 > 0).
        let b0_stride = if n_b0 == 0 {
            usize::MAX
        } else {
            total.div_ceil(n_b0)
        };
        let golden = std::f64::consts::PI * (3.0 - 5.0f64.sqrt());
        let mut placed_b0 = 0;
        let mut placed_w = 0;
        for i in 0..total {
            let want_b0 = placed_b0 < n_b0 && (i % b0_stride == 0 || total - i == n_b0 - placed_b0);
            if want_b0 {
                bvals.push(0.0);
                bvecs.push([0.0, 0.0, 0.0]);
                placed_b0 += 1;
            } else {
                bvals.push(b);
                // Golden-spiral point k of n_weighted on the unit sphere.
                let k = placed_w as f64;
                let z = if n_weighted > 1 {
                    1.0 - 2.0 * k / (n_weighted as f64 - 1.0)
                } else {
                    0.0
                };
                let r = (1.0 - z * z).max(0.0).sqrt();
                let theta = golden * k;
                bvecs.push([r * theta.cos(), r * theta.sin(), z]);
                placed_w += 1;
            }
        }
        GradientTable { bvals, bvecs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hcp_table_shape() {
        let g = GradientTable::hcp_like(288, 18, 1000.0);
        assert_eq!(g.len(), 288);
        assert_eq!(g.b0_indices().len(), 18);
        assert_eq!(g.b0s_mask().count(), 18);
        assert_eq!(g.bvals[0], 0.0, "first volume is a b0 calibration volume");
    }

    #[test]
    fn weighted_directions_are_unit() {
        let g = GradientTable::hcp_like(64, 4, 2000.0);
        for (b, v) in g.bvals.iter().zip(&g.bvecs) {
            if *b > 0.0 {
                let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
                assert!((norm - 1.0).abs() < 1e-9, "direction {v:?} not unit");
            }
        }
    }

    #[test]
    fn directions_are_spread() {
        // No two weighted directions should coincide.
        let g = GradientTable::hcp_like(32, 2, 1000.0);
        let dirs: Vec<_> = g
            .bvals
            .iter()
            .zip(&g.bvecs)
            .filter(|(b, _)| **b > 0.0)
            .map(|(_, v)| *v)
            .collect();
        for i in 0..dirs.len() {
            for j in i + 1..dirs.len() {
                let d = (0..3)
                    .map(|k| (dirs[i][k] - dirs[j][k]).powi(2))
                    .sum::<f64>();
                assert!(d > 1e-6, "directions {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn all_b0_table() {
        let g = GradientTable::hcp_like(5, 5, 1000.0);
        assert_eq!(g.b0_indices(), vec![0, 1, 2, 3, 4]);
    }
}
