//! Neuroscience use case: diffusion-MRI analysis (the paper's §3.1).
//!
//! The pipeline has three steps, mirroring Figure 1 of the paper:
//!
//! 1. **Segmentation** (Step 1N) — select the non-diffusion-weighted (b0)
//!    volumes, average them, and build a brain mask with a median-filtered
//!    Otsu threshold ([`segment`]).
//! 2. **Denoising** (Step 2N) — per-volume non-local means over a 3-D
//!    sliding window, restricted to the mask ([`denoise`]).
//! 3. **Model fitting** (Step 3N) — per-voxel diffusion tensor model fit
//!    across all volumes, summarized as fractional anisotropy ([`dtm`]).
//!
//! [`pipeline`] chains the three steps into the single-machine reference
//! implementation every engine's output is validated against.

pub mod denoise;
pub mod dtm;
pub mod gradients;
pub mod pipeline;
pub mod segment;

pub use denoise::{nlmeans3d, nlmeans3d_par, NlmParams};
pub use dtm::{
    fit_dtm_volume, fit_dtm_volume_full, fit_dtm_volume_full_par, fit_dtm_volume_par,
    fractional_anisotropy, DtmFit,
};
pub use gradients::GradientTable;
pub use pipeline::{reference_pipeline, reference_pipeline_par, NeuroOutput};
pub use segment::{median_filter3d, median_otsu, otsu_threshold};
