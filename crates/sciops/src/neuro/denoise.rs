//! Step 2N — non-local means denoising.
//!
//! A blockwise non-local means filter over a 3-D sliding window (Coupé et
//! al. 2008, the paper's \[7]): each voxel is replaced by a weighted average
//! of voxels in a search window, weighted by the similarity of the small
//! patches around them. The brain mask restricts computation to ~2/3 of the
//! volume — the optimization TensorFlow cannot express (no masked
//! element-wise assignment), which the dataflow engine reproduces.

use marray::{window_bounds, Mask, NdArray};

/// Non-local means parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NlmParams {
    /// Search window radius (voxels).
    pub search_radius: usize,
    /// Patch radius for similarity comparison (voxels).
    pub patch_radius: usize,
    /// Noise standard deviation; weights decay as exp(-d² / h²) with
    /// h = `h_factor · sigma`.
    pub sigma: f64,
    /// Smoothing strength multiplier.
    pub h_factor: f64,
}

impl Default for NlmParams {
    fn default() -> Self {
        NlmParams {
            search_radius: 2,
            patch_radius: 1,
            sigma: 1.0,
            h_factor: 1.0,
        }
    }
}

/// Mean squared difference between the patches centered at `a` and `b`,
/// clamped at volume borders (patches are truncated symmetrically).
#[inline]
fn patch_distance(
    data: &[f64],
    dims: &[usize; 3],
    a: [usize; 3],
    b: [usize; 3],
    radius: usize,
) -> f64 {
    let (sy, sz) = (dims[1] * dims[2], dims[2]);
    let r = radius as isize;
    let mut sum = 0.0;
    let mut count = 0usize;
    for dx in -r..=r {
        for dy in -r..=r {
            for dz in -r..=r {
                let ax = a[0] as isize + dx;
                let ay = a[1] as isize + dy;
                let az = a[2] as isize + dz;
                let bx = b[0] as isize + dx;
                let by = b[1] as isize + dy;
                let bz = b[2] as isize + dz;
                let inside = |x: isize, y: isize, z: isize| {
                    x >= 0
                        && y >= 0
                        && z >= 0
                        && (x as usize) < dims[0]
                        && (y as usize) < dims[1]
                        && (z as usize) < dims[2]
                };
                if inside(ax, ay, az) && inside(bx, by, bz) {
                    let va = data[ax as usize * sy + ay as usize * sz + az as usize];
                    let vb = data[bx as usize * sy + by as usize * sz + bz as usize];
                    sum += (va - vb) * (va - vb);
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Denoise one 3-D volume with non-local means, computing only voxels where
/// `mask` is true (masked-out voxels pass through unchanged). Pass `None`
/// to denoise the full volume (the TensorFlow path).
pub fn nlmeans3d(volume: &NdArray<f64>, mask: Option<&Mask>, params: &NlmParams) -> NdArray<f64> {
    assert_eq!(volume.shape().rank(), 3, "nlmeans3d expects a 3-D volume");
    if let Some(m) = mask {
        assert_eq!(m.dims(), volume.dims(), "mask shape must match volume");
    }
    let dims = [volume.dims()[0], volume.dims()[1], volume.dims()[2]];
    let data = volume.data();
    let (sy, sz) = (dims[1] * dims[2], dims[2]);
    let h2 = (params.h_factor * params.sigma).powi(2).max(1e-12);
    let mut out = volume.clone();

    for x in 0..dims[0] {
        for y in 0..dims[1] {
            for z in 0..dims[2] {
                let off = x * sy + y * sz + z;
                if let Some(m) = mask {
                    if !m.get_flat(off) {
                        continue;
                    }
                }
                let (x0, x1) = window_bounds(x, params.search_radius, dims[0]);
                let (y0, y1) = window_bounds(y, params.search_radius, dims[1]);
                let (z0, z1) = window_bounds(z, params.search_radius, dims[2]);
                let mut wsum = 0.0;
                let mut vsum = 0.0;
                for nx in x0..x1 {
                    for ny in y0..y1 {
                        for nz in z0..z1 {
                            let d = patch_distance(
                                data,
                                &dims,
                                [x, y, z],
                                [nx, ny, nz],
                                params.patch_radius,
                            );
                            let w = (-d / h2).exp();
                            wsum += w;
                            vsum += w * data[nx * sy + ny * sz + nz];
                        }
                    }
                }
                out.data_mut()[off] = vsum / wsum;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_constant(seed: u64, level: f64, noise: f64) -> NdArray<f64> {
        let mut state = seed;
        NdArray::from_fn(&[6, 6, 6], |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            level + noise * u
        })
    }

    #[test]
    fn reduces_noise_on_constant_region() {
        let v = noisy_constant(7, 100.0, 5.0);
        let params = NlmParams {
            sigma: 5.0,
            ..Default::default()
        };
        let d = nlmeans3d(&v, None, &params);
        let noise_before = v.map(|x| x - 100.0).std();
        let noise_after = d.map(|x| x - 100.0).std();
        assert!(
            noise_after < 0.6 * noise_before,
            "noise {noise_after} not reduced from {noise_before}"
        );
    }

    #[test]
    fn preserves_strong_edges() {
        // Two constant halves with a large step; NLM should keep the step.
        let v = NdArray::from_fn(&[6, 6, 6], |ix| if ix[0] < 3 { 0.0 } else { 1000.0 });
        let params = NlmParams {
            sigma: 1.0,
            ..Default::default()
        };
        let d = nlmeans3d(&v, None, &params);
        assert!(d[&[0, 3, 3][..]] < 1.0);
        assert!(d[&[5, 3, 3][..]] > 999.0);
    }

    #[test]
    fn masked_voxels_pass_through() {
        let v = noisy_constant(13, 50.0, 5.0);
        let mask = Mask::from_vec(v.dims(), (0..v.len()).map(|i| i % 2 == 0).collect()).unwrap();
        let params = NlmParams {
            sigma: 5.0,
            ..Default::default()
        };
        let d = nlmeans3d(&v, Some(&mask), &params);
        for i in 0..v.len() {
            if !mask.get_flat(i) {
                assert_eq!(d.data()[i], v.data()[i], "masked-out voxel {i} changed");
            }
        }
    }

    #[test]
    fn masked_result_matches_unmasked_on_selected_voxels() {
        let v = noisy_constant(29, 10.0, 2.0);
        let full_mask = Mask::from_vec(v.dims(), vec![true; v.len()]).unwrap();
        let params = NlmParams {
            sigma: 2.0,
            ..Default::default()
        };
        let a = nlmeans3d(&v, None, &params);
        let b = nlmeans3d(&v, Some(&full_mask), &params);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_volume_is_fixed_point() {
        let v = NdArray::<f64>::full(&[5, 5, 5], 42.0);
        let d = nlmeans3d(&v, None, &NlmParams::default());
        for &x in d.data() {
            assert!((x - 42.0).abs() < 1e-9);
        }
    }
}
