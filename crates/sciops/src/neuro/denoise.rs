//! Step 2N — non-local means denoising.
//!
//! A blockwise non-local means filter over a 3-D sliding window (Coupé et
//! al. 2008, the paper's \[7]): each voxel is replaced by a weighted average
//! of voxels in a search window, weighted by the similarity of the small
//! patches around them. The brain mask restricts computation to ~2/3 of the
//! volume — the optimization TensorFlow cannot express (no masked
//! element-wise assignment), which the dataflow engine reproduces.
//!
//! The kernel is slab-parallel: the volume partitions into axis-0 planes,
//! each computed independently from the read-only input
//! ([`nlmeans3d_par`]). Per center voxel, the patch around the center is
//! gathered **once** and reused against every offset of the search window,
//! instead of being re-read (with bounds checks) for each of the
//! `(2r+1)³` candidates — a measurable win even single-threaded.

use marray::{window_bounds, Mask, NdArray};
use parexec::{par_chunks_mut, Parallelism};

/// Non-local means parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NlmParams {
    /// Search window radius (voxels).
    pub search_radius: usize,
    /// Patch radius for similarity comparison (voxels).
    pub patch_radius: usize,
    /// Noise standard deviation; weights decay as exp(-d² / h²) with
    /// h = `h_factor · sigma`.
    pub sigma: f64,
    /// Smoothing strength multiplier.
    pub h_factor: f64,
}

impl Default for NlmParams {
    fn default() -> Self {
        NlmParams {
            search_radius: 2,
            patch_radius: 1,
            sigma: 1.0,
            h_factor: 1.0,
        }
    }
}

/// The relative offsets of a cubic patch of radius `radius`, in the fixed
/// `(dx, dy, dz)` row-major order every distance accumulation uses — the
/// order is part of the determinism contract (float sums are
/// order-sensitive).
fn patch_offsets(radius: usize) -> Vec<[isize; 3]> {
    let r = radius as isize;
    let mut offsets = Vec::with_capacity((2 * radius + 1).pow(3));
    for dx in -r..=r {
        for dy in -r..=r {
            for dz in -r..=r {
                offsets.push([dx, dy, dz]);
            }
        }
    }
    offsets
}

#[inline]
fn inside(dims: &[usize; 3], x: isize, y: isize, z: isize) -> bool {
    x >= 0
        && y >= 0
        && z >= 0
        && (x as usize) < dims[0]
        && (y as usize) < dims[1]
        && (z as usize) < dims[2]
}

/// Denoise one 3-D volume with non-local means, computing only voxels where
/// `mask` is true (masked-out voxels pass through unchanged). Pass `None`
/// to denoise the full volume (the TensorFlow path).
///
/// Single-threaded reference path: identical to
/// [`nlmeans3d_par`] at [`Parallelism::Serial`].
pub fn nlmeans3d(volume: &NdArray<f64>, mask: Option<&Mask>, params: &NlmParams) -> NdArray<f64> {
    nlmeans3d_par(volume, mask, params, Parallelism::Serial)
}

/// [`nlmeans3d`] with explicit intra-node parallelism: axis-0 planes of the
/// output are distributed across `par.workers()` threads. Output is
/// bit-identical at every worker count — slab boundaries are fixed by the
/// volume shape, each voxel deterministically takes either the interior
/// contiguous-lane path or the guarded border path (the choice depends only
/// on its coordinates), every voxel's accumulation order is fixed, and
/// workers only write their own disjoint planes.
// scilint: allow(F003, output starts as a handle clone (refcount bump) and unshares on first write via make_mut)
pub fn nlmeans3d_par(
    volume: &NdArray<f64>,
    mask: Option<&Mask>,
    params: &NlmParams,
    par: Parallelism,
) -> NdArray<f64> {
    assert_eq!(volume.shape().rank(), 3, "nlmeans3d expects a 3-D volume");
    if let Some(m) = mask {
        assert_eq!(m.dims(), volume.dims(), "mask shape must match volume");
    }
    let dims = [volume.dims()[0], volume.dims()[1], volume.dims()[2]];
    let data = volume.data();
    let (sy, sz) = (dims[1] * dims[2], dims[2]);
    let h2 = (params.h_factor * params.sigma).powi(2).max(1e-12);
    let offsets = patch_offsets(params.patch_radius);
    let mut out = volume.clone();
    if sy == 0 {
        return out;
    }

    let pr = params.patch_radius;
    let margin = params.search_radius + pr;
    let pw = 2 * pr + 1;
    let n_off = offsets.len();

    par_chunks_mut(out.data_mut(), sy, par, |x, plane| {
        // Per-worker scratch: the center-patch cache, gathered once per
        // voxel and reused for every search-window candidate, plus a
        // candidate-patch buffer for the interior fast path.
        let mut center_vals = vec![0.0f64; n_off];
        let mut center_ok = vec![false; n_off];
        let mut cand_vals = vec![0.0f64; n_off];
        let x_interior = x >= margin && x + margin < dims[0];
        for y in 0..dims[1] {
            for z in 0..dims[2] {
                let plane_off = y * sz + z;
                let off = x * sy + plane_off;
                if let Some(m) = mask {
                    if !m.get_flat(off) {
                        continue;
                    }
                }
                // Interior fast path: when every candidate patch is fully
                // inside the volume, patches are gathered as contiguous
                // z-lanes (no per-offset bounds checks) and the distance
                // accumulates in a fixed 4-wide unrolled accumulator whose
                // lane assignment depends only on the flat offset index —
                // the summation order is a pure function of the voxel
                // coordinates, so output stays bit-identical at every
                // worker count.
                if x_interior
                    && y >= margin
                    && y + margin < dims[1]
                    && z >= margin
                    && z + margin < dims[2]
                {
                    let mut k = 0;
                    for dx in 0..pw {
                        for dy in 0..pw {
                            let base = (x + dx - pr) * sy + (y + dy - pr) * sz + (z - pr);
                            center_vals[k..k + pw].copy_from_slice(&data[base..base + pw]);
                            k += pw;
                        }
                    }
                    let (x0, x1) = window_bounds(x, params.search_radius, dims[0]);
                    let (y0, y1) = window_bounds(y, params.search_radius, dims[1]);
                    let (z0, z1) = window_bounds(z, params.search_radius, dims[2]);
                    let mut wsum = 0.0;
                    let mut vsum = 0.0;
                    for nx in x0..x1 {
                        for ny in y0..y1 {
                            for nz in z0..z1 {
                                let mut k = 0;
                                for dx in 0..pw {
                                    for dy in 0..pw {
                                        let base =
                                            (nx + dx - pr) * sy + (ny + dy - pr) * sz + (nz - pr);
                                        cand_vals[k..k + pw]
                                            .copy_from_slice(&data[base..base + pw]);
                                        k += pw;
                                    }
                                }
                                let mut acc = [0.0f64; 4];
                                let mut j = 0;
                                while j + 4 <= n_off {
                                    let d0 = center_vals[j] - cand_vals[j];
                                    let d1 = center_vals[j + 1] - cand_vals[j + 1];
                                    let d2 = center_vals[j + 2] - cand_vals[j + 2];
                                    let d3 = center_vals[j + 3] - cand_vals[j + 3];
                                    acc[0] += d0 * d0;
                                    acc[1] += d1 * d1;
                                    acc[2] += d2 * d2;
                                    acc[3] += d3 * d3;
                                    j += 4;
                                }
                                while j < n_off {
                                    let d = center_vals[j] - cand_vals[j];
                                    acc[j % 4] += d * d;
                                    j += 1;
                                }
                                let sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
                                let d = sum / n_off as f64;
                                let w = (-d / h2).exp();
                                wsum += w;
                                vsum += w * data[nx * sy + ny * sz + nz];
                            }
                        }
                    }
                    plane[plane_off] = vsum / wsum;
                    continue;
                }
                for (k, o) in offsets.iter().enumerate() {
                    let ax = x as isize + o[0];
                    let ay = y as isize + o[1];
                    let az = z as isize + o[2];
                    let ok = inside(&dims, ax, ay, az);
                    center_ok[k] = ok;
                    center_vals[k] = if ok {
                        data[ax as usize * sy + ay as usize * sz + az as usize]
                    } else {
                        0.0
                    };
                }
                let (x0, x1) = window_bounds(x, params.search_radius, dims[0]);
                let (y0, y1) = window_bounds(y, params.search_radius, dims[1]);
                let (z0, z1) = window_bounds(z, params.search_radius, dims[2]);
                let mut wsum = 0.0;
                let mut vsum = 0.0;
                for nx in x0..x1 {
                    for ny in y0..y1 {
                        for nz in z0..z1 {
                            // Patch distance against the cached center
                            // patch, accumulated in the fixed offset order.
                            let mut sum = 0.0;
                            let mut count = 0usize;
                            for (k, o) in offsets.iter().enumerate() {
                                if !center_ok[k] {
                                    continue;
                                }
                                let bx = nx as isize + o[0];
                                let by = ny as isize + o[1];
                                let bz = nz as isize + o[2];
                                if inside(&dims, bx, by, bz) {
                                    let vb =
                                        data[bx as usize * sy + by as usize * sz + bz as usize];
                                    let d = center_vals[k] - vb;
                                    sum += d * d;
                                    count += 1;
                                }
                            }
                            let d = if count == 0 { 0.0 } else { sum / count as f64 };
                            let w = (-d / h2).exp();
                            wsum += w;
                            vsum += w * data[nx * sy + ny * sz + nz];
                        }
                    }
                }
                plane[plane_off] = vsum / wsum;
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_constant(seed: u64, level: f64, noise: f64) -> NdArray<f64> {
        let mut state = seed;
        NdArray::from_fn(&[6, 6, 6], |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            level + noise * u
        })
    }

    #[test]
    fn reduces_noise_on_constant_region() {
        let v = noisy_constant(7, 100.0, 5.0);
        let params = NlmParams {
            sigma: 5.0,
            ..Default::default()
        };
        let d = nlmeans3d(&v, None, &params);
        let noise_before = v.map(|x| x - 100.0).std();
        let noise_after = d.map(|x| x - 100.0).std();
        assert!(
            noise_after < 0.6 * noise_before,
            "noise {noise_after} not reduced from {noise_before}"
        );
    }

    #[test]
    fn preserves_strong_edges() {
        // Two constant halves with a large step; NLM should keep the step.
        let v = NdArray::from_fn(&[6, 6, 6], |ix| if ix[0] < 3 { 0.0 } else { 1000.0 });
        let params = NlmParams {
            sigma: 1.0,
            ..Default::default()
        };
        let d = nlmeans3d(&v, None, &params);
        assert!(d[&[0, 3, 3][..]] < 1.0);
        assert!(d[&[5, 3, 3][..]] > 999.0);
    }

    #[test]
    fn masked_voxels_pass_through() {
        let v = noisy_constant(13, 50.0, 5.0);
        let mask = Mask::from_vec(v.dims(), (0..v.len()).map(|i| i % 2 == 0).collect()).unwrap();
        let params = NlmParams {
            sigma: 5.0,
            ..Default::default()
        };
        let d = nlmeans3d(&v, Some(&mask), &params);
        for i in 0..v.len() {
            if !mask.get_flat(i) {
                assert_eq!(d.data()[i], v.data()[i], "masked-out voxel {i} changed");
            }
        }
    }

    #[test]
    fn masked_result_matches_unmasked_on_selected_voxels() {
        let v = noisy_constant(29, 10.0, 2.0);
        let full_mask = Mask::from_vec(v.dims(), vec![true; v.len()]).unwrap();
        let params = NlmParams {
            sigma: 2.0,
            ..Default::default()
        };
        let a = nlmeans3d(&v, None, &params);
        let b = nlmeans3d(&v, Some(&full_mask), &params);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_volume_is_fixed_point() {
        let v = NdArray::<f64>::full(&[5, 5, 5], 42.0);
        let d = nlmeans3d(&v, None, &NlmParams::default());
        for &x in d.data() {
            assert!((x - 42.0).abs() < 1e-9);
        }
    }

    #[test]
    fn interior_fast_path_is_bit_identical_across_workers() {
        // Volume large enough that interior voxels take the unrolled
        // contiguous-lane path while border voxels keep the guarded path
        // (margin = search_radius + patch_radius = 3, so x in 3..7 etc.).
        let mut state = 99u64;
        let v = NdArray::from_fn(&[10, 9, 8], |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            60.0 + 8.0 * (((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
        });
        let params = NlmParams {
            sigma: 4.0,
            ..Default::default()
        };
        let serial = nlmeans3d_par(&v, None, &params, Parallelism::Serial);
        for workers in [1usize, 2, 4, 8] {
            let par = nlmeans3d_par(&v, None, &params, Parallelism::threads(workers));
            assert_eq!(serial, par, "workers={workers}");
        }
    }

    #[test]
    fn parallel_output_is_bit_identical() {
        let v = noisy_constant(41, 80.0, 6.0);
        let mask = Mask::from_vec(v.dims(), (0..v.len()).map(|i| i % 3 != 0).collect()).unwrap();
        let params = NlmParams {
            sigma: 6.0,
            ..Default::default()
        };
        let serial = nlmeans3d_par(&v, Some(&mask), &params, Parallelism::Serial);
        for workers in [1usize, 2, 4, 8] {
            let par = nlmeans3d_par(&v, Some(&mask), &params, Parallelism::threads(workers));
            assert_eq!(serial, par, "workers={workers}");
        }
    }
}
