//! Property-based tests for marray invariants.

use marray::{ChunkGrid, Mask, NdArray, Shape};
use proptest::prelude::*;

/// Strategy: a small random shape of rank 1..=4 with extents 1..=6.
fn shapes() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=6, 1..=4)
}

/// Strategy: a shape plus a matching data buffer.
fn arrays() -> impl Strategy<Value = NdArray<f64>> {
    shapes().prop_flat_map(|dims| {
        let len: usize = dims.iter().product();
        prop::collection::vec(-1e3f64..1e3, len)
            .prop_map(move |data| NdArray::from_vec(&dims, data).unwrap())
    })
}

proptest! {
    #[test]
    fn offset_unravel_inverse(dims in shapes(), salt in 0usize..1000) {
        let shape = Shape::new(&dims);
        let off = salt % shape.len();
        prop_assert_eq!(shape.offset(&shape.unravel(off)), off);
    }

    #[test]
    fn sum_axis_preserves_total(a in arrays(), axis_salt in 0usize..4) {
        let axis = axis_salt % a.shape().rank();
        let reduced = a.sum_axis(axis);
        prop_assert!((reduced.sum() - a.sum()).abs() < 1e-6 * (1.0 + a.sum().abs()));
    }

    #[test]
    fn mean_axis_bounded_by_extremes(a in arrays(), axis_salt in 0usize..4) {
        let axis = axis_salt % a.shape().rank();
        let m = a.mean_axis(axis);
        let (lo, hi) = (a.min(), a.max());
        for &v in m.data() {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn slice_then_concat_roundtrip(a in arrays()) {
        let axis = a.shape().rank() - 1;
        let slices: Vec<NdArray<f64>> = (0..a.shape().dim(axis))
            .map(|i| {
                // Re-expand each slice to rank N with extent 1 on `axis`.
                let s = a.slice_axis(axis, i).unwrap();
                let mut dims = a.dims().to_vec();
                dims[axis] = 1;
                s.reshape(&dims).unwrap()
            })
            .collect();
        let refs: Vec<&NdArray<f64>> = slices.iter().collect();
        let back = NdArray::concat(&refs, axis).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn chunk_split_assemble_roundtrip(a in arrays(), chunk_salt in 1usize..4) {
        let chunk_dims: Vec<usize> = a.dims().iter().map(|&d| chunk_salt.min(d)).collect();
        let grid = ChunkGrid::new(a.dims(), &chunk_dims).unwrap();
        let chunks = grid.split(&a).unwrap();
        // Chunks partition the elements exactly.
        let total: usize = chunks.iter().map(|(_, c)| c.len()).sum();
        prop_assert_eq!(total, a.len());
        let back = grid.assemble(&chunks).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn compress_axis_count_matches_mask(a in arrays(), bits in prop::collection::vec(any::<bool>(), 1..=6)) {
        let axis = a.shape().rank() - 1;
        let extent = a.shape().dim(axis);
        let mut bits = bits;
        bits.resize(extent, false);
        let mask = Mask::from_vec(&[extent], bits.clone()).unwrap();
        let out = a.compress_axis(&mask, axis).unwrap();
        let kept = bits.iter().filter(|&&b| b).count();
        prop_assert_eq!(out.shape().dim(axis), kept);
    }

    #[test]
    fn subarray_write_restores(a in arrays()) {
        // Extract the full array as a subarray and write it back into zeros.
        let starts = vec![0; a.shape().rank()];
        let sub = a.subarray(&starts, a.dims()).unwrap();
        prop_assert_eq!(&sub, &a);
        let mut b = NdArray::<f64>::zeros(a.dims());
        b.write_subarray(&starts, &sub).unwrap();
        prop_assert_eq!(b, a);
    }

    #[test]
    fn mask_fill_fraction_in_unit_interval(a in arrays(), t in -1e3f64..1e3) {
        let m = Mask::threshold(&a, t);
        let f = m.fill_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert_eq!(m.count() + a.data().iter().filter(|&&v| v <= t).count(), a.len());
    }
}
