use std::fmt;

/// Errors produced by array operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing (expected/got pairs)
pub enum ArrayError {
    /// Two arrays (or an array and an index) have incompatible shapes.
    ShapeMismatch {
        expected: Vec<usize>,
        got: Vec<usize>,
    },
    /// An axis argument is out of range for the array's rank.
    AxisOutOfRange { axis: usize, rank: usize },
    /// An index is out of bounds along some axis.
    IndexOutOfBounds { index: Vec<usize>, dims: Vec<usize> },
    /// A reshape target does not preserve the element count.
    BadReshape { from: Vec<usize>, to: Vec<usize> },
    /// The data buffer length does not match the shape's element count.
    BadBufferLen { expected: usize, got: usize },
    /// A mask's length does not match the extent it selects over.
    BadMaskLen { expected: usize, got: usize },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
            ArrayError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} array")
            }
            ArrayError::IndexOutOfBounds { index, dims } => {
                write!(f, "index {index:?} out of bounds for dims {dims:?}")
            }
            ArrayError::BadReshape { from, to } => {
                write!(
                    f,
                    "cannot reshape {from:?} into {to:?}: element counts differ"
                )
            }
            ArrayError::BadBufferLen { expected, got } => {
                write!(
                    f,
                    "buffer length {got} does not match shape element count {expected}"
                )
            }
            ArrayError::BadMaskLen { expected, got } => {
                write!(
                    f,
                    "mask length {got} does not match selected extent {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ArrayError {}

/// Convenience result alias for array operations.
pub type Result<T> = std::result::Result<T, ArrayError>;
