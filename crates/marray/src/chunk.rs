use crate::array::NdArray;
use crate::element::Element;
use crate::error::{ArrayError, Result};
use crate::shape::Shape;

/// A regular chunking of an N-dimensional extent — the storage model of the
/// SciDB-analog array engine.
///
/// The extent is divided into a grid of chunks of `chunk_dims` (edge chunks
/// may be smaller). Chunks are identified by their grid coordinates
/// ([`ChunkIx`]) and enumerate in row-major order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkGrid {
    array_dims: Vec<usize>,
    chunk_dims: Vec<usize>,
    grid_dims: Vec<usize>,
}

/// Grid coordinates of one chunk.
pub type ChunkIx = Vec<usize>;

impl ChunkGrid {
    /// Build a grid over `array_dims` with chunks of `chunk_dims`.
    pub fn new(array_dims: &[usize], chunk_dims: &[usize]) -> Result<Self> {
        if array_dims.len() != chunk_dims.len() || chunk_dims.contains(&0) {
            return Err(ArrayError::ShapeMismatch {
                expected: array_dims.to_vec(),
                got: chunk_dims.to_vec(),
            });
        }
        let grid_dims = array_dims
            .iter()
            .zip(chunk_dims)
            .map(|(&a, &c)| a.div_ceil(c))
            .collect();
        Ok(ChunkGrid {
            array_dims: array_dims.to_vec(),
            chunk_dims: chunk_dims.to_vec(),
            grid_dims,
        })
    }

    /// Extents of the chunked array.
    pub fn array_dims(&self) -> &[usize] {
        &self.array_dims
    }

    /// Nominal chunk extents.
    pub fn chunk_dims(&self) -> &[usize] {
        &self.chunk_dims
    }

    /// Extents of the chunk grid itself.
    pub fn grid_dims(&self) -> &[usize] {
        &self.grid_dims
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.grid_dims.iter().product()
    }

    /// Origin (element coordinates) of chunk `ix`.
    pub fn chunk_origin(&self, ix: &[usize]) -> Vec<usize> {
        ix.iter()
            .zip(&self.chunk_dims)
            .map(|(&g, &c)| g * c)
            .collect()
    }

    /// Actual extents of chunk `ix` (edge chunks are clipped).
    pub fn chunk_extent(&self, ix: &[usize]) -> Vec<usize> {
        ix.iter()
            .zip(&self.chunk_dims)
            .zip(&self.array_dims)
            .map(|((&g, &c), &a)| c.min(a - g * c))
            .collect()
    }

    /// Iterate all chunk grid coordinates in row-major order.
    pub fn chunk_indices(&self) -> impl Iterator<Item = ChunkIx> {
        Shape::new(&self.grid_dims).indices()
    }

    /// The chunk grid coordinates containing element coordinates `pos`.
    pub fn chunk_of(&self, pos: &[usize]) -> ChunkIx {
        pos.iter()
            .zip(&self.chunk_dims)
            .map(|(&p, &c)| p / c)
            .collect()
    }

    /// Chunk grid coordinates intersecting the hyper-rectangle
    /// `[starts, starts+dims)` — used to plan chunk-misaligned selections.
    pub fn chunks_overlapping(&self, starts: &[usize], dims: &[usize]) -> Vec<ChunkIx> {
        let lo = self.chunk_of(starts);
        let hi: Vec<usize> = starts
            .iter()
            .zip(dims)
            .zip(&self.chunk_dims)
            .map(|((&s, &d), &c)| if d == 0 { s / c } else { (s + d - 1) / c })
            .collect();
        let ranges: Vec<usize> = lo.iter().zip(&hi).map(|(&l, &h)| h - l + 1).collect();
        Shape::new(&ranges)
            .indices()
            .map(|rel| rel.iter().zip(&lo).map(|(&r, &l)| r + l).collect())
            .collect()
    }

    /// Split an array into its chunks, in row-major grid order.
    pub fn split<T: Element>(&self, array: &NdArray<T>) -> Result<Vec<(ChunkIx, NdArray<T>)>> {
        if array.dims() != self.array_dims.as_slice() {
            return Err(ArrayError::ShapeMismatch {
                expected: self.array_dims.clone(),
                got: array.dims().to_vec(),
            });
        }
        let mut out = Vec::with_capacity(self.num_chunks());
        for ix in self.chunk_indices() {
            let origin = self.chunk_origin(&ix);
            let extent = self.chunk_extent(&ix);
            out.push((ix, array.subarray(&origin, &extent)?));
        }
        Ok(out)
    }

    /// Reassemble chunks (in any order) into the full array.
    ///
    /// Governed chunks are read through a temporary handle so the
    /// caller's stored handles stay unpinned (and spillable) afterwards.
    pub fn assemble<T: Element>(&self, chunks: &[(ChunkIx, NdArray<T>)]) -> Result<NdArray<T>> {
        let mut out = NdArray::zeros(&self.array_dims);
        for (ix, chunk) in chunks {
            let origin = self.chunk_origin(ix);
            let reader = chunk.handle_clone();
            out.write_subarray(&origin, &reader)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dims_round_up() {
        let g = ChunkGrid::new(&[10, 7], &[4, 4]).unwrap();
        assert_eq!(g.grid_dims(), &[3, 2]);
        assert_eq!(g.num_chunks(), 6);
    }

    #[test]
    fn edge_chunks_are_clipped() {
        let g = ChunkGrid::new(&[10, 7], &[4, 4]).unwrap();
        assert_eq!(g.chunk_extent(&[0, 0]), vec![4, 4]);
        assert_eq!(g.chunk_extent(&[2, 1]), vec![2, 3]);
        assert_eq!(g.chunk_origin(&[2, 1]), vec![8, 4]);
    }

    #[test]
    fn split_assemble_roundtrip() {
        let a = NdArray::from_fn(&[9, 5], |ix| (ix[0] * 5 + ix[1]) as f64);
        let g = ChunkGrid::new(&[9, 5], &[4, 3]).unwrap();
        let chunks = g.split(&a).unwrap();
        assert_eq!(chunks.len(), g.num_chunks());
        let b = g.assemble(&chunks).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chunk_of_and_overlap() {
        let g = ChunkGrid::new(&[100, 100], &[10, 10]).unwrap();
        assert_eq!(g.chunk_of(&[25, 99]), vec![2, 9]);
        // A selection crossing two chunks on each axis touches 4 chunks.
        let touched = g.chunks_overlapping(&[5, 15], &[10, 10]);
        assert_eq!(touched.len(), 4);
        assert!(touched.contains(&vec![0, 1]));
        assert!(touched.contains(&vec![1, 2]));
    }

    #[test]
    fn aligned_selection_touches_one_chunk() {
        let g = ChunkGrid::new(&[100, 100], &[10, 10]).unwrap();
        let touched = g.chunks_overlapping(&[10, 20], &[10, 10]);
        assert_eq!(touched, vec![vec![1, 2]]);
    }

    #[test]
    fn zero_chunk_dim_is_error() {
        assert!(ChunkGrid::new(&[10], &[0]).is_err());
        assert!(ChunkGrid::new(&[10, 10], &[5]).is_err());
    }
}
