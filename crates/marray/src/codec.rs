//! Lightweight chunk compression: the codecs behind [`crate::ChunkBuf`]'s
//! compressed representations.
//!
//! MorphStore-style holistic compression (Damme et al., VLDB 2020) applied
//! to the workloads of Mehta et al. (VLDB 2017): the planes these pipelines
//! move are highly redundant — mask planes are almost entirely zero,
//! variance planes are per-sensor constants, sky backgrounds are smooth —
//! so the bytes crossing engine boundaries can shrink by integer factors
//! without touching payload semantics. Three codecs cover those shapes:
//!
//! * **Const** — a single value covering the whole chunk (all-zero masks,
//!   uniform variance planes). One value + a length.
//! * **Rle** — run-length encoding over *bit-pattern* runs (mostly-constant
//!   masks and variance planes with a few flagged regions).
//! * **For** — frame-of-reference: each value stored as a fixed-width
//!   little-endian delta from the chunk minimum, in the order-preserving
//!   `u64` key space of [`Element::to_ordered_u64`] (narrow-range label /
//!   depth planes).
//!
//! Every codec is exact: `encode` → [`Encoded::decode`] reproduces the
//! original buffer **bit for bit**, NaN payloads, `-0.0` and subnormals
//! included, because run detection and deltas operate on the ordered bit
//! patterns, never on float `==`. That is what lets compressed chunks flow
//! through kernels bound by the workspace's bit-identity contract.
//!
//! Encode/decode traffic is accounted twice over: the [`CodecCounter`]
//! ledger tracks per-codec bytes in/out and call counts, and each call is
//! folded into the process-wide [`CopyCounter`] ledger under the
//! `"codec.encode"` / `"codec.decode"` reason tags so the existing
//! copies-per-run reporting sees compression work alongside deep copies.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use crate::chunkstore::{with_mode_section, CopyCounter, RestoreMode};
use crate::element::Element;

/// The storage representation of a [`crate::ChunkBuf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkRepr {
    /// Uncompressed element buffer.
    Dense,
    /// Run-length encoded bit-pattern runs.
    Rle,
    /// Frame-of-reference fixed-width deltas from the chunk minimum.
    For,
    /// A single value covering the whole chunk.
    Const,
}

impl ChunkRepr {
    /// Stable lowercase name (artifact/report key).
    pub fn as_str(&self) -> &'static str {
        match self {
            ChunkRepr::Dense => "dense",
            ChunkRepr::Rle => "rle",
            ChunkRepr::For => "for",
            ChunkRepr::Const => "const",
        }
    }
}

/// Whether chunk producers may choose compressed representations,
/// process-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressMode {
    /// Never compress: every chunk stays dense. The baseline the compress
    /// bench measures against.
    Off,
    /// Compress when a codec actually shrinks the chunk (the default).
    Auto,
}

/// 0 = Auto, 1 = Off; mirrors [`CompressMode`] for the atomic cell.
static COMPRESS: AtomicU8 = AtomicU8::new(0);

/// The process-wide [`CompressMode`] currently in effect.
pub fn compress_mode() -> CompressMode {
    if COMPRESS.load(Ordering::SeqCst) == 0 {
        CompressMode::Auto
    } else {
        CompressMode::Off
    }
}

/// Run `f` with the process-wide compress mode set to `mode`, then restore.
///
/// Shares the mode-section lock with [`crate::with_copy_mode`] (sections of
/// either kind are mutually exclusive across threads and re-entrant on one
/// thread), so a bench can nest a copy-mode section inside a compress-mode
/// section without deadlock and counter deltas observed inside one section
/// are not polluted by another thread's section.
pub fn with_compress_mode<R>(mode: CompressMode, f: impl FnOnce() -> R) -> R {
    with_mode_section(|| {
        let _restore = RestoreMode::new(&COMPRESS);
        COMPRESS.store(
            match mode {
                CompressMode::Auto => 0,
                CompressMode::Off => 1,
            },
            Ordering::SeqCst,
        );
        f()
    })
}

/// Per-codec encode/decode traffic for one representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodecReprStats {
    /// Buffers encoded into this representation.
    pub encodes: u64,
    /// Buffers decoded out of this representation.
    pub decodes: u64,
    /// Dense bytes that entered the encoder.
    pub dense_bytes: u64,
    /// Encoded bytes the encoder produced.
    pub encoded_bytes: u64,
}

/// Per-codec ledger snapshot (or delta), deterministically ordered.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CodecStats {
    /// Traffic per representation name (`"rle"`, `"for"`, `"const"`).
    pub by_codec: BTreeMap<String, CodecReprStats>,
}

impl CodecStats {
    /// The traffic recorded between `earlier` and `self` (saturating).
    pub fn since(&self, earlier: &CodecStats) -> CodecStats {
        let mut by_codec = BTreeMap::new();
        for (codec, now) in &self.by_codec {
            let base = earlier.by_codec.get(codec).copied().unwrap_or_default();
            let d = CodecReprStats {
                encodes: now.encodes.saturating_sub(base.encodes),
                decodes: now.decodes.saturating_sub(base.decodes),
                dense_bytes: now.dense_bytes.saturating_sub(base.dense_bytes),
                encoded_bytes: now.encoded_bytes.saturating_sub(base.encoded_bytes),
            };
            if d != CodecReprStats::default() {
                by_codec.insert(codec.clone(), d);
            }
        }
        CodecStats { by_codec }
    }

    /// Total encoder input bytes across codecs.
    pub fn dense_bytes(&self) -> u64 {
        self.by_codec.values().map(|s| s.dense_bytes).sum()
    }

    /// Total encoder output bytes across codecs.
    pub fn encoded_bytes(&self) -> u64 {
        self.by_codec.values().map(|s| s.encoded_bytes).sum()
    }
}

/// Per-codec breakdown. BTreeMap so reports iterate deterministically.
static BY_CODEC: Mutex<BTreeMap<String, CodecReprStats>> = Mutex::new(BTreeMap::new());

/// The process-wide codec ledger.
///
/// Like [`CopyCounter`], a namespace over globals: chunk buffers flow across
/// engine worker threads, so the ledger is process-wide and readers diff
/// [`CodecCounter::snapshot`]s with [`CodecStats::since`].
pub struct CodecCounter;

impl CodecCounter {
    /// Record one encode into `repr` (`dense` bytes in, `encoded` out).
    pub fn record_encode(repr: ChunkRepr, dense: usize, encoded: usize) {
        let mut map = BY_CODEC.lock().unwrap_or_else(|e| e.into_inner());
        let slot = map.entry(repr.as_str().to_string()).or_default();
        slot.encodes += 1;
        slot.dense_bytes += dense as u64;
        slot.encoded_bytes += encoded as u64;
    }

    /// Record one decode out of `repr` (`dense` bytes materialized).
    pub fn record_decode(repr: ChunkRepr, dense: usize) {
        let mut map = BY_CODEC.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(repr.as_str().to_string()).or_default().decodes += 1;
        let _ = dense;
    }

    /// A consistent view of the ledger as of now.
    pub fn snapshot() -> CodecStats {
        let map = BY_CODEC.lock().unwrap_or_else(|e| e.into_inner());
        CodecStats {
            by_codec: map.clone(),
        }
    }
}

/// A compressed element buffer: the in-memory encoded form a
/// [`crate::ChunkBuf`] can hold instead of a dense vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Encoded<T: Element> {
    /// Every element is `value` (bit-pattern equal), `len` elements.
    Const {
        /// The repeated value.
        value: T,
        /// Element count.
        len: usize,
    },
    /// Bit-pattern runs: `(run_length, value)` pairs in buffer order.
    Rle {
        /// The runs; lengths are positive and sum to `len`.
        runs: Vec<(u32, T)>,
        /// Element count.
        len: usize,
    },
    /// Fixed-width deltas from `reference` in ordered-`u64` key space.
    For {
        /// `min` of the buffer under [`Element::to_ordered_u64`].
        reference: u64,
        /// Bytes per delta (1..=7); always less than `T::BYTES`.
        width: usize,
        /// Little-endian packed deltas, `len * width` bytes.
        deltas: Vec<u8>,
        /// Element count.
        len: usize,
    },
}

/// Bytes needed to store `delta` little-endian (at least 1).
fn width_for(delta: u64) -> usize {
    ((64 - delta.leading_zeros() as usize).div_ceil(8)).max(1)
}

impl<T: Element> Encoded<T> {
    /// Which representation this is.
    pub fn repr(&self) -> ChunkRepr {
        match self {
            Encoded::Const { .. } => ChunkRepr::Const,
            Encoded::Rle { .. } => ChunkRepr::Rle,
            Encoded::For { .. } => ChunkRepr::For,
        }
    }

    /// The repeated value, when this is a [`ChunkRepr::Const`] encoding.
    pub fn as_const(&self) -> Option<T> {
        match self {
            Encoded::Const { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Logical element count.
    pub fn len(&self) -> usize {
        match self {
            Encoded::Const { len, .. } | Encoded::Rle { len, .. } | Encoded::For { len, .. } => {
                *len
            }
        }
    }

    /// True when the encoded buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encoded payload size in bytes (the compressed footprint).
    pub fn encoded_bytes(&self) -> usize {
        match self {
            Encoded::Const { .. } => 8 + T::BYTES,
            Encoded::Rle { runs, .. } => runs.len() * (4 + T::BYTES),
            Encoded::For { deltas, .. } => 8 + 1 + deltas.len(),
        }
    }

    /// Logical dense size in bytes.
    pub fn dense_bytes(&self) -> usize {
        self.len() * T::BYTES
    }

    /// Choose and build the smallest representation that actually shrinks
    /// `data`, or `None` when every codec would be at least as large as
    /// the dense buffer (noisy flux planes). Pure: no ledger traffic.
    pub fn encode(data: &[T]) -> Option<Encoded<T>> {
        if data.is_empty() {
            return None;
        }
        // One ordered-bits pass: run count and key range.
        let mut runs = 1usize;
        let mut prev = data[0].to_ordered_u64();
        let (mut min_key, mut max_key) = (prev, prev);
        for v in &data[1..] {
            let k = v.to_ordered_u64();
            if k != prev {
                runs += 1;
                prev = k;
            }
            min_key = min_key.min(k);
            max_key = max_key.max(k);
        }
        if runs == 1 {
            return Some(Encoded::Const {
                value: data[0],
                len: data.len(),
            });
        }
        let dense = data.len() * T::BYTES;
        let rle_bytes = runs * (4 + T::BYTES);
        let width = width_for(max_key - min_key);
        let for_bytes = if width < T::BYTES {
            8 + 1 + data.len() * width
        } else {
            usize::MAX
        };
        if rle_bytes.min(for_bytes) >= dense {
            return None;
        }
        if rle_bytes <= for_bytes {
            let mut out: Vec<(u32, T)> = Vec::with_capacity(runs);
            let mut cur = data[0];
            let mut cur_key = cur.to_ordered_u64();
            let mut count = 0u32;
            for &v in data {
                let k = v.to_ordered_u64();
                if k == cur_key && count < u32::MAX {
                    count += 1;
                } else {
                    out.push((count, cur));
                    cur = v;
                    cur_key = k;
                    count = 1;
                }
            }
            out.push((count, cur));
            Some(Encoded::Rle {
                runs: out,
                len: data.len(),
            })
        } else {
            let mut deltas = Vec::with_capacity(data.len() * width);
            for v in data {
                let d = v.to_ordered_u64() - min_key;
                deltas.extend_from_slice(&d.to_le_bytes()[..width]);
            }
            Some(Encoded::For {
                reference: min_key,
                width,
                deltas,
                len: data.len(),
            })
        }
    }

    /// [`Encoded::encode`] with ledger traffic: the encode is recorded in
    /// the [`CodecCounter`] and folded into the [`CopyCounter`] under the
    /// `"codec.encode"` reason (the encoder reads the whole dense buffer
    /// and writes the encoded bytes — that is the data movement charged).
    pub fn encode_counted(data: &[T]) -> Option<Encoded<T>> {
        let enc = Self::encode(data)?;
        CodecCounter::record_encode(enc.repr(), enc.dense_bytes(), enc.encoded_bytes());
        CopyCounter::record("codec.encode", enc.encoded_bytes());
        Some(enc)
    }

    /// Materialize the dense buffer, bit-identical to the encoder input.
    /// Pure: no ledger traffic.
    pub fn decode(&self) -> Vec<T> {
        match self {
            Encoded::Const { value, len } => vec![*value; *len],
            Encoded::Rle { runs, len } => {
                let mut out = Vec::with_capacity(*len);
                for &(count, value) in runs {
                    out.resize(out.len() + count as usize, value);
                }
                out
            }
            Encoded::For {
                reference,
                width,
                deltas,
                len,
            } => {
                let mut out = Vec::with_capacity(*len);
                for chunk in deltas.chunks_exact(*width) {
                    let mut le = [0u8; 8];
                    le[..*width].copy_from_slice(chunk);
                    out.push(T::from_ordered_u64(reference + u64::from_le_bytes(le)));
                }
                out
            }
        }
    }

    /// [`Encoded::decode`] with ledger traffic: recorded in the
    /// [`CodecCounter`] and folded into the [`CopyCounter`] under the
    /// `"codec.decode"` reason (the dense buffer is written out in full).
    pub fn decode_counted(&self) -> Vec<T> {
        CodecCounter::record_decode(self.repr(), self.dense_bytes());
        CopyCounter::record("codec.decode", self.dense_bytes());
        self.decode()
    }
}

/// Mean bit-pattern run length of `sample` (`len / runs`); 1.0 for fully
/// incompressible data, `len` for a constant buffer, 0.0 when empty. The
/// cost model's representation heuristic samples this instead of paying for
/// a full trial encode on planes that are unlikely to compress.
pub fn mean_run_len<T: Element>(sample: &[T]) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let mut runs = 1usize;
    let mut prev = sample[0].to_ordered_u64();
    for v in &sample[1..] {
        let k = v.to_ordered_u64();
        if k != prev {
            runs += 1;
            prev = k;
        }
    }
    sample.len() as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_bits_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn constant_plane_encodes_const() {
        let data = vec![3.5f64; 1000];
        let enc = Encoded::encode(&data).expect("compressible");
        assert_eq!(enc.repr(), ChunkRepr::Const);
        assert!(enc.encoded_bytes() < 20);
        assert_bits_eq(&enc.decode(), &data);
    }

    #[test]
    fn mostly_constant_plane_encodes_rle() {
        let mut data = vec![0.0f64; 4096];
        data[100] = 7.0;
        data[2000] = 9.0;
        let enc = Encoded::encode(&data).expect("compressible");
        assert_eq!(enc.repr(), ChunkRepr::Rle);
        assert!(enc.encoded_bytes() * 2 < enc.dense_bytes());
        assert_bits_eq(&enc.decode(), &data);
    }

    #[test]
    fn narrow_range_labels_encode_for() {
        // u32 labels in 0..200 — one byte of range, 4 dense bytes each,
        // alternating so RLE cannot win.
        let data: Vec<u32> = (0..4096u32).map(|i| i % 197).collect();
        let enc = Encoded::encode(&data).expect("compressible");
        assert_eq!(enc.repr(), ChunkRepr::For);
        assert_eq!(enc.decode(), data);
        assert!(enc.encoded_bytes() * 3 < enc.dense_bytes());
    }

    #[test]
    fn noisy_floats_refuse_to_encode() {
        // A full-range pseudo-random float plane: no codec shrinks it.
        let mut state = 0x9e3779b97f4a7c15u64;
        let data: Vec<f64> = (0..512)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 * 1e6 - 5e5
            })
            .collect();
        assert_eq!(Encoded::encode(&data), None);
    }

    #[test]
    fn negative_zero_does_not_join_positive_zero_runs() {
        let data = vec![0.0f64, -0.0, 0.0, -0.0];
        if let Some(enc) = Encoded::encode(&data) {
            assert_bits_eq(&enc.decode(), &data);
        }
        // The run detector must see two distinct bit patterns.
        assert!(mean_run_len(&data) < 1.5);
    }

    #[test]
    fn nan_payloads_roundtrip_bitwise() {
        let nan1 = f64::from_bits(0x7ff8_0000_0000_0001);
        let nan2 = f64::from_bits(0x7ff8_dead_beef_cafe);
        let mut data = vec![nan1; 64];
        data.extend(vec![nan2; 64]);
        let enc = Encoded::encode(&data).expect("two NaN runs compress");
        assert_eq!(enc.repr(), ChunkRepr::Rle);
        assert_bits_eq(&enc.decode(), &data);
    }

    #[test]
    fn empty_buffer_refuses_to_encode() {
        assert_eq!(Encoded::<f64>::encode(&[]), None);
    }

    #[test]
    fn mean_run_len_measures_runs() {
        assert_eq!(mean_run_len::<f64>(&[]), 0.0);
        assert_eq!(mean_run_len(&[5.0f64; 8]), 8.0);
        let alternating: Vec<f64> = (0..8).map(|i| (i % 2) as f64).collect();
        assert_eq!(mean_run_len(&alternating), 1.0);
    }

    #[test]
    fn counted_paths_hit_both_ledgers() {
        let before_codec = CodecCounter::snapshot();
        let before_copy = CopyCounter::snapshot();
        let data = vec![1.5f64; 256];
        let enc = Encoded::encode_counted(&data).expect("const");
        let dense = enc.decode_counted();
        assert_eq!(dense.len(), 256);
        let dc = CodecCounter::snapshot().since(&before_codec);
        let cc = CopyCounter::snapshot().since(&before_copy);
        let konst = dc.by_codec.get("const").expect("const codec traffic");
        assert_eq!(konst.encodes, 1);
        assert_eq!(konst.decodes, 1);
        assert_eq!(konst.dense_bytes, 256 * 8);
        assert!(konst.encoded_bytes < 32);
        assert!(cc.by_reason.contains_key("codec.encode"));
        assert_eq!(
            cc.by_reason.get("codec.decode").map(|r| r.bytes),
            Some(256 * 8)
        );
    }

    #[test]
    fn compress_mode_section_restores() {
        assert_eq!(compress_mode(), CompressMode::Auto);
        with_compress_mode(CompressMode::Off, || {
            assert_eq!(compress_mode(), CompressMode::Off);
            with_compress_mode(CompressMode::Auto, || {
                assert_eq!(compress_mode(), CompressMode::Auto);
            });
            assert_eq!(compress_mode(), CompressMode::Off);
        });
        assert_eq!(compress_mode(), CompressMode::Auto);
    }

    #[test]
    fn compress_mode_nests_with_copy_mode() {
        use crate::chunkstore::{with_copy_mode, CopyMode};
        with_compress_mode(CompressMode::Off, || {
            with_copy_mode(CopyMode::Eager, || {
                assert_eq!(compress_mode(), CompressMode::Off);
                assert_eq!(crate::chunkstore::copy_mode(), CopyMode::Eager);
            });
        });
    }

    /// Adversarial palette for the roundtrip property: `-0.0` vs `0.0`,
    /// subnormals, NaN payloads, infinities, plus arbitrary bit patterns.
    fn special_f64(pick: u8, bits: u64) -> f64 {
        match pick % 12 {
            0 => 0.0,
            1 => -0.0,
            2 => 5e-324, // smallest subnormal
            3 => -5e-324,
            4 => f64::MIN_POSITIVE / 2.0, // subnormal
            5 => f64::NAN,
            6 => f64::from_bits(0x7ff8_0000_0000_0042), // NaN payload
            7 => f64::INFINITY,
            8 => f64::NEG_INFINITY,
            9 => 1.0,
            10 => -1.0,
            _ => f64::from_bits(bits), // arbitrary bit pattern
        }
    }

    /// Build an adversarial plane: `shape` selects all-constant,
    /// alternating-pair, or arbitrary-mixture layouts over the palette.
    fn adversarial_plane(shape: u8, picks: &[(u8, u64)], n: usize) -> Vec<f64> {
        let value_at = |i: usize| {
            let (p, b) = picks[i % picks.len()];
            special_f64(p, b)
        };
        match shape % 3 {
            0 => vec![value_at(0); n],                      // all-constant
            1 => (0..n).map(|i| value_at(i % 2)).collect(), // alternating
            _ => (0..n).map(value_at).collect(),            // mixture
        }
    }

    proptest! {
        #[test]
        fn f64_roundtrip_is_bitwise_identity(
            shape in any::<u8>(),
            picks in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..16),
            n in 1usize..512,
        ) {
            let data = adversarial_plane(shape, &picks, n);
            if let Some(enc) = Encoded::encode(&data) {
                let back = enc.decode();
                prop_assert_eq!(back.len(), data.len());
                for (x, y) in back.iter().zip(&data) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
                // A codec is only chosen when it shrinks the buffer.
                prop_assert!(enc.encoded_bytes() < enc.dense_bytes());
            }
        }

        #[test]
        fn u8_roundtrip_is_identity(data in proptest::collection::vec(any::<u8>(), 1..1024)) {
            if let Some(enc) = Encoded::encode(&data) {
                prop_assert_eq!(enc.decode(), data);
            }
        }

        #[test]
        fn u16_roundtrip_is_identity(data in proptest::collection::vec(0u16..64, 1..1024)) {
            if let Some(enc) = Encoded::encode(&data) {
                prop_assert_eq!(enc.decode(), data);
            }
        }

        #[test]
        fn i64_roundtrip_is_identity(data in proptest::collection::vec(any::<i64>(), 1..256)) {
            if let Some(enc) = Encoded::encode(&data) {
                prop_assert_eq!(enc.decode(), data);
            }
        }
    }
}
