//! The out-of-core tier: a process-wide memory governor with LRU spill.
//!
//! Mehta et al. (VLDB 2017, Figure 15 and §5.3) found that under memory
//! pressure the evaluated systems split into two camps: engines that
//! degrade gracefully by spilling (Myria's pipelined operators) and
//! engines that crash or thrash (Spark beyond its fraction settings,
//! SciDB mis-sized chunks). The in-memory data plane of this workspace
//! used to be a third camp — plancheck statically *refuses* plans whose
//! working set exceeds RAM. This module turns that refusal into graceful
//! degradation:
//!
//! * [`MemoryGovernor`] — a namespace over process-wide state: a byte
//!   budget ([`set_mem_budget`] / [`with_mem_budget`], `0`/`None` =
//!   unbounded), a ledger of spill traffic ([`GovStats`]), and an LRU
//!   registry of every governed cell.
//! * Governed cells ([`crate::ChunkBuf::govern`]) — chunk buffers whose
//!   payload may be **Resident** (in memory) or **Spilled** (on disk in
//!   the process spill file). Access is transparent: the next
//!   [`crate::ChunkBuf::as_slice`] reloads the bytes bit-exactly.
//! * Pressure valves ([`register_valve`]) — callbacks (e.g. the serve
//!   layer's memo-cache eviction) that run *before* kernel chunks spill,
//!   so cheap-to-recompute cache entries are dropped first.
//!
//! ## Spill-file format
//!
//! One append-only temp file per process (unlinked at creation, so the
//! space is reclaimed on exit even on abnormal termination). Each spilled
//! cell is one record, serialized by [`spill_encode`]:
//!
//! ```text
//! tag: u8      0 = dense, 1 = const, 2 = rle, 3 = for
//! len: u64 LE  element count
//! dense: len × T::BYTES bytes (ordered-u64 keys, LE-truncated)
//! const: one T::BYTES key
//! rle:   run count u64 LE, then (count u32 LE, value key) pairs
//! for:   reference u64 LE, width u8, delta byte count u64 LE, deltas
//! ```
//!
//! Values travel as [`crate::Element::to_ordered_u64`] keys truncated to
//! `T::BYTES` little-endian bytes — the same order-preserving bijection
//! the codecs use — so every bit pattern (NaN payloads, `-0.0`,
//! subnormals) reloads exactly and compressed chunks spill in their
//! *encoded* form, riding the codec savings through the I/O tier.
//!
//! ## Residency state machine
//!
//! ```text
//!            make_room / enforce (clean + unpinned)
//!   Resident ────────────────────────────────────────▶ Spilled
//!      ▲                                                  │
//!      └──────────────── as_slice reload ─────────────────┘
//! ```
//!
//! A cell is *pinned* while any handle holds its dense bytes (a
//! [`crate::ChunkBuf`] that called `as_slice`); pinned cells are skipped
//! by the spiller, which is what bounds peak residency by
//! `budget ≥ live_pins × chunk_bytes` — the budget-derived granularity
//! formula `chunk_bytes ≤ budget / (workers × slack)` exists to keep that
//! inequality satisfiable (see `core::costmodel::choose_chunk_shape`).
//!
//! Governed cells never mutate in place (mutation leaves the governed
//! domain via copy-on-write), so a reloaded cell keeps its spill-file
//! record and a later re-spill frees memory without rewriting the bytes.
//!
//! Accounting: [`GovStats::resident_bytes`] / `peak_resident` track the
//! *stored* representation of governed cells. Transient dense
//! materializations of encoded cells are charged to the
//! [`CopyCounter`] ledger (`"codec.decode"`), like the in-memory plane.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, TryLockError, Weak};

use crate::chunkstore::{with_mode_section, CopyCounter};
use crate::codec::{ChunkRepr, Encoded};
use crate::element::Element;

/// The byte budget; 0 = unbounded.
static BUDGET: AtomicU64 = AtomicU64::new(0);
/// Spill events (cells moved out of memory).
static SPILLS: AtomicU64 = AtomicU64::new(0);
/// Reload events (cells moved back in).
static RELOADS: AtomicU64 = AtomicU64::new(0);
/// Bytes written to the spill file (first spill of each cell only —
/// re-spills reuse the record).
static SPILLED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bytes read back from the spill file.
static RELOADED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Stored bytes of governed cells currently resident (gauge).
static RESIDENT: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`RESIDENT`] since start / last reset (gauge).
static PEAK: AtomicU64 = AtomicU64::new(0);
/// Cell id allocator.
static NEXT_ID: AtomicU64 = AtomicU64::new(0);
/// Valve id allocator.
static NEXT_VALVE: AtomicU64 = AtomicU64::new(0);

/// The LRU registry: cell id → (last-touch tick, cell).
struct Registry {
    clock: u64,
    cells: BTreeMap<u64, (u64, Weak<dyn SpillableCell>)>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    clock: 0,
    cells: BTreeMap::new(),
});

/// Registered pressure valves, run before LRU spilling.
type Valve = Box<dyn Fn(u64) -> u64 + Send + Sync>;
static VALVES: Mutex<BTreeMap<u64, Valve>> = Mutex::new(BTreeMap::new());

/// The process-wide memory budget for governed chunk storage, if bounded.
pub fn mem_budget() -> Option<u64> {
    match BUDGET.load(Ordering::SeqCst) {
        0 => None,
        b => Some(b),
    }
}

/// Set the process-wide budget (`None` = unbounded) and immediately
/// enforce it (valves first, then LRU spill of clean cells).
pub fn set_mem_budget(budget: Option<u64>) {
    BUDGET.store(budget.unwrap_or(0), Ordering::SeqCst);
    enforce();
}

/// Restores the budget cell on drop, even across panics.
struct RestoreBudget(u64);

impl Drop for RestoreBudget {
    fn drop(&mut self) {
        BUDGET.store(self.0, Ordering::SeqCst);
    }
}

/// Run `f` with the governor budget set to `budget`, then restore.
///
/// Shares the global mode-section lock with [`crate::with_copy_mode`] /
/// [`crate::with_compress_mode`] (mutually exclusive across threads,
/// re-entrant on one thread), so governor-stat deltas observed inside one
/// section are not polluted by another thread's section.
pub fn with_mem_budget<R>(budget: Option<u64>, f: impl FnOnce() -> R) -> R {
    with_mode_section(|| {
        let _restore = RestoreBudget(BUDGET.load(Ordering::SeqCst));
        set_mem_budget(budget);
        f()
    })
}

/// A snapshot (or delta) of the governor's spill ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovStats {
    /// Cells moved out of memory (re-spills of a reloaded cell included).
    pub spills: u64,
    /// Cells reloaded from the spill file.
    pub reloads: u64,
    /// Bytes written to the spill file (each cell's record is written
    /// once; re-spills reuse it).
    pub spilled_bytes: u64,
    /// Bytes read back from the spill file.
    pub reloaded_bytes: u64,
    /// Stored bytes of governed cells currently resident (gauge — not
    /// differenced by [`GovStats::since`]).
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes` since process start or the
    /// last [`MemoryGovernor::reset_peak`] (gauge).
    pub peak_resident: u64,
}

impl GovStats {
    /// The traffic recorded between `earlier` and `self` (saturating);
    /// the gauges carry `self`'s values unchanged.
    pub fn since(&self, earlier: &GovStats) -> GovStats {
        GovStats {
            spills: self.spills.saturating_sub(earlier.spills),
            reloads: self.reloads.saturating_sub(earlier.reloads),
            spilled_bytes: self.spilled_bytes.saturating_sub(earlier.spilled_bytes),
            reloaded_bytes: self.reloaded_bytes.saturating_sub(earlier.reloaded_bytes),
            resident_bytes: self.resident_bytes,
            peak_resident: self.peak_resident,
        }
    }
}

/// The process-wide memory governor.
///
/// Like [`CopyCounter`], a namespace over globals: governed cells flow
/// across engine worker threads, so budget, registry and ledger are
/// process-wide. Readers take [`MemoryGovernor::snapshot`]s and diff them
/// with [`GovStats::since`].
pub struct MemoryGovernor;

impl MemoryGovernor {
    /// A consistent view of the spill ledger as of now.
    pub fn snapshot() -> GovStats {
        GovStats {
            spills: SPILLS.load(Ordering::Relaxed),
            reloads: RELOADS.load(Ordering::Relaxed),
            spilled_bytes: SPILLED_BYTES.load(Ordering::Relaxed),
            reloaded_bytes: RELOADED_BYTES.load(Ordering::Relaxed),
            resident_bytes: RESIDENT.load(Ordering::Relaxed),
            peak_resident: PEAK.load(Ordering::Relaxed),
        }
    }

    /// Reset the peak-residency high-water mark to the current residency,
    /// so a bench row measures its own peak rather than the process's.
    pub fn reset_peak() {
        PEAK.store(RESIDENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Enforce the budget now (valves, then LRU spill of clean cells).
    ///
    /// Spilling normally rides governor events (ingest, reload, budget
    /// changes), so residency can sit over budget between events when the
    /// last event's victims were still pinned — e.g. right after an
    /// ingest loop whose source handles died after their `govern()` call.
    /// Call this at a phase boundary to settle residency before reading
    /// the gauges.
    pub fn enforce() {
        enforce();
    }
}

/// Register a pressure valve: a callback invoked with the byte excess
/// when the governor goes over budget, *before* any kernel chunk spills;
/// it returns the bytes it released (e.g. by evicting cache entries).
/// Returns a handle that unregisters the valve when dropped.
pub fn register_valve(valve: Valve) -> ValveGuard {
    let id = NEXT_VALVE.fetch_add(1, Ordering::Relaxed);
    VALVES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, valve);
    ValveGuard { id }
}

/// Unregisters its pressure valve on drop (see [`register_valve`]).
#[derive(Debug)]
pub struct ValveGuard {
    id: u64,
}

impl Drop for ValveGuard {
    fn drop(&mut self) {
        VALVES
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.id);
    }
}

/// Anything the governor can ask to vacate memory.
trait SpillableCell: Send + Sync {
    /// Try to move the stored bytes to the spill tier; returns bytes
    /// released (0 when pinned, contended, or already spilled).
    fn try_spill(&self) -> u64;
}

/// Record `bytes` newly resident, updating the high-water mark.
fn add_resident(bytes: u64) {
    let now = RESIDENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

/// Make room for `incoming` bytes: run valves, then spill LRU-clean
/// cells, until `resident + incoming` fits the budget (or nothing more
/// can be released). Called *before* residency grows so the peak gauge
/// never overshoots the budget by a chunk the spiller could have freed.
fn make_room(incoming: u64) {
    let Some(budget) = mem_budget() else { return };
    let headroom = budget.saturating_sub(incoming);
    if RESIDENT.load(Ordering::Relaxed) <= headroom {
        return;
    }
    // Valves first: cache entries are cheaper to drop than kernel chunks
    // are to spill and reload.
    {
        let valves = VALVES.lock().unwrap_or_else(|e| e.into_inner());
        for valve in valves.values() {
            let resident = RESIDENT.load(Ordering::Relaxed);
            if resident <= headroom {
                return;
            }
            valve(resident - headroom);
        }
    }
    // Then LRU spill. Victims are snapshotted under the registry lock but
    // spilled outside it (cell → file lock order, never registry → cell
    // while a cell holds the registry).
    let victims: Vec<Arc<dyn SpillableCell>> = {
        let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        let mut with_ticks: Vec<(u64, u64, Arc<dyn SpillableCell>)> = reg
            .cells
            .iter()
            .filter_map(|(id, (tick, weak))| weak.upgrade().map(|c| (*tick, *id, c)))
            .collect();
        with_ticks.sort_by_key(|&(tick, id, _)| (tick, id));
        with_ticks.into_iter().map(|(_, _, c)| c).collect()
    };
    for cell in victims {
        if RESIDENT.load(Ordering::Relaxed) <= headroom {
            break;
        }
        cell.try_spill();
    }
}

/// Enforce the budget on the current residency (no incoming bytes).
fn enforce() {
    make_room(0);
}

/// Mark `id` most-recently-used.
fn touch(id: u64) {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.clock += 1;
    let tick = reg.clock;
    if let Some(entry) = reg.cells.get_mut(&id) {
        entry.0 = tick;
    }
}

/// The stored representation of a governed cell while resident.
#[derive(Debug)]
pub(crate) enum Stored<T: Element> {
    /// Dense shared vector — the arc handles pin against spilling.
    Dense(Arc<Vec<T>>),
    /// Encoded form; dense reads decode per acquire (counted).
    Encoded(Encoded<T>),
}

impl<T: Element> Stored<T> {
    /// Bytes this representation occupies while resident.
    fn nbytes(&self) -> usize {
        match self {
            Stored::Dense(v) => v.len() * T::BYTES,
            Stored::Encoded(e) => e.encoded_bytes(),
        }
    }
}

/// Where a governed cell's record lives in the spill file.
#[derive(Debug, Clone, Copy)]
struct Ticket {
    offset: u64,
    nbytes: u64,
}

/// Residency of a governed cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellState {
    Resident,
    Spilled,
}

/// The mutable half of a governed cell.
#[derive(Debug)]
struct CellInner<T: Element> {
    /// `Some` while resident, `None` while spilled.
    stored: Option<Stored<T>>,
    /// The cell's spill-file record, once written. Cells are immutable,
    /// so a re-spill after reload reuses the record without rewriting.
    ticket: Option<Ticket>,
}

/// A budget-governed chunk cell: the storage behind
/// `Payload::Governed`. Immutable once created (mutation leaves the
/// governed domain via COW), resident or spilled at any moment.
#[derive(Debug)]
pub(crate) struct GovernedCell<T: Element> {
    id: u64,
    len: usize,
    repr: ChunkRepr,
    stored_nbytes: usize,
    inner: Mutex<CellInner<T>>,
}

impl<T: Element> GovernedCell<T> {
    /// Logical element count.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The stored representation (stable across spill/reload).
    pub(crate) fn repr(&self) -> ChunkRepr {
        self.repr
    }

    /// Bytes the stored representation occupies (resident or not).
    pub(crate) fn stored_nbytes(&self) -> usize {
        self.stored_nbytes
    }

    /// True when the cell's bytes are currently on disk.
    pub(crate) fn is_spilled(&self) -> bool {
        self.state() == CellState::Spilled
    }

    fn state(&self) -> CellState {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.stored.is_some() {
            CellState::Resident
        } else {
            CellState::Spilled
        }
    }

    /// The dense elements, reloading from the spill file first when
    /// spilled. The returned arc pins the cell resident (for dense
    /// storage) until the caller drops it.
    // scilint: allow(F001, spill-file records are written by this process; a short read is an I/O fault, not a data error)
    pub(crate) fn acquire(&self) -> Arc<Vec<T>> {
        let arc = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.stored.is_none() {
                let ticket = inner
                    .ticket
                    .expect("spilled governed cell must hold a spill ticket");
                // Room for the reload is made before residency grows;
                // self is currently Spilled, so try_spill skips it.
                make_room(self.stored_nbytes as u64);
                let stored = spill_file().read_record::<T>(ticket);
                RELOADS.fetch_add(1, Ordering::Relaxed);
                RELOADED_BYTES.fetch_add(ticket.nbytes, Ordering::Relaxed);
                CopyCounter::record("governor.reload", ticket.nbytes as usize);
                add_resident(self.stored_nbytes as u64);
                inner.stored = Some(stored);
            }
            match inner
                .stored
                .as_ref()
                .expect("reload leaves the cell resident")
            {
                Stored::Dense(v) => v.clone(),
                Stored::Encoded(e) => Arc::new(e.decode_counted()),
            }
        };
        touch(self.id);
        enforce();
        arc
    }

    /// An owned dense vector, leaving the cell untouched. Cloning out of
    /// resident dense storage is a counted deep copy under `reason`;
    /// encoded storage decodes (counted `"codec.decode"`).
    pub(crate) fn take_dense(&self, reason: &str) -> Vec<T> {
        let arc = self.acquire();
        match Arc::try_unwrap(arc) {
            Ok(v) => v,
            Err(shared) => {
                CopyCounter::record(reason, shared.len() * T::BYTES);
                // scilint: allow(F003, COW exit from the governed domain: the deep copy is metered under the caller's reason tag, exactly like ensure_dense's unsanctioned-share path)
                shared.as_ref().clone()
            }
        }
    }
}

impl<T: Element> SpillableCell for GovernedCell<T> {
    fn try_spill(&self) -> u64 {
        let mut inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return 0,
        };
        let Some(stored) = &inner.stored else {
            return 0; // already spilled
        };
        if let Stored::Dense(v) = stored {
            if Arc::strong_count(v) > 1 {
                return 0; // pinned by a live handle
            }
        }
        let ticket = match inner.ticket {
            Some(t) => t, // immutable cell: reuse the record
            None => {
                let t = spill_file().write_record(stored);
                SPILLED_BYTES.fetch_add(t.nbytes, Ordering::Relaxed);
                CopyCounter::record("governor.spill", t.nbytes as usize);
                t
            }
        };
        inner.ticket = Some(ticket);
        inner.stored = None;
        SPILLS.fetch_add(1, Ordering::Relaxed);
        RESIDENT.fetch_sub(self.stored_nbytes as u64, Ordering::Relaxed);
        self.stored_nbytes as u64
    }
}

impl<T: Element> Drop for GovernedCell<T> {
    fn drop(&mut self) {
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        if inner.stored.is_some() {
            RESIDENT.fetch_sub(self.stored_nbytes as u64, Ordering::Relaxed);
        }
        REGISTRY
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .cells
            .remove(&self.id);
    }
}

/// Place `stored` under governor management: make room, account it
/// resident, register it in the LRU, and enforce the budget (a working
/// set larger than the budget spills its coldest cells immediately).
pub(crate) fn govern_stored<T: Element>(
    stored: Stored<T>,
    len: usize,
    repr: ChunkRepr,
) -> Arc<GovernedCell<T>> {
    let stored_nbytes = stored.nbytes();
    make_room(stored_nbytes as u64);
    let cell = Arc::new(GovernedCell {
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        len,
        repr,
        stored_nbytes,
        inner: Mutex::new(CellInner {
            stored: Some(stored),
            ticket: None,
        }),
    });
    add_resident(stored_nbytes as u64);
    {
        let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        reg.clock += 1;
        let tick = reg.clock;
        let weak: Weak<dyn SpillableCell> = Arc::downgrade(&cell) as Weak<dyn SpillableCell>;
        reg.cells.insert(cell.id, (tick, weak));
    }
    enforce();
    cell
}

// ---------------------------------------------------------------------------
// The spill file: the workspace's one sanctioned data-plane I/O site
// (scilint rule C002 pins file I/O in data-plane crates to this module).
// ---------------------------------------------------------------------------

/// The process spill file: append-only records behind one lock.
struct SpillFile {
    inner: Mutex<SpillFileInner>,
}

struct SpillFileInner {
    file: File,
    end: u64,
}

/// The lazily created process-wide spill file.
// scilint: allow(F001, failing to create the spill file means the host denies temp storage; out-of-core mode cannot proceed)
fn spill_file() -> &'static SpillFile {
    static FILE: OnceLock<SpillFile> = OnceLock::new();
    FILE.get_or_init(|| {
        let path = std::env::temp_dir().join(format!("scibench-spill-{}.bin", std::process::id()));
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .expect("create process spill file in temp dir");
        // Unlink immediately: the fd keeps the storage alive, and the
        // space is reclaimed when the process exits, however it exits.
        let _ = std::fs::remove_file(&path);
        SpillFile {
            inner: Mutex::new(SpillFileInner { file, end: 0 }),
        }
    })
}

/// Append `v`'s ordered-u64 key, truncated to `T::BYTES` LE bytes.
fn push_key<T: Element>(out: &mut Vec<u8>, v: T) {
    out.extend_from_slice(&v.to_ordered_u64().to_le_bytes()[..T::BYTES]);
}

/// Read one ordered-u64 key (`T::BYTES` LE bytes) at `*pos`, advancing it.
fn read_key<T: Element>(bytes: &[u8], pos: &mut usize) -> T {
    let mut le = [0u8; 8];
    le[..T::BYTES].copy_from_slice(&bytes[*pos..*pos + T::BYTES]);
    *pos += T::BYTES;
    T::from_ordered_u64(u64::from_le_bytes(le))
}

/// Serialize a stored representation into one spill record (see the
/// module docs for the byte layout). Named a codec so the copy-lint
/// grammar recognizes the byte traffic as sanctioned.
fn spill_encode<T: Element>(stored: &Stored<T>) -> Vec<u8> {
    let mut out = Vec::new();
    match stored {
        Stored::Dense(v) => {
            out.push(0u8);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            out.reserve(v.len() * T::BYTES);
            for &x in v.iter() {
                push_key(&mut out, x);
            }
        }
        Stored::Encoded(Encoded::Const { value, len }) => {
            out.push(1u8);
            out.extend_from_slice(&(*len as u64).to_le_bytes());
            push_key(&mut out, *value);
        }
        Stored::Encoded(Encoded::Rle { runs, len }) => {
            out.push(2u8);
            out.extend_from_slice(&(*len as u64).to_le_bytes());
            out.extend_from_slice(&(runs.len() as u64).to_le_bytes());
            for &(count, value) in runs {
                out.extend_from_slice(&count.to_le_bytes());
                push_key(&mut out, value);
            }
        }
        Stored::Encoded(Encoded::For {
            reference,
            width,
            deltas,
            len,
        }) => {
            out.push(3u8);
            out.extend_from_slice(&(*len as u64).to_le_bytes());
            out.extend_from_slice(&reference.to_le_bytes());
            out.push(*width as u8);
            out.extend_from_slice(&(deltas.len() as u64).to_le_bytes());
            out.extend_from_slice(deltas);
        }
    }
    out
}

/// Exact inverse of [`spill_encode`]: reconstruct the stored
/// representation from one spill record.
// scilint: allow(F001, spill records are produced by spill_encode in this process; a malformed record is an I/O fault)
fn spill_decode<T: Element>(bytes: &[u8]) -> Stored<T> {
    let tag = bytes[0];
    let mut pos = 1usize;
    let read_u64 = |pos: &mut usize| {
        let mut le = [0u8; 8];
        le.copy_from_slice(&bytes[*pos..*pos + 8]);
        *pos += 8;
        u64::from_le_bytes(le)
    };
    let len = read_u64(&mut pos) as usize;
    match tag {
        0 => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(read_key::<T>(bytes, &mut pos));
            }
            Stored::Dense(Arc::new(v))
        }
        1 => {
            let value = read_key::<T>(bytes, &mut pos);
            Stored::Encoded(Encoded::Const { value, len })
        }
        2 => {
            let n_runs = read_u64(&mut pos) as usize;
            let mut runs = Vec::with_capacity(n_runs);
            for _ in 0..n_runs {
                let mut le = [0u8; 4];
                le.copy_from_slice(&bytes[pos..pos + 4]);
                pos += 4;
                let count = u32::from_le_bytes(le);
                let value = read_key::<T>(bytes, &mut pos);
                runs.push((count, value));
            }
            Stored::Encoded(Encoded::Rle { runs, len })
        }
        3 => {
            let reference = read_u64(&mut pos);
            let width = bytes[pos] as usize;
            pos += 1;
            let n_deltas = read_u64(&mut pos) as usize;
            let deltas = bytes[pos..pos + n_deltas].to_vec();
            Stored::Encoded(Encoded::For {
                reference,
                width,
                deltas,
                len,
            })
        }
        other => unreachable!("unknown spill record tag {other}"),
    }
}

impl SpillFile {
    /// Append one record, returning where it landed.
    // scilint: allow(F001, a failed spill write means the host denies temp storage; out-of-core mode cannot proceed)
    fn write_record<T: Element>(&self, stored: &Stored<T>) -> Ticket {
        let bytes = spill_encode(stored);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let offset = inner.end;
        inner
            .file
            .seek(SeekFrom::Start(offset))
            .expect("seek spill file to append offset");
        inner
            .file
            .write_all(&bytes)
            .expect("append record to spill file");
        inner.end += bytes.len() as u64;
        Ticket {
            offset,
            nbytes: bytes.len() as u64,
        }
    }

    /// Read the record at `ticket` back, bit-exactly.
    // scilint: allow(F001, spill-file records are written by this process; a short read is an I/O fault, not a data error)
    fn read_record<T: Element>(&self, ticket: Ticket) -> Stored<T> {
        let mut bytes = vec![0u8; ticket.nbytes as usize];
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner
                .file
                .seek(SeekFrom::Start(ticket.offset))
                .expect("seek spill file to record offset");
            inner
                .file
                .read_exact(&mut bytes)
                .expect("read record back from spill file");
        }
        spill_decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_records_roundtrip_every_representation() {
        let file = spill_file();
        // Dense with adversarial bit patterns.
        let dense = Stored::Dense(Arc::new(vec![
            0.0f64,
            -0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_dead_beef_0001),
            5e-324,
            -5e-324,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ]));
        let t = file.write_record(&dense);
        let back = file.read_record::<f64>(t);
        match (&dense, &back) {
            (Stored::Dense(a), Stored::Dense(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            _ => panic!("dense record must reload dense"),
        }
        // Encoded forms reload as the same encoded form.
        for enc in [
            Encoded::Const {
                value: -0.0f64,
                len: 777,
            },
            Encoded::Rle {
                runs: vec![(3, 1.5f64), (5, f64::NAN), (1, -0.0)],
                len: 9,
            },
        ] {
            let t = file.write_record(&Stored::Encoded(enc.clone()));
            match file.read_record::<f64>(t) {
                Stored::Encoded(back) => {
                    assert_eq!(back.repr(), enc.repr());
                    let (a, b) = (enc.decode(), back.decode());
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                Stored::Dense(_) => panic!("encoded record must reload encoded"),
            }
        }
        // Frame-of-reference over a narrow-range label plane (u32).
        let labels: Vec<u32> = (0..512u32).map(|i| i % 7).collect();
        let enc = Encoded::encode(&labels).expect("narrow-range labels encode");
        assert_eq!(enc.repr(), ChunkRepr::For);
        let t = file.write_record(&Stored::Encoded(enc.clone()));
        match file.read_record::<u32>(t) {
            Stored::Encoded(back) => {
                assert_eq!(back.repr(), ChunkRepr::For);
                assert_eq!(back.decode(), labels);
            }
            Stored::Dense(_) => panic!("encoded record must reload encoded"),
        }
    }

    #[test]
    fn budget_section_restores_on_exit() {
        with_mem_budget(Some(1 << 20), || {
            assert_eq!(mem_budget(), Some(1 << 20));
            with_mem_budget(None, || assert_eq!(mem_budget(), None));
            assert_eq!(mem_budget(), Some(1 << 20));
        });
    }

    #[test]
    fn valves_run_before_spill_and_unregister_on_drop() {
        use std::sync::atomic::AtomicU64 as A;
        static CALLS: A = A::new(0);
        with_mem_budget(Some(1024), || {
            let guard = register_valve(Box::new(|excess| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                assert!(excess > 0);
                0
            }));
            let cells: Vec<_> = (0..4)
                .map(|i| {
                    govern_stored(
                        Stored::Dense(Arc::new(vec![i as f64; 64])), // 512 B each
                        64,
                        ChunkRepr::Dense,
                    )
                })
                .collect();
            assert!(CALLS.load(Ordering::Relaxed) > 0, "valve saw pressure");
            drop(guard);
            let before = CALLS.load(Ordering::Relaxed);
            let _more = govern_stored(
                Stored::Dense(Arc::new(vec![9.0f64; 64])),
                64,
                ChunkRepr::Dense,
            );
            assert_eq!(
                CALLS.load(Ordering::Relaxed),
                before,
                "dropped valve must not run"
            );
            drop(cells);
        });
    }
}
