use crate::chunkstore::{ChunkBuf, ChunkView};
use crate::element::Element;
use crate::error::{ArrayError, Result};
use crate::shape::Shape;

/// A dense, row-major N-dimensional array over a shared chunk buffer.
///
/// This is the in-memory payload type flowing through every engine in the
/// workspace: NIfTI volumes, FITS planes, masks, tensors, and blobs are all
/// `NdArray<f32>` / `NdArray<f64>` / `NdArray<u8>` under the hood.
///
/// Storage is a reference-counted [`ChunkBuf`]: `clone()` shares the bytes
/// (a refcount bump under [`crate::CopyMode::Shared`], the default), and
/// mutation is copy-on-write — mutating accessors deep-copy only when the
/// buffer is shared, and every deep copy is recorded by
/// [`crate::CopyCounter`]. Use [`NdArray::materialize`] when a copy is
/// architecturally required regardless of sharing.
#[derive(Debug, Clone, PartialEq)]
pub struct NdArray<T: Element> {
    shape: Shape,
    data: ChunkBuf<T>,
}

impl<T: Element> NdArray<T> {
    /// Internal: wrap a freshly built buffer (no copy, no counting).
    #[inline]
    fn from_parts(shape: Shape, data: Vec<T>) -> Self {
        NdArray {
            shape,
            data: ChunkBuf::from_vec(data),
        }
    }

    /// Internal: the raw element slice.
    #[inline]
    fn d(&self) -> &[T] {
        self.data.as_slice()
    }

    /// Array of `T::ZERO` with the given dims.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self::from_parts(shape, vec![T::ZERO; len])
    }

    /// Array filled with `value`.
    pub fn full(dims: &[usize], value: T) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self::from_parts(shape, vec![value; len])
    }

    /// Array built by evaluating `f` at every multi-index (row-major order).
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> T) -> Self {
        let shape = Shape::new(dims);
        let mut data = Vec::with_capacity(shape.len());
        for ix in shape.indices() {
            data.push(f(&ix));
        }
        Self::from_parts(shape, data)
    }

    /// Wrap an existing buffer. Fails if the length does not match the shape.
    pub fn from_vec(dims: &[usize], data: Vec<T>) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.len() != data.len() {
            return Err(ArrayError::BadBufferLen {
                expected: shape.len(),
                got: data.len(),
            });
        }
        Ok(Self::from_parts(shape, data))
    }

    /// The array's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Axis extents (shorthand for `shape().dims()`).
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major element buffer.
    #[inline]
    pub fn data(&self) -> &[T] {
        self.data.as_slice()
    }

    /// Mutable raw row-major element buffer.
    ///
    /// Copy-on-write: free when this array is the sole owner of its buffer,
    /// otherwise a deep copy recorded under reason `"cow"`.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        self.data.make_mut("cow")
    }

    /// Consume the array, returning its buffer.
    ///
    /// Free when this array is the sole owner of its buffer, otherwise a
    /// deep copy recorded under reason `"unshare"`.
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_vec("unshare")
    }

    /// The shared buffer behind this array.
    #[inline]
    pub fn buf(&self) -> &ChunkBuf<T> {
        &self.data
    }

    /// True when `self` and `other` share the same underlying allocation —
    /// the property the zero-copy data plane preserves across engine
    /// boundaries.
    pub fn shares_buffer(&self, other: &NdArray<T>) -> bool {
        self.data.ptr_eq(&other.data)
    }

    /// An explicit, always-counted deep copy of this array under `reason`.
    ///
    /// The sanctioned escape hatch for engine boundaries whose architectural
    /// contract requires a private copy (e.g. the SciDB analog's chunked
    /// rewrite); accidental copies should share instead.
    pub fn materialize(&self, reason: &str) -> NdArray<T> {
        NdArray {
            shape: self.shape.clone(),
            data: self.data.deep_copy(reason),
        }
    }

    /// Re-encode this array's buffer into the smallest compressed
    /// representation (see [`crate::codec`]), when a codec actually
    /// shrinks it and the global [`crate::CompressMode`] allows it;
    /// otherwise a cheap handle clone. Reads through [`NdArray::data`]
    /// keep working transparently (lazy shared decode); mutation
    /// materializes a private dense buffer (COW).
    pub fn compressed(&self) -> NdArray<T> {
        NdArray {
            shape: self.shape.clone(),
            data: self.data.compressed(),
        }
    }

    /// Internal: a handle clone (refcount bump) regardless of the global
    /// [`crate::CopyMode`] — for representation-level reads that must
    /// never be charged as payload copies. The clone starts unpinned, so
    /// reading a governed array through it leaves the stored handle
    /// spillable (the pin dies with the temporary).
    pub(crate) fn handle_clone(&self) -> NdArray<T> {
        NdArray {
            shape: self.shape.clone(),
            data: self.data.handle_clone(),
        }
    }

    /// Place this array's buffer under [`crate::MemoryGovernor`]
    /// management (see [`ChunkBuf::govern`]): the governor may spill the
    /// bytes to disk under budget pressure, and the next read reloads
    /// them bit-exactly. No copy; the returned array starts unpinned.
    pub fn govern(&self) -> NdArray<T> {
        NdArray {
            shape: self.shape.clone(),
            data: self.data.govern(),
        }
    }

    /// Where this array's buffer currently lives (always
    /// [`crate::Residency::Resident`] for non-governed arrays).
    pub fn residency(&self) -> crate::Residency {
        self.data.residency()
    }

    /// Drop this handle's pin on a governed buffer, making it spillable
    /// again without dropping the handle (see [`ChunkBuf::release`]);
    /// the next [`NdArray::data`] re-pins, reloading if the buffer
    /// spilled in the meantime. No-op for non-governed arrays. Streaming
    /// consumers call this between chunks so their working set, not
    /// their whole traversal history, is what counts against the budget.
    pub fn release(&mut self) {
        self.data.release();
    }

    /// The stored representation of this array's buffer.
    pub fn repr(&self) -> crate::ChunkRepr {
        self.data.repr()
    }

    /// The compressed form, when the buffer holds one — run-consuming
    /// kernels branch on this to do run-level arithmetic instead of
    /// decoding to per-pixel data.
    pub fn encoded(&self) -> Option<&crate::Encoded<T>> {
        self.data.encoded()
    }

    /// Bytes the stored representation occupies: equals [`NdArray::nbytes`]
    /// for dense arrays, the encoded footprint for compressed ones — the
    /// volume that actually crosses an engine boundary carrying this array.
    pub fn stored_nbytes(&self) -> usize {
        self.data.stored_nbytes()
    }

    /// A zero-copy view of `len` contiguous row-major elements starting at
    /// flat offset `start` — the slab handle partitioners hand to workers
    /// instead of `data()[lo..hi].to_vec()`.
    pub fn slice_view(&self, start: usize, len: usize) -> ChunkView<T> {
        self.data.view(start, len)
    }

    /// Number of elements in one *slab*: the contiguous row-major run of
    /// all elements sharing one index along axis 0. This is the natural
    /// partition unit for data-parallel kernels (`parexec`): slab
    /// boundaries never split an inner row, so per-slab work touches a
    /// contiguous buffer range.
    ///
    /// For a rank-0 or rank-1 array the slab is a single element.
    #[inline]
    pub fn slab_len(&self) -> usize {
        self.shape.dims().iter().skip(1).product::<usize>().max(1)
    }

    /// Number of slabs along axis 0 (`dims()[0]`, or the element count for
    /// rank ≤ 1).
    #[inline]
    pub fn num_slabs(&self) -> usize {
        if self.shape.rank() <= 1 {
            self.data.len()
        } else {
            self.shape.dim(0)
        }
    }

    /// Borrow slab `i` (the rank-(N-1) sub-array at axis-0 index `i`) as a
    /// contiguous slice.
    #[inline]
    pub fn slab(&self, i: usize) -> &[T] {
        let len = self.slab_len();
        &self.d()[i * len..(i + 1) * len]
    }

    /// Iterate the slabs along axis 0 as contiguous slices.
    pub fn slabs(&self) -> std::slice::Chunks<'_, T> {
        self.d().chunks(self.slab_len())
    }

    /// Iterate the slabs along axis 0 as disjoint mutable slices — the
    /// handles a data-parallel runtime distributes across workers.
    pub fn slabs_mut(&mut self) -> std::slice::ChunksMut<'_, T> {
        let len = self.slab_len();
        self.data.make_mut("cow").chunks_mut(len)
    }

    /// Size of the array payload in bytes when serialized densely.
    #[inline]
    pub fn nbytes(&self) -> usize {
        self.data.len() * T::BYTES
    }

    /// Checked element access.
    pub fn get(&self, index: &[usize]) -> Result<T> {
        Ok(self.d()[self.shape.offset_checked(index)?])
    }

    /// Checked element write.
    pub fn set(&mut self, index: &[usize], value: T) -> Result<()> {
        let off = self.shape.offset_checked(index)?;
        self.data.make_mut("cow")[off] = value;
        Ok(())
    }

    /// Reshape to `dims` without moving data. Element count must match.
    pub fn reshape(self, dims: &[usize]) -> Result<Self> {
        let new = Shape::new(dims);
        if new.len() != self.shape.len() {
            return Err(ArrayError::BadReshape {
                from: self.shape.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        Ok(NdArray {
            shape: new,
            data: self.data,
        })
    }

    /// Flatten to rank 1.
    pub fn flatten(self) -> Self {
        let len = self.data.len();
        NdArray {
            shape: Shape::new(&[len]),
            data: self.data,
        }
    }

    /// Extract the rank-(N-1) sub-array at position `index` along `axis`.
    ///
    /// E.g. `slice_axis(3, k)` on a 4-D dMRI dataset extracts 3-D volume `k`.
    pub fn slice_axis(&self, axis: usize, index: usize) -> Result<Self> {
        if axis >= self.shape.rank() {
            return Err(ArrayError::AxisOutOfRange {
                axis,
                rank: self.shape.rank(),
            });
        }
        if index >= self.shape.dim(axis) {
            return Err(ArrayError::IndexOutOfBounds {
                index: vec![index],
                dims: vec![self.shape.dim(axis)],
            });
        }
        let out_shape = self.shape.without_axis(axis)?;
        let strides = self.shape.strides();
        // The slice is a strided copy: iterate output indices and map back.
        let mut data = Vec::with_capacity(out_shape.len());
        let mut src_ix = vec![0usize; self.shape.rank()];
        for out_ix in out_shape.indices() {
            let (head, tail) = out_ix.split_at(axis);
            src_ix[..axis].copy_from_slice(head);
            src_ix[axis] = index;
            src_ix[axis + 1..].copy_from_slice(tail);
            let off: usize = src_ix.iter().zip(&strides).map(|(&i, &s)| i * s).sum();
            data.push(self.d()[off]);
        }
        Ok(NdArray {
            shape: out_shape,
            data: ChunkBuf::from_vec(data),
        })
    }

    /// Select a subset of positions along `axis` (NumPy `take`).
    pub fn take_axis(&self, axis: usize, positions: &[usize]) -> Result<Self> {
        if axis >= self.shape.rank() {
            return Err(ArrayError::AxisOutOfRange {
                axis,
                rank: self.shape.rank(),
            });
        }
        for &p in positions {
            if p >= self.shape.dim(axis) {
                return Err(ArrayError::IndexOutOfBounds {
                    index: vec![p],
                    dims: vec![self.shape.dim(axis)],
                });
            }
        }
        let out_shape = self.shape.with_axis(axis, positions.len())?;
        let mut data = Vec::with_capacity(out_shape.len());
        let strides = self.shape.strides();
        let mut src_ix = vec![0usize; self.shape.rank()];
        for out_ix in out_shape.indices() {
            src_ix.copy_from_slice(&out_ix);
            src_ix[axis] = positions[out_ix[axis]];
            let off: usize = src_ix.iter().zip(&strides).map(|(&i, &s)| i * s).sum();
            data.push(self.d()[off]);
        }
        Ok(NdArray {
            shape: out_shape,
            data: ChunkBuf::from_vec(data),
        })
    }

    /// Extract the hyper-rectangle `[starts[i], starts[i] + dims[i])` on each
    /// axis (SciDB `between` / `subarray`).
    pub fn subarray(&self, starts: &[usize], dims: &[usize]) -> Result<Self> {
        if starts.len() != self.shape.rank() || dims.len() != self.shape.rank() {
            return Err(ArrayError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                got: dims.to_vec(),
            });
        }
        for (a, (&s0, &d)) in starts.iter().zip(dims).enumerate() {
            if s0 + d > self.shape.dim(a) {
                return Err(ArrayError::IndexOutOfBounds {
                    index: vec![s0 + d],
                    dims: vec![self.shape.dim(a)],
                });
            }
        }
        let out_shape = Shape::new(dims);
        let strides = self.shape.strides();
        let mut data = Vec::with_capacity(out_shape.len());
        for out_ix in out_shape.indices() {
            let off: usize = out_ix
                .iter()
                .zip(starts)
                .zip(&strides)
                .map(|((&i, &s0), &s)| (i + s0) * s)
                .sum();
            data.push(self.d()[off]);
        }
        Ok(NdArray {
            shape: out_shape,
            data: ChunkBuf::from_vec(data),
        })
    }

    /// Write `patch` into this array at origin `starts` (inverse of
    /// [`NdArray::subarray`]).
    pub fn write_subarray(&mut self, starts: &[usize], patch: &NdArray<T>) -> Result<()> {
        if starts.len() != self.shape.rank() || patch.shape.rank() != self.shape.rank() {
            return Err(ArrayError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                got: patch.shape.dims().to_vec(),
            });
        }
        for (a, &s0) in starts.iter().enumerate() {
            if s0 + patch.shape.dim(a) > self.shape.dim(a) {
                return Err(ArrayError::IndexOutOfBounds {
                    index: vec![s0 + patch.shape.dim(a)],
                    dims: vec![self.shape.dim(a)],
                });
            }
        }
        let strides = self.shape.strides();
        let dst = self.data.make_mut("cow");
        for src_ix in patch.shape.indices() {
            let off: usize = src_ix
                .iter()
                .zip(starts)
                .zip(&strides)
                .map(|((&i, &s0), &s)| (i + s0) * s)
                .sum();
            dst[off] = patch.d()[patch.shape.offset(&src_ix)];
        }
        Ok(())
    }

    /// Concatenate arrays along `axis`. All other extents must agree.
    // scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
    pub fn concat(parts: &[&NdArray<T>], axis: usize) -> Result<Self> {
        let first = parts.first().expect("concat of zero arrays");
        let rank = first.shape.rank();
        if axis >= rank {
            return Err(ArrayError::AxisOutOfRange { axis, rank });
        }
        let mut total = 0;
        for p in parts {
            for a in 0..rank {
                if a != axis && p.shape.dim(a) != first.shape.dim(a) {
                    return Err(ArrayError::ShapeMismatch {
                        expected: first.shape.dims().to_vec(),
                        got: p.shape.dims().to_vec(),
                    });
                }
            }
            total += p.shape.dim(axis);
        }
        let out_shape = first.shape.with_axis(axis, total)?;
        let mut out = NdArray::zeros(out_shape.dims());
        let mut cursor = 0;
        let mut starts = vec![0usize; rank];
        for p in parts {
            starts[axis] = cursor;
            out.write_subarray(&starts, p)?;
            cursor += p.shape.dim(axis);
        }
        Ok(out)
    }

    /// Permute the axes: `perm[i]` names the source axis that becomes
    /// output axis `i` (NumPy `transpose`). Produces a contiguous copy.
    pub fn permute_axes(&self, perm: &[usize]) -> Result<Self> {
        let rank = self.shape.rank();
        let mut seen = vec![false; rank];
        let valid = perm.len() == rank
            && perm.iter().all(|&a| {
                if a >= rank || seen[a] {
                    false
                } else {
                    seen[a] = true;
                    true
                }
            });
        if !valid {
            return Err(ArrayError::ShapeMismatch {
                expected: (0..rank).collect(),
                got: perm.to_vec(),
            });
        }
        let out_dims: Vec<usize> = perm.iter().map(|&a| self.shape.dim(a)).collect();
        let out_shape = Shape::new(&out_dims);
        let strides = self.shape.strides();
        let mut data = Vec::with_capacity(self.data.len());
        let mut src_ix = vec![0usize; rank];
        for out_ix in out_shape.indices() {
            for (i, &a) in perm.iter().enumerate() {
                src_ix[a] = out_ix[i];
            }
            let off: usize = src_ix.iter().zip(&strides).map(|(&i, &s)| i * s).sum();
            data.push(self.d()[off]);
        }
        Ok(NdArray {
            shape: out_shape,
            data: ChunkBuf::from_vec(data),
        })
    }

    /// Apply `f` to every element, producing a new array.
    pub fn map<U: Element>(&self, mut f: impl FnMut(T) -> U) -> NdArray<U> {
        NdArray {
            shape: self.shape.clone(),
            data: ChunkBuf::from_vec(self.d().iter().map(|&v| f(v)).collect()),
        }
    }

    /// Apply `f` in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(T) -> T) {
        for v in self.data.make_mut("cow").iter_mut() {
            *v = f(*v);
        }
    }

    /// Combine two same-shaped arrays element-wise.
    pub fn zip_with<U: Element, V: Element>(
        &self,
        other: &NdArray<U>,
        mut f: impl FnMut(T, U) -> V,
    ) -> Result<NdArray<V>> {
        if self.shape.dims() != other.shape.dims() {
            return Err(ArrayError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                got: other.shape.dims().to_vec(),
            });
        }
        Ok(NdArray {
            shape: self.shape.clone(),
            data: ChunkBuf::from_vec(
                self.d()
                    .iter()
                    .zip(other.d())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            ),
        })
    }

    /// Convert every element to another element type via `f64`.
    pub fn cast<U: Element>(&self) -> NdArray<U> {
        self.map(|v| U::from_f64(v.to_f64()))
    }
}

impl<T: Element> std::ops::Index<&[usize]> for NdArray<T> {
    type Output = T;
    #[inline]
    fn index(&self, index: &[usize]) -> &T {
        &self.d()[self.shape.offset(index)]
    }
}

impl<T: Element> std::ops::IndexMut<&[usize]> for NdArray<T> {
    #[inline]
    fn index_mut(&mut self, index: &[usize]) -> &mut T {
        let off = self.shape.offset(index);
        &mut self.data.make_mut("cow")[off]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(dims: &[usize]) -> NdArray<f64> {
        let mut n = 0.0;
        NdArray::from_fn(dims, |_| {
            n += 1.0;
            n - 1.0
        })
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(NdArray::from_vec(&[2, 3], vec![0.0f32; 6]).is_ok());
        assert!(NdArray::from_vec(&[2, 3], vec![0.0f32; 5]).is_err());
    }

    #[test]
    fn slice_axis_last() {
        let a = iota(&[2, 3]);
        let row = a.slice_axis(0, 1).unwrap();
        assert_eq!(row.data(), &[3.0, 4.0, 5.0]);
        let col = a.slice_axis(1, 2).unwrap();
        assert_eq!(col.data(), &[2.0, 5.0]);
    }

    #[test]
    fn slice_axis_4d_volume() {
        // 4-D like dMRI data: x,y,z,volume — slicing axis 3 extracts a volume.
        let a = NdArray::from_fn(&[2, 2, 2, 3], |ix| {
            (ix[3] * 1000 + ix[0] * 4 + ix[1] * 2 + ix[2]) as f64
        });
        let vol = a.slice_axis(3, 2).unwrap();
        assert_eq!(vol.dims(), &[2, 2, 2]);
        for (off, &v) in vol.data().iter().enumerate() {
            assert_eq!(v, 2000.0 + off as f64);
        }
    }

    #[test]
    fn take_axis_selects_positions() {
        let a = iota(&[2, 4]);
        let t = a.take_axis(1, &[0, 3]).unwrap();
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.data(), &[0.0, 3.0, 4.0, 7.0]);
    }

    #[test]
    fn subarray_and_write_roundtrip() {
        let a = iota(&[4, 5]);
        let sub = a.subarray(&[1, 2], &[2, 3]).unwrap();
        assert_eq!(sub.dims(), &[2, 3]);
        assert_eq!(sub[&[0, 0]], a[&[1, 2]]);
        assert_eq!(sub[&[1, 2]], a[&[2, 4]]);

        let mut b = NdArray::<f64>::zeros(&[4, 5]);
        b.write_subarray(&[1, 2], &sub).unwrap();
        assert_eq!(b[&[1, 2]], a[&[1, 2]]);
        assert_eq!(b[&[0, 0]], 0.0);
    }

    #[test]
    fn subarray_oob_is_error() {
        let a = iota(&[4, 5]);
        assert!(a.subarray(&[3, 0], &[2, 5]).is_err());
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = iota(&[2, 2]);
        let b = a.map(|v| v + 10.0);
        let c0 = NdArray::concat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.dims(), &[4, 2]);
        assert_eq!(c0[&[2, 0]], 10.0);
        let c1 = NdArray::concat(&[&a, &b], 1).unwrap();
        assert_eq!(c1.dims(), &[2, 4]);
        assert_eq!(c1[&[0, 2]], 10.0);
    }

    #[test]
    fn zip_with_shape_mismatch() {
        let a = iota(&[2, 2]);
        let b = iota(&[2, 3]);
        assert!(a.zip_with(&b, |x, y| x + y).is_err());
    }

    #[test]
    fn reshape_and_flatten() {
        let a = iota(&[2, 6]);
        let r = a.clone().reshape(&[3, 4]).unwrap();
        assert_eq!(r.dims(), &[3, 4]);
        assert_eq!(r.data(), a.data());
        assert!(a.clone().reshape(&[5, 2]).is_err());
        assert_eq!(a.flatten().dims(), &[12]);
    }

    #[test]
    fn cast_f32_u8() {
        let a = NdArray::from_vec(&[3], vec![0.2f32, 1.0, 250.7]).unwrap();
        let b: NdArray<u8> = a.cast();
        assert_eq!(b.data(), &[0u8, 1, 250]);
    }

    #[test]
    fn permute_axes_transposes() {
        let a = iota(&[2, 3]);
        let t = a.permute_axes(&[1, 0]).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(a[&[r, c][..]], t[&[c, r][..]]);
            }
        }
        // Identity permutation is a no-op copy.
        assert_eq!(a.permute_axes(&[0, 1]).unwrap(), a);
    }

    #[test]
    fn permute_axes_moves_volume_axis_first() {
        // The TF workaround shape: (x,y,z,v) → (v,x,y,z).
        let a = NdArray::from_fn(&[2, 3, 4, 5], |ix| {
            (ix[0] * 1000 + ix[1] * 100 + ix[2] * 10 + ix[3]) as f64
        });
        let t = a.permute_axes(&[3, 0, 1, 2]).unwrap();
        assert_eq!(t.dims(), &[5, 2, 3, 4]);
        assert_eq!(t[&[4, 1, 2, 3][..]], a[&[1, 2, 3, 4][..]]);
    }

    #[test]
    fn permute_axes_rejects_bad_perms() {
        let a = iota(&[2, 3]);
        assert!(a.permute_axes(&[0]).is_err());
        assert!(a.permute_axes(&[0, 0]).is_err());
        assert!(a.permute_axes(&[0, 2]).is_err());
    }

    #[test]
    fn slab_views_partition_axis0() {
        let a = iota(&[3, 2, 2]);
        assert_eq!(a.slab_len(), 4);
        assert_eq!(a.num_slabs(), 3);
        assert_eq!(a.slab(1), &[4.0, 5.0, 6.0, 7.0]);
        let collected: Vec<&[f64]> = a.slabs().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], a.slab(2));
        // Mutable slabs are disjoint and cover the whole buffer.
        let mut b = iota(&[3, 2, 2]);
        for (i, slab) in b.slabs_mut().enumerate() {
            for v in slab.iter_mut() {
                *v = i as f64;
            }
        }
        assert_eq!(b.slab(0), &[0.0; 4]);
        assert_eq!(b.slab(2), &[2.0; 4]);
    }

    #[test]
    fn slab_views_rank1_are_single_elements() {
        let a = iota(&[5]);
        assert_eq!(a.slab_len(), 1);
        assert_eq!(a.num_slabs(), 5);
        assert_eq!(a.slab(3), &[3.0]);
    }

    #[test]
    fn nbytes_accounts_for_type() {
        assert_eq!(NdArray::<f32>::zeros(&[10]).nbytes(), 40);
        assert_eq!(NdArray::<f64>::zeros(&[10]).nbytes(), 80);
        assert_eq!(NdArray::<u8>::zeros(&[10]).nbytes(), 10);
    }
}
