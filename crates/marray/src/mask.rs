use crate::array::NdArray;
use crate::element::Element;
use crate::error::{ArrayError, Result};

/// A boolean mask over an array or over one axis of an array.
///
/// Masks appear in two roles in the use cases:
/// * the per-subject **brain mask** (a 3-D mask applied element-wise to 3-D
///   volumes during denoising), and
/// * the **b0 selector** (`gtab.b0s_mask`: a 1-D mask over the volume axis
///   used by the segmentation step's `compress` call).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    bits: Vec<bool>,
    dims: Vec<usize>,
}

impl Mask {
    /// Build from raw booleans with a shape.
    pub fn from_vec(dims: &[usize], bits: Vec<bool>) -> Result<Self> {
        let expected: usize = dims.iter().product();
        if expected != bits.len() {
            return Err(ArrayError::BadBufferLen {
                expected,
                got: bits.len(),
            });
        }
        Ok(Mask {
            bits,
            dims: dims.to_vec(),
        })
    }

    /// Build by thresholding an array: `true` where `value > threshold`.
    pub fn threshold<T: Element>(array: &NdArray<T>, threshold: f64) -> Self {
        Mask {
            bits: array
                .data()
                .iter()
                .map(|v| v.to_f64() > threshold)
                .collect(),
            dims: array.dims().to_vec(),
        }
    }

    /// Mask extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Raw booleans in row-major order.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Total positions.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the mask covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of selected (`true`) positions.
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of selected positions.
    pub fn fill_fraction(&self) -> f64 {
        if self.bits.is_empty() {
            0.0
        } else {
            self.count() as f64 / self.bits.len() as f64
        }
    }

    /// Selected value at a flat offset.
    #[inline]
    pub fn get_flat(&self, offset: usize) -> bool {
        self.bits[offset]
    }

    /// Positions (flat offsets) where the mask is `true`.
    pub fn selected(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    /// Logical AND with another mask of the same shape.
    pub fn and(&self, other: &Mask) -> Result<Mask> {
        if self.dims != other.dims {
            return Err(ArrayError::ShapeMismatch {
                expected: self.dims.clone(),
                got: other.dims.clone(),
            });
        }
        Ok(Mask {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| a && b)
                .collect(),
            dims: self.dims.clone(),
        })
    }

    /// Render as a `u8` array (1 = selected), e.g. for serializing to NIfTI.
    // scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
    pub fn to_array(&self) -> NdArray<u8> {
        NdArray::from_vec(&self.dims, self.bits.iter().map(|&b| b as u8).collect())
            .expect("dims/len agree")
    }

    /// Interpret a numeric array as a mask (non-zero = selected).
    pub fn from_array<T: Element>(array: &NdArray<T>) -> Self {
        Mask {
            // scilint: allow(N001, NumPy truthiness semantics - exactly zero means unselected by definition)
            bits: array.data().iter().map(|v| v.to_f64() != 0.0).collect(),
            dims: array.dims().to_vec(),
        }
    }
}

impl<T: Element> NdArray<T> {
    /// Keep the positions along `axis` where `mask` is true — NumPy/SciDB
    /// `compress`. The mask must be 1-D with length equal to the axis extent.
    pub fn compress_axis(&self, mask: &Mask, axis: usize) -> Result<NdArray<T>> {
        if mask.dims().len() != 1 || mask.len() != self.shape().dim(axis) {
            return Err(ArrayError::BadMaskLen {
                expected: self.shape().dim(axis),
                got: mask.len(),
            });
        }
        self.take_axis(axis, &mask.selected())
    }

    /// Zero out every element where the (same-shaped) mask is false.
    pub fn apply_mask(&self, mask: &Mask) -> Result<NdArray<T>> {
        if mask.dims() != self.dims() {
            return Err(ArrayError::ShapeMismatch {
                expected: self.dims().to_vec(),
                got: mask.dims().to_vec(),
            });
        }
        let data = self
            .data()
            .iter()
            .zip(mask.bits())
            .map(|(&v, &keep)| if keep { v } else { T::ZERO })
            .collect();
        NdArray::from_vec(self.dims(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_and_count() {
        let a = NdArray::from_vec(&[2, 2], vec![0.0f64, 1.0, 2.0, 3.0]).unwrap();
        let m = Mask::threshold(&a, 1.5);
        assert_eq!(m.count(), 2);
        assert_eq!(m.fill_fraction(), 0.5);
        assert_eq!(m.selected(), vec![2, 3]);
    }

    #[test]
    fn compress_axis_selects_volumes() {
        // 18 of 288-style selection, shrunk: select volumes {0, 2} of 4.
        let a = NdArray::from_fn(&[2, 2, 4], |ix| ix[2] as f64);
        let m = Mask::from_vec(&[4], vec![true, false, true, false]).unwrap();
        let sel = a.compress_axis(&m, 2).unwrap();
        assert_eq!(sel.dims(), &[2, 2, 2]);
        assert_eq!(sel[&[0, 0, 0]], 0.0);
        assert_eq!(sel[&[0, 0, 1]], 2.0);
    }

    #[test]
    fn compress_axis_len_mismatch() {
        let a = NdArray::<f32>::zeros(&[2, 3]);
        let m = Mask::from_vec(&[2], vec![true, false]).unwrap();
        assert!(a.compress_axis(&m, 1).is_err());
    }

    #[test]
    fn apply_mask_zeros_background() {
        let a = NdArray::from_vec(&[4], vec![5.0f32, 6.0, 7.0, 8.0]).unwrap();
        let m = Mask::from_vec(&[4], vec![true, false, true, false]).unwrap();
        let out = a.apply_mask(&m).unwrap();
        assert_eq!(out.data(), &[5.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn mask_array_roundtrip() {
        let m = Mask::from_vec(&[2, 2], vec![true, false, false, true]).unwrap();
        let arr = m.to_array();
        assert_eq!(Mask::from_array(&arr), m);
    }

    #[test]
    fn and_combines() {
        let a = Mask::from_vec(&[3], vec![true, true, false]).unwrap();
        let b = Mask::from_vec(&[3], vec![true, false, true]).unwrap();
        assert_eq!(a.and(&b).unwrap().bits(), &[true, false, false]);
    }
}
