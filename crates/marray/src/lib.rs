#![warn(missing_docs)]

//! # marray — dense N-dimensional arrays for scientific image analytics
//!
//! A small, self-contained multidimensional array library providing the
//! operations the image-analytics use cases of Mehta et al. (VLDB 2017)
//! require: shape/stride arithmetic, axis slicing and reductions, boolean
//! masks and axis compression, element-wise arithmetic, 3-D window (stencil)
//! iteration, and regular chunking (the storage model of the SciDB-analog
//! engine).
//!
//! Arrays are dense, row-major (C order) and backed by reference-counted
//! immutable chunk buffers ([`ChunkBuf`]): cloning shares bytes, mutation is
//! copy-on-write, and every deep copy is recorded by the process-wide
//! [`CopyCounter`] — the zero-copy data plane the engine analogs build on
//! (see `chunkstore`). The library favours explicit index math over a
//! general view/lifetime system: kernels that need raw speed index into
//! `data()` slices directly with [`Shape::offset`].
//!
//! ```
//! use marray::NdArray;
//! let a = NdArray::from_fn(&[2, 3], |ix| (ix[0] * 3 + ix[1]) as f64);
//! assert_eq!(a[&[1, 2]], 5.0);
//! let col_means = a.mean_axis(0);
//! assert_eq!(col_means.shape().dims(), &[3]);
//! assert_eq!(col_means[&[0]], 1.5);
//! ```

mod array;
mod chunk;
mod chunkstore;
pub mod codec;
mod element;
mod error;
mod mask;
mod reduce;
mod shape;
mod spill;
mod window;

pub use array::NdArray;
pub use chunk::{ChunkGrid, ChunkIx};
pub use chunkstore::{
    copy_mode, record_copy, with_copy_mode, ChunkBuf, ChunkView, CopyCounter, CopyMode, CopyStats,
    ReasonStats, Residency,
};
pub use codec::{
    compress_mode, with_compress_mode, ChunkRepr, CodecCounter, CodecReprStats, CodecStats,
    CompressMode, Encoded,
};
pub use element::Element;
pub use error::{ArrayError, Result};
pub use mask::Mask;
pub use shape::Shape;
pub use spill::{
    mem_budget, register_valve, set_mem_budget, with_mem_budget, GovStats, MemoryGovernor,
    ValveGuard,
};
pub use window::{window_bounds, WindowIter};
