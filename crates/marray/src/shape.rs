use crate::error::{ArrayError, Result};

/// The shape of a dense, row-major (C-order) N-dimensional array.
///
/// Strides are derived, not stored independently: the last axis is always
/// contiguous. `Shape` carries all index arithmetic so that array code and
/// hand-rolled kernels share a single implementation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Create a shape from axis extents. A zero-rank shape describes a scalar.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Axis extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (1 for a scalar shape).
    #[inline]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the shape contains no elements (some extent is zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent along `axis`.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-index. Panics in debug builds on OOB.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len());
        let mut off = 0;
        for (i, (&ix, &d)) in index.iter().zip(&self.dims).enumerate() {
            debug_assert!(ix < d, "index {ix} out of bounds for axis {i} (extent {d})");
            off = off * d + ix;
        }
        off
    }

    /// Checked linear offset of a multi-index.
    pub fn offset_checked(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() || index.iter().zip(&self.dims).any(|(&ix, &d)| ix >= d) {
            return Err(ArrayError::IndexOutOfBounds {
                index: index.to_vec(),
                dims: self.dims.clone(),
            });
        }
        Ok(self.offset(index))
    }

    /// Inverse of [`Shape::offset`]: the multi-index of a linear offset.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        let mut index = vec![0; self.dims.len()];
        for i in (0..self.dims.len()).rev() {
            let d = self.dims[i];
            index[i] = offset % d;
            offset /= d;
        }
        index
    }

    /// Shape with `axis` removed (the result of reducing along it).
    pub fn without_axis(&self, axis: usize) -> Result<Shape> {
        if axis >= self.rank() {
            return Err(ArrayError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let mut dims = self.dims.clone();
        dims.remove(axis);
        Ok(Shape { dims })
    }

    /// Shape with the extent of `axis` replaced by `extent`.
    pub fn with_axis(&self, axis: usize, extent: usize) -> Result<Shape> {
        if axis >= self.rank() {
            return Err(ArrayError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let mut dims = self.dims.clone();
        dims[axis] = extent;
        Ok(Shape { dims })
    }

    /// Iterate over all multi-indices in row-major order.
    pub fn indices(&self) -> IndexIter {
        IndexIter {
            shape: self.clone(),
            next: Some(vec![0; self.dims.len()]),
            done: self.is_empty(),
        }
    }
}

/// Row-major iterator over every multi-index of a [`Shape`].
pub struct IndexIter {
    shape: Shape,
    next: Option<Vec<usize>>,
    done: bool,
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let current = self.next.clone()?;
        // Advance like an odometer.
        let mut idx = current.clone();
        let mut carried = true;
        for i in (0..idx.len()).rev() {
            idx[i] += 1;
            if idx[i] < self.shape.dims[i] {
                carried = false;
                break;
            }
            idx[i] = 0;
        }
        if carried {
            self.done = true;
        } else {
            self.next = Some(idx);
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
    }

    #[test]
    fn offset_and_unravel_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        for off in 0..s.len() {
            let ix = s.unravel(off);
            assert_eq!(s.offset(&ix), off);
        }
    }

    #[test]
    fn indices_cover_all_offsets_in_order() {
        let s = Shape::new(&[2, 2, 3]);
        let offs: Vec<usize> = s.indices().map(|ix| s.offset(&ix)).collect();
        assert_eq!(offs, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.indices().count(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn empty_shape_has_no_indices() {
        let s = Shape::new(&[3, 0, 2]);
        assert!(s.is_empty());
        assert_eq!(s.indices().count(), 0);
    }

    #[test]
    fn without_and_with_axis() {
        let s = Shape::new(&[4, 5, 6]);
        assert_eq!(s.without_axis(1).unwrap().dims(), &[4, 6]);
        assert_eq!(s.with_axis(2, 9).unwrap().dims(), &[4, 5, 9]);
        assert!(s.without_axis(3).is_err());
    }

    #[test]
    fn offset_checked_rejects_oob() {
        let s = Shape::new(&[2, 2]);
        assert!(s.offset_checked(&[1, 2]).is_err());
        assert!(s.offset_checked(&[1]).is_err());
        assert_eq!(s.offset_checked(&[1, 1]).unwrap(), 3);
    }
}
