use crate::array::NdArray;
use crate::element::Element;

impl<T: Element> NdArray<T> {
    /// Sum of all elements, accumulated in `f64`.
    pub fn sum(&self) -> f64 {
        self.data().iter().map(|v| v.to_f64()).sum()
    }

    /// Mean of all elements (`NaN` for empty arrays).
    pub fn mean(&self) -> f64 {
        self.sum() / self.len() as f64
    }

    /// Minimum element as `f64` (`INFINITY` for empty arrays).
    pub fn min(&self) -> f64 {
        self.data()
            .iter()
            .map(|v| v.to_f64())
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum element as `f64` (`NEG_INFINITY` for empty arrays).
    pub fn max(&self) -> f64 {
        self.data()
            .iter()
            .map(|v| v.to_f64())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Population standard deviation of all elements.
    pub fn std(&self) -> f64 {
        let mean = self.mean();
        let var = self
            .data()
            .iter()
            .map(|v| {
                let d = v.to_f64() - mean;
                d * d
            })
            .sum::<f64>()
            / self.len() as f64;
        var.sqrt()
    }

    /// Reduce along `axis` with an arbitrary fold over `f64` accumulators,
    /// producing a rank-(N-1) `f64` array.
    ///
    /// `init` seeds each output cell; `fold` combines an accumulator with
    /// one input element; `finish` post-processes with the reduced extent.
    // scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
    pub fn fold_axis(
        &self,
        axis: usize,
        init: f64,
        mut fold: impl FnMut(f64, f64) -> f64,
        finish: impl Fn(f64, usize) -> f64,
    ) -> NdArray<f64> {
        let shape = self.shape();
        let out_shape = shape.without_axis(axis).expect("axis in range");
        let n = shape.dim(axis);
        let mut acc = vec![init; out_shape.len()];
        let strides = shape.strides();
        let out_strides = out_shape.strides();
        // Walk the input once; map each input index to its output offset.
        for ix in shape.indices() {
            let in_off: usize = ix.iter().zip(&strides).map(|(&i, &s)| i * s).sum();
            let mut out_off = 0usize;
            let mut k = 0;
            for (a, &i) in ix.iter().enumerate() {
                if a == axis {
                    continue;
                }
                out_off += i * out_strides[k];
                k += 1;
            }
            acc[out_off] = fold(acc[out_off], self.data()[in_off].to_f64());
        }
        for v in &mut acc {
            *v = finish(*v, n);
        }
        NdArray::from_vec(out_shape.dims(), acc).expect("shape/len agree")
    }

    /// Sum along `axis`.
    pub fn sum_axis(&self, axis: usize) -> NdArray<f64> {
        self.fold_axis(axis, 0.0, |a, v| a + v, |a, _| a)
    }

    /// Mean along `axis` — the Step 1-N "mean volume" operation.
    pub fn mean_axis(&self, axis: usize) -> NdArray<f64> {
        self.fold_axis(axis, 0.0, |a, v| a + v, |a, n| a / n as f64)
    }

    /// Maximum along `axis`.
    pub fn max_axis(&self, axis: usize) -> NdArray<f64> {
        self.fold_axis(axis, f64::NEG_INFINITY, f64::max, |a, _| a)
    }

    /// Minimum along `axis`.
    pub fn min_axis(&self, axis: usize) -> NdArray<f64> {
        self.fold_axis(axis, f64::INFINITY, f64::min, |a, _| a)
    }

    /// Population standard deviation along `axis` (two-pass via sums).
    pub fn std_axis(&self, axis: usize) -> NdArray<f64> {
        let mean = self.mean_axis(axis);
        let sumsq = self.fold_axis(axis, 0.0, |a, v| a + v * v, |a, n| a / n as f64);
        sumsq
            .zip_with(&mean, |sq, m| (sq - m * m).max(0.0).sqrt())
            .expect("shapes agree")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(dims: &[usize]) -> NdArray<f64> {
        let mut n = -1.0;
        NdArray::from_fn(dims, |_| {
            n += 1.0;
            n
        })
    }

    #[test]
    fn global_reductions() {
        let a = iota(&[2, 3]); // 0..5
        assert_eq!(a.sum(), 15.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 5.0);
        assert!((a.std() - (35.0f64 / 12.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mean_axis_matches_manual() {
        let a = iota(&[2, 3]);
        let m0 = a.mean_axis(0);
        assert_eq!(m0.data(), &[1.5, 2.5, 3.5]);
        let m1 = a.mean_axis(1);
        assert_eq!(m1.data(), &[1.0, 4.0]);
    }

    #[test]
    fn mean_axis_4d_last_axis() {
        // Mean across volumes (axis 3) must equal per-voxel average.
        let a = NdArray::from_fn(&[2, 2, 2, 4], |ix| (ix[3] + 1) as f64);
        let m = a.mean_axis(3);
        assert_eq!(m.dims(), &[2, 2, 2]);
        assert!(m.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn std_axis_constant_is_zero() {
        let a = NdArray::<f64>::full(&[3, 4], 7.0);
        let s = a.std_axis(1);
        assert!(s.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn max_min_axis() {
        let a = iota(&[2, 3]);
        assert_eq!(a.max_axis(1).data(), &[2.0, 5.0]);
        assert_eq!(a.min_axis(1).data(), &[0.0, 3.0]);
    }
}
