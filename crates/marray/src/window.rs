/// Stencil-window helpers for 3-D kernels (non-local means, median filters).
///
/// [`window_bounds`] clamps a centered window to the array extents —
/// the behaviour the denoising and median-filter kernels need at volume
/// borders. [`WindowIter`] yields every (center, clamped-window) pair for a
/// 3-D shape.
use crate::shape::Shape;

/// Clamped half-open bounds `[lo, hi)` of a window of radius `radius`
/// centered at `center` on an axis of extent `extent`.
#[inline]
pub fn window_bounds(center: usize, radius: usize, extent: usize) -> (usize, usize) {
    let lo = center.saturating_sub(radius);
    let hi = (center + radius + 1).min(extent);
    (lo, hi)
}

/// Iterator over all centers of a 3-D shape together with the clamped bounds
/// of a radius-`r` cubic window around each center.
pub struct WindowIter {
    dims: [usize; 3],
    radius: usize,
    next: Option<[usize; 3]>,
}

impl WindowIter {
    /// Create a window iterator over a rank-3 shape.
    ///
    /// Panics if the shape is not rank 3.
    pub fn new(shape: &Shape, radius: usize) -> Self {
        assert_eq!(shape.rank(), 3, "WindowIter requires a rank-3 shape");
        let dims = [shape.dim(0), shape.dim(1), shape.dim(2)];
        let next = if dims.contains(&0) {
            None
        } else {
            Some([0, 0, 0])
        };
        WindowIter { dims, radius, next }
    }
}

/// One stencil position: the center voxel and the clamped window bounds
/// (half-open `[lo, hi)` per axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPos {
    /// Center voxel coordinates.
    pub center: [usize; 3],
    /// Per-axis half-open window bounds.
    pub bounds: [(usize, usize); 3],
}

impl Iterator for WindowIter {
    type Item = WindowPos;

    fn next(&mut self) -> Option<WindowPos> {
        let c = self.next?;
        let pos = WindowPos {
            center: c,
            bounds: [
                window_bounds(c[0], self.radius, self.dims[0]),
                window_bounds(c[1], self.radius, self.dims[1]),
                window_bounds(c[2], self.radius, self.dims[2]),
            ],
        };
        // Odometer advance.
        let mut n = c;
        n[2] += 1;
        if n[2] == self.dims[2] {
            n[2] = 0;
            n[1] += 1;
            if n[1] == self.dims[1] {
                n[1] = 0;
                n[0] += 1;
                if n[0] == self.dims[0] {
                    self.next = None;
                    return Some(pos);
                }
            }
        }
        self.next = Some(n);
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_clamp_at_edges() {
        assert_eq!(window_bounds(0, 2, 10), (0, 3));
        assert_eq!(window_bounds(5, 2, 10), (3, 8));
        assert_eq!(window_bounds(9, 2, 10), (7, 10));
        assert_eq!(window_bounds(0, 0, 1), (0, 1));
    }

    #[test]
    fn iter_visits_every_center_once() {
        let shape = Shape::new(&[2, 3, 2]);
        let centers: Vec<[usize; 3]> = WindowIter::new(&shape, 1).map(|w| w.center).collect();
        assert_eq!(centers.len(), 12);
        let mut uniq = centers.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 12);
    }

    #[test]
    fn interior_window_is_full_size() {
        let shape = Shape::new(&[5, 5, 5]);
        let w = WindowIter::new(&shape, 1)
            .find(|w| w.center == [2, 2, 2])
            .unwrap();
        assert_eq!(w.bounds, [(1, 4), (1, 4), (1, 4)]);
    }

    #[test]
    fn empty_shape_yields_nothing() {
        let shape = Shape::new(&[0, 3, 3]);
        assert_eq!(WindowIter::new(&shape, 1).count(), 0);
    }
}
