//! The zero-copy data plane: shared immutable chunk buffers.
//!
//! Mehta et al. (VLDB 2017, §5.3) attribute much of the performance gap
//! between the five evaluated systems to memory management at operator
//! boundaries: engines that deep-copy or re-serialize image chunks at every
//! partition / shuffle / broadcast / cache / scan boundary pay for it in
//! both wall time and OOM-prone footprint. This module gives every engine
//! analog in the workspace one shared substrate that makes the *cheap*
//! behaviour the default:
//!
//! * [`ChunkBuf`] — a reference-counted immutable element buffer. Cloning
//!   one is a refcount bump; the bytes are shared.
//! * Copy-on-write mutation — [`ChunkBuf::make_mut`] hands out exclusive
//!   access, deep-copying only when the buffer is actually shared, and
//!   every such unshare is recorded.
//! * [`CopyCounter`] — a process-wide ledger of deep copies, each tagged
//!   with a reason (`"cow"`, `"eager-clone"`, `"scidb.materialize"`, ...),
//!   so pipelines can report copies-per-run and the e2e bench can prove
//!   the zero-copy path eliminates the accidental ones.
//! * [`CopyMode`] — a global switch between the zero-copy plane
//!   ([`CopyMode::Shared`], the default) and a faithful reproduction of
//!   the copy-everywhere seed behaviour ([`CopyMode::Eager`], where every
//!   clone is a counted deep copy). The bench runs both to measure the
//!   before/after copy counts on identical code paths.
//!
//! Copies that an engine's architectural contract genuinely requires
//! (e.g. the SciDB analog's chunked rewrite) are *kept* and tagged via
//! [`record_copy`] or [`ChunkBuf::deep_copy`]: the goal is to delete the
//! accidental copies while keeping each engine's intended copy behaviour
//! faithful to the paper.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::codec::{compress_mode, ChunkRepr, CompressMode, Encoded};
use crate::element::Element;
use crate::spill::{govern_stored, GovernedCell, Stored};

/// How [`ChunkBuf::clone`] behaves, process-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyMode {
    /// Clones share the underlying buffer (refcount bump). The default.
    Shared,
    /// Clones deep-copy, reproducing the pre-chunkstore data plane; every
    /// such copy is counted under the `"eager-clone"` reason. Used by the
    /// e2e bench and bit-identity tests as the "copy path" baseline.
    Eager,
}

/// 0 = Shared, 1 = Eager; mirrors [`CopyMode`] for the atomic cell.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Serializes [`with_copy_mode`] sections so concurrent tests/benches that
/// flip the global mode (or assert on counter deltas) never interleave.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// The process-wide [`CopyMode`] currently in effect.
pub fn copy_mode() -> CopyMode {
    if MODE.load(Ordering::SeqCst) == 0 {
        CopyMode::Shared
    } else {
        CopyMode::Eager
    }
}

thread_local! {
    /// Nesting depth of [`with_copy_mode`] sections on this thread, so
    /// nested sections re-use the outer section's lock instead of
    /// deadlocking on it.
    static SECTION_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Restores a global mode cell to its captured value even if the closure
/// panics. Shared by the copy-mode and compress-mode sections.
pub(crate) struct RestoreMode {
    cell: &'static AtomicU8,
    prev: u8,
}

impl RestoreMode {
    /// Capture `cell`'s current value for restoration on drop.
    pub(crate) fn new(cell: &'static AtomicU8) -> RestoreMode {
        RestoreMode {
            cell,
            prev: cell.load(Ordering::SeqCst),
        }
    }
}

impl Drop for RestoreMode {
    fn drop(&mut self) {
        self.cell.store(self.prev, Ordering::SeqCst);
    }
}

/// Decrements the section depth on drop.
struct DepthGuard;

impl Drop for DepthGuard {
    fn drop(&mut self) {
        SECTION_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Run `f` inside a global mode section: mutually exclusive across threads
/// (the lock is held for the duration of the outermost section), re-entrant
/// on one thread. [`with_copy_mode`] and [`crate::with_compress_mode`] both
/// nest through this one lock, so mixed-mode sections cannot deadlock and
/// counter deltas observed inside one section are not polluted by another
/// thread's section.
pub(crate) fn with_mode_section<R>(f: impl FnOnce() -> R) -> R {
    let outermost = SECTION_DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth == 0
    });
    let _depth = DepthGuard;
    let _section = if outermost {
        Some(MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    } else {
        None
    };
    f()
}

/// Run `f` with the process-wide copy mode set to `mode`, then restore.
///
/// Sections are mutually exclusive across threads (a global lock is held
/// for the duration of the outermost section; nested sections on the same
/// thread are re-entrant), so copy-counter deltas observed inside one
/// section are not polluted by another thread's section. Threads *spawned
/// by* `f` (engine workers) see the requested mode, as it is
/// process-global.
pub fn with_copy_mode<R>(mode: CopyMode, f: impl FnOnce() -> R) -> R {
    with_mode_section(|| {
        let _restore = RestoreMode::new(&MODE);
        MODE.store(mode as u8, Ordering::SeqCst);
        f()
    })
}

/// Total deep copies recorded since process start.
static COPIES: AtomicU64 = AtomicU64::new(0);
/// Total bytes deep-copied since process start.
static COPIED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Per-reason breakdown. BTreeMap so reports iterate deterministically.
static BY_REASON: Mutex<BTreeMap<String, ReasonStats>> = Mutex::new(BTreeMap::new());

/// The process-wide deep-copy ledger.
///
/// `CopyCounter` is a namespace, not an instance: the counters are global
/// because buffers flow across engine worker threads. Readers take
/// [`CopyCounter::snapshot`]s and diff them with [`CopyStats::since`] to
/// attribute copies to a pipeline run.
pub struct CopyCounter;

impl CopyCounter {
    /// Record one deep copy of `bytes` bytes under `reason`.
    pub fn record(reason: &str, bytes: usize) {
        COPIES.fetch_add(1, Ordering::Relaxed);
        COPIED_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
        let mut map = BY_REASON.lock().unwrap_or_else(|e| e.into_inner());
        let slot = map.entry(reason.to_string()).or_default();
        slot.copies += 1;
        slot.bytes += bytes as u64;
    }

    /// A consistent view of the ledger as of now.
    pub fn snapshot() -> CopyStats {
        // Lock first so totals cannot advance past the per-reason map.
        let map = BY_REASON.lock().unwrap_or_else(|e| e.into_inner());
        CopyStats {
            copies: COPIES.load(Ordering::Relaxed),
            bytes: COPIED_BYTES.load(Ordering::Relaxed),
            by_reason: map.clone(),
        }
    }
}

/// Record one deep copy of `bytes` bytes under `reason`.
///
/// Free-function alias for [`CopyCounter::record`], for call sites that
/// tag architectural copies performed with plain buffer writes (e.g. the
/// SciDB analog's rechunk, TSV streaming round-trips).
pub fn record_copy(reason: &str, bytes: usize) {
    CopyCounter::record(reason, bytes);
}

/// Copy count and byte volume for one reason tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReasonStats {
    /// Number of deep copies.
    pub copies: u64,
    /// Bytes deep-copied.
    pub bytes: u64,
}

/// A snapshot (or delta) of the deep-copy ledger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CopyStats {
    /// Total deep copies.
    pub copies: u64,
    /// Total bytes deep-copied.
    pub bytes: u64,
    /// Breakdown by reason tag, deterministically ordered.
    pub by_reason: BTreeMap<String, ReasonStats>,
}

impl CopyStats {
    /// The copies recorded between `earlier` and `self` (saturating, so a
    /// stale snapshot never underflows).
    pub fn since(&self, earlier: &CopyStats) -> CopyStats {
        let mut by_reason = BTreeMap::new();
        for (reason, now) in &self.by_reason {
            let base = earlier.by_reason.get(reason).copied().unwrap_or_default();
            let d = ReasonStats {
                copies: now.copies.saturating_sub(base.copies),
                bytes: now.bytes.saturating_sub(base.bytes),
            };
            if d.copies > 0 || d.bytes > 0 {
                by_reason.insert(reason.clone(), d);
            }
        }
        CopyStats {
            copies: self.copies.saturating_sub(earlier.copies),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            by_reason,
        }
    }
}

/// The storage behind a [`ChunkBuf`]: dense bytes, a compressed cell, or
/// a budget-governed cell that may be spilled to disk.
#[derive(Debug, Clone)]
enum Payload<T: Element> {
    /// Uncompressed shared vector.
    Dense(Arc<Vec<T>>),
    /// Compressed form plus a lazily materialized dense cache shared by
    /// every handle to the cell.
    Encoded(Arc<EncodedCell<T>>),
    /// A cell under [`crate::MemoryGovernor`] management (resident or
    /// spilled), plus this handle's pin on the dense bytes.
    Governed(Arc<GovernedCell<T>>, HandlePin<T>),
}

/// One handle's hold on a governed cell's dense bytes.
///
/// The pin fills on the handle's first [`ChunkBuf::as_slice`] and keeps
/// the bytes resident (the governor skips pinned cells) until the handle
/// drops or calls [`ChunkBuf::release`]. Cloning a handle yields an
/// *empty* pin: stored handles that were never read do not hold memory,
/// and a worker that reads through a temporary clone releases the cell
/// when the clone drops.
#[derive(Debug)]
struct HandlePin<T: Element> {
    pin: OnceLock<Arc<Vec<T>>>,
}

impl<T: Element> HandlePin<T> {
    fn new() -> HandlePin<T> {
        HandlePin {
            pin: OnceLock::new(),
        }
    }
}

impl<T: Element> Clone for HandlePin<T> {
    /// A fresh, empty pin — each handle pins independently.
    fn clone(&self) -> Self {
        HandlePin::new()
    }
}

/// Where a [`ChunkBuf`]'s bytes currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// In memory (every non-governed buffer, and governed cells whose
    /// bytes are currently loaded).
    Resident,
    /// On disk in the process spill file; the next read reloads it.
    Spilled,
}

/// A compressed buffer with a shared lazy dense cache: readers that need a
/// slice decode once per cell, not once per handle, and the decode never
/// disturbs other handles (COW-safe — the encoded form stays authoritative).
#[derive(Debug)]
struct EncodedCell<T: Element> {
    enc: Encoded<T>,
    dense: OnceLock<Vec<T>>,
}

impl<T: Element> EncodedCell<T> {
    /// The dense elements, decoding (counted) on first access.
    fn dense(&self) -> &Vec<T> {
        self.dense.get_or_init(|| self.enc.decode_counted())
    }
}

/// A reference-counted immutable element buffer: the storage cell behind
/// [`crate::NdArray`] and the unit shared across engine boundaries.
///
/// Cloning is a refcount bump under [`CopyMode::Shared`]; mutation goes
/// through [`ChunkBuf::make_mut`], which deep-copies (and records the copy)
/// only when the buffer is shared.
///
/// A buffer may hold a compressed representation ([`ChunkBuf::repr`] says
/// which; see [`crate::codec`]). Reads through [`ChunkBuf::as_slice`]
/// materialize a dense cache lazily, shared by every handle to the same
/// cell; mutation through [`ChunkBuf::make_mut`] / [`ChunkBuf::into_vec`]
/// leaves the compressed domain with a private dense buffer, so
/// copy-on-write semantics are preserved exactly.
#[derive(Debug)]
pub struct ChunkBuf<T: Element> {
    payload: Payload<T>,
}

impl<T: Element> ChunkBuf<T> {
    /// Wrap an owned vector (no copy).
    pub fn from_vec(data: Vec<T>) -> Self {
        ChunkBuf {
            payload: Payload::Dense(Arc::new(data)),
        }
    }

    /// Wrap an already-encoded buffer (no copy, no ledger traffic).
    pub fn from_encoded(enc: Encoded<T>) -> Self {
        ChunkBuf {
            payload: Payload::Encoded(Arc::new(EncodedCell {
                enc,
                dense: OnceLock::new(),
            })),
        }
    }

    /// The elements, read-only.
    ///
    /// For a compressed buffer this materializes the dense cache on first
    /// access (a counted `"codec.decode"`), shared by every handle to the
    /// same cell.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.payload {
            Payload::Dense(v) => v,
            Payload::Encoded(cell) => cell.dense(),
            Payload::Governed(cell, pin) => pin.pin.get_or_init(|| cell.acquire()),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.payload {
            Payload::Dense(v) => v.len(),
            Payload::Encoded(cell) => cell.enc.len(),
            Payload::Governed(cell, _) => cell.len(),
        }
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical payload size in bytes (dense footprint, whatever the
    /// stored representation).
    #[inline]
    pub fn nbytes(&self) -> usize {
        self.len() * T::BYTES
    }

    /// Bytes the stored representation occupies: the dense footprint for
    /// [`ChunkRepr::Dense`], the encoded footprint otherwise. This is the
    /// volume that actually crosses an engine boundary carrying this
    /// handle, which is what the bytes-moved ledgers charge.
    pub fn stored_nbytes(&self) -> usize {
        match &self.payload {
            Payload::Dense(v) => v.len() * T::BYTES,
            Payload::Encoded(cell) => cell.enc.encoded_bytes(),
            Payload::Governed(cell, _) => cell.stored_nbytes(),
        }
    }

    /// The stored representation.
    pub fn repr(&self) -> ChunkRepr {
        match &self.payload {
            Payload::Dense(_) => ChunkRepr::Dense,
            Payload::Encoded(cell) => cell.enc.repr(),
            Payload::Governed(cell, _) => cell.repr(),
        }
    }

    /// The compressed form, when the buffer holds one. The encoded runs
    /// stay authoritative even after a dense cache materializes, so
    /// run-consuming kernels can branch on this without forcing a decode.
    ///
    /// `None` for a governed buffer even when it stores an encoded form:
    /// the runs live behind the residency lock and may be on disk, so
    /// run-consuming fast paths fall back to the (bit-identical) dense
    /// path instead.
    pub fn encoded(&self) -> Option<&Encoded<T>> {
        match &self.payload {
            Payload::Dense(_) | Payload::Governed(..) => None,
            Payload::Encoded(cell) => Some(&cell.enc),
        }
    }

    /// Number of handles currently sharing these bytes.
    pub fn ref_count(&self) -> usize {
        match &self.payload {
            Payload::Dense(v) => Arc::strong_count(v),
            Payload::Encoded(cell) => Arc::strong_count(cell),
            Payload::Governed(cell, _) => Arc::strong_count(cell),
        }
    }

    /// True when `self` and `other` share the same underlying allocation.
    pub fn ptr_eq(&self, other: &ChunkBuf<T>) -> bool {
        match (&self.payload, &other.payload) {
            (Payload::Dense(a), Payload::Dense(b)) => Arc::ptr_eq(a, b),
            (Payload::Encoded(a), Payload::Encoded(b)) => Arc::ptr_eq(a, b),
            (Payload::Governed(a, _), Payload::Governed(b, _)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Internal: a handle clone (refcount bump) regardless of the global
    /// [`CopyMode`] — for representation changes that must never be
    /// charged as payload copies.
    // scilint: allow(F003, Payload is an enum of Arcs: cloning it bumps refcounts, never copies chunk bytes)
    pub(crate) fn handle_clone(&self) -> ChunkBuf<T> {
        ChunkBuf {
            payload: self.payload.clone(),
        }
    }

    /// Re-encode into the smallest compressed representation, if any codec
    /// shrinks the buffer and the global [`CompressMode`] allows it;
    /// otherwise (or for an already-compressed buffer) a handle clone.
    /// Encodes are counted (`"codec.encode"`).
    pub fn compressed(&self) -> ChunkBuf<T> {
        if compress_mode() == CompressMode::Off {
            return self.handle_clone();
        }
        match &self.payload {
            Payload::Encoded(_) | Payload::Governed(..) => self.handle_clone(),
            Payload::Dense(v) => match Encoded::encode_counted(v) {
                Some(enc) => ChunkBuf::from_encoded(enc),
                None => self.handle_clone(),
            },
        }
    }

    /// A handle to this buffer's bytes under [`crate::MemoryGovernor`]
    /// management: the governor accounts the stored bytes as resident and
    /// may spill them to the process spill file under budget pressure;
    /// the next read reloads them bit-exactly. No copy: dense storage
    /// shares the existing allocation, encoded storage shares the runs.
    ///
    /// Governing an already-governed buffer is a handle clone. The
    /// returned handle starts unpinned even if `self` was pinned.
    pub fn govern(&self) -> ChunkBuf<T> {
        let cell = match &self.payload {
            Payload::Governed(..) => return self.handle_clone(),
            Payload::Dense(v) => govern_stored(Stored::Dense(v.clone()), v.len(), ChunkRepr::Dense),
            Payload::Encoded(cell) => govern_stored(
                Stored::Encoded(cell.enc.clone()),
                cell.enc.len(),
                cell.enc.repr(),
            ),
        };
        ChunkBuf {
            payload: Payload::Governed(cell, HandlePin::new()),
        }
    }

    /// Where this buffer's bytes currently live. Non-governed buffers are
    /// always [`Residency::Resident`].
    pub fn residency(&self) -> Residency {
        match &self.payload {
            Payload::Dense(_) | Payload::Encoded(_) => Residency::Resident,
            Payload::Governed(cell, _) => {
                if cell.is_spilled() {
                    Residency::Spilled
                } else {
                    Residency::Resident
                }
            }
        }
    }

    /// Drop this handle's pin on a governed cell's dense bytes, making
    /// the cell spillable again without dropping the handle. A later
    /// [`ChunkBuf::as_slice`] re-pins (reloading if the cell spilled in
    /// the meantime). No-op for non-governed buffers.
    pub fn release(&mut self) {
        if let Payload::Governed(_, pin) = &mut self.payload {
            pin.pin.take();
        }
    }

    /// Internal: leave the compressed domain, making the payload dense.
    ///
    /// Decoding straight out of the encoded form is counted as a
    /// `"codec.decode"`; cloning an already-materialized cache is an
    /// ordinary deep copy under `reason`.
    fn ensure_dense(&mut self, reason: &str) {
        match &self.payload {
            Payload::Dense(_) => {}
            Payload::Encoded(cell) => {
                let v = match cell.dense.get() {
                    Some(cached) => {
                        CopyCounter::record(reason, cached.len() * T::BYTES);
                        cached.clone()
                    }
                    None => cell.enc.decode_counted(),
                };
                self.payload = Payload::Dense(Arc::new(v));
            }
            Payload::Governed(cell, _) => {
                // Leave the governed domain with a private dense buffer:
                // mutation must not race residency transitions.
                let v = cell.take_dense(reason);
                self.payload = Payload::Dense(Arc::new(v));
            }
        }
    }

    /// Exclusive access for mutation: copy-on-write.
    ///
    /// If this handle is the sole owner of a dense buffer the call is
    /// free; a shared buffer is deep-copied first (recorded under
    /// `reason`), and a compressed buffer is materialized to a private
    /// dense buffer (the decode is counted).
    // scilint: allow(F001, shape invariant upheld by construction; a violation is a kernel bug, not a data error)
    // scilint: allow(F003, the copy-on-write unshare: the plane's one sanctioned deep copy besides deep_copy())
    pub fn make_mut(&mut self, reason: &str) -> &mut Vec<T> {
        self.ensure_dense(reason);
        let Payload::Dense(arc) = &mut self.payload else {
            unreachable!("ensure_dense leaves a dense payload")
        };
        if Arc::get_mut(arc).is_none() {
            CopyCounter::record(reason, arc.len() * T::BYTES);
            *arc = Arc::new(arc.as_ref().clone());
        }
        Arc::get_mut(arc).expect("freshly unshared ChunkBuf has a sole owner")
    }

    /// Consume the handle, returning the owned vector.
    ///
    /// Free when this handle is the sole owner of a dense buffer;
    /// otherwise a counted deep copy under `reason` (or a counted decode
    /// for a compressed buffer).
    pub fn into_vec(mut self, reason: &str) -> Vec<T> {
        self.ensure_dense(reason);
        let Payload::Dense(arc) = self.payload else {
            unreachable!("ensure_dense leaves a dense payload")
        };
        match Arc::try_unwrap(arc) {
            Ok(v) => v,
            Err(shared) => {
                CopyCounter::record(reason, shared.len() * T::BYTES);
                shared.as_ref().clone()
            }
        }
    }

    /// An explicit, always-counted deep copy under `reason`.
    ///
    /// This is the sanctioned escape hatch for copies an engine's
    /// architectural contract requires regardless of sharing. The copy is
    /// always dense — faithful to the copy-everywhere baseline the eager
    /// path reproduces.
    pub fn deep_copy(&self, reason: &str) -> ChunkBuf<T> {
        CopyCounter::record(reason, self.nbytes());
        ChunkBuf::from_vec(self.as_slice().to_vec())
    }

    /// A zero-copy view of `len` elements starting at `start`.
    ///
    /// # Panics
    /// Panics when the range exceeds the buffer.
    pub fn view(&self, start: usize, len: usize) -> ChunkView<T> {
        assert!(
            start + len <= self.len(),
            "ChunkBuf::view: range {start}..{} exceeds buffer of {} elements",
            start + len,
            self.len()
        );
        ChunkView {
            buf: self.handle_clone(),
            start,
            len,
        }
    }
}

impl<T: Element> Clone for ChunkBuf<T> {
    /// Refcount bump under [`CopyMode::Shared`]; a counted deep copy
    /// (reason `"eager-clone"`) under [`CopyMode::Eager`].
    fn clone(&self) -> Self {
        match copy_mode() {
            CopyMode::Shared => self.handle_clone(),
            CopyMode::Eager => self.deep_copy("eager-clone"),
        }
    }
}

impl<T: Element> PartialEq for ChunkBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || self.as_slice() == other.as_slice()
    }
}

/// A zero-copy slice view into a shared [`ChunkBuf`]: the slab handle the
/// partitioners hand to workers instead of `data[lo..hi].to_vec()`.
///
/// Note the clone semantics follow the buffer's: under [`CopyMode::Eager`]
/// cloning a view deep-copies the *whole* backing buffer, faithfully
/// reproducing the copy-everywhere baseline.
#[derive(Debug, Clone)]
pub struct ChunkView<T: Element> {
    buf: ChunkBuf<T>,
    start: usize,
    len: usize,
}

impl<T: Element> ChunkView<T> {
    /// The viewed elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.buf.as_slice()[self.start..self.start + self.len]
    }

    /// Number of elements in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Offset of the view's first element in the backing buffer.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Copy the viewed elements out into an owned vector, counted under
    /// `reason` (views exist to *avoid* copies; copying out is explicit).
    pub fn to_owned_vec(&self, reason: &str) -> Vec<T> {
        CopyCounter::record(reason, self.len * T::BYTES);
        self.as_slice().to_vec()
    }
}

impl<T: Element> PartialEq for ChunkView<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(n: usize) -> ChunkBuf<f64> {
        ChunkBuf::from_vec((0..n).map(|i| i as f64).collect())
    }

    #[test]
    fn shared_clone_is_a_refcount_bump() {
        with_copy_mode(CopyMode::Shared, || {
            let before = CopyCounter::snapshot();
            let a = buf(16);
            let b = a.clone();
            assert!(a.ptr_eq(&b));
            assert_eq!(a.ref_count(), 2);
            let delta = CopyCounter::snapshot().since(&before);
            assert_eq!(delta.copies, 0, "shared clone must not deep-copy");
        });
    }

    #[test]
    fn eager_clone_is_a_counted_deep_copy() {
        with_copy_mode(CopyMode::Eager, || {
            let before = CopyCounter::snapshot();
            let a = buf(16);
            let b = a.clone();
            assert!(!a.ptr_eq(&b));
            assert_eq!(a.as_slice(), b.as_slice());
            let delta = CopyCounter::snapshot().since(&before);
            assert_eq!(delta.copies, 1);
            assert_eq!(delta.bytes, 16 * 8);
            assert_eq!(
                delta.by_reason.get("eager-clone"),
                Some(&ReasonStats {
                    copies: 1,
                    bytes: 128
                })
            );
        });
    }

    #[test]
    fn make_mut_is_free_when_unique_and_cow_when_shared() {
        with_copy_mode(CopyMode::Shared, || {
            let before = CopyCounter::snapshot();
            let mut a = buf(8);
            a.make_mut("cow")[0] = 99.0; // sole owner: free
            assert_eq!(CopyCounter::snapshot().since(&before).copies, 0);

            let b = a.clone();
            a.make_mut("cow")[1] = 7.0; // shared: copy-on-write
            let delta = CopyCounter::snapshot().since(&before);
            assert_eq!(delta.copies, 1);
            assert!(delta.by_reason.contains_key("cow"));
            // The writer sees its write; the other handle kept the original.
            assert_eq!(a.as_slice()[1], 7.0);
            assert_eq!(b.as_slice()[1], 1.0);
            assert!(!a.ptr_eq(&b));
        });
    }

    #[test]
    fn into_vec_unshares_only_when_shared() {
        with_copy_mode(CopyMode::Shared, || {
            let before = CopyCounter::snapshot();
            let a = buf(4);
            let v = a.into_vec("unshare"); // sole owner: move
            assert_eq!(v.len(), 4);
            assert_eq!(CopyCounter::snapshot().since(&before).copies, 0);

            let a = buf(4);
            let _keep = a.clone();
            let v = a.into_vec("unshare"); // shared: counted copy
            assert_eq!(v.len(), 4);
            let delta = CopyCounter::snapshot().since(&before);
            assert_eq!(delta.copies, 1);
            assert!(delta.by_reason.contains_key("unshare"));
        });
    }

    #[test]
    fn sanctioned_deep_copies_are_counted_and_tagged() {
        with_copy_mode(CopyMode::Shared, || {
            let before = CopyCounter::snapshot();
            let a = buf(32);
            let b = a.deep_copy("scidb.materialize");
            assert!(!a.ptr_eq(&b));
            record_copy("scidb.stream-tsv", 123);
            let delta = CopyCounter::snapshot().since(&before);
            assert_eq!(delta.copies, 2);
            assert_eq!(
                delta.by_reason.get("scidb.materialize"),
                Some(&ReasonStats {
                    copies: 1,
                    bytes: 32 * 8
                })
            );
            assert_eq!(
                delta.by_reason.get("scidb.stream-tsv"),
                Some(&ReasonStats {
                    copies: 1,
                    bytes: 123
                })
            );
        });
    }

    #[test]
    fn views_share_and_copy_out_is_counted() {
        with_copy_mode(CopyMode::Shared, || {
            let before = CopyCounter::snapshot();
            let a = buf(10);
            let v = a.view(3, 4);
            assert_eq!(v.as_slice(), &[3.0, 4.0, 5.0, 6.0]);
            assert_eq!(v.len(), 4);
            assert_eq!(v.start(), 3);
            assert_eq!(CopyCounter::snapshot().since(&before).copies, 0);
            let owned = v.to_owned_vec("spark.collect");
            assert_eq!(owned, vec![3.0, 4.0, 5.0, 6.0]);
            let delta = CopyCounter::snapshot().since(&before);
            assert_eq!(delta.copies, 1);
            assert_eq!(
                delta.by_reason.get("spark.collect").map(|r| r.bytes),
                Some(32)
            );
        });
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn view_out_of_range_panics() {
        let a = buf(4);
        let _ = a.view(2, 3);
    }

    #[test]
    fn compressed_buffer_decodes_lazily_and_shares_the_cache() {
        with_copy_mode(CopyMode::Shared, || {
            let a = ChunkBuf::from_vec(vec![2.5f64; 4096]);
            let c = a.compressed();
            assert_eq!(c.repr(), ChunkRepr::Const);
            assert_eq!(c.len(), 4096);
            assert_eq!(c.nbytes(), 4096 * 8);
            assert!(c.stored_nbytes() < 64, "const chunk stays tiny");

            let before = CopyCounter::snapshot();
            let d = c.clone(); // handle clone of the encoded cell
            assert!(c.ptr_eq(&d));
            // First read decodes (counted once); the clone reuses the cache.
            assert_eq!(c.as_slice()[7], 2.5);
            assert_eq!(d.as_slice()[7], 2.5);
            let delta = CopyCounter::snapshot().since(&before);
            assert_eq!(
                delta.by_reason.get("codec.decode").map(|r| r.copies),
                Some(1),
                "one shared decode for two handles"
            );
        });
    }

    #[test]
    fn make_mut_on_compressed_buffer_goes_private_dense() {
        with_copy_mode(CopyMode::Shared, || {
            let a = ChunkBuf::from_vec(vec![1.0f64; 512]).compressed();
            let keep = a.clone();
            let mut b = a.clone();
            b.make_mut("cow")[0] = 9.0;
            assert_eq!(b.repr(), ChunkRepr::Dense);
            assert_eq!(b.as_slice()[0], 9.0);
            // The other handles still see the encoded original.
            assert_eq!(keep.repr(), ChunkRepr::Const);
            assert_eq!(keep.as_slice()[0], 1.0);
        });
    }

    #[test]
    fn eager_clone_of_compressed_buffer_is_a_dense_deep_copy() {
        let a = with_copy_mode(CopyMode::Shared, || {
            ChunkBuf::from_vec(vec![4.0f64; 256]).compressed()
        });
        with_copy_mode(CopyMode::Eager, || {
            let before = CopyCounter::snapshot();
            let b = a.clone();
            assert_eq!(b.repr(), ChunkRepr::Dense);
            assert_eq!(b.as_slice(), a.as_slice());
            let delta = CopyCounter::snapshot().since(&before);
            assert!(delta.by_reason.contains_key("eager-clone"));
        });
    }

    #[test]
    fn compress_mode_off_keeps_buffers_dense() {
        crate::codec::with_compress_mode(CompressMode::Off, || {
            let a = ChunkBuf::from_vec(vec![0.0f64; 1024]);
            let c = a.compressed();
            assert_eq!(c.repr(), ChunkRepr::Dense);
            assert!(a.ptr_eq(&c), "Off-mode compressed() is a handle clone");
        });
    }

    #[test]
    fn incompressible_buffer_stays_dense() {
        let a = ChunkBuf::from_vec((0..257).map(|i| (i * i) as f64).collect::<Vec<_>>());
        let c = a.compressed();
        assert_eq!(c.repr(), ChunkRepr::Dense);
        assert!(a.ptr_eq(&c));
    }

    #[test]
    fn views_over_compressed_buffers_read_through() {
        let a = ChunkBuf::from_vec(vec![3.0f64; 64]).compressed();
        let v = a.view(8, 4);
        assert_eq!(v.as_slice(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn governed_buffer_spills_and_reloads_bit_exactly() {
        crate::with_mem_budget(Some(1024), || {
            let payload: Vec<f64> = (0..256)
                .map(|i| {
                    if i % 97 == 0 {
                        f64::from_bits(0x7ff8_dead_beef_0000 + i as u64)
                    } else {
                        i as f64 - 128.0
                    }
                })
                .collect();
            // Four 2 KiB chunks against a 1 KiB budget: nothing unpinned
            // can stay resident.
            let bufs: Vec<ChunkBuf<f64>> = (0..4)
                .map(|c| {
                    ChunkBuf::from_vec(payload.iter().map(|v| v + c as f64).collect()).govern()
                })
                .collect();
            crate::MemoryGovernor::enforce();
            let stats = crate::MemoryGovernor::snapshot();
            assert!(stats.resident_bytes <= 1024, "budget enforced at ingest");
            assert!(bufs.iter().any(|b| b.residency() == Residency::Spilled));

            // Reads through clones reload bit-exactly and release on drop.
            for (c, b) in bufs.iter().enumerate() {
                let r = b.clone();
                let got = r.as_slice();
                assert_eq!(got.len(), 256);
                for (i, (g, p)) in got.iter().zip(&payload).enumerate() {
                    assert_eq!(g.to_bits(), (p + c as f64).to_bits(), "elem {i}");
                }
            }
            let after = crate::MemoryGovernor::snapshot().since(&stats);
            assert!(after.reloads >= 4, "each chunk reloaded");
            assert!(after.spills >= 3, "re-spills under pressure");
            assert!(
                crate::MemoryGovernor::snapshot().peak_resident
                    >= crate::MemoryGovernor::snapshot().resident_bytes
            );
        });
    }

    #[test]
    fn governed_pin_blocks_spill_until_released() {
        crate::with_mem_budget(Some(4096), || {
            let mut a = ChunkBuf::from_vec(vec![1.5f64; 512]).govern(); // 4 KiB
            let _ = a.as_slice(); // pin
                                  // Ingesting another 4 KiB chunk wants the budget; `a` is
                                  // pinned, so it must stay resident.
            let b = ChunkBuf::from_vec(vec![2.5f64; 512]).govern();
            assert_eq!(a.residency(), Residency::Resident);
            a.release();
            let _ = b.as_slice(); // pressure: reload/touch b, spill a
            assert_eq!(a.residency(), Residency::Spilled);
            assert_eq!(a.as_slice()[0], 1.5, "reload after release");
        });
    }

    #[test]
    fn governed_encoded_chunk_spills_in_encoded_form() {
        crate::with_mem_budget(Some(64), || {
            let g = ChunkBuf::from_vec(vec![7.0f64; 4096]).compressed().govern();
            assert_eq!(g.repr(), ChunkRepr::Const);
            assert!(g.encoded().is_none(), "governed cells hide the runs");
            let before = crate::MemoryGovernor::snapshot();
            // Force it out and back in: the spilled record is the tiny
            // encoded form, not 32 KiB of dense bytes.
            let small: Vec<ChunkBuf<f64>> = (0..4)
                .map(|_| ChunkBuf::from_vec(vec![0.0f64; 4]).govern())
                .collect();
            let _ = g.as_slice();
            let delta = crate::MemoryGovernor::snapshot().since(&before);
            assert!(delta.spilled_bytes < 256, "encoded spill I/O stays tiny");
            assert_eq!(g.len(), 4096);
            assert_eq!(g.stored_nbytes(), before.resident_bytes as usize);
            drop(small);
        });
    }

    #[test]
    fn governed_make_mut_leaves_the_governed_domain() {
        crate::with_mem_budget(None, || {
            let a = ChunkBuf::from_vec((0..64).map(|i| i as f64).collect::<Vec<_>>()).govern();
            let mut b = a.clone();
            b.make_mut("cow")[0] = 99.0;
            assert_eq!(b.residency(), Residency::Resident);
            assert_eq!(b.as_slice()[0], 99.0);
            assert_eq!(a.as_slice()[0], 0.0, "other handle unaffected");
            assert!(!a.ptr_eq(&b));
        });
    }

    #[test]
    fn with_copy_mode_restores_on_exit() {
        assert_eq!(copy_mode(), CopyMode::Shared);
        with_copy_mode(CopyMode::Eager, || {
            assert_eq!(copy_mode(), CopyMode::Eager);
            with_copy_mode(CopyMode::Shared, || {
                assert_eq!(copy_mode(), CopyMode::Shared);
            });
            assert_eq!(copy_mode(), CopyMode::Eager);
        });
        assert_eq!(copy_mode(), CopyMode::Shared);
    }
}
