/// Scalar element types storable in an [`crate::NdArray`].
///
/// The trait bundles the conversions and arithmetic identities the library's
/// generic reductions need. It is implemented for the numeric types the
/// image-analytics workloads use: `f32` (image payloads), `f64`
/// (accumulators and model fits), `u8` (masks), and `i32`/`i64`/`u16`
/// (labels and counts).
pub trait Element: Copy + PartialOrd + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Widen to `f64` for exact-ish accumulation.
    fn to_f64(self) -> f64;
    /// Narrow from `f64`, saturating / truncating as the type requires.
    fn from_f64(v: f64) -> Self;
    /// Number of bytes one element occupies in serialized form.
    const BYTES: usize = size_of::<Self>();

    /// An order-preserving bijection into `u64`: `a <= b` (total order)
    /// iff `a.to_ordered_u64() <= b.to_ordered_u64()`, and
    /// [`Element::from_ordered_u64`] inverts it exactly — every bit
    /// pattern round-trips, including NaN payloads, `-0.0`, and
    /// subnormals. The codec layer keys run detection and
    /// frame-of-reference deltas on this mapping so that encode→decode
    /// reproduces the original buffer bit for bit (plain `==` would
    /// conflate `0.0`/`-0.0` and reject NaN runs).
    fn to_ordered_u64(self) -> u64;
    /// Exact inverse of [`Element::to_ordered_u64`].
    fn from_ordered_u64(k: u64) -> Self;
}

macro_rules! impl_element_unsigned {
    ($($t:ty => $zero:expr, $one:expr);* $(;)?) => {
        $(impl Element for $t {
            const ZERO: Self = $zero;
            const ONE: Self = $one;
            #[inline]
            fn to_f64(self) -> f64 { self as f64 }
            #[inline]
            fn from_f64(v: f64) -> Self { v as $t }
            #[inline]
            fn to_ordered_u64(self) -> u64 { self as u64 }
            #[inline]
            fn from_ordered_u64(k: u64) -> Self { k as $t }
        })*
    };
}

macro_rules! impl_element_signed {
    ($($t:ty : $u:ty => $flip:expr);* $(;)?) => {
        $(impl Element for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            #[inline]
            fn to_f64(self) -> f64 { self as f64 }
            #[inline]
            fn from_f64(v: f64) -> Self { v as $t }
            #[inline]
            fn to_ordered_u64(self) -> u64 {
                // Flip the sign bit: maps iN's order onto uN's.
                ((self as $u) ^ $flip) as u64
            }
            #[inline]
            fn from_ordered_u64(k: u64) -> Self {
                ((k as $u) ^ $flip) as $t
            }
        })*
    };
}

impl_element_unsigned! {
    u8  => 0, 1;
    u16 => 0, 1;
    u32 => 0, 1;
    usize => 0, 1;
}

impl_element_signed! {
    i32 : u32 => 0x8000_0000u32;
    i64 : u64 => 0x8000_0000_0000_0000u64;
}

impl Element for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    /// The classic total-order trick: negatives have their bits inverted
    /// (reversing their descending bit order), non-negatives get the sign
    /// bit set (placing them above every negative).
    #[inline]
    fn to_ordered_u64(self) -> u64 {
        let b = self.to_bits();
        if b >> 63 == 1 {
            !b
        } else {
            b | 0x8000_0000_0000_0000
        }
    }
    #[inline]
    fn from_ordered_u64(k: u64) -> Self {
        let b = if k >> 63 == 1 {
            k & 0x7fff_ffff_ffff_ffff
        } else {
            !k
        };
        f64::from_bits(b)
    }
}

impl Element for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_ordered_u64(self) -> u64 {
        let b = self.to_bits();
        let k = if b >> 31 == 1 { !b } else { b | 0x8000_0000 };
        k as u64
    }
    #[inline]
    fn from_ordered_u64(k: u64) -> Self {
        let k = k as u32;
        let b = if k >> 31 == 1 { k & 0x7fff_ffff } else { !k };
        f32::from_bits(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Element>(v: T) -> T {
        T::from_ordered_u64(v.to_ordered_u64())
    }

    #[test]
    fn f64_ordered_bits_roundtrip_exactly() {
        for v in [
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            -5e-324,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7ff8_dead_beef_0001), // NaN payload
        ] {
            assert_eq!(v.to_bits(), roundtrip(v).to_bits(), "{v:?}");
        }
    }

    #[test]
    fn f64_ordered_bits_preserve_order() {
        let mut vals = [
            f64::NEG_INFINITY,
            f64::MIN,
            -1.5,
            -5e-324,
            -0.0,
            0.0,
            5e-324,
            2.5,
            f64::MAX,
            f64::INFINITY,
        ];
        vals.sort_unstable_by(f64::total_cmp);
        for w in vals.windows(2) {
            assert!(
                w[0].to_ordered_u64() <= w[1].to_ordered_u64(),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn integer_ordered_bits_roundtrip_and_order() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(v, roundtrip(v));
        }
        assert!((-3i64).to_ordered_u64() < 0i64.to_ordered_u64());
        assert!(0i32.to_ordered_u64() < 7i32.to_ordered_u64());
        for v in [0u8, 1, 255] {
            assert_eq!(v, roundtrip(v));
        }
        for v in [0u16, 9, u16::MAX] {
            assert_eq!(v, roundtrip(v));
        }
        assert_eq!(42usize, roundtrip(42usize));
    }

    #[test]
    fn f32_ordered_bits_roundtrip() {
        for v in [0.0f32, -0.0, 1.5, -1.5, f32::NAN, f32::INFINITY] {
            assert_eq!(v.to_bits(), roundtrip(v).to_bits());
        }
        assert!((-1.0f32).to_ordered_u64() < 1.0f32.to_ordered_u64());
    }
}
