/// Scalar element types storable in an [`crate::NdArray`].
///
/// The trait bundles the conversions and arithmetic identities the library's
/// generic reductions need. It is implemented for the numeric types the
/// image-analytics workloads use: `f32` (image payloads), `f64`
/// (accumulators and model fits), `u8` (masks), and `i32`/`i64`/`u16`
/// (labels and counts).
pub trait Element: Copy + PartialOrd + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Widen to `f64` for exact-ish accumulation.
    fn to_f64(self) -> f64;
    /// Narrow from `f64`, saturating / truncating as the type requires.
    fn from_f64(v: f64) -> Self;
    /// Number of bytes one element occupies in serialized form.
    const BYTES: usize = size_of::<Self>();
}

macro_rules! impl_element {
    ($($t:ty => $zero:expr, $one:expr);* $(;)?) => {
        $(impl Element for $t {
            const ZERO: Self = $zero;
            const ONE: Self = $one;
            #[inline]
            fn to_f64(self) -> f64 { self as f64 }
            #[inline]
            fn from_f64(v: f64) -> Self { v as $t }
        })*
    };
}

impl_element! {
    f32 => 0.0, 1.0;
    f64 => 0.0, 1.0;
    u8  => 0, 1;
    u16 => 0, 1;
    i32 => 0, 1;
    i64 => 0, 1;
    u32 => 0, 1;
    usize => 0, 1;
}
