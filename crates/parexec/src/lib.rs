#![warn(missing_docs)]

//! # parexec — safe, zero-dependency data-parallel runtime
//!
//! Intra-node parallelism for the `sciops` kernels: the expensive per-voxel
//! and per-pixel loops (non-local-means denoising, tensor fitting,
//! sigma-clipped co-addition, background meshes) are embarrassingly parallel
//! across *slabs* — contiguous row-major runs of the output buffer. This
//! crate provides the three primitives those kernels need:
//!
//! * [`par_chunks_mut`] — run a function over disjoint mutable chunks of a
//!   buffer (each chunk is one slab of the output).
//! * [`par_map_slabs`] — map a function over a slice of items, collecting
//!   the results in input order.
//! * [`par_reduce`] — map each item to a partial value, then fold the
//!   partials **in item order** (an ordered reduction).
//!
//! All three are thin wrappers over the [`MorselPool`] scheduler; kernels
//! with non-uniform work can use the pool directly with a [`CostHint`]
//! (see [`MorselPool::map_ranges`]), and ingest-bound pipelines can overlap
//! decode with compute through [`pipeline::two_stage`].
//!
//! ## Determinism
//!
//! Every primitive produces results that are bit-identical regardless of
//! the worker count *and* of the scheduler's claim order:
//!
//! * Slab and morsel boundaries are fixed by the caller's chunk size, the
//!   item count and the [`CostHint`] — never by runtime timing — so each
//!   output element is computed by exactly the same code over exactly the
//!   same inputs at any [`Parallelism`].
//! * Workers claim morsels dynamically from a shared atomic cursor, but
//!   every morsel's result is written into its pre-assigned slot: the
//!   schedule decides *who* computes a morsel, never *what* is computed or
//!   *where* it lands.
//! * [`par_reduce`] folds partials in slab order on the calling thread.
//!
//! ## Safety
//!
//! No `unsafe` (the workspace lint wall denies it): mutable-buffer sharing
//! uses `slice::chunks_mut` to obtain disjoint `&mut [T]` borrows parked in
//! take-once slots, and [`std::thread::scope`] makes borrowing from the
//! caller's stack sound. All thread spawning lives in the [`MorselPool`]
//! internals (`morsel.rs` — the single sanctioned spawn site, enforced by
//! scilint rule D004). A panic in any worker is re-raised on the calling
//! thread with its original payload.

use std::num::NonZeroUsize;

mod morsel;
pub mod pipeline;

pub use morsel::{
    imbalance_ratio, morsel_ranges, simulate_workers, CostHint, MorselPool, PoolStats, Schedule,
    MORSELS_PER_WORKER,
};

/// Environment variable overriding [`Parallelism::auto`]'s worker count
/// (used by CI to pin thread counts for deterministic perf smoke runs).
pub const THREADS_ENV: &str = "SCIBENCH_THREADS";

/// Upper bound on the worker count accepted from user input (CLI flags and
/// the [`THREADS_ENV`] variable). Far above any sane node size; exists so a
/// typo cannot ask the OS for a million threads.
pub const MAX_THREADS: usize = 256;

/// How many workers a parallel primitive may use.
///
/// `Serial` is not merely `Threads(1)`: it runs entirely on the calling
/// thread with no scope setup at all, so kernels can keep their original
/// single-threaded execution as a directly assertable baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Run on the calling thread (the reference single-threaded path).
    Serial,
    /// Run on up to this many worker threads.
    Threads(NonZeroUsize),
}

impl Parallelism {
    /// `Threads(n)`, asserting `n >= 1`. Caller-facing code (CLI flags)
    /// should validate first; see [`parse_threads`].
    pub fn threads(n: usize) -> Parallelism {
        assert!(n >= 1, "thread count must be >= 1");
        Parallelism::Threads(NonZeroUsize::new(n.max(1)).unwrap_or(NonZeroUsize::MIN))
    }

    /// The available parallelism of the host, honoring the
    /// [`THREADS_ENV`] override when set to a valid count.
    pub fn auto() -> Parallelism {
        if let Ok(v) = std::env::var(THREADS_ENV) {
            if let Ok(n) = parse_threads(&v) {
                return n;
            }
        }
        let n = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Parallelism::threads(n)
    }

    /// Number of workers this setting uses (`Serial` → 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.get(),
        }
    }

    /// True when work stays on the calling thread.
    pub fn is_serial(self) -> bool {
        self.workers() == 1
    }
}

/// Parse a user-supplied thread count (CLI flag or [`THREADS_ENV`]):
/// an integer in `1..=MAX_THREADS`, with `1` mapping to `Serial`.
pub fn parse_threads(s: &str) -> Result<Parallelism, String> {
    match s.trim().parse::<usize>() {
        Ok(0) => Err("thread count must be at least 1".into()),
        Ok(n) if n > MAX_THREADS => Err(format!("thread count {n} exceeds the cap {MAX_THREADS}")),
        Ok(1) => Ok(Parallelism::Serial),
        Ok(n) => Ok(Parallelism::threads(n)),
        Err(_) => Err(format!("invalid thread count {s:?}")),
    }
}

/// Apply `f(slab_index, slab)` to every `chunk_len`-sized slab of `data`
/// (the final slab may be shorter), using up to `par.workers()` threads.
///
/// Slab boundaries depend only on `chunk_len`, so the work done per output
/// element is identical at every parallelism level; slabs are grouped into
/// morsels that workers claim dynamically (see [`MorselPool`]). Panics in
/// `f` propagate to the caller.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, par: Parallelism, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    MorselPool::new(par).chunks_mut_with_stats(data, chunk_len, f);
}

/// Map `f(index, item)` over `items`, returning results in input order.
///
/// Items are grouped into fixed-order morsels that workers claim from a
/// shared cursor; each morsel's results land in pre-assigned slots, so the
/// output order (and therefore any order-sensitive consumer) is independent
/// of the worker count and of the claim order.
pub fn par_map_slabs<I, O, F>(items: &[I], par: Parallelism, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    MorselPool::new(par).map(items, f)
}

/// Map each item to a partial value with `map`, then fold the partials in
/// **item order** with `reduce`, starting from `init`.
///
/// Because the fold happens in a fixed order on the calling thread, the
/// result is bit-identical at every parallelism level even for
/// non-associative operations such as floating-point sums.
pub fn par_reduce<I, A, M, R>(items: &[I], par: Parallelism, map: M, init: A, reduce: R) -> A
where
    I: Sync,
    A: Send,
    M: Fn(usize, &I) -> A + Sync,
    R: Fn(A, A) -> A,
{
    MorselPool::new(par).reduce(items, map, init, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_workers() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert!(Parallelism::Serial.is_serial());
        assert_eq!(Parallelism::threads(4).workers(), 4);
        assert!(Parallelism::threads(1).is_serial());
        assert!(!Parallelism::threads(2).is_serial());
    }

    #[test]
    #[should_panic(expected = "thread count must be >= 1")]
    fn zero_threads_panics() {
        let _ = Parallelism::threads(0);
    }

    #[test]
    fn parse_threads_validates() {
        assert_eq!(parse_threads("1").unwrap(), Parallelism::Serial);
        assert_eq!(parse_threads("8").unwrap(), Parallelism::threads(8));
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("-3").is_err());
        assert!(parse_threads("four").is_err());
        assert!(parse_threads(&format!("{}", MAX_THREADS + 1)).is_err());
        assert_eq!(
            parse_threads(&format!("{MAX_THREADS}")).unwrap().workers(),
            MAX_THREADS
        );
    }

    #[test]
    fn auto_honors_env_override() {
        // Serialized by Rust's test harness only within this module; use a
        // process-unique scope by setting and restoring around the call.
        let prev = std::env::var(THREADS_ENV).ok();
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Parallelism::auto().workers(), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(Parallelism::auto().workers() >= 1);
        match prev {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
    }

    #[test]
    fn chunks_mut_empty_input_is_noop() {
        let mut data: Vec<u64> = Vec::new();
        par_chunks_mut(&mut data, 4, Parallelism::threads(8), |_, _| {
            panic!("must not be called")
        });
    }

    #[test]
    fn chunks_mut_single_slab() {
        let mut data = vec![0u64; 3];
        par_chunks_mut(&mut data, 10, Parallelism::threads(8), |i, chunk| {
            assert_eq!(i, 0);
            for v in chunk.iter_mut() {
                *v = 7;
            }
        });
        assert_eq!(data, vec![7, 7, 7]);
    }

    #[test]
    fn chunks_mut_more_threads_than_slabs() {
        let mut data = vec![0usize; 10];
        par_chunks_mut(&mut data, 4, Parallelism::threads(64), |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn chunks_mut_matches_serial_at_every_width() {
        let reference: Vec<usize> = {
            let mut d = vec![0usize; 103];
            par_chunks_mut(&mut d, 7, Parallelism::Serial, |i, c| {
                for (k, v) in c.iter_mut().enumerate() {
                    *v = i * 1000 + k;
                }
            });
            d
        };
        for workers in [1usize, 2, 3, 4, 8, 17] {
            let mut d = vec![0usize; 103];
            par_chunks_mut(&mut d, 7, Parallelism::threads(workers), |i, c| {
                for (k, v) in c.iter_mut().enumerate() {
                    *v = i * 1000 + k;
                }
            });
            assert_eq!(d, reference, "workers={workers}");
        }
    }

    #[test]
    fn chunks_mut_matches_serial_under_static_schedule() {
        // The static-split baseline used by the skew benchmark must be just
        // as deterministic as the claiming schedule.
        let reference: Vec<usize> = (0..103).map(|k| (k / 7) * 1000 + k % 7).collect();
        for workers in [1usize, 2, 4, 8] {
            let mut d = vec![0usize; 103];
            MorselPool::new(Parallelism::threads(workers))
                .with_schedule(Schedule::Static)
                .chunks_mut_with_stats(&mut d, 7, |i, c| {
                    for (k, v) in c.iter_mut().enumerate() {
                        *v = i * 1000 + k;
                    }
                });
            assert_eq!(d, reference, "workers={workers}");
        }
    }

    #[test]
    fn panic_in_worker_propagates_payload() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0u8; 16];
            par_chunks_mut(&mut data, 2, Parallelism::threads(4), |i, _| {
                if i == 5 {
                    panic!("slab 5 exploded");
                }
            });
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_default()
            .to_string();
        assert!(msg.contains("slab 5 exploded"), "payload was {msg:?}");
    }

    #[test]
    fn map_slabs_empty_and_order() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_slabs(&empty, Parallelism::threads(4), |_, &x| x).is_empty());
        let items: Vec<u32> = (0..57).collect();
        for workers in [1usize, 2, 5, 8, 100] {
            let out = par_map_slabs(&items, Parallelism::threads(workers), |i, &x| {
                (i as u32) * 2 + x
            });
            let expect: Vec<u32> = items.iter().map(|&x| x * 3).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn map_slabs_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_slabs(&items, Parallelism::threads(3), |_, &x| {
                assert!(x != 6, "item 6 rejected");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn reduce_is_ordered_and_deterministic() {
        // A deliberately non-associative float sum: ordering matters at the
        // bit level, so identical results across widths prove ordering.
        let items: Vec<f64> = (0..1000).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let serial = par_reduce(&items, Parallelism::Serial, |_, &x| x, 0.0, |a, b| a + b);
        for workers in [1usize, 2, 3, 4, 8] {
            let par = par_reduce(
                &items,
                Parallelism::threads(workers),
                |_, &x| x,
                0.0,
                |a, b| a + b,
            );
            assert_eq!(par.to_bits(), serial.to_bits(), "workers={workers}");
        }
    }
}
