//! Morsel-driven deterministic work scheduler.
//!
//! Work is split into **morsels** — fixed-order contiguous index ranges
//! whose boundaries depend only on the item count, the worker count and the
//! caller's [`CostHint`], never on runtime timing. Workers claim morsels by
//! bumping a shared atomic cursor (self-scheduling: every idle worker
//! "steals" the next morsel from the single global queue), and every
//! morsel's output lands in its pre-assigned slot. Claim order therefore
//! affects *who* computes a morsel but never *what* is computed or *where*
//! the result goes, which is the whole determinism argument: output is
//! bit-identical to the serial scan at any worker count.
//!
//! This module is the crate's **only** thread-spawn site (scilint rule D004
//! enforces that); the public `par_*` primitives in the crate root and the
//! [`crate::pipeline`] stage overlap are thin layers over it.

use crate::Parallelism;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many morsels the sizing policy aims to create per worker. A handful
/// per worker lets the claiming cursor absorb skew (a worker stuck on an
/// expensive morsel simply claims fewer), while keeping per-morsel dispatch
/// overhead negligible.
pub const MORSELS_PER_WORKER: usize = 4;

/// Caller-supplied cost hints that drive morsel auto-sizing.
///
/// `item_cost` is the estimated work per item in units where `1.0` means
/// "enough work to amortize one dispatch". Items cheaper than that get
/// grouped until a morsel is worth dispatching. `min_items` is a hard
/// granularity floor (e.g. one axis-0 plane for volume kernels) so a morsel
/// never cuts a unit the kernel wants to process whole.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostHint {
    /// Estimated relative cost of one item (`1.0` = one dispatch's worth).
    pub item_cost: f64,
    /// Never cut a morsel smaller than this many items (the final remainder
    /// morsel may still be shorter).
    pub min_items: usize,
    /// Never cut a morsel larger than this many items; `0` = uncapped.
    /// The out-of-core path sets this from the memory budget so one
    /// morsel's working set (`max_items × item bytes`) fits each worker's
    /// budget share. When the cap conflicts with the granularity floor,
    /// the floor wins — a kernel's indivisible unit cannot be split.
    pub max_items: usize,
}

impl CostHint {
    /// Uniform unit-cost items with no granularity floor.
    pub fn uniform() -> CostHint {
        CostHint {
            item_cost: 1.0,
            min_items: 1,
            max_items: 0,
        }
    }

    /// Uniform items with a granularity floor of `n` items per morsel.
    pub fn min_items(n: usize) -> CostHint {
        CostHint {
            item_cost: 1.0,
            min_items: n.max(1),
            max_items: 0,
        }
    }

    /// Items with estimated relative cost `c` (see [`CostHint::item_cost`]).
    pub fn item_cost(c: f64) -> CostHint {
        CostHint {
            item_cost: c,
            min_items: 1,
            max_items: 0,
        }
    }

    /// This hint with morsels capped at `n` items (`0` = uncapped); see
    /// [`CostHint::max_items`].
    pub fn with_max_items(mut self, n: usize) -> CostHint {
        self.max_items = n;
        self
    }

    /// The effective minimum morsel length this hint implies: the explicit
    /// floor, or enough sub-unit-cost items to amortize one dispatch,
    /// whichever is larger.
    fn floor(&self) -> usize {
        let cost_floor = if self.item_cost > 0.0 && self.item_cost < 1.0 {
            (1.0 / self.item_cost).ceil() as usize
        } else {
            1
        };
        self.min_items.max(cost_floor).max(1)
    }
}

impl Default for CostHint {
    fn default() -> CostHint {
        CostHint::uniform()
    }
}

/// How morsels are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Self-scheduling: workers claim the next morsel from a shared atomic
    /// cursor as they go idle. This is the default and the skew-robust path.
    Morsel,
    /// Static contiguous block split (morsel `m` belongs to worker
    /// `m * workers / n_morsels`'s block). Exists as the baseline the skew
    /// benchmark and regression tests compare against.
    Static,
}

/// Partition `0..n_items` into fixed-order morsels.
///
/// Policy (generalizing what the DTM kernel used to hand-roll): aim for
/// [`MORSELS_PER_WORKER`] morsels per worker so claiming can balance skew,
/// but never cut below the hint's granularity floor — tiny morsels make
/// dispatch and per-morsel allocations dominate the actual work, which is
/// how fine-grained splits scale *below* 1.0x. The ranges partition
/// `0..n_items` exactly and in order, so stitching morsel outputs back
/// together is bit-identical to a serial scan regardless of `workers` or
/// claim order.
pub fn morsel_ranges(n_items: usize, workers: usize, hint: CostHint) -> Vec<Range<usize>> {
    if n_items == 0 {
        return Vec::new();
    }
    let target = workers.max(1) * MORSELS_PER_WORKER;
    let mut len = n_items.div_ceil(target).max(hint.floor());
    if hint.max_items > 0 {
        // Budget cap: shorter morsels bound each worker's live working
        // set; the granularity floor still wins a conflict.
        len = len.min(hint.max_items).max(hint.floor());
    }
    (0..n_items.div_ceil(len))
        .map(|m| m * len..((m + 1) * len).min(n_items))
        .collect()
}

/// Per-run scheduling observability: who ran what, for how long.
///
/// The busy-time numbers come from per-morsel wall-clock measurement on the
/// claiming worker; they feed the skew benchmark and the cost model's
/// measured-scaling path but never influence results.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Schedule the run used.
    pub schedule: Schedule,
    /// Workers actually spawned (`min(par.workers(), n_morsels)`; 1 for the
    /// serial path, 0 when there was no work).
    pub workers: usize,
    /// Morsels claimed per worker.
    pub per_worker_morsels: Vec<usize>,
    /// Items processed per worker.
    pub per_worker_items: Vec<usize>,
    /// Summed per-morsel execution time per worker, in nanoseconds.
    pub per_worker_busy_nanos: Vec<u64>,
    /// Execution time of each morsel in nanoseconds, indexed by morsel id.
    pub per_morsel_nanos: Vec<u64>,
    /// Morsels executed by a worker other than the one a static block split
    /// would have assigned them to (always 0 under [`Schedule::Static`]).
    pub steals: usize,
}

impl PoolStats {
    /// Worker busy-time imbalance: max over mean (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<f64> = self
            .per_worker_busy_nanos
            .iter()
            .map(|&n| n as f64)
            .collect();
        imbalance_ratio(&busy)
    }

    /// Per-morsel costs as floats, for [`simulate_workers`] and the cost
    /// model's measured-scaling feedback.
    pub fn morsel_costs(&self) -> Vec<f64> {
        self.per_morsel_nanos.iter().map(|&n| n as f64).collect()
    }

    fn empty(schedule: Schedule) -> PoolStats {
        PoolStats {
            schedule,
            workers: 0,
            per_worker_morsels: Vec::new(),
            per_worker_items: Vec::new(),
            per_worker_busy_nanos: Vec::new(),
            per_morsel_nanos: Vec::new(),
            steals: 0,
        }
    }
}

/// Max-over-mean imbalance of per-worker loads. Empty or all-zero loads
/// count as perfectly balanced (1.0).
pub fn imbalance_ratio(per_worker: &[f64]) -> f64 {
    if per_worker.is_empty() {
        return 1.0;
    }
    let sum: f64 = per_worker.iter().sum();
    if sum <= 0.0 {
        return 1.0;
    }
    let mean = sum / per_worker.len() as f64;
    let max = per_worker.iter().cloned().fold(0.0f64, f64::max);
    max / mean
}

/// Deterministic equal-speed worker model of a schedule: given per-morsel
/// costs, return each worker's total load.
///
/// Under [`Schedule::Morsel`] this is greedy list scheduling in morsel
/// order — exactly what the atomic-cursor claim loop converges to when all
/// workers run at the same speed (the worker that finishes first claims the
/// next morsel). Under [`Schedule::Static`] each worker gets its contiguous
/// block. Used by the skew regression test and benchmark so the comparison
/// is reproducible even on preempted or single-core hosts.
pub fn simulate_workers(costs: &[f64], workers: usize, schedule: Schedule) -> Vec<f64> {
    let workers = workers.max(1).min(costs.len().max(1));
    let mut load = vec![0.0f64; workers];
    match schedule {
        Schedule::Morsel => {
            for &c in costs {
                let mut best = 0usize;
                for w in 1..workers {
                    if load[w] < load[best] {
                        best = w;
                    }
                }
                load[best] += c;
            }
        }
        Schedule::Static => {
            for (m, &c) in costs.iter().enumerate() {
                load[static_owner(m, costs.len(), workers)] += c;
            }
        }
    }
    load
}

/// The worker a static contiguous block split assigns morsel `m` to.
fn static_owner(m: usize, n_morsels: usize, workers: usize) -> usize {
    debug_assert!(m < n_morsels);
    // Worker w owns morsels [w*n/W, (w+1)*n/W); invert by scanning is O(W)
    // but this only runs in stats accounting, never on the data path.
    (0..workers)
        .find(|&w| m < ((w + 1) * n_morsels) / workers)
        .unwrap_or(workers - 1)
}

/// The morsel-driven scheduler: a [`Parallelism`] width, a [`CostHint`] that
/// sizes morsels, and a [`Schedule`] (dynamic claiming by default).
///
/// All public `par_*` primitives are wrappers over this type.
#[derive(Debug, Clone, Copy)]
pub struct MorselPool {
    par: Parallelism,
    hint: CostHint,
    schedule: Schedule,
}

impl MorselPool {
    /// Pool with uniform cost hints and dynamic morsel claiming.
    pub fn new(par: Parallelism) -> MorselPool {
        MorselPool {
            par,
            hint: CostHint::uniform(),
            schedule: Schedule::Morsel,
        }
    }

    /// Pool with an explicit cost hint.
    pub fn with_hint(par: Parallelism, hint: CostHint) -> MorselPool {
        MorselPool {
            par,
            hint,
            schedule: Schedule::Morsel,
        }
    }

    /// Same pool under a different schedule (the skew benchmark uses this
    /// to run the identical workload under static splits).
    pub fn with_schedule(mut self, schedule: Schedule) -> MorselPool {
        self.schedule = schedule;
        self
    }

    /// The fixed-order morsel partition this pool would use for `n_items`.
    pub fn ranges(&self, n_items: usize) -> Vec<Range<usize>> {
        morsel_ranges(n_items, self.par.workers(), self.hint)
    }

    /// Run `work(morsel_id, item_range)` over every morsel of `0..n_items`,
    /// returning per-morsel results in morsel order plus scheduling stats.
    ///
    /// This is the core primitive: results are pre-assigned to slots by
    /// morsel id, so any claim order produces the same output vector.
    pub fn map_ranges_with_stats<O, F>(&self, n_items: usize, work: F) -> (Vec<O>, PoolStats)
    where
        O: Send,
        F: Fn(usize, Range<usize>) -> O + Sync,
    {
        let morsels = self.ranges(n_items);
        if morsels.is_empty() {
            return (Vec::new(), PoolStats::empty(self.schedule));
        }
        let workers = self.par.workers().min(morsels.len());
        if workers <= 1 {
            return self.run_serial(&morsels, work);
        }
        self.run_threaded(&morsels, workers, work)
    }

    /// [`MorselPool::map_ranges_with_stats`] without the stats.
    pub fn map_ranges<O, F>(&self, n_items: usize, work: F) -> Vec<O>
    where
        O: Send,
        F: Fn(usize, Range<usize>) -> O + Sync,
    {
        self.map_ranges_with_stats(n_items, work).0
    }

    /// Map `f(index, item)` over `items`, results in input order, plus
    /// scheduling stats.
    pub fn map_with_stats<I, O, F>(&self, items: &[I], f: F) -> (Vec<O>, PoolStats)
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        let (per_morsel, stats) = self.map_ranges_with_stats(items.len(), |_, range| {
            range.map(|i| f(i, &items[i])).collect::<Vec<O>>()
        });
        // Morsels partition 0..len in order, so flattening morsel outputs
        // in morsel order *is* input order.
        (per_morsel.into_iter().flatten().collect(), stats)
    }

    /// Map `f(index, item)` over `items`, results in input order.
    pub fn map<I, O, F>(&self, items: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        self.map_with_stats(items, f).0
    }

    /// Apply `f(chunk_index, chunk)` to every `chunk_len`-sized chunk of
    /// `data` (the final chunk may be shorter), plus scheduling stats.
    ///
    /// Chunk boundaries depend only on `chunk_len`; a morsel is a contiguous
    /// run of whole chunks, so the work done per output element is identical
    /// at every parallelism level. Each chunk's disjoint `&mut` borrow is
    /// parked in a take-once slot that the claiming worker empties — no
    /// `unsafe`, and each slot's lock is taken exactly once.
    // scilint: allow(F001, chunk slots are claimed exactly once by the pool's ordered protocol; a double claim is a pool bug)
    pub fn chunks_mut_with_stats<T, F>(&self, data: &mut [T], chunk_len: usize, f: F) -> PoolStats
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let slots: Vec<Mutex<Option<&mut [T]>>> = data
            .chunks_mut(chunk_len)
            .map(|c| Mutex::new(Some(c)))
            .collect();
        let (_, stats) = self.map_ranges_with_stats(slots.len(), |_, range| {
            for chunk_id in range {
                let chunk = slots[chunk_id]
                    .lock()
                    .expect("chunk slot lock")
                    .take()
                    .expect("each chunk claimed exactly once");
                f(chunk_id, chunk);
            }
        });
        stats
    }

    /// Map each item to a partial with `map`, then fold the partials in
    /// **item order** with `reduce` on the calling thread, starting from
    /// `init` — bit-identical at every width even for non-associative ops.
    pub fn reduce<I, A, M, R>(&self, items: &[I], map: M, init: A, reduce: R) -> A
    where
        I: Sync,
        A: Send,
        M: Fn(usize, &I) -> A + Sync,
        R: Fn(A, A) -> A,
    {
        self.map(items, map).into_iter().fold(init, reduce)
    }

    // scilint: allow(F002, per-morsel timing feeds scheduler stats only; results stay bit-identical regardless of timing)
    fn run_serial<O, F>(&self, morsels: &[Range<usize>], work: F) -> (Vec<O>, PoolStats)
    where
        O: Send,
        F: Fn(usize, Range<usize>) -> O + Sync,
    {
        let mut out = Vec::with_capacity(morsels.len());
        let mut per_morsel_nanos = Vec::with_capacity(morsels.len());
        let mut items = 0usize;
        for (m, range) in morsels.iter().enumerate() {
            let t0 = Instant::now();
            items += range.len();
            out.push(work(m, range.clone()));
            per_morsel_nanos.push(elapsed_nanos(t0));
        }
        let busy = per_morsel_nanos.iter().sum();
        let stats = PoolStats {
            schedule: self.schedule,
            workers: 1,
            per_worker_morsels: vec![morsels.len()],
            per_worker_items: vec![items],
            per_worker_busy_nanos: vec![busy],
            per_morsel_nanos,
            steals: 0,
        };
        (out, stats)
    }

    // scilint: allow(F001, every morsel produces exactly one result under the pool protocol; a hole is a pool bug)
    // scilint: allow(F002, per-morsel timing feeds scheduler stats only; results stay bit-identical regardless of timing)
    // scilint: allow(F003, clones a Range<usize> morsel descriptor, not a chunk payload)
    fn run_threaded<O, F>(
        &self,
        morsels: &[Range<usize>],
        workers: usize,
        work: F,
    ) -> (Vec<O>, PoolStats)
    where
        O: Send,
        F: Fn(usize, Range<usize>) -> O + Sync,
    {
        let n_morsels = morsels.len();
        let cursor = AtomicUsize::new(0);
        let schedule = self.schedule;
        let work = &work;
        let cursor = &cursor;
        type WorkerYield<O> = (Vec<(usize, O, u64)>, usize);
        let mut out: Vec<Option<O>> = Vec::new();
        out.resize_with(n_morsels, || None);
        let mut stats = PoolStats {
            schedule,
            workers,
            per_worker_morsels: vec![0; workers],
            per_worker_items: vec![0; workers],
            per_worker_busy_nanos: vec![0; workers],
            per_morsel_nanos: vec![0; n_morsels],
            steals: 0,
        };
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || -> WorkerYield<O> {
                        let mut produced = Vec::new();
                        let mut items = 0usize;
                        // Static schedule: iterate the worker's own block.
                        // Morsel schedule: claim from the shared cursor.
                        let block = w * n_morsels / workers..(w + 1) * n_morsels / workers;
                        let mut next_static = block.start;
                        loop {
                            let m = match schedule {
                                Schedule::Morsel => cursor.fetch_add(1, Ordering::Relaxed),
                                Schedule::Static => {
                                    let m = next_static;
                                    next_static += 1;
                                    m
                                }
                            };
                            let done = match schedule {
                                Schedule::Morsel => m >= n_morsels,
                                Schedule::Static => m >= block.end,
                            };
                            if done {
                                break;
                            }
                            let range = morsels[m].clone();
                            items += range.len();
                            let t0 = Instant::now();
                            let value = work(m, range);
                            produced.push((m, value, elapsed_nanos(t0)));
                        }
                        (produced, items)
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((produced, items)) => {
                        stats.per_worker_morsels[w] = produced.len();
                        stats.per_worker_items[w] = items;
                        for (m, value, nanos) in produced {
                            if schedule == Schedule::Morsel
                                && static_owner(m, n_morsels, workers) != w
                            {
                                stats.steals += 1;
                            }
                            stats.per_worker_busy_nanos[w] += nanos;
                            stats.per_morsel_nanos[m] = nanos;
                            out[m] = Some(value);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        let out = out
            .into_iter()
            .map(|v| v.expect("every morsel produced exactly once"))
            .collect();
        (out, stats)
    }
}

/// Run `on_thread` on a scoped worker thread while `on_caller` runs on the
/// calling thread; join and return both results (the worker's as a
/// `thread::Result` so the caller can re-raise its panic payload).
///
/// This is the spawn primitive behind [`crate::pipeline`]; it lives here so
/// the morsel module stays the crate's single thread-spawn site.
pub(crate) fn scoped_pair<A, B, FA, FB>(on_thread: FA, on_caller: FB) -> (std::thread::Result<A>, B)
where
    A: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B,
{
    std::thread::scope(|s| {
        let handle = s.spawn(on_thread);
        let b = on_caller();
        (handle.join(), b)
    })
}

fn elapsed_nanos(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_exactly_and_in_order() {
        for (n, workers, hint) in [
            (103usize, 4usize, CostHint::uniform()),
            (103, 1, CostHint::uniform()),
            (45, 8, CostHint::min_items(9)),
            (4096, 2, CostHint::min_items(64)),
            (7, 4, CostHint::min_items(9)), // smaller than one floor unit
            (1, 16, CostHint::uniform()),
            (1000, 8, CostHint::item_cost(0.01)), // cheap items coarsen
        ] {
            let ranges = morsel_ranges(n, workers, hint);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "contiguous and ordered");
                assert!(r.end > r.start, "non-empty");
                next = r.end;
            }
            assert_eq!(next, n, "covers every item");
            // Floor: every morsel but the last respects the granularity.
            let floor = hint.floor().min(n);
            for r in &ranges[..ranges.len().saturating_sub(1)] {
                assert!(r.len() >= floor, "{r:?} finer than floor {floor}");
            }
            // Ceiling: dispatch count stays within morsels-per-worker.
            assert!(ranges.len() <= workers.max(1) * MORSELS_PER_WORKER);
        }
        assert!(morsel_ranges(0, 4, CostHint::uniform()).is_empty());
    }

    #[test]
    fn max_items_caps_morsel_length_but_floor_wins() {
        // 1000 items over 2 workers would make 125-item morsels; a
        // budget cap of 50 shortens them (more, smaller morsels).
        let capped = morsel_ranges(1000, 2, CostHint::uniform().with_max_items(50));
        assert!(capped.iter().all(|r| r.len() <= 50));
        let mut next = 0usize;
        for r in &capped {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, 1000, "cap never loses items");
        // The kernel's indivisible unit beats the cap.
        let floored = morsel_ranges(1000, 2, CostHint::min_items(200).with_max_items(50));
        for r in &floored[..floored.len() - 1] {
            assert!(r.len() >= 200, "{r:?}");
        }
        // Zero cap = uncapped.
        assert_eq!(
            morsel_ranges(1000, 2, CostHint::uniform().with_max_items(0)),
            morsel_ranges(1000, 2, CostHint::uniform())
        );
    }

    #[test]
    fn cheap_items_get_coarser_morsels() {
        // 1000 items at cost 0.01 need >= 100 items per morsel.
        let ranges = morsel_ranges(1000, 8, CostHint::item_cost(0.01));
        for r in &ranges[..ranges.len() - 1] {
            assert!(r.len() >= 100, "{r:?}");
        }
    }

    #[test]
    fn map_ranges_is_bit_identical_across_widths_and_schedules() {
        // The partition is a pure function of (n, workers, hint), so each
        // pool's per-morsel output must equal a serial replay of its *own*
        // ranges no matter which worker claimed what — and the stitched
        // item-order map must be bit-identical to the serial pool at every
        // width and schedule.
        let items: Vec<f64> = (0..97).map(|i| (i as f64).sin()).collect();
        let f = |i: usize, x: &f64| (x * 1.000_001 + i as f64).abs().sqrt();
        let serial_bits: Vec<u64> = MorselPool::new(Parallelism::Serial)
            .map(&items, f)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for workers in [1usize, 2, 4, 8] {
            for schedule in [Schedule::Morsel, Schedule::Static] {
                let pool = MorselPool::new(Parallelism::threads(workers)).with_schedule(schedule);
                let expect: Vec<(usize, usize, usize, usize)> = pool
                    .ranges(97)
                    .into_iter()
                    .enumerate()
                    .map(|(m, r)| (m, r.start, r.end, r.map(|i| i * i).sum::<usize>()))
                    .collect();
                let got = pool.map_ranges(97, |m, r| {
                    (m, r.start, r.end, r.map(|i| i * i).sum::<usize>())
                });
                assert_eq!(got, expect, "workers={workers} schedule={schedule:?}");
                let bits: Vec<u64> = pool.map(&items, f).iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits, serial_bits, "workers={workers} schedule={schedule:?}");
            }
        }
    }

    #[test]
    fn stats_account_every_morsel_once() {
        let pool = MorselPool::new(Parallelism::threads(4));
        let (out, stats) = pool.map_ranges_with_stats(64, |_, r| r.len());
        assert_eq!(out.iter().sum::<usize>(), 64);
        assert_eq!(stats.per_worker_morsels.iter().sum::<usize>(), out.len());
        assert_eq!(stats.per_worker_items.iter().sum::<usize>(), 64);
        assert_eq!(stats.per_morsel_nanos.len(), out.len());
        assert!(stats.workers >= 1 && stats.workers <= 4);
        assert!(stats.imbalance() >= 1.0);
    }

    #[test]
    fn static_schedule_never_steals() {
        let pool = MorselPool::new(Parallelism::threads(4)).with_schedule(Schedule::Static);
        let (_, stats) = pool.map_ranges_with_stats(64, |_, r| r.len());
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn imbalance_ratio_edges() {
        assert_eq!(imbalance_ratio(&[]), 1.0);
        assert_eq!(imbalance_ratio(&[0.0, 0.0]), 1.0);
        assert_eq!(imbalance_ratio(&[1.0, 1.0, 1.0]), 1.0);
        assert!((imbalance_ratio(&[3.0, 1.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn simulation_matches_block_math_and_balances_skew() {
        // One heavy morsel among uniform ones: static blocks pile the heavy
        // morsel plus its block-mates on one worker; greedy claiming gives
        // the heavy worker nothing else.
        let mut costs = vec![1.0f64; 16];
        costs[0] = 10.0;
        let st = simulate_workers(&costs, 4, Schedule::Static);
        let dy = simulate_workers(&costs, 4, Schedule::Morsel);
        assert_eq!(st.len(), 4);
        assert_eq!(st[0], 10.0 + 3.0, "block 0 holds the heavy morsel");
        assert!(imbalance_ratio(&dy) < imbalance_ratio(&st));
        // Totals conserved under both schedules.
        let total: f64 = costs.iter().sum();
        assert!((st.iter().sum::<f64>() - total).abs() < 1e-9);
        assert!((dy.iter().sum::<f64>() - total).abs() < 1e-9);
    }

    #[test]
    fn static_owner_covers_blocks() {
        for (n, w) in [(16usize, 4usize), (7, 3), (5, 8), (1, 1)] {
            let w_eff = w.min(n);
            let mut counts = vec![0usize; w_eff];
            for m in 0..n {
                counts[static_owner(m, n, w_eff)] += 1;
            }
            assert_eq!(counts.iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn scoped_pair_runs_both_sides() {
        let (a, b) = scoped_pair(|| 6 * 7, || "caller");
        assert_eq!(a.expect("worker ok"), 42);
        assert_eq!(b, "caller");
    }
}
