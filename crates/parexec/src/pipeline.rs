//! Two-stage bounded pipeline: overlap ingest with the first compute step.
//!
//! The paper's ingest-dominated workloads reward engines that pipeline I/O
//! into compute (Dask, TensorFlow) over engines with a hard barrier between
//! the two (§5's Figure 11). This module gives the use-case pipelines that
//! overlap without giving up determinism: stage 1 (typically format decode)
//! runs on one scoped producer thread feeding a bounded channel **in item
//! order**, and stage 2 (the first compute step) consumes on the calling
//! thread, also in item order. The only thing the pipeline changes is *when*
//! stage 1 runs relative to stage 2 — never the order stage 2 observes — so
//! output is byte-identical to sequential decode-then-compute.

use crate::morsel::scoped_pair;
use std::sync::mpsc::sync_channel;

/// Run `stage1(i)` for `i in 0..n` on a producer thread and
/// `stage2(i, stage1_out)` on the calling thread, overlapped through a
/// channel holding at most `bound` in-flight items. Returns stage 2's
/// outputs in item order.
///
/// `bound` trades memory for overlap: 1 already overlaps one decode with
/// one compute; larger bounds absorb jitter between stage costs. Panics in
/// either stage propagate to the caller with their original payload.
pub fn two_stage<T, O, P, C>(n: usize, bound: usize, stage1: P, mut stage2: C) -> Vec<O>
where
    T: Send,
    P: Fn(usize) -> T + Send,
    C: FnMut(usize, T) -> O,
{
    assert!(bound > 0, "pipeline bound must be positive");
    let (tx, rx) = sync_channel::<(usize, T)>(bound);
    let (producer, out) = scoped_pair(
        move || {
            for i in 0..n {
                // A send error means the consumer is gone (it panicked and
                // dropped the receiver); stop producing and let the join
                // below surface whichever panic happened.
                if tx.send((i, stage1(i))).is_err() {
                    break;
                }
            }
        },
        // `move` is load-bearing: the consumer must *own* the receiver so a
        // stage-2 panic drops it during unwind. Capturing `rx` by reference
        // would leave it alive in this frame while the scope join waits on a
        // producer stuck in `send` against a full channel — a deadlock.
        move || {
            let mut out = Vec::with_capacity(n);
            for (i, item) in rx.iter() {
                debug_assert_eq!(i, out.len(), "single producer preserves order");
                out.push(stage2(i, item));
            }
            out
        },
    );
    if let Err(payload) = producer {
        std::panic::resume_unwind(payload);
    }
    assert_eq!(out.len(), n, "pipeline produced every item");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_sequential_exactly() {
        let decode = |i: usize| vec![i as f64; 4];
        let sequential: Vec<f64> = (0..37)
            .map(|i| decode(i).iter().sum::<f64>() + i as f64)
            .collect();
        for bound in [1usize, 2, 8] {
            let got = two_stage(37, bound, decode, |i, v: Vec<f64>| {
                v.iter().sum::<f64>() + i as f64
            });
            assert_eq!(got, sequential, "bound={bound}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = two_stage(0, 4, |i| i, |_, _| 1u32);
        assert!(out.is_empty());
    }

    #[test]
    fn stage2_folds_in_item_order() {
        // Non-associative float fold: bit-identity across bounds proves the
        // consumer sees items in exactly the sequential order.
        let seq: f64 = (0..500).fold(0.0, |acc, i| acc + 1.0 / (1.0 + i as f64));
        for bound in [1usize, 3, 16] {
            let mut acc = 0.0f64;
            let _: Vec<()> = two_stage(
                500,
                bound,
                |i| 1.0 / (1.0 + i as f64),
                |_, x| {
                    acc += x;
                },
            );
            assert_eq!(acc.to_bits(), seq.to_bits(), "bound={bound}");
        }
    }

    #[test]
    fn producer_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            two_stage(
                10,
                2,
                |i| {
                    assert!(i != 4, "decode 4 corrupt");
                    i
                },
                |_, x| x,
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn consumer_panic_propagates_without_deadlock() {
        let produced = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(|| {
            two_stage(
                1000,
                1,
                |i| {
                    produced.fetch_add(1, Ordering::Relaxed);
                    i
                },
                |_, x| {
                    assert!(x < 3, "compute rejects item 3");
                    x
                },
            )
        });
        assert!(result.is_err());
        // The producer stopped early instead of filling the channel forever.
        assert!(produced.load(Ordering::Relaxed) < 1000);
    }
}
