//! The five verification passes. Each takes the shared [`Analysis`] (the
//! structural pass works on the raw graph, since the analysis only exists
//! for well-formed graphs) and emits [`Diagnostic`]s through an
//! [`Emitter`] that caps per-code noise.

use crate::analysis::Analysis;
use crate::diag::{Code, Diagnostic, Severity};
use crate::profile::{BarrierDiscipline, InvariantProfile};
use simcluster::{ClusterSpec, Placement, TaskGraph, TaskId};
use std::collections::BTreeMap;

/// Maximum findings kept per code; the rest collapse into one "…and N
/// more" diagnostic so a badly broken graph stays readable.
const MAX_PER_CODE: usize = 16;

/// Truncation for task-id lists inside one diagnostic.
const MAX_TASKS: usize = 8;

pub(crate) struct Emitter {
    out: Vec<Diagnostic>,
    suppressed: BTreeMap<(&'static str, Severity), usize>,
}

impl Emitter {
    pub fn new() -> Emitter {
        Emitter {
            out: Vec::new(),
            suppressed: BTreeMap::new(),
        }
    }

    pub fn push(&mut self, code: Code, severity: Severity, tasks: Vec<TaskId>, message: String) {
        let kept = self.out.iter().filter(|d| d.code == code).count();
        if kept >= MAX_PER_CODE {
            *self
                .suppressed
                .entry((code.as_str(), severity))
                .or_insert(0) += 1;
            return;
        }
        let tasks = truncated(tasks);
        self.out.push(Diagnostic {
            code,
            severity,
            tasks,
            message,
        });
    }

    pub fn finish(mut self) -> Vec<Diagnostic> {
        for ((code_str, severity), n) in std::mem::take(&mut self.suppressed) {
            if let Some(code) = self
                .out
                .iter()
                .map(|d| d.code)
                .find(|c| c.as_str() == code_str)
            {
                self.out.push(Diagnostic {
                    code,
                    severity,
                    tasks: vec![],
                    message: format!("…and {n} more {code_str} finding{}", plural(n)),
                });
            }
        }
        self.out
    }
}

fn truncated(mut tasks: Vec<TaskId>) -> Vec<TaskId> {
    tasks.truncate(MAX_TASKS);
    tasks
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn gb(bytes: u64) -> f64 {
    bytes as f64 / 1e9
}

// ---------------------------------------------------------------------------
// Pass 1: DAG well-formedness (W...)
// ---------------------------------------------------------------------------

/// Structural checks on the raw graph. Returns `true` when a finding
/// invalidates reachability (cycle, dangling or self dependency), in which
/// case the semantic passes are skipped.
pub(crate) fn structural(graph: &TaskGraph, em: &mut Emitter) -> bool {
    let tasks = graph.tasks();
    let n = tasks.len();
    let mut fatal = false;

    for (id, t) in tasks.iter().enumerate() {
        let mut sorted = t.deps.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            em.push(
                Code::W004,
                Severity::Warning,
                vec![id],
                format!("task {id} ({:?}) lists a dependency more than once; transfer bytes would double-count", t.label),
            );
        }
        for &d in &t.deps {
            if d >= n {
                fatal = true;
                em.push(
                    Code::W002,
                    Severity::Error,
                    vec![id],
                    format!(
                        "task {id} ({:?}) depends on task {d}, but the graph has only {n} tasks",
                        t.label
                    ),
                );
            } else if d == id {
                fatal = true;
                em.push(
                    Code::W003,
                    Severity::Error,
                    vec![id],
                    format!("task {id} ({:?}) depends on itself", t.label),
                );
            }
        }
        if t.is_barrier
            && (t.s3_bytes | t.disk_read_bytes | t.disk_write_bytes | t.output_bytes | t.mem_bytes)
                > 0
        {
            em.push(
                Code::W005,
                Severity::Error,
                vec![id],
                format!(
                    "barrier {id} ({:?}) carries data; barriers synchronize, they move no bytes",
                    t.label
                ),
            );
        }
    }

    // Kahn over the in-range, non-self edges: leftovers sit on (or behind)
    // a cycle and can never become ready.
    let mut indegree = vec![0usize; n];
    let mut consumers: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for (id, t) in tasks.iter().enumerate() {
        for &d in &t.deps {
            if d < n && d != id {
                indegree[id] += 1;
                consumers[d].push(id);
            }
        }
    }
    let mut ready: Vec<TaskId> = indegree
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut processed = 0usize;
    while let Some(u) = ready.pop() {
        processed += 1;
        for &c in &consumers[u] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                ready.push(c);
            }
        }
    }
    if processed < n {
        fatal = true;
        let stuck: Vec<TaskId> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d > 0)
            .map(|(i, _)| i)
            .collect();
        em.push(
            Code::W001,
            Severity::Error,
            stuck.clone(),
            format!(
                "dependency cycle: {} task{} can never become ready (first stuck ids shown)",
                stuck.len(),
                plural(stuck.len())
            ),
        );
    }
    fatal
}

// ---------------------------------------------------------------------------
// Pass 2: byte conservation (B...)
// ---------------------------------------------------------------------------

pub(crate) fn bytes(an: &Analysis<'_>, p: &InvariantProfile, em: &mut Emitter) {
    // B001: a task cannot emit more bytes than it ever held.
    for (id, t) in an.tasks.iter().enumerate() {
        if !t.is_barrier && t.mem_bytes > 0 && t.output_bytes > t.mem_bytes {
            em.push(
                Code::B001,
                Severity::Error,
                vec![id],
                format!(
                    "task {id} ({:?}) outputs {:.2} GB but declares only {:.2} GB resident memory",
                    t.label,
                    gb(t.output_bytes),
                    gb(t.mem_bytes)
                ),
            );
        }
    }

    // B002: every disk read must be covered by disk writes on the task
    // itself (spill round-trips) or its ancestors. Store-backed engines
    // (Myria's per-node PostgreSQL, SciDB's chunk store) legitimately read
    // state written outside this graph.
    if !p.store_backed {
        let writers: Vec<(TaskId, u64)> = an
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.disk_write_bytes > 0)
            .map(|(i, t)| (i, t.disk_write_bytes))
            .collect();
        for (id, t) in an.tasks.iter().enumerate() {
            if t.disk_read_bytes == 0 {
                continue;
            }
            let avail: u64 = t.disk_write_bytes
                + writers
                    .iter()
                    .filter(|&&(w, _)| an.is_ancestor(w, id))
                    .map(|&(_, b)| b)
                    .sum::<u64>();
            if t.disk_read_bytes > avail {
                em.push(
                    Code::B002,
                    Severity::Error,
                    vec![id],
                    format!(
                        "task {id} ({:?}) reads {:.2} GB from local disk but upstream writes total only {:.2} GB",
                        t.label,
                        gb(t.disk_read_bytes),
                        gb(avail)
                    ),
                );
            }
        }
    }

    // B003: outputs must be explainable by visible inputs within the
    // engine's format-conversion factor. Engines whose producers declare
    // full-size outputs sliced per consumer (Dask) opt out.
    if !p.transfer_slices {
        for (id, t) in an.tasks.iter().enumerate() {
            if t.is_barrier || t.output_bytes == 0 || t.deps.is_empty() {
                continue; // roots may generate data (e.g. key enumeration)
            }
            let mut visible = t.s3_bytes + t.disk_read_bytes;
            for &d in &t.deps {
                let dep = &an.tasks[d];
                if dep.is_barrier {
                    // Data flowing "through" a stage barrier: the barrier's
                    // own inputs are what the consumer actually receives.
                    visible += dep
                        .deps
                        .iter()
                        .map(|&dd| an.tasks[dd].output_bytes)
                        .sum::<u64>();
                } else {
                    visible += dep.output_bytes;
                }
            }
            if visible > 0 {
                if t.output_bytes as f64 > visible as f64 * p.format_factor {
                    em.push(
                        Code::B003,
                        Severity::Warning,
                        vec![id],
                        format!(
                            "task {id} ({:?}) outputs {:.2} GB from {:.2} GB of visible input (> {:.1}x format factor)",
                            t.label,
                            gb(t.output_bytes),
                            gb(visible),
                            p.format_factor
                        ),
                    );
                }
            } else {
                // No visible bytes at all: tolerated when some ancestor
                // moved data (engine-internal residency, e.g. a master that
                // holds everything), flagged when the whole upstream chain
                // is byte-free.
                let upstream_has_bytes = an.ancestors(id).any(|a| {
                    let u = &an.tasks[a];
                    u.s3_bytes > 0 || u.disk_read_bytes > 0 || u.output_bytes > 0
                });
                if !upstream_has_bytes {
                    em.push(
                        Code::B003,
                        Severity::Warning,
                        vec![id],
                        format!(
                            "task {id} ({:?}) outputs {:.2} GB but no upstream task carries any bytes",
                            t.label,
                            gb(t.output_bytes)
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 3: memory budget (M...)
// ---------------------------------------------------------------------------

/// Greedy heavy-first antichain: the largest pairwise-unordered tasks, at
/// most `slots` of them — a set the scheduler genuinely can run
/// concurrently on one node, so its footprint is a *realizable* demand
/// (overrun findings are sound, not worst-case fiction).
fn antichain_demand(an: &Analysis<'_>, ids: &[TaskId], slots: usize) -> (u64, Vec<TaskId>) {
    let mut sorted: Vec<TaskId> = ids.to_vec();
    sorted.sort_by_key(|&i| std::cmp::Reverse(an.tasks[i].mem_bytes));
    let mut taken: Vec<TaskId> = Vec::new();
    let mut sum = 0u64;
    for id in sorted {
        if taken.len() >= slots {
            break;
        }
        if taken.iter().all(|&t| !an.comparable(t, id)) {
            sum += an.tasks[id].mem_bytes;
            taken.push(id);
        }
    }
    (sum, taken)
}

/// The memory pass's demand estimate, without diagnostics: the worst
/// per-node realizable working set over pinned tasks, joined with the
/// floating-task antichain. This is the number the M-passes compare
/// against node RAM; `bench ooc` validates it against the governor's
/// measured peak residency. Unlike [`memory`], the naive-sum shortcut is
/// not taken — the antichain refinement always runs, so the estimate is
/// realizable demand even when it fits the node.
pub(crate) fn peak_demand(an: &Analysis<'_>, cluster: &ClusterSpec) -> u64 {
    let slots = cluster.node.worker_slots.max(1);
    let mut per_node: Vec<Vec<TaskId>> = vec![Vec::new(); cluster.nodes.max(1)];
    let mut floating: Vec<TaskId> = Vec::new();
    for (id, t) in an.tasks.iter().enumerate() {
        if t.is_barrier || t.mem_bytes == 0 {
            continue;
        }
        match t.placement {
            Placement::Node(node) => per_node[node.min(cluster.nodes.saturating_sub(1))].push(id),
            Placement::Any => floating.push(id),
        }
    }
    let mut worst = 0u64;
    for ids in per_node.iter().chain(std::iter::once(&floating)) {
        let (demand, _) = antichain_demand(an, ids, slots);
        worst = worst.max(demand);
    }
    worst
}

pub(crate) fn memory(
    an: &Analysis<'_>,
    cluster: &ClusterSpec,
    p: &InvariantProfile,
    em: &mut Emitter,
) {
    let ram = cluster.node.mem_bytes;
    let slots = cluster.node.worker_slots.max(1);

    // M003: one task alone cannot fit a node.
    for (id, t) in an.tasks.iter().enumerate() {
        if t.mem_bytes > ram {
            let severity = if p.spills {
                Severity::Warning
            } else {
                Severity::Error
            };
            em.push(
                Code::M003,
                severity,
                vec![id],
                format!(
                    "task {id} ({:?}) needs {:.2} GB; a node has {:.2} GB",
                    t.label,
                    gb(t.mem_bytes),
                    gb(ram)
                ),
            );
        }
    }

    // M001: pinned working sets, per node. The naive sum is refined to a
    // realizable antichain only when it exceeds the budget, so the common
    // (healthy) case stays O(tasks).
    let mut per_node: Vec<Vec<TaskId>> = vec![Vec::new(); cluster.nodes.max(1)];
    for (id, t) in an.tasks.iter().enumerate() {
        if t.is_barrier || t.mem_bytes == 0 {
            continue;
        }
        if let Placement::Node(node) = t.placement {
            // The simulator clamps out-of-range pins the same way; P001
            // reports the range violation separately.
            per_node[node.min(cluster.nodes.saturating_sub(1))].push(id);
        }
    }
    let mut worst_demand = 0u64;
    for (node, ids) in per_node.iter().enumerate() {
        let naive: u64 = ids.iter().map(|&i| an.tasks[i].mem_bytes).sum();
        let (demand, set) = if naive <= ram {
            (naive, Vec::new())
        } else {
            antichain_demand(an, ids, slots)
        };
        worst_demand = worst_demand.max(demand);
        if demand > ram {
            let labels: Vec<&str> = set.iter().map(|&i| an.tasks[i].label).collect();
            let (severity, verdict) = if p.spills {
                (Severity::Info, "the engine will spill/thrash")
            } else {
                (Severity::Error, "pipelined execution fails with OOM")
            };
            em.push(
                Code::M001,
                severity,
                set,
                format!(
                    "node {node}: {} concurrent pinned tasks [{}] demand {:.2} GB of {:.2} GB; {verdict}",
                    labels.len(),
                    labels.join(", "),
                    gb(demand),
                    gb(ram)
                ),
            );
        }
    }

    // M002: floating tasks — any node may be asked to host up to `slots`
    // of these at once; flag when the heaviest realizable set overflows.
    let floating: Vec<TaskId> = an
        .tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_barrier && t.mem_bytes > 0 && t.placement == Placement::Any)
        .map(|(i, _)| i)
        .collect();
    let fl_naive: u64 = floating.iter().map(|&i| an.tasks[i].mem_bytes).sum();
    let (fl_demand, fl_set) = if fl_naive <= ram {
        (fl_naive, Vec::new())
    } else {
        antichain_demand(an, &floating, slots)
    };
    worst_demand = worst_demand.max(fl_demand);
    if fl_demand > ram {
        let severity = if p.spills {
            Severity::Info
        } else {
            Severity::Warning
        };
        em.push(
            Code::M002,
            severity,
            fl_set,
            format!(
                "{slots} concurrent unpinned tasks can demand {:.2} GB of a node's {:.2} GB{}",
                gb(fl_demand),
                gb(ram),
                if p.spills {
                    "; the engine will spill/thrash"
                } else {
                    ""
                }
            ),
        );
    }

    // M004 advisory: fits as declared, but not after the engine's
    // memory-requirement factor (the paper: Spark wanted ~2x the cluster
    // memory to run reliably).
    if p.mem_requirement_factor > 1.0 && worst_demand > 0 {
        let inflated = worst_demand as f64 * p.mem_requirement_factor;
        if worst_demand <= ram && inflated > ram as f64 {
            em.push(
                Code::M004,
                Severity::Info,
                vec![],
                format!(
                    "peak demand {:.2} GB fits a {:.2} GB node, but {:.1}x it ({:.2} GB) does not — expect instability without extra memory",
                    gb(worst_demand),
                    gb(ram),
                    p.mem_requirement_factor,
                    inflated / 1e9
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 4: placement feasibility and skew (P...)
// ---------------------------------------------------------------------------

pub(crate) fn placement(
    an: &Analysis<'_>,
    cluster: &ClusterSpec,
    p: &InvariantProfile,
    em: &mut Emitter,
) {
    for (id, t) in an.tasks.iter().enumerate() {
        if let Placement::Node(node) = t.placement {
            if node >= cluster.nodes {
                em.push(
                    Code::P001,
                    Severity::Error,
                    vec![id],
                    format!(
                        "task {id} ({:?}) pinned to node {node}; the cluster has {} nodes (the simulator would silently clamp it)",
                        t.label, cluster.nodes
                    ),
                );
            }
        } else if p.static_placement && !t.is_barrier {
            em.push(
                Code::P002,
                Severity::Error,
                vec![id],
                format!(
                    "task {id} ({:?}) is unpinned, but {} places every task statically",
                    t.label, p.engine
                ),
            );
        }
    }

    // P003: a label that is partly pinned and partly floating usually means
    // a hash-partitioned operator lost its partitioning on some tasks.
    let mut by_label: BTreeMap<&'static str, (usize, usize, TaskId)> = BTreeMap::new();
    for (id, t) in an.tasks.iter().enumerate() {
        if t.is_barrier {
            continue;
        }
        let e = by_label.entry(t.label).or_insert((0, 0, id));
        match t.placement {
            Placement::Node(_) => e.0 += 1,
            Placement::Any => e.1 += 1,
        }
    }
    for (label, (pinned, any, first)) in &by_label {
        if *pinned > 0 && *any > 0 {
            em.push(
                Code::P003,
                Severity::Warning,
                vec![*first],
                format!(
                    "label {label:?} mixes {pinned} pinned and {any} floating tasks; hash placement should be all-or-nothing"
                ),
            );
        }
    }

    // P004: per-node input growth for hash-placed operators. The paper's
    // astronomy workload grows a hot worker's data ~6x (vs 2.5x mean)
    // because two popular sky patches hash together. The threshold can be
    // raised by a measured static-split imbalance from the skew bench.
    let skew_threshold = p.skew_threshold();
    if skew_threshold > 0.0 {
        let input_total: u64 = an.tasks.iter().map(|t| t.s3_bytes).sum();
        if input_total > 0 && cluster.nodes > 1 {
            let share = input_total as f64 / cluster.nodes as f64;
            for (label, (pinned, _, _)) in &by_label {
                if *pinned == 0 {
                    continue;
                }
                let mut received = vec![0u64; cluster.nodes];
                for t in an.tasks.iter() {
                    if t.label != *label {
                        continue;
                    }
                    if let Placement::Node(node) = t.placement {
                        let inputs = t.disk_read_bytes
                            + t.deps
                                .iter()
                                .map(|&d| an.tasks[d].output_bytes)
                                .sum::<u64>();
                        received[node.min(cluster.nodes - 1)] += inputs;
                    }
                }
                let total: u64 = received.iter().sum();
                let hottest = received.iter().enumerate().max_by_key(|&(_, &b)| b);
                if let Some((node, &bytes)) = hottest {
                    let growth = bytes as f64 / share;
                    if growth >= skew_threshold {
                        let mean = total as f64 / cluster.nodes as f64 / share;
                        em.push(
                            Code::P004,
                            Severity::Warning,
                            vec![],
                            format!(
                                "label {label:?}: node {node} receives {growth:.1}x its input share (mean {mean:.1}x, threshold {skew_threshold:.1}x) — hash skew"
                            ),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 5: engine-shape lints (E...)
// ---------------------------------------------------------------------------

pub(crate) fn engine_shape(an: &Analysis<'_>, p: &InvariantProfile, em: &mut Emitter) {
    match p.barriers {
        BarrierDiscipline::Free => {}
        BarrierDiscipline::Forbidden => {
            let bars: Vec<TaskId> = an
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_barrier)
                .map(|(i, _)| i)
                .collect();
            if !bars.is_empty() {
                em.push(
                    Code::E002,
                    Severity::Error,
                    bars.clone(),
                    format!(
                        "{} global barrier{} in a lowering for {}, which pipelines per item and has no global barrier",
                        bars.len(),
                        plural(bars.len()),
                        p.engine
                    ),
                );
            }
        }
        BarrierDiscipline::Staged => {
            // A producer that feeds a stage barrier must not also feed a
            // consumer that is not downstream of that barrier: such an edge
            // would move data across the stage boundary the engine claims
            // to synchronize on. (Cache-lineage edges whose consumer *does*
            // descend from the barrier are fine — that is re-reading a
            // cached stage output, not a bypass.)
            for (u, t) in an.tasks.iter().enumerate() {
                if t.is_barrier || t.output_bytes == 0 {
                    continue;
                }
                let bars: Vec<TaskId> = an.consumers[u]
                    .iter()
                    .copied()
                    .filter(|&c| an.tasks[c].is_barrier)
                    .collect();
                if bars.is_empty() {
                    continue;
                }
                for &v in &an.consumers[u] {
                    if an.tasks[v].is_barrier {
                        continue;
                    }
                    if !bars.iter().any(|&b| an.is_ancestor(b, v)) {
                        em.push(
                            Code::E001,
                            Severity::Warning,
                            vec![u, v],
                            format!(
                                "data edge {u} ({:?}) -> {v} ({:?}) bypasses the stage barrier the producer feeds",
                                an.tasks[u].label, an.tasks[v].label
                            ),
                        );
                    }
                }
            }
        }
    }
}
