//! Engine invariant profiles: what each engine's architecture promises,
//! expressed as checkable knobs.
//!
//! Each engine crate exposes an `invariants()` method building one of
//! these from its own architectural constants, so the checker's
//! expectations are derived from the same profile structs the lowerings
//! use — they cannot drift apart silently.

/// How an engine uses global barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierDiscipline {
    /// Execution proceeds in stages separated by barriers (Spark shuffle
    /// boundaries, TensorFlow step barriers). Data edges should not skip
    /// over the stage barrier their producer feeds (lint E001).
    Staged,
    /// Barriers are allowed anywhere (relational pipelining engines use
    /// them only where the plan genuinely synchronizes, e.g. broadcasts).
    Free,
    /// The engine model has no global barrier at all (Dask-style
    /// per-item pipelining); any barrier in a lowering is a bug (E002).
    Forbidden,
}

/// The invariants one engine's lowerings must satisfy.
///
/// Fields are deliberately plain data: the checker in [`crate::check`]
/// interprets them, and engine crates build them from their own profile
/// constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantProfile {
    /// Engine display name for reports.
    pub engine: &'static str,
    /// Every non-barrier task must be pinned to a node (TensorFlow device
    /// placement, SciDB instance ownership). Violations are errors (P002):
    /// the simulator would silently schedule the task anywhere.
    pub static_placement: bool,
    /// Tasks may read node-local stores populated outside this graph
    /// (Myria's per-node PostgreSQL, SciDB's chunk store), so disk reads
    /// need no in-graph writer (disables B002).
    pub store_backed: bool,
    /// Producers declare full-size outputs that consumers slice
    /// per-transfer (Dask's per-item pipelining trick), so producer-side
    /// amplification accounting is meaningless (disables B003).
    pub transfer_slices: bool,
    /// Memory pressure spills to disk instead of failing (Spark), so
    /// memory overruns degrade to warnings/infos instead of errors.
    pub spills: bool,
    /// Tolerated output/input amplification from format conversion
    /// (text encodings, per-engine storage formats) before B003 fires.
    pub format_factor: f64,
    /// Multiplier on the measured footprint the engine actually needs to
    /// run reliably (the paper: Spark wanted ~2× the input in cluster
    /// memory). Drives the M004 advisory.
    pub mem_requirement_factor: f64,
    /// Per-node input growth ratio beyond which hash-partitioned work is
    /// flagged as skewed (P004); `0.0` disables the check for engines
    /// whose lowerings route everything through a master on purpose.
    pub skew_ratio: f64,
    /// Measured worker imbalance under static splitting, from the skew
    /// bench (`BENCH_skew.json` summary); `0.0` when no measurement is
    /// wired in. P004 fires at `max(skew_ratio, measured_imbalance)`, so a
    /// lowering is only flagged for skew worse than what static splits
    /// actually produced on the measured workload (§5.3.3).
    pub measured_imbalance: f64,
    /// Barrier usage discipline.
    pub barriers: BarrierDiscipline,
}

impl InvariantProfile {
    /// A permissive baseline: nothing engine-specific is enforced beyond
    /// structure, byte conservation and physical memory limits. Engine
    /// crates tighten the fields they care about.
    pub fn new(engine: &'static str) -> InvariantProfile {
        InvariantProfile {
            engine,
            static_placement: false,
            store_backed: false,
            transfer_slices: false,
            spills: false,
            format_factor: 4.0,
            mem_requirement_factor: 1.0,
            skew_ratio: 0.0,
            measured_imbalance: 0.0,
            barriers: BarrierDiscipline::Free,
        }
    }

    /// Raise the skew threshold to a measured static-split imbalance (see
    /// [`measured_imbalance_from_bench`]). Values `<= 1.0` (no measured
    /// imbalance) leave the profile unchanged.
    pub fn with_measured_imbalance(mut self, ratio: f64) -> InvariantProfile {
        if ratio > 1.0 {
            self.measured_imbalance = ratio;
        }
        self
    }

    /// The P004 firing threshold: the configured [`Self::skew_ratio`],
    /// raised to [`Self::measured_imbalance`] when a measurement is wired
    /// in. `0.0` still disables the check entirely.
    pub fn skew_threshold(&self) -> f64 {
        if self.skew_ratio <= 0.0 {
            0.0
        } else {
            self.skew_ratio.max(self.measured_imbalance)
        }
    }
}

/// Extract the measured static-split worker imbalance from a
/// `BENCH_skew.json` document (`scibench bench skew`), without a JSON
/// dependency: the summary block's `"model_imbalance_static"` key is
/// unique to that document, so a text scan is sufficient and stays robust
/// to field reordering.
pub fn measured_imbalance_from_bench(text: &str) -> Option<f64> {
    let key = "\"model_imbalance_static\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse::<f64>().ok().filter(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_permissive() {
        let p = InvariantProfile::new("Test");
        assert!(!p.static_placement && !p.store_backed && !p.transfer_slices);
        assert_eq!(p.barriers, BarrierDiscipline::Free);
        assert_eq!(p.skew_ratio, 0.0);
        assert!(p.format_factor > 1.0);
    }
}
