//! Operator → kernel bindings: the metadata each engine publishes about
//! what its lowered task labels *execute*, consumed by the scimemo
//! certifier.
//!
//! The lowerings emit `simcluster` tasks with `&'static str` labels; the
//! real pipelines (`core::usecases`) run sciops kernels. Nothing at the
//! plan level says which kernel a label stands for — so nothing could
//! decide whether caching a node's output is sound. Each engine profile
//! now declares that mapping as a static table of [`OpBinding`]s, and the
//! certifier refuses to certify any label an engine did not declare (an
//! undeclared operator is treated as unsafe, the right polarity for a
//! cache gate).

/// What a lowered task label stands for, cacheability-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Deterministic ingest of versioned catalog inputs (downloads,
    /// scans, format conversions of immutable synthetic data). The input
    /// fingerprint *is* the content key, so sources are certifiable
    /// without a kernel verdict.
    Source,
    /// Control-plane work that produces no result payload: startup,
    /// job submission, barriers, scheduler bookkeeping. Never cached,
    /// never blocks certification of downstream nodes.
    Infra,
    /// A data operator bound to the named kernel entry points. The node
    /// is certifiable only if *every* named kernel's purity verdict is
    /// `Pure`/`DetImpure` (the certifier joins over same-named fns, so
    /// an ambiguous name inherits the worst candidate).
    Kernel(&'static [&'static str]),
}

/// One label → class binding in an engine's operator table.
#[derive(Debug, Clone, Copy)]
pub struct OpBinding {
    /// The task label exactly as the lowering emits it.
    pub label: &'static str,
    /// What executing it means.
    pub class: OpClass,
}

impl OpBinding {
    /// Shorthand constructor.
    pub const fn new(label: &'static str, class: OpClass) -> OpBinding {
        OpBinding { label, class }
    }
}

/// Look up `label` in a concatenation of binding tables (engine-specific
/// first, shared tables after; first match wins).
pub fn lookup<'a>(tables: &[&'a [OpBinding]], label: &str) -> Option<&'a OpBinding> {
    tables
        .iter()
        .flat_map(|t| t.iter())
        .find(|b| b.label == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_prefers_earlier_tables() {
        const A: &[OpBinding] = &[OpBinding::new("x", OpClass::Infra)];
        const B: &[OpBinding] = &[
            OpBinding::new("x", OpClass::Source),
            OpBinding::new("y", OpClass::Source),
        ];
        assert_eq!(lookup(&[A, B], "x").map(|b| b.class), Some(OpClass::Infra));
        assert_eq!(lookup(&[A, B], "y").map(|b| b.class), Some(OpClass::Source));
        assert!(lookup(&[A, B], "z").is_none());
    }
}
