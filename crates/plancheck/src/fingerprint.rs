//! Canonical content fingerprints for lowered task-graph nodes — the
//! plan half of scimemo's cache key.
//!
//! A result cache keyed by "which node is this" must hash exactly the
//! fields that determine the node's *output* and nothing else:
//!
//! * **Included** — operator kind (the label), compute seconds (the
//!   lowering folds operator parameters and input geometry into it),
//!   every declared byte flow (`s3`, `disk_read`, `disk_write`,
//!   `output`), the barrier flag, and the fingerprints of the node's
//!   inputs (as a sorted multiset: `coadd(a, b)` ≡ `coadd(b, a)` for the
//!   commutative reductions these pipelines lower to; the conservative
//!   direction — treating a genuinely ordered operator's permuted inputs
//!   as equal keys — is excluded by the byte flows differing whenever the
//!   lowering distinguishes the operands).
//! * **Excluded** — placement and resident-memory budget. Both are
//!   execution-resource declarations: the workspace determinism contract
//!   (parexec bit-identity, morsel fixed-order reduction) makes results
//!   independent of where a task runs and how much memory it is granted,
//!   so including them would only split cache entries that provably hold
//!   identical bytes.
//!
//! Every node's fields are serialized in canonical form — a
//! `BTreeMap`-ordered `key=value;` encoding with floats rendered as IEEE
//! bit patterns — and hashed with FNV-1a 64 (the workspace's convention
//! for structural digests). Node ids do not participate: two graphs that
//! relabel ids but keep structure hash identically node-for-node.
//!
//! [`graph_fingerprint`] folds the node fingerprints (in multiset order)
//! into one plan-level digest, used by `scibench lint --memo` and the
//! scimemo/v1 report.

use std::collections::BTreeMap;

use simcluster::TaskGraph;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Per-node fingerprints for `graph`, indexed by task id.
///
/// Inputs are hashed before consumers (task ids are topologically ordered
/// by construction for `TaskGraph::add` graphs; for unchecked graphs a
/// forward dependency simply hashes the not-yet-computed placeholder,
/// which `plancheck`'s structural pass rejects anyway).
pub fn node_fingerprints(graph: &TaskGraph) -> Vec<u64> {
    let mut fps = vec![0u64; graph.len()];
    for (id, t) in graph.tasks().iter().enumerate() {
        let mut fields: BTreeMap<&'static str, String> = BTreeMap::new();
        fields.insert("kind", t.label.to_string());
        fields.insert("compute", format!("{:016x}", t.compute.to_bits()));
        fields.insert("s3", t.s3_bytes.to_string());
        fields.insert("disk_read", t.disk_read_bytes.to_string());
        fields.insert("disk_write", t.disk_write_bytes.to_string());
        fields.insert("out", t.output_bytes.to_string());
        fields.insert("barrier", u8::from(t.is_barrier).to_string());
        let mut inputs: Vec<u64> = t
            .deps
            .iter()
            .map(|&d| fps.get(d).copied().unwrap_or(0))
            .collect();
        inputs.sort_unstable();
        fields.insert(
            "inputs",
            inputs
                .iter()
                .map(|f| format!("{f:016x}"))
                .collect::<Vec<_>>()
                .join(","),
        );

        let mut h = FNV_OFFSET;
        for (k, v) in &fields {
            h = fnv1a(k.as_bytes(), h);
            h = fnv1a(b"=", h);
            h = fnv1a(v.as_bytes(), h);
            h = fnv1a(b";", h);
        }
        fps[id] = h;
    }
    fps
}

/// One plan-level digest: the node fingerprints folded in sorted
/// (multiset) order, so the digest is a function of the plan's content,
/// not its construction order.
pub fn graph_fingerprint(graph: &TaskGraph) -> u64 {
    let mut fps = node_fingerprints(graph);
    fps.sort_unstable();
    let mut h = FNV_OFFSET;
    for f in fps {
        h = fnv1a(&f.to_be_bytes(), h);
    }
    h
}

/// Fold two fingerprints into one composite cache key, order-sensitively.
///
/// The resident query service keys its result cache by
/// `combine_fingerprints(plan, input)`: the canonical plan digest of the
/// stage that produced a result, folded with the content fingerprint of
/// the dataset it consumed. Unlike the input multiset inside
/// [`node_fingerprints`], this fold is deliberately *ordered* — the plan
/// and input halves play different roles, so `(a, b)` and `(b, a)` must
/// not collide by construction.
pub fn combine_fingerprints(plan: u64, input: u64) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(b"plan=", h);
    h = fnv1a(&plan.to_be_bytes(), h);
    h = fnv1a(b";input=", h);
    h = fnv1a(&input.to_be_bytes(), h);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::{TaskGraph, TaskSpec};

    fn demo() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add(
            TaskSpec::compute("scan", 1.5)
                .s3(1_000)
                .mem(4_000)
                .output(1_000),
        );
        let b = g.add(
            TaskSpec::compute("scan", 1.5)
                .s3(2_000)
                .mem(4_000)
                .output(2_000),
        );
        let c = g.add(
            TaskSpec::compute("coadd", 3.0)
                .after(&[a, b])
                .mem(8_000)
                .output(500),
        );
        g.barrier("sync", &[c]);
        g
    }

    #[test]
    fn run_twice_is_byte_identical() {
        assert_eq!(node_fingerprints(&demo()), node_fingerprints(&demo()));
        assert_eq!(graph_fingerprint(&demo()), graph_fingerprint(&demo()));
    }

    #[test]
    fn perturbation_sweep_relevant_fields_change_the_key() {
        // Every semantically relevant field must perturb the fingerprint.
        let base = node_fingerprints(&demo())[0];
        let perturbed: Vec<(&str, TaskSpec)> = vec![
            (
                "kind",
                TaskSpec::compute("scan2", 1.5)
                    .s3(1_000)
                    .mem(4_000)
                    .output(1_000),
            ),
            (
                "compute",
                TaskSpec::compute("scan", 1.6)
                    .s3(1_000)
                    .mem(4_000)
                    .output(1_000),
            ),
            (
                "s3",
                TaskSpec::compute("scan", 1.5)
                    .s3(1_001)
                    .mem(4_000)
                    .output(1_000),
            ),
            (
                "disk_read",
                TaskSpec::compute("scan", 1.5)
                    .s3(1_000)
                    .disk_read(7)
                    .mem(4_000)
                    .output(1_000),
            ),
            (
                "disk_write",
                TaskSpec::compute("scan", 1.5)
                    .s3(1_000)
                    .disk_write(7)
                    .mem(4_000)
                    .output(1_000),
            ),
            (
                "out",
                TaskSpec::compute("scan", 1.5)
                    .s3(1_000)
                    .mem(4_000)
                    .output(999),
            ),
        ];
        for (what, t) in perturbed {
            let mut g = TaskGraph::new();
            g.add(t);
            assert_ne!(
                node_fingerprints(&g)[0],
                base,
                "changing `{what}` must change the fingerprint"
            );
        }
    }

    #[test]
    fn perturbation_sweep_irrelevant_fields_do_not_change_the_key() {
        // Placement and memory budget are resource declarations; the
        // determinism contract makes results independent of both.
        let base = node_fingerprints(&demo())[0];
        let same: Vec<(&str, TaskSpec)> = vec![
            (
                "placement",
                TaskSpec::compute("scan", 1.5)
                    .s3(1_000)
                    .mem(4_000)
                    .output(1_000)
                    .on_node(3),
            ),
            (
                "mem",
                TaskSpec::compute("scan", 1.5)
                    .s3(1_000)
                    .mem(64_000)
                    .output(1_000),
            ),
        ];
        for (what, t) in same {
            let mut g = TaskGraph::new();
            g.add(t);
            assert_eq!(
                node_fingerprints(&g)[0],
                base,
                "changing `{what}` must NOT change the fingerprint"
            );
        }
    }

    #[test]
    fn input_fingerprints_feed_consumers() {
        // Perturbing an upstream node must ripple into every consumer.
        let g1 = demo();
        let mut g2 = TaskGraph::new();
        let a = g2.add(
            TaskSpec::compute("scan", 1.5)
                .s3(1_111)
                .mem(4_000)
                .output(1_000),
        );
        let b = g2.add(
            TaskSpec::compute("scan", 1.5)
                .s3(2_000)
                .mem(4_000)
                .output(2_000),
        );
        let c = g2.add(
            TaskSpec::compute("coadd", 3.0)
                .after(&[a, b])
                .mem(8_000)
                .output(500),
        );
        g2.barrier("sync", &[c]);
        let f1 = node_fingerprints(&g1);
        let f2 = node_fingerprints(&g2);
        assert_ne!(f1[0], f2[0]);
        assert_eq!(f1[1], f2[1]);
        assert_ne!(f1[2], f2[2], "consumer must see the upstream change");
        assert_ne!(f1[3], f2[3], "barrier inherits through deps too");
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g2));
    }

    #[test]
    fn input_order_is_canonical() {
        // coadd(a, b) and coadd(b, a) are the same cache key.
        let mut g1 = TaskGraph::new();
        let a = g1.add(TaskSpec::compute("scan", 1.0).s3(10).output(10).mem(10));
        let b = g1.add(TaskSpec::compute("scan", 2.0).s3(20).output(20).mem(20));
        let c1 = g1.add(TaskSpec::compute("coadd", 3.0).after(&[a, b]));
        let mut g2 = TaskGraph::new();
        let b2 = g2.add(TaskSpec::compute("scan", 2.0).s3(20).output(20).mem(20));
        let a2 = g2.add(TaskSpec::compute("scan", 1.0).s3(10).output(10).mem(10));
        let c2 = g2.add(TaskSpec::compute("coadd", 3.0).after(&[b2, a2]));
        assert_eq!(node_fingerprints(&g1)[c1], node_fingerprints(&g2)[c2]);
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&g2));
    }

    #[test]
    fn combine_is_deterministic_ordered_and_collision_shy() {
        assert_eq!(combine_fingerprints(1, 2), combine_fingerprints(1, 2));
        assert_ne!(combine_fingerprints(1, 2), combine_fingerprints(2, 1));
        assert_ne!(combine_fingerprints(1, 2), combine_fingerprints(1, 3));
        assert_ne!(combine_fingerprints(0, 0), 0);
    }

    #[test]
    fn ids_do_not_participate() {
        // The same node content at a different id hashes identically.
        let mut g1 = TaskGraph::new();
        g1.add(TaskSpec::compute("pad", 0.5));
        let x1 = g1.add(
            TaskSpec::compute("scan", 1.5)
                .s3(1_000)
                .mem(4_000)
                .output(1_000),
        );
        let mut g2 = TaskGraph::new();
        let x2 = g2.add(
            TaskSpec::compute("scan", 1.5)
                .s3(1_000)
                .mem(4_000)
                .output(1_000),
        );
        assert_eq!(node_fingerprints(&g1)[x1], node_fingerprints(&g2)[x2]);
    }
}
