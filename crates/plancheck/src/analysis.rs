//! Shared graph analysis: topological order, ancestor bitsets, reverse
//! adjacency. Built once per [`crate::check`] call and reused by every
//! semantic pass.

use simcluster::{TaskGraph, TaskId, TaskSpec};

/// Precomputed reachability over a structurally valid graph.
pub(crate) struct Analysis<'g> {
    /// The tasks, by id.
    pub tasks: &'g [TaskSpec],
    /// `anc[t]` is a bitset over task ids: the strict ancestors of `t`.
    anc: Vec<Vec<u64>>,
    /// `consumers[t]`: tasks listing `t` as a dependency.
    pub consumers: Vec<Vec<TaskId>>,
    words: usize,
}

impl<'g> Analysis<'g> {
    /// Build the analysis. Returns `None` when the graph has structural
    /// errors (cycles, dangling deps) — the structural pass reports those
    /// and the semantic passes are skipped.
    pub fn new(graph: &'g TaskGraph) -> Option<Analysis<'g>> {
        if graph.validate().is_err() {
            return None;
        }
        let tasks = graph.tasks();
        let n = tasks.len();
        let words = n.div_ceil(64);

        let mut consumers: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut indegree: Vec<usize> = tasks.iter().map(|t| t.deps.len()).collect();
        for (id, t) in tasks.iter().enumerate() {
            for &d in &t.deps {
                consumers[d].push(id);
            }
        }
        let mut ready: Vec<TaskId> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(u) = ready.pop() {
            topo.push(u);
            for &c in &consumers[u] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.push(c);
                }
            }
        }
        debug_assert_eq!(topo.len(), n, "validate() guaranteed acyclicity");

        let mut anc = vec![vec![0u64; words]; n];
        for &t in &topo {
            // anc[t] = ∪_d (anc[d] ∪ {d}); split borrows via index order.
            let deps = tasks[t].deps.clone();
            for d in deps {
                let (src, dst) = if d < t {
                    let (a, b) = anc.split_at_mut(t);
                    (&a[d], &mut b[0])
                } else {
                    let (a, b) = anc.split_at_mut(d);
                    (&b[0], &mut a[t])
                };
                for w in 0..words {
                    dst[w] |= src[w];
                }
                dst[d / 64] |= 1u64 << (d % 64);
            }
        }

        Some(Analysis {
            tasks,
            anc,
            consumers,
            words,
        })
    }

    /// Is `a` a strict ancestor of `b`?
    pub fn is_ancestor(&self, a: TaskId, b: TaskId) -> bool {
        (self.anc[b][a / 64] >> (a % 64)) & 1 == 1
    }

    /// Are `a` and `b` ordered (one reaches the other)?
    pub fn comparable(&self, a: TaskId, b: TaskId) -> bool {
        a == b || self.is_ancestor(a, b) || self.is_ancestor(b, a)
    }

    /// Iterate the ancestors of `t`.
    pub fn ancestors(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        let bits = &self.anc[t];
        (0..self.words).flat_map(move |w| {
            let mut word = bits[w];
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::TaskSpec;

    #[test]
    fn ancestors_cross_a_diamond() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 1.0));
        let b = g.add(TaskSpec::compute("b", 1.0).after(&[a]));
        let c = g.add(TaskSpec::compute("c", 1.0).after(&[a]));
        let d = g.add(TaskSpec::compute("d", 1.0).after(&[b, c]));
        let an = Analysis::new(&g).unwrap();
        assert!(an.is_ancestor(a, d) && an.is_ancestor(b, d) && an.is_ancestor(c, d));
        assert!(!an.is_ancestor(d, a));
        assert!(!an.comparable(b, c));
        assert!(an.comparable(a, d) && an.comparable(d, d));
        let anc_d: Vec<_> = an.ancestors(d).collect();
        assert_eq!(anc_d, vec![a, b, c]);
        assert_eq!(an.consumers[a], vec![b, c]);
    }

    #[test]
    fn invalid_graphs_yield_none() {
        let g = TaskGraph::from_tasks_unchecked(vec![
            TaskSpec::compute("a", 1.0).after(&[1]),
            TaskSpec::compute("b", 1.0).after(&[0]),
        ]);
        assert!(Analysis::new(&g).is_none());
    }

    #[test]
    fn ancestors_work_past_64_tasks() {
        // Force multi-word bitsets: a chain of 200 tasks.
        let mut g = TaskGraph::new();
        let mut prev = g.add(TaskSpec::compute("t", 0.1));
        for _ in 0..200 {
            prev = g.add(TaskSpec::compute("t", 0.1).after(&[prev]));
        }
        let an = Analysis::new(&g).unwrap();
        assert!(an.is_ancestor(0, 200));
        assert!(an.is_ancestor(64, 130));
        assert!(!an.is_ancestor(130, 64));
        assert_eq!(an.ancestors(200).count(), 200);
    }
}
