//! Diagnostic vocabulary: codes, severities, and per-graph reports.

use simcluster::TaskId;

/// How bad a finding is.
///
/// `Error` means the graph violates an invariant the engine cannot
/// survive (the simulation would be lying or failing); `Warning` flags a
/// suspicious shape worth a human look; `Info` records an expected but
/// noteworthy property (e.g. "this engine will spill here").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Noteworthy but expected.
    Info,
    /// Suspicious; does not invalidate the plan.
    Warning,
    /// Invariant violation; the plan is wrong for this engine.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes, grouped by pass.
///
/// * `W…` — DAG well-formedness (structure).
/// * `B…` — byte conservation (every byte read must be explainable).
/// * `M…` — memory-budget analysis against the cluster spec.
/// * `P…` — placement feasibility and skew.
/// * `E…` — engine-shape lints driven by the invariant profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// Dependency cycle: no topological order exists.
    W001,
    /// Dependency on a task id that does not exist.
    W002,
    /// Task depends on itself.
    W003,
    /// Duplicate dependency edge (double-counts transfer bytes).
    W004,
    /// Barrier task carries data (barriers synchronize, they move no bytes).
    W005,
    /// Declared output larger than the task's declared resident memory.
    B001,
    /// Disk read with no matching disk write anywhere upstream.
    B002,
    /// Output bytes not explainable by visible inputs within the engine's
    /// format-conversion factor.
    B003,
    /// Concurrent pinned working set provably exceeds a node's memory.
    M001,
    /// Worst-case floating (unpinned) working set exceeds a node's memory.
    M002,
    /// A single task's footprint exceeds a node's memory outright.
    M003,
    /// Fits raw, but not after the engine's memory-requirement factor.
    M004,
    /// Placement pin outside the cluster's node range.
    P001,
    /// Unpinned task on an engine with fully static placement.
    P002,
    /// Tasks sharing a label mix pinned and floating placement.
    P003,
    /// Per-node input skew beyond the engine's tolerated ratio.
    P004,
    /// Data edge bypasses the stage barrier its producer feeds.
    E001,
    /// Barrier present on an engine whose model forbids global barriers.
    E002,
}

impl Code {
    /// The stable code string ("W001", …).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::W001 => "W001",
            Code::W002 => "W002",
            Code::W003 => "W003",
            Code::W004 => "W004",
            Code::W005 => "W005",
            Code::B001 => "B001",
            Code::B002 => "B002",
            Code::B003 => "B003",
            Code::M001 => "M001",
            Code::M002 => "M002",
            Code::M003 => "M003",
            Code::M004 => "M004",
            Code::P001 => "P001",
            Code::P002 => "P002",
            Code::P003 => "P003",
            Code::P004 => "P004",
            Code::E001 => "E001",
            Code::E002 => "E002",
        }
    }

    /// Short human title for tables.
    pub fn title(self) -> &'static str {
        match self {
            Code::W001 => "dependency cycle",
            Code::W002 => "dangling dependency",
            Code::W003 => "self-dependency",
            Code::W004 => "duplicate dependency",
            Code::W005 => "barrier carries data",
            Code::B001 => "output exceeds memory",
            Code::B002 => "phantom disk read",
            Code::B003 => "unexplained amplification",
            Code::M001 => "pinned memory overrun",
            Code::M002 => "floating memory pressure",
            Code::M003 => "task exceeds node memory",
            Code::M004 => "inflated footprint",
            Code::P001 => "pin out of range",
            Code::P002 => "unpinned on static engine",
            Code::P003 => "mixed placement for label",
            Code::P004 => "partition skew",
            Code::E001 => "stage-barrier bypass",
            Code::E002 => "forbidden barrier",
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which check fired.
    pub code: Code,
    /// How bad it is (codes can fire at different severities depending on
    /// the engine profile, e.g. memory overruns on spilling engines).
    pub severity: Severity,
    /// Implicated task ids (truncated to the first few for large sets).
    pub tasks: Vec<TaskId>,
    /// Human-readable explanation with the offending numbers.
    pub message: String,
}

/// All findings for one lowered graph.
#[derive(Debug, Clone)]
pub struct Report {
    /// Engine name from the invariant profile the graph was checked under.
    pub engine: &'static str,
    /// Findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any error-severity finding fired.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the code `code` fired at any severity.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// (errors, warnings, infos) counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Info => c.2 += 1,
            }
        }
        c
    }

    /// One-line summary ("2 errors, 1 warning, 3 infos" or "clean").
    pub fn summary(&self) -> String {
        let (e, w, i) = self.counts();
        if e + w + i == 0 {
            "clean".into()
        } else {
            format!("{e} error{}, {w} warning{}, {i} info{}", s(e), s(w), s(i))
        }
    }

    /// Render every finding as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let tasks = if d.tasks.is_empty() {
                String::from("-")
            } else {
                d.tasks
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!(
                "{:<5} {:<8} {:<26} tasks[{tasks}] {}\n",
                d.code.as_str(),
                d.severity.to_string(),
                d.code.title(),
                d.message
            ));
        }
        out
    }
}

fn s(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: Code, severity: Severity) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            tasks: vec![1, 2],
            message: "m".into(),
        }
    }

    #[test]
    fn report_counts_and_summary() {
        let r = Report {
            engine: "Test",
            diagnostics: vec![
                diag(Code::W001, Severity::Error),
                diag(Code::B003, Severity::Warning),
                diag(Code::M004, Severity::Info),
            ],
        };
        assert!(r.has_errors());
        assert!(r.has(Code::B003));
        assert!(!r.has(Code::E001));
        assert_eq!(r.counts(), (1, 1, 1));
        assert_eq!(r.summary(), "1 error, 1 warning, 1 info");
        let t = r.render_table();
        assert!(t.contains("W001") && t.contains("dependency cycle"), "{t}");
    }

    #[test]
    fn clean_report() {
        let r = Report {
            engine: "Test",
            diagnostics: vec![],
        };
        assert!(!r.has_errors());
        assert_eq!(r.summary(), "clean");
        assert_eq!(r.render_table(), "");
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
