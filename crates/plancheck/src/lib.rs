//! # plancheck — static verification of lowered task graphs
//!
//! Every engine in this workspace lowers its query plans to a
//! [`simcluster::TaskGraph`] before simulation. The simulator executes
//! whatever it is given; if a lowering mis-declares bytes, memory,
//! placement or barriers, the simulation silently produces plausible-but-
//! wrong numbers. This crate catches those mistakes *before* any
//! simulated second elapses, the way a query optimizer validates a
//! physical plan.
//!
//! [`check`] runs five passes over a graph against a
//! [`simcluster::ClusterSpec`] and an engine [`InvariantProfile`]:
//!
//! 1. **DAG well-formedness** (`W…`) — cycles, dangling/self/duplicate
//!    dependencies, data-bearing barriers.
//! 2. **Byte conservation** (`B…`) — outputs fit in declared memory,
//!    every disk read has an upstream writer (unless the engine is
//!    store-backed), outputs are explainable by visible inputs within the
//!    engine's format-conversion factor.
//! 3. **Memory budget** (`M…`) — per-node peak demand along realizable
//!    antichains vs. node RAM; distinguishes hard OOM (pipelined engines,
//!    the paper's Figure 15 Myria failure) from spill/thrash pressure
//!    (Spark) and carries the "needs k× memory" advisory (the paper's
//!    §5.3.2 Spark observation).
//! 4. **Placement** (`P…`) — pins in range, fully-static engines pin
//!    everything, per-label hash-placement consistency, per-node input
//!    skew beyond the engine's tolerated ratio (the paper's §5.3.3 6×
//!    hot-patch growth).
//! 5. **Engine shape** (`E…`) — stage-discipline engines must not leak
//!    data edges around their barriers; per-item pipelining engines must
//!    not contain global barriers at all.
//!
//! Findings come back as a [`Report`] of structured [`Diagnostic`]s with
//! stable [`Code`]s, so tests can assert on exactly which invariant broke
//! and the `scibench lint` CLI can sweep every shipped lowering.
//!
//! ```
//! use plancheck::{check, Code, InvariantProfile};
//! use simcluster::{ClusterSpec, TaskGraph, TaskSpec};
//!
//! let mut g = TaskGraph::new();
//! let a = g.add(TaskSpec::compute("scan", 1.0).s3(1_000_000).output(1_000_000));
//! g.add(TaskSpec::compute("reduce", 1.0).after(&[a]));
//! let report = check(&g, &ClusterSpec::r3_2xlarge(4), &InvariantProfile::new("Demo"));
//! assert!(!report.has_errors());
//!
//! let broken = TaskGraph::from_tasks_unchecked(vec![
//!     TaskSpec::compute("a", 1.0).after(&[1]),
//!     TaskSpec::compute("b", 1.0).after(&[0]),
//! ]);
//! let report = check(&broken, &ClusterSpec::r3_2xlarge(4), &InvariantProfile::new("Demo"));
//! assert!(report.has(Code::W001));
//! ```

mod analysis;
mod diag;
pub mod fingerprint;
pub mod memo;
mod passes;
mod profile;

pub use diag::{Code, Diagnostic, Report, Severity};
pub use fingerprint::{combine_fingerprints, graph_fingerprint, node_fingerprints};
pub use memo::{OpBinding, OpClass};
pub use profile::{measured_imbalance_from_bench, BarrierDiscipline, InvariantProfile};

use analysis::Analysis;
use simcluster::{ClusterSpec, TaskGraph};

/// Statically verify a lowered task graph against a cluster and an
/// engine's invariant profile. Never panics; structurally broken graphs
/// yield structural errors and skip the semantic passes (whose analyses
/// assume a DAG).
pub fn check(graph: &TaskGraph, cluster: &ClusterSpec, profile: &InvariantProfile) -> Report {
    let mut em = passes::Emitter::new();
    let fatal = passes::structural(graph, &mut em);
    if !fatal {
        if let Some(an) = Analysis::new(graph) {
            passes::bytes(&an, profile, &mut em);
            passes::memory(&an, cluster, profile, &mut em);
            passes::placement(&an, cluster, profile, &mut em);
            passes::engine_shape(&an, profile, &mut em);
        }
    }
    Report {
        engine: profile.engine,
        diagnostics: em.finish(),
    }
}

/// The memory pass's estimated peak per-node demand for `graph` on
/// `cluster`: the heaviest realizable concurrent working set (greedy
/// heavy-first antichain, capped at a node's worker slots) over pinned
/// and floating tasks. This is the static estimate the M-passes compare
/// against node RAM; `scibench bench ooc` validates it against the
/// memory governor's measured peak residency. Structurally broken graphs
/// (cycles, dangling deps) estimate 0.
pub fn estimated_peak_demand(graph: &TaskGraph, cluster: &ClusterSpec) -> u64 {
    Analysis::new(graph).map_or(0, |an| passes::peak_demand(&an, cluster))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::{ClusterSpec, TaskGraph, TaskSpec};

    const GB: u64 = 1_000_000_000;

    fn cluster() -> ClusterSpec {
        ClusterSpec::r3_2xlarge(16) // 8 slots, 61 GB per node
    }

    fn permissive() -> InvariantProfile {
        InvariantProfile::new("Test")
    }

    fn codes(r: &Report) -> Vec<Code> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    // --- pass 1: structure -------------------------------------------------

    #[test]
    fn cycle_fires_w001_and_gates_semantic_passes() {
        let g = TaskGraph::from_tasks_unchecked(vec![
            TaskSpec::compute("a", 1.0).after(&[1]),
            TaskSpec::compute("b", 1.0).after(&[0]),
        ]);
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::W001), "{}", r.render_table());
        assert!(r.has_errors());
        assert!(
            !r.has(Code::B003) && !r.has(Code::M002),
            "semantic passes must be skipped"
        );
    }

    #[test]
    fn dangling_dependency_fires_w002() {
        let g = TaskGraph::from_tasks_unchecked(vec![TaskSpec::compute("a", 1.0).after(&[9])]);
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::W002), "{}", r.render_table());
        assert!(r.has_errors());
    }

    #[test]
    fn self_dependency_fires_w003() {
        let g = TaskGraph::from_tasks_unchecked(vec![TaskSpec::compute("a", 1.0).after(&[0])]);
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::W003), "{}", r.render_table());
    }

    #[test]
    fn duplicate_dependency_warns_w004() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 1.0));
        g.add(TaskSpec::compute("b", 1.0).after(&[a, a]));
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::W004), "{}", r.render_table());
        assert!(
            !r.has_errors(),
            "duplicate deps are a warning, not an error"
        );
    }

    #[test]
    fn data_bearing_barrier_fires_w005() {
        let mut bar = TaskSpec::compute("sync", 0.0);
        bar.is_barrier = true;
        bar.output_bytes = 10;
        let g = TaskGraph::from_tasks_unchecked(vec![bar]);
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::W005), "{}", r.render_table());
        assert!(r.has_errors());
    }

    // --- pass 2: bytes -----------------------------------------------------

    #[test]
    fn output_exceeding_memory_fires_b001() {
        let mut t = TaskSpec::compute("x", 1.0);
        t.output_bytes = 2 * GB;
        t.mem_bytes = GB;
        let g = TaskGraph::from_tasks_unchecked(vec![t]);
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::B001), "{}", r.render_table());
        assert!(r.has_errors());
    }

    #[test]
    fn phantom_disk_read_fires_b002_unless_store_backed() {
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("read", 1.0).disk_read(GB));
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::B002), "{}", r.render_table());
        assert!(r.has_errors());

        let stores = InvariantProfile {
            store_backed: true,
            ..permissive()
        };
        let r = check(&g, &cluster(), &stores);
        assert!(
            !r.has(Code::B002),
            "store-backed engines read external state:\n{}",
            r.render_table()
        );
    }

    #[test]
    fn ancestral_and_own_disk_writes_cover_reads() {
        let mut g = TaskGraph::new();
        let w = g.add(TaskSpec::compute("write", 1.0).disk_write(GB));
        let mid = g.add(TaskSpec::compute("mid", 1.0).after(&[w]));
        // Reads the ancestor's write plus its own spill round-trip.
        g.add(
            TaskSpec::compute("read", 1.0)
                .disk_write(GB / 2)
                .disk_read(GB + GB / 2)
                .after(&[mid]),
        );
        let r = check(&g, &cluster(), &permissive());
        assert!(!r.has(Code::B002), "{}", r.render_table());
    }

    #[test]
    fn unexplained_amplification_fires_b003_unless_sliced() {
        let mut g = TaskGraph::new();
        let src = g.add(TaskSpec::compute("src", 1.0).s3(GB).output(GB));
        let mut amp = TaskSpec::compute("amplify", 1.0).after(&[src]);
        amp.output_bytes = 10 * GB; // 10x from 1 GB of input, factor is 4
        let g = {
            let mut tasks = g.tasks().to_vec();
            tasks.push(amp);
            TaskGraph::from_tasks_unchecked(tasks)
        };
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::B003), "{}", r.render_table());

        let sliced = InvariantProfile {
            transfer_slices: true,
            ..permissive()
        };
        let r = check(&g, &cluster(), &sliced);
        assert!(!r.has(Code::B003), "{}", r.render_table());
    }

    #[test]
    fn data_through_a_barrier_is_visible_to_b003() {
        let mut g = TaskGraph::new();
        let src = g.add(TaskSpec::compute("src", 1.0).s3(8 * GB).output(8 * GB));
        let bar = g.barrier("stage", &[src]);
        // Consumer sees the producer's bytes through the barrier.
        let mut t = TaskSpec::compute("consume", 1.0).after(&[bar]);
        t.output_bytes = 8 * GB;
        let g = {
            let mut tasks = g.tasks().to_vec();
            tasks.push(t);
            TaskGraph::from_tasks_unchecked(tasks)
        };
        let r = check(&g, &cluster(), &permissive());
        assert!(!r.has(Code::B003), "{}", r.render_table());
    }

    // --- pass 3: memory ----------------------------------------------------

    #[test]
    fn concurrent_pinned_overrun_fires_m001_only_as_error_when_strict() {
        // Two incomparable 40 GB tasks pinned to node 0: 80 GB > 61 GB.
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("coadd", 10.0).mem(40 * GB).on_node(0));
        g.add(TaskSpec::compute("coadd", 10.0).mem(40 * GB).on_node(0));
        let r = check(&g, &cluster(), &permissive());
        let m001 = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::M001)
            .expect("M001 fires");
        assert_eq!(m001.severity, Severity::Error, "{}", r.render_table());

        let spilling = InvariantProfile {
            spills: true,
            ..permissive()
        };
        let r = check(&g, &cluster(), &spilling);
        let m001 = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::M001)
            .expect("M001 still fires");
        assert_eq!(
            m001.severity,
            Severity::Info,
            "spilling engines degrade, not fail"
        );
        assert!(!r.has_errors());
    }

    #[test]
    fn serialized_chain_does_not_fire_m001() {
        // Same 80 GB, but ordered: never concurrently resident.
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 10.0).mem(40 * GB).on_node(0));
        g.add(
            TaskSpec::compute("b", 10.0)
                .mem(40 * GB)
                .on_node(0)
                .after(&[a]),
        );
        let r = check(&g, &cluster(), &permissive());
        assert!(!r.has(Code::M001), "{}", r.render_table());
    }

    #[test]
    fn floating_pressure_fires_m002() {
        let mut g = TaskGraph::new();
        for _ in 0..8 {
            g.add(TaskSpec::compute("big", 10.0).mem(10 * GB));
        }
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::M002), "{}", r.render_table());
        assert!(
            !r.has_errors(),
            "floating overrun is scheduler-dependent: warning only"
        );
    }

    #[test]
    fn single_oversized_task_fires_m003() {
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("huge", 10.0).mem(70 * GB));
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::M003), "{}", r.render_table());
        assert!(r.has_errors());
    }

    #[test]
    fn estimated_peak_demand_is_the_realizable_antichain() {
        // Ordered 40 GB tasks are never concurrently resident: the
        // estimate is one of them, not their sum.
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 10.0).mem(40 * GB).on_node(0));
        g.add(
            TaskSpec::compute("b", 10.0)
                .mem(40 * GB)
                .on_node(0)
                .after(&[a]),
        );
        assert_eq!(estimated_peak_demand(&g, &cluster()), 40 * GB);

        // Incomparable tasks add up, pinned and floating joined by max.
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("p", 10.0).mem(40 * GB).on_node(0));
        g.add(TaskSpec::compute("q", 10.0).mem(40 * GB).on_node(0));
        g.add(TaskSpec::compute("f", 10.0).mem(10 * GB));
        assert_eq!(estimated_peak_demand(&g, &cluster()), 80 * GB);

        // Structurally broken graphs estimate zero instead of panicking.
        let broken = TaskGraph::from_tasks_unchecked(vec![
            TaskSpec::compute("a", 1.0).after(&[1]),
            TaskSpec::compute("b", 1.0).after(&[0]),
        ]);
        assert_eq!(estimated_peak_demand(&broken, &cluster()), 0);
    }

    #[test]
    fn inflated_footprint_fires_m004_advisory() {
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("fits-raw", 10.0).mem(40 * GB));
        let doubled = InvariantProfile {
            mem_requirement_factor: 2.0,
            ..permissive()
        };
        let r = check(&g, &cluster(), &doubled);
        let m004 = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::M004)
            .expect("M004 fires");
        assert_eq!(m004.severity, Severity::Info);
        assert!(!r.has_errors());
    }

    // --- pass 4: placement -------------------------------------------------

    #[test]
    fn out_of_range_pin_fires_p001() {
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("x", 1.0).on_node(99));
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::P001), "{}", r.render_table());
        assert!(r.has_errors());
    }

    #[test]
    fn unpinned_task_on_static_engine_fires_p002() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("x", 1.0));
        g.barrier("sync", &[a]); // barriers are exempt
        let s = InvariantProfile {
            static_placement: true,
            ..permissive()
        };
        let r = check(&g, &cluster(), &s);
        let p002: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::P002)
            .collect();
        assert_eq!(p002.len(), 1, "{}", r.render_table());
        assert!(r.has_errors());
    }

    #[test]
    fn mixed_placement_for_one_label_warns_p003() {
        let mut g = TaskGraph::new();
        g.add(TaskSpec::compute("shuffle", 1.0).on_node(0));
        g.add(TaskSpec::compute("shuffle", 1.0));
        let r = check(&g, &cluster(), &permissive());
        assert!(r.has(Code::P003), "{}", r.render_table());
        assert!(!r.has_errors());
    }

    #[test]
    fn hash_skew_beyond_ratio_fires_p004() {
        let mut g = TaskGraph::new();
        // 16 GB of input, spread evenly: 1 GB share per node.
        let srcs: Vec<_> = (0..16)
            .map(|_| g.add(TaskSpec::compute("src", 1.0).s3(GB).output(GB)))
            .collect();
        // A hash-placed stage that lands half the data on node 0.
        for (i, &s) in srcs.iter().enumerate() {
            let node = if i < 8 { 0 } else { i };
            g.add(TaskSpec::compute("shuffle", 1.0).on_node(node).after(&[s]));
        }
        let skewed = InvariantProfile {
            skew_ratio: 6.0,
            ..permissive()
        };
        let r = check(&g, &cluster(), &skewed);
        assert!(
            r.has(Code::P004),
            "node 0 receives 8x its share:\n{}",
            r.render_table()
        );
        assert!(!r.has_errors());

        let r = check(&g, &cluster(), &permissive());
        assert!(!r.has(Code::P004), "skew_ratio 0 disables the check");
    }

    #[test]
    fn measured_imbalance_from_skew_bench_raises_p004_threshold() {
        // Same 8x-skewed graph as above.
        let mut g = TaskGraph::new();
        let srcs: Vec<_> = (0..16)
            .map(|_| g.add(TaskSpec::compute("src", 1.0).s3(GB).output(GB)))
            .collect();
        for (i, &s) in srcs.iter().enumerate() {
            let node = if i < 8 { 0 } else { i };
            g.add(TaskSpec::compute("shuffle", 1.0).on_node(node).after(&[s]));
        }

        // A BENCH_skew.json summary block as `scibench bench skew` writes it.
        let bench = r#"{
          "summary": { "workers": 8, "model_imbalance_morsel": 1.08, "model_imbalance_static": 9.5 }
        }"#;
        let measured = measured_imbalance_from_bench(bench).expect("summary parses");
        assert!((measured - 9.5).abs() < 1e-12);

        let base = InvariantProfile {
            skew_ratio: 6.0,
            ..permissive()
        };
        // Static splits measurably produce 9.5x imbalance on this workload,
        // so an 8x hash skew is within observed behaviour: P004 stays quiet.
        let informed = base.with_measured_imbalance(measured);
        assert_eq!(informed.skew_threshold(), 9.5);
        let r = check(&g, &cluster(), &informed);
        assert!(!r.has(Code::P004), "{}", r.render_table());

        // A sub-threshold measurement (or none) leaves the configured ratio
        // in charge and the 8x skew is flagged again.
        let r = check(&g, &cluster(), &base.with_measured_imbalance(1.0));
        assert!(r.has(Code::P004), "{}", r.render_table());
        assert!(measured_imbalance_from_bench("{}").is_none());
    }

    // --- pass 5: engine shape ----------------------------------------------

    #[test]
    fn stage_barrier_bypass_fires_e001() {
        let mut g = TaskGraph::new();
        let producer = g.add(TaskSpec::compute("map", 1.0).s3(GB).output(GB));
        g.barrier("stage", &[producer]);
        // Consumer takes the producer's data but does NOT descend from the
        // barrier: a true stage bypass.
        g.add(TaskSpec::compute("rogue", 1.0).after(&[producer]));
        let staged = InvariantProfile {
            barriers: BarrierDiscipline::Staged,
            ..permissive()
        };
        let r = check(&g, &cluster(), &staged);
        assert!(r.has(Code::E001), "{}", r.render_table());
        assert!(!r.has_errors());
    }

    #[test]
    fn cache_lineage_reread_is_not_a_bypass() {
        // Spark's cached-RDD pattern: the consumer re-reads the producer's
        // cached output AND descends from the stage barrier. Legal.
        let mut g = TaskGraph::new();
        let producer = g.add(TaskSpec::compute("ingest", 1.0).s3(GB).output(GB));
        let bar = g.barrier("stage", &[producer]);
        g.add(TaskSpec::compute("denoise", 1.0).after(&[bar, producer]));
        let staged = InvariantProfile {
            barriers: BarrierDiscipline::Staged,
            ..permissive()
        };
        let r = check(&g, &cluster(), &staged);
        assert!(!r.has(Code::E001), "{}", r.render_table());
    }

    #[test]
    fn any_barrier_on_pipelining_engine_fires_e002() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskSpec::compute("a", 1.0));
        g.barrier("sync", &[a]);
        let forbidden = InvariantProfile {
            barriers: BarrierDiscipline::Forbidden,
            ..permissive()
        };
        let r = check(&g, &cluster(), &forbidden);
        assert!(r.has(Code::E002), "{}", r.render_table());
        assert!(r.has_errors());
    }

    // --- emitter ergonomics ------------------------------------------------

    #[test]
    fn noisy_codes_are_capped_with_an_overflow_note() {
        let mut g = TaskGraph::new();
        for _ in 0..40 {
            g.add(TaskSpec::compute("x", 1.0));
        }
        let s = InvariantProfile {
            static_placement: true,
            ..permissive()
        };
        let r = check(&g, &cluster(), &s);
        let p002 = r
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::P002)
            .count();
        assert!(p002 < 40, "capped: got {p002}");
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.message.contains("more P002")),
            "{}",
            r.render_table()
        );
    }

    #[test]
    fn clean_graph_is_clean() {
        let mut g = TaskGraph::new();
        let dl = g.add(
            TaskSpec::compute("download", 5.0)
                .s3(4 * GB)
                .output(4 * GB)
                .mem(8 * GB),
        );
        let f = g.add(
            TaskSpec::compute("filter", 3.0)
                .output(GB)
                .mem(2 * GB)
                .after(&[dl]),
        );
        g.add(TaskSpec::compute("fit", 9.0).mem(2 * GB).after(&[f]));
        let r = check(&g, &cluster(), &permissive());
        assert_eq!(codes(&r), Vec::<Code>::new(), "{}", r.render_table());
    }
}
