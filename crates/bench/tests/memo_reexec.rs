//! Cross-process determinism of the `scimemo/v1` report: a result cache
//! keyed by plan fingerprints is only trustworthy if the certification
//! itself is reproducible, so the full memo sweep — config lowering,
//! purity analysis, fingerprinting, and JSON rendering — must be
//! byte-identical across *separate processes*.
//!
//! Per-process state (hash seeds, allocator layout, environment) cannot
//! leak into the report without failing here: the parent re-execs this
//! test binary twice with `SCIBENCH_MEMO_CHILD=1` and compares digests of
//! the JSON the children print.

use scibench_bench::memo;
use std::path::Path;
use std::process::Command;

const CHILD_ENV: &str = "SCIBENCH_MEMO_CHILD";

/// FNV-1a over the rendered report: stable, dependency-free fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn report_json() -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/bench sits two levels below the workspace root");
    let sweep = memo::run_memo(root).expect("workspace readable");
    assert_eq!(sweep.failures, Vec::<String>::new());
    sweep.report.to_json()
}

/// Child half: prints the report digest when invoked by the parent,
/// no-ops in a normal `cargo test` run.
#[test]
fn child_digest() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    println!("DIGEST={:016x}", fnv1a(report_json().as_bytes()));
}

/// Parent half: two fresh processes must render byte-identical reports.
#[test]
fn scimemo_report_is_byte_identical_across_processes() {
    let exe = std::env::current_exe().expect("test binary path");
    let digest_of_run = || {
        let out = Command::new(&exe)
            .args(["--exact", "child_digest", "--nocapture", "--test-threads=1"])
            .env(CHILD_ENV, "1")
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "child run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        // With --nocapture the digest may share a line with the harness's
        // `test child_digest ...` prefix, so match anywhere in the line.
        stdout
            .lines()
            .find_map(|l| l.split_once("DIGEST=").map(|(_, d)| d.trim().to_string()))
            .unwrap_or_else(|| panic!("no DIGEST line in child output:\n{stdout}"))
    };
    let first = digest_of_run();
    let second = digest_of_run();
    assert_eq!(
        first, second,
        "scimemo/v1 report depends on per-process state"
    );
    // And the in-process rendering matches too: the report is a pure
    // function of the workspace, not of any per-process state.
    assert_eq!(first, format!("{:016x}", fnv1a(report_json().as_bytes())));
}
