//! CLI tests for the `reproduce` and `scibench` binaries.

use std::process::Command;

fn reproduce(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("run reproduce")
}

fn scibench(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_scibench"))
        .args(args)
        .env_remove("SCIBENCH_THREADS")
        .output()
        .expect("run scibench")
}

#[test]
fn list_names_every_artifact() {
    let out = reproduce(&["--list"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for id in [
        "table1",
        "fig10a",
        "fig10c",
        "fig11",
        "fig12d",
        "fig13",
        "fig14",
        "fig15",
        "chunks",
        "caching",
        "ablations",
        "autotune",
        "skew",
    ] {
        assert!(text.lines().any(|l| l == id), "missing artifact {id}");
    }
}

#[test]
fn static_artifacts_render() {
    let out = reproduce(&["table1", "fig10a", "fig10b"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Table 1 (paper)"));
    assert!(text.contains("Table 1 (ours)"));
    assert!(text.contains("105.0"), "25-subject input size");
    assert!(text.contains("288.0"), "24-visit intermediate size");
}

#[test]
fn unknown_artifact_fails_cleanly() {
    let out = reproduce(&["figXX"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown artifact"));
}

#[test]
fn csv_export_writes_files() {
    let dir = std::env::temp_dir().join(format!("scibench_cli_csv_{}", std::process::id()));
    let out = reproduce(&["fig10a", "--csv", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let csv = std::fs::read_to_string(dir.join("fig10a.csv")).expect("csv written");
    assert!(csv.starts_with("Subjects,Input,Largest Intermediate"));
    assert_eq!(csv.lines().count(), 7);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scibench_rejects_zero_threads_with_exit_2() {
    for sub in ["bench", "perf-smoke"] {
        let out = scibench(&[sub, "--threads", "0"]);
        assert_eq!(out.status.code(), Some(2), "{sub} --threads 0");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("at least 1"), "{err}");
        assert!(err.contains("usage:"), "{err}");
    }
}

#[test]
fn scibench_rejects_oversized_threads_with_exit_2() {
    let out = scibench(&["bench", "--threads", "100000"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("exceeds the cap"), "{err}");
}

#[test]
fn scibench_rejects_unknown_flag_with_exit_2() {
    let out = scibench(&["perf-smoke", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown argument"), "{err}");
}

#[test]
fn perf_smoke_passes_and_reports_identical_outputs() {
    let out = scibench(&["perf-smoke", "--threads", "4"]);
    assert!(out.status.success(), "{:?}", out);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("5 kernels bit-identical at 4 worker(s)"),
        "{text}"
    );
    assert_eq!(text.matches("ok  ").count(), 5, "{text}");
    assert!(!text.contains("FAIL"), "{text}");
}

#[test]
fn perf_smoke_honors_threads_env() {
    let out = Command::new(env!("CARGO_BIN_EXE_scibench"))
        .args(["perf-smoke"])
        .env("SCIBENCH_THREADS", "3")
        .output()
        .expect("run scibench");
    assert!(out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("serial vs 3 worker(s)"), "{err}");
}

#[test]
fn bench_emits_schema_json_with_speedups() {
    let path = std::env::temp_dir().join(format!("scibench_bench_{}.json", std::process::id()));
    let out = scibench(&["bench", "--threads", "2", "--out", path.to_str().unwrap()]);
    assert!(out.status.success(), "{:?}", out);
    let json = std::fs::read_to_string(&path).expect("json written");
    std::fs::remove_file(&path).ok();
    assert!(json.contains("\"schema\": \"scibench-bench-kernels/v1\""));
    assert!(json.contains("\"available_parallelism\""));
    for kernel in [
        "nlm_denoise",
        "dtm_fit",
        "coadd_sigma_clip",
        "background_estimate",
        "detect_sources",
    ] {
        assert!(
            json.contains(&format!("\"kernel\": \"{kernel}\"")),
            "{kernel}"
        );
    }
    // Serial anchor rows report speedup exactly 1.
    assert!(json.contains("\"threads\": 1"));
    assert!(json.contains("\"speedup_vs_serial\": 1.0000"));
}
