//! CLI tests for the `reproduce` binary.

use std::process::Command;

fn reproduce(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("run reproduce")
}

#[test]
fn list_names_every_artifact() {
    let out = reproduce(&["--list"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for id in [
        "table1",
        "fig10a",
        "fig10c",
        "fig11",
        "fig12d",
        "fig13",
        "fig14",
        "fig15",
        "chunks",
        "caching",
        "ablations",
        "autotune",
        "skew",
    ] {
        assert!(text.lines().any(|l| l == id), "missing artifact {id}");
    }
}

#[test]
fn static_artifacts_render() {
    let out = reproduce(&["table1", "fig10a", "fig10b"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Table 1 (paper)"));
    assert!(text.contains("Table 1 (ours)"));
    assert!(text.contains("105.0"), "25-subject input size");
    assert!(text.contains("288.0"), "24-visit intermediate size");
}

#[test]
fn unknown_artifact_fails_cleanly() {
    let out = reproduce(&["figXX"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown artifact"));
}

#[test]
fn csv_export_writes_files() {
    let dir = std::env::temp_dir().join(format!("scibench_cli_csv_{}", std::process::id()));
    let out = reproduce(&["fig10a", "--csv", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let csv = std::fs::read_to_string(dir.join("fig10a.csv")).expect("csv written");
    assert!(csv.starts_with("Subjects,Input,Largest Intermediate"));
    assert_eq!(csv.lines().count(), 7);
    std::fs::remove_dir_all(&dir).ok();
}
