//! Criterion benches of the real scientific kernels (the "reference
//! implementation" compute that every engine's UDFs run), plus the format
//! codecs whose conversion costs drive Figure 11's ingest differences and
//! the `stream()` overhead of Figure 12c.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use marray::NdArray;
use sciops::astro::{self, BackgroundParams, CalibParams, CoaddParams, CosmicParams, DetectParams};
use sciops::neuro::{self, NlmParams};
use sciops::synth::dmri::{DmriPhantom, DmriSpec};
use sciops::synth::sky::{SkySpec, SkySurvey};
use sciops::Parallelism;
use std::hint::black_box;

/// Thread count for the `_par` bench variants: `SCIBENCH_THREADS` if set,
/// else whatever the host offers.
fn bench_par() -> Parallelism {
    Parallelism::auto()
}

fn neuro_kernels(c: &mut Criterion) {
    let spec = DmriSpec::test_scale();
    let phantom = DmriPhantom::generate(5, &spec);
    let data: NdArray<f64> = phantom.data.cast();
    let (mean_b0, mask) = neuro::pipeline::segmentation(&data, &phantom.gtab);
    let vol = data.slice_axis(3, 0).unwrap();

    let mut g = c.benchmark_group("neuro_kernels");
    g.throughput(Throughput::Bytes(vol.nbytes() as u64));
    g.bench_function("otsu_threshold", |b| {
        b.iter(|| black_box(neuro::otsu_threshold(&mean_b0, 256)));
    });
    g.bench_function("median_filter3d", |b| {
        b.iter(|| black_box(neuro::median_filter3d(&mean_b0, 1)));
    });
    g.bench_function("median_otsu_mask", |b| {
        b.iter(|| black_box(neuro::median_otsu(&mean_b0, 1)));
    });
    let nlm = NlmParams {
        search_radius: 1,
        patch_radius: 1,
        sigma: 20.0,
        h_factor: 1.0,
    };
    g.bench_function("nlmeans3d_masked", |b| {
        b.iter(|| black_box(neuro::nlmeans3d(&vol, Some(&mask), &nlm)));
    });
    g.bench_function("nlmeans3d_unmasked", |b| {
        b.iter(|| black_box(neuro::nlmeans3d(&vol, None, &nlm)));
    });
    let par = bench_par();
    g.bench_function("nlmeans3d_masked_par", |b| {
        b.iter(|| black_box(neuro::nlmeans3d_par(&vol, Some(&mask), &nlm, par)));
    });
    g.bench_function("dtm_fit_volume", |b| {
        b.iter(|| black_box(neuro::fit_dtm_volume(&data, &mask, &phantom.gtab)));
    });
    g.bench_function("dtm_fit_volume_par", |b| {
        b.iter(|| black_box(neuro::fit_dtm_volume_par(&data, &mask, &phantom.gtab, par)));
    });
    g.finish();
}

fn astro_kernels(c: &mut Criterion) {
    let spec = SkySpec::test_scale();
    let survey = SkySurvey::generate(17, &spec);
    let e = &survey.visits[0][0];
    let grid = survey.patch_grid();

    let mut g = c.benchmark_group("astro_kernels");
    g.throughput(Throughput::Bytes(e.flux.nbytes() as u64));
    g.bench_function("estimate_background", |b| {
        b.iter(|| {
            black_box(astro::estimate_background(
                &e.flux,
                &BackgroundParams::default(),
            ))
        });
    });
    g.bench_function("detect_cosmic_rays", |b| {
        b.iter(|| {
            black_box(astro::detect_cosmic_rays(
                &e.flux,
                &e.variance,
                &CosmicParams::default(),
            ))
        });
    });
    g.bench_function("calibrate_exposure", |b| {
        b.iter(|| black_box(astro::calibrate_exposure(e, &CalibParams::default())));
    });
    g.bench_function("map_to_patches", |b| {
        b.iter(|| black_box(grid.map_to_patches(e)));
    });

    // Coadd + detect on one merged patch stack.
    let calib = CalibParams::default();
    let patch = grid.overlapping_patches(&e.bbox)[0];
    let patch_box = grid.patch_box(patch);
    let stack: Vec<_> = survey
        .visits
        .iter()
        .map(|visit| {
            let pieces: Vec<_> = visit
                .iter()
                .map(|e| astro::calibrate_exposure(e, &calib))
                .filter_map(|e| e.crop_to(&patch_box))
                .collect();
            astro::pipeline::merge_visit_pieces(&patch_box, &pieces)
        })
        .collect();
    g.bench_function("coadd_sigma_clip", |b| {
        b.iter(|| black_box(astro::coadd_sigma_clip(&stack, &CoaddParams::default())));
    });
    let par = bench_par();
    g.bench_function("coadd_sigma_clip_par", |b| {
        b.iter(|| {
            black_box(astro::coadd_sigma_clip_par(
                &stack,
                &CoaddParams::default(),
                par,
            ))
        });
    });
    let coadd = astro::coadd_sigma_clip(&stack, &CoaddParams::default());
    g.bench_function("detect_sources", |b| {
        b.iter(|| black_box(astro::detect_sources(&coadd, &DetectParams::default())));
    });
    g.bench_function("detect_sources_par", |b| {
        b.iter(|| {
            black_box(astro::detect_sources_par(
                &coadd,
                &DetectParams::default(),
                par,
            ))
        });
    });
    g.bench_function("estimate_background_par", |b| {
        b.iter(|| {
            black_box(astro::estimate_background_par(
                &e.flux,
                &BackgroundParams::default(),
                par,
            ))
        });
    });
    g.finish();
}

fn format_codecs(c: &mut Criterion) {
    let spec = DmriSpec::test_scale();
    let phantom = DmriPhantom::generate(9, &spec);
    let vol: NdArray<f32> = phantom.data.slice_axis(3, 0).unwrap();
    let nifti_bytes = formats::nifti::encode(&phantom.data, 1.25).unwrap();
    let npy_bytes = formats::npy::encode_f32(&vol);
    let csv_text = formats::text::to_csv(&vol);
    let tsv_text = formats::text::to_tsv(&vol);

    let mut g = c.benchmark_group("format_codecs");
    g.throughput(Throughput::Bytes(vol.nbytes() as u64));
    g.bench_function("nifti_encode", |b| {
        b.iter(|| black_box(formats::nifti::encode(&phantom.data, 1.25).unwrap()));
    });
    g.bench_function("nifti_decode", |b| {
        b.iter(|| black_box(formats::nifti::decode(&nifti_bytes).unwrap()));
    });
    g.bench_function("npy_encode", |b| {
        b.iter(|| black_box(formats::npy::encode_f32(&vol)));
    });
    g.bench_function("npy_decode", |b| {
        b.iter(|| black_box(formats::npy::decode_f32(&npy_bytes).unwrap()));
    });
    g.bench_function("csv_encode", |b| {
        b.iter(|| black_box(formats::text::to_csv(&vol)));
    });
    g.bench_function("csv_decode", |b| {
        b.iter(|| black_box(formats::text::from_csv(&csv_text, vol.dims()).unwrap()));
    });
    g.bench_function("tsv_roundtrip_stream_interface", |b| {
        b.iter(|| black_box(formats::text::from_tsv(&tsv_text).unwrap()));
    });
    g.finish();
}

criterion_group!(kernels, neuro_kernels, astro_kernels, format_codecs);
criterion_main!(kernels);
