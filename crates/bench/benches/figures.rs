//! Criterion benches: one per table/figure of the paper's evaluation.
//!
//! Each bench regenerates the artifact's data series through the full
//! lowering + discrete-event simulation stack (the `reproduce` binary
//! prints the same rows). The benched quantity is the cost of the
//! reproduction itself; the assertions inside the experiment drivers'
//! tests guard the values.

use criterion::{criterion_group, criterion_main, Criterion};
use scibench_core::experiments::{self, Setup, Step};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_complexity", |b| {
        b.iter(|| black_box(experiments::table1()));
    });
}

fn bench_fig10(c: &mut Criterion) {
    let setup = Setup::default();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("a_neuro_sizes", |b| {
        b.iter(|| black_box(experiments::fig10a()));
    });
    g.bench_function("b_astro_sizes", |b| {
        b.iter(|| black_box(experiments::fig10b()));
    });
    g.bench_function("c_neuro_e2e_vs_data", |b| {
        b.iter(|| black_box(experiments::fig10c(&setup)));
    });
    g.bench_function("d_astro_e2e_vs_data", |b| {
        b.iter(|| black_box(experiments::fig10d(&setup)));
    });
    g.bench_function("e_neuro_normalized", |b| {
        b.iter(|| black_box(experiments::fig10e(&setup)));
    });
    g.bench_function("f_astro_normalized", |b| {
        b.iter(|| black_box(experiments::fig10f(&setup)));
    });
    g.bench_function("g_neuro_scaling", |b| {
        b.iter(|| black_box(experiments::fig10g(&setup)));
    });
    g.bench_function("h_astro_scaling", |b| {
        b.iter(|| black_box(experiments::fig10h(&setup)));
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let setup = Setup::default();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("ingest", |b| {
        b.iter(|| black_box(experiments::fig11(&setup)));
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let setup = Setup::default();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("a_filter", |b| {
        b.iter(|| black_box(experiments::fig12(&setup, Step::Filter)));
    });
    g.bench_function("b_mean", |b| {
        b.iter(|| black_box(experiments::fig12(&setup, Step::Mean)));
    });
    g.bench_function("c_denoise", |b| {
        b.iter(|| black_box(experiments::fig12(&setup, Step::Denoise)));
    });
    g.bench_function("d_coadd", |b| {
        b.iter(|| black_box(experiments::fig12d(&setup)));
    });
    g.finish();
}

fn bench_tuning(c: &mut Criterion) {
    let setup = Setup::default();
    let mut g = c.benchmark_group("tuning");
    g.sample_size(10);
    g.bench_function("fig13_myria_workers", |b| {
        b.iter(|| black_box(experiments::fig13(&setup)));
    });
    g.bench_function("fig14_spark_partitions", |b| {
        b.iter(|| black_box(experiments::fig14(&setup)));
    });
    g.bench_function("fig15_memory_management", |b| {
        b.iter(|| black_box(experiments::fig15(&setup)));
    });
    g.bench_function("s531_chunk_sweep", |b| {
        b.iter(|| black_box(experiments::chunk_sweep(&setup)));
    });
    g.bench_function("s531_tf_assignment", |b| {
        b.iter(|| black_box(experiments::tf_assignment(&setup)));
    });
    g.bench_function("s533_caching", |b| {
        b.iter(|| black_box(experiments::caching(&setup)));
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let setup = Setup::default();
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.bench_function("ablations", |b| {
        b.iter(|| black_box(experiments::ablations(&setup)));
    });
    g.bench_function("autotune", |b| {
        b.iter(|| black_box(experiments::autotune(&setup)));
    });
    g.bench_function("skew_report", |b| {
        b.iter(|| black_box(experiments::skew_report(&setup)));
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    use simcluster::{simulate, ClusterSpec, SchedPolicy, TaskGraph, TaskSpec};
    // Raw scheduling throughput: a 10k-task fan-out/fan-in graph.
    let mut g = TaskGraph::new();
    let head = g.add(TaskSpec::compute("head", 1.0));
    let mids: Vec<_> = (0..10_000)
        .map(|i| {
            g.add(
                TaskSpec::compute("work", 1.0 + (i % 7) as f64)
                    .s3(1_000_000)
                    .output(500_000)
                    .mem(10_000_000)
                    .after(&[head]),
            )
        })
        .collect();
    g.barrier("sync", &mids);
    let cluster = ClusterSpec::r3_2xlarge(16);
    let mut grp = c.benchmark_group("simulator");
    grp.sample_size(10);
    grp.bench_function("simulate_10k_tasks", |b| {
        b.iter(|| {
            black_box(
                simulate(
                    &g,
                    &cluster,
                    SchedPolicy::LocalityFifo {
                        per_task_overhead: 0.01,
                    },
                    false,
                )
                .unwrap()
                .makespan,
            )
        });
    });
    grp.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_tuning,
    bench_extensions,
    bench_simulator
);
criterion_main!(figures);
